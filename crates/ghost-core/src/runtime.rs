//! The ghOSt runtime: kernel scheduling class + agent driver + userspace
//! control surface.
//!
//! [`GhostRuntime`] wires three faces around one shared state:
//!
//! * [`GhostClass`] — the kernel scheduling class installed *below* CFS
//!   (slot [`CLASS_GHOST`]). It emits Table 1 messages on thread state
//!   changes and runs only threads that agents committed via transactions
//!   (or the PNT fast path).
//! * [`GhostDriver`] — runs agent activations: drain queue → policy →
//!   commit, with all costs charged to virtual time.
//! * [`GhostHandle`] (a clone of the runtime) — the "userspace process"
//!   view: create enclaves, spawn agents, attach threads, stage upgrades,
//!   inject crashes, read stats.

use crate::abi::{AbiError, ABI_ERROR_KINDS};
use crate::backend::GhostBackend;
use crate::enclave::{
    AgentMode, AgentSlot, CommittedSlot, Enclave, EnclaveConfig, EnclaveId, QueueId, QueueState,
    ThreadInfo, WakeMode,
};
use crate::msg::{Message, MsgType};
use crate::pnt::PntRings;
use crate::policy::{GhostPolicy, PolicyCtx};
use crate::queue::MessageQueue;
use crate::recovery::{RecoveryState, StandbyConfig, ThreadSnapshot, RESPAWN_TIMER_FLAG};
use crate::slab::{CpuMap, TidMap, TidSlab};
use crate::status::{StatusWord, SW_ATTACHED, SW_ONCPU, SW_RUNNABLE};
use crate::txn::{SeqConstraint, Transaction, TxnStatus};
use ghost_sim::agent::{AgentDriver, AgentOutcome};
use ghost_sim::class::{OffCpuReason, SchedClass, CLASS_CFS, CLASS_GHOST};
use ghost_sim::cpuset::CpuSet;
use ghost_sim::faults::FaultKind;
use ghost_sim::kernel::{Kernel, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::Nanos;
use ghost_sim::topology::CpuId;
use ghost_trace::TraceEvent;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Counters describing everything the runtime did.
#[derive(Debug, Default, Clone)]
pub struct GhostStats {
    /// Messages posted, indexed by [`MsgType`] discriminant order.
    pub msgs_posted: [u64; 8],
    /// Messages dropped because a queue was full.
    pub msgs_dropped: u64,
    /// Agent activations.
    pub activations: u64,
    /// Activations that drained no messages (pure timer/poll wakeups).
    pub empty_activations: u64,
    /// Total agent busy time (ns of virtual time).
    pub agent_busy_ns: u64,
    /// Transactions committed successfully.
    pub txns_committed: u64,
    /// Transactions failed with `ESTALE`.
    pub txns_stale: u64,
    /// Transactions failed: target not runnable.
    pub txns_not_runnable: u64,
    /// Transactions failed: CPU busy with higher-class work.
    pub txns_cpu_busy: u64,
    /// Transactions failed: CPU/affinity unavailable.
    pub txns_cpu_unavailable: u64,
    /// Transactions aborted (atomic group failure or enclave teardown).
    pub txns_aborted: u64,
    /// Transactions recalled via `TXNS_RECALL()`.
    pub txns_recalled: u64,
    /// `TXNS_COMMIT()` calls with more than one transaction.
    pub group_commits: u64,
    /// Threads scheduled through the PNT fast path.
    pub pnt_picks: u64,
    /// Global-agent hot handoffs (§3.3).
    pub handoffs: u64,
    /// Enclaves destroyed by the watchdog.
    pub watchdog_destroys: u64,
    /// Enclaves destroyed in total.
    pub enclave_destroys: u64,
    /// In-place agent upgrades (§3.4).
    pub upgrades: u64,
    /// Agent crashes that fell back to CFS.
    pub fallbacks: u64,
    /// Status-word reconstruction scans run by incoming agents (§3.4).
    pub reconstructions: u64,
    /// Standby agents respawned during degraded-mode failover.
    pub respawns: u64,
    /// Degraded-mode failovers that completed: every stashed thread was
    /// reclaimed (or died) and the standby finished reconstructing.
    pub recoveries: u64,
    /// Threads shed to CFS by a policy's bounded `ESTALE` retry governor.
    pub estale_sheds: u64,
    /// Transactions failed: target tid is not a schedulable thread of the
    /// enclave at all (never attached, dead, foreign, or an agent).
    pub txns_unknown_target: u64,
    /// ABI calls rejected at the validation boundary, indexed by
    /// [`AbiError::kind`].
    pub abi_rejects: [u64; ABI_ERROR_KINDS],
    /// Enclaves quarantined for exhausting their byzantine strike budget.
    pub quarantines: u64,
}

impl GhostStats {
    fn msg_idx(ty: MsgType) -> usize {
        match ty {
            MsgType::ThreadCreated => 0,
            MsgType::ThreadBlocked => 1,
            MsgType::ThreadPreempted => 2,
            MsgType::ThreadYield => 3,
            MsgType::ThreadDead => 4,
            MsgType::ThreadWakeup => 5,
            MsgType::ThreadAffinity => 6,
            MsgType::TimerTick => 7,
        }
    }

    /// Count of messages posted with the given type.
    pub fn posted(&self, ty: MsgType) -> u64 {
        self.msgs_posted[Self::msg_idx(ty)]
    }

    /// Total failed transactions.
    pub fn txns_failed(&self) -> u64 {
        self.txns_stale
            + self.txns_not_runnable
            + self.txns_unknown_target
            + self.txns_cpu_busy
            + self.txns_cpu_unavailable
            + self.txns_aborted
    }

    /// Count of ABI rejections carrying the given error.
    pub fn rejects(&self, err: AbiError) -> u64 {
        self.abi_rejects[err.kind()]
    }

    /// Total ABI rejections across every error kind.
    pub fn abi_rejects_total(&self) -> u64 {
        self.abi_rejects.iter().sum()
    }
}

/// Builds a fresh policy instance for a standby agent respawn.
type PolicyFactory = Box<dyn Fn() -> Box<dyn GhostPolicy> + Send>;

struct Core {
    enclaves: Vec<Option<Enclave>>,
    policies: Vec<Option<Box<dyn GhostPolicy>>>,
    staged: Vec<Option<Box<dyn GhostPolicy>>>,
    standby_factories: Vec<Option<PolicyFactory>>,
    thread_enclave: TidMap<EnclaveId>,
    pending_attach: TidMap<EnclaveId>,
    agent_enclave: TidMap<(EnclaveId, CpuId)>,
    cpu_enclave: Vec<Option<EnclaveId>>,
    installed: bool,
    stats: GhostStats,
    /// Reused activation drain buffer: every agent activation moves its
    /// batch of messages through this one allocation instead of building
    /// a fresh `Vec` per activation (and per queue).
    drain_buf: Vec<Message>,
    /// Reused commit-pass scratch, lent to [`PolicyCtx`] for the duration
    /// of an activation so group commits never allocate in steady state.
    commit_scratch: CommitScratch,
}

/// Scratch buffers for `TXNS_COMMIT()`'s two passes (validation order,
/// remote IPI targets). Owned by [`Core`], cleared at every use.
#[derive(Default)]
pub(crate) struct CommitScratch {
    pub(crate) provisional: Vec<usize>,
    pub(crate) remote: Vec<(usize, bool)>,
}

fn core_key_of(k: &dyn GhostBackend, cpu: CpuId) -> CpuId {
    k.topo()
        .core_cpus(cpu)
        .first()
        .expect("core has at least one CPU")
}

impl Core {
    fn enclave_mut(&mut self, id: EnclaveId) -> Option<&mut Enclave> {
        self.enclaves.get_mut(id.0 as usize)?.as_mut()
    }

    fn enclave_of_cpu(&self, cpu: CpuId) -> Option<EnclaveId> {
        self.cpu_enclave[cpu.index()]
    }

    /// Existence/liveness gate shared by every enclave-scoped entry point.
    fn check_enclave(&self, eid: EnclaveId) -> Result<(), AbiError> {
        match self.enclaves.get(eid.0 as usize).and_then(|s| s.as_ref()) {
            None => Err(AbiError::NoSuchEnclave),
            Some(e) if e.destroyed => Err(AbiError::EnclaveDestroyed),
            Some(_) => Ok(()),
        }
    }

    /// The single funnel for rejected agent-facing ABI calls: counts the
    /// rejection by kind, fires the `ghost_abi_reject` tracepoint, and —
    /// for errors no benign race can produce ([`AbiError::byzantine`]) —
    /// charges a strike against `eid`, quarantining the enclave once its
    /// budget is exhausted. There are no silent drops: every rejection on
    /// a kernel-reachable path comes through here.
    fn reject(
        &mut self,
        k: &mut dyn GhostBackend,
        eid: Option<EnclaveId>,
        cpu: CpuId,
        err: AbiError,
    ) -> AbiError {
        self.stats.abi_rejects[err.kind()] += 1;
        // Out-of-range CPU ids are clamped by the trace recorder, so a
        // forged `cpu` cannot make the tracepoint itself unsafe.
        k.trace().emit(k.now(), cpu.0, || TraceEvent::AbiReject {
            cpu: cpu.0,
            kind: err.kind() as u8,
        });
        if err.byzantine() {
            if let Some(eid) = eid {
                let quarantine = self.enclave_mut(eid).is_some_and(|e| {
                    e.abi_strikes += 1;
                    !e.destroyed
                        && e.config
                            .abi_strike_budget
                            .is_some_and(|budget| e.abi_strikes >= budget)
                });
                if quarantine {
                    self.quarantine(k, eid);
                }
            }
        }
        err
    }

    /// Counts a rejection on a path with no kernel handle (and therefore
    /// no tracepoint or strike accounting).
    fn note_reject(&mut self, err: AbiError) -> AbiError {
        self.stats.abi_rejects[err.kind()] += 1;
        err
    }

    /// Quarantines an enclave whose agent exhausted the byzantine strike
    /// budget: the §3.4 worst case, applied deliberately — the enclave is
    /// destroyed, its threads fall back to CFS, and co-resident enclaves
    /// never notice.
    fn quarantine(&mut self, k: &mut dyn GhostBackend, eid: EnclaveId) {
        self.stats.quarantines += 1;
        k.trace()
            .emit(k.now(), 0, || TraceEvent::EnclaveQuarantined {
                enclave: eid.0,
            });
        self.destroy_enclave(k, eid);
    }

    /// Posts a message about `tid` (or a CPU event when `tid` is `None`)
    /// into the right queue of `eid`: bumps sequence numbers, updates
    /// status words, and wakes or notifies the consuming agent per the
    /// queue's wakeup configuration.
    fn post(
        &mut self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
        ty: MsgType,
        tid: Option<Tid>,
        cpu: CpuId,
    ) {
        let Some(enclave) = self.enclaves[eid.0 as usize].as_mut() else {
            return;
        };
        if enclave.destroyed {
            return;
        }
        let (qid, msg) = match tid {
            Some(t) => {
                let Some(info) = enclave.threads.get_mut(t) else {
                    return;
                };
                info.tseq += 1;
                info.pending_msgs += 1;
                let seq = info.tseq;
                info.status.publish(|_, f| (seq, f));
                (info.queue, Message::thread(ty, t, seq, cpu, k.now()))
            }
            None => (enclave.queue_for_cpu(cpu), Message::tick(cpu, k.now())),
        };
        let Some(Some(qs)) = enclave.queues.get(qid.0 as usize) else {
            return;
        };
        // A queue-overflow fault window rejects the push as if the ring
        // were full; otherwise try the ring for real.
        let forced_overflow = k.fault_queue_overflow_active();
        if forced_overflow {
            qs.queue.note_dropped();
        }
        if forced_overflow || qs.queue.push(msg).is_err() {
            self.stats.msgs_dropped += 1;
            k.trace()
                .emit(k.now(), cpu.0, || TraceEvent::QueueOverflow {
                    queue: qid.0,
                    ty: GhostStats::msg_idx(ty) as u8,
                    tid: msg.tid.0,
                    dropped_total: qs.queue.dropped(),
                });
            if let Some(t) = tid {
                if let Some(info) = enclave.threads.get_mut(t) {
                    info.pending_msgs = info.pending_msgs.saturating_sub(1);
                }
            }
            return;
        }
        self.stats.msgs_posted[GhostStats::msg_idx(ty)] += 1;
        k.trace().emit(k.now(), cpu.0, || TraceEvent::MsgEnqueued {
            queue: qid.0,
            ty: GhostStats::msg_idx(ty) as u8,
            tid: msg.tid.0,
            seq: msg.seq,
        });
        let wake = qs.wake;
        let enqueue_done = k.now() + k.costs().msg_enqueue;
        match wake {
            WakeMode::WakeAgent(agent) => {
                if let Some((_, acpu)) = self.agent_enclave.get(agent).copied() {
                    if let Some(slot) = enclave.agents.get(acpu) {
                        slot.status.bump_seq(); // Aseq.
                    }
                }
                if k.thread(agent).state == ThreadState::Blocked {
                    k.wake_at(enqueue_done, agent);
                }
            }
            WakeMode::WakeEventCpuAgent => {
                // Per-core mode (§4.5): the CPU generating the message
                // wakes its own agent, which becomes the core's active
                // agent.
                if let Some(slot) = enclave.agents.get(cpu) {
                    let agent = slot.tid;
                    slot.status.bump_seq();
                    enclave.core_active.insert(core_key_of(k, cpu), agent);
                    if k.thread(agent).state == ThreadState::Blocked {
                        k.wake_at(enqueue_done, agent);
                    }
                }
            }
            WakeMode::Polled => {
                // Centralized: notify the spinning global agent, or wake
                // it if it parked (hot handoff left no spinner).
                if let Some(global) = enclave.global_agent {
                    if let Some((_, gcpu)) = self.agent_enclave.get(global).copied() {
                        if let Some(slot) = enclave.agents.get(gcpu) {
                            slot.status.bump_seq();
                        }
                    }
                    match k.thread(global).state {
                        ThreadState::Running if !enclave.loop_armed => {
                            enclave.loop_armed = true;
                            k.schedule_agent_loop(enqueue_done, global);
                        }
                        ThreadState::Blocked => k.wake_at(enqueue_done, global),
                        _ => {}
                    }
                }
            }
        }
    }

    /// Tears an enclave down: every managed thread falls back to CFS and
    /// every agent is killed. Other enclaves are untouched (§3.4).
    fn destroy_enclave(&mut self, k: &mut dyn GhostBackend, eid: EnclaveId) {
        let Some(enclave) = self
            .enclaves
            .get_mut(eid.0 as usize)
            .and_then(|s| s.as_mut())
        else {
            return;
        };
        if enclave.destroyed {
            return;
        }
        enclave.destroyed = true;
        enclave.committed.clear();
        // Sorted: the storage order must not leak into the CFS runqueue
        // (or the kill order), or replays diverge.
        let tids: Vec<Tid> = enclave.threads.sorted_tids();
        let mut agents: Vec<Tid> = enclave.agents.values().map(|a| a.tid).collect();
        agents.sort_by_key(|t| t.0);
        let cpus: Vec<CpuId> = enclave.cpus.iter().collect();
        for cpu in cpus {
            self.cpu_enclave[cpu.index()] = None;
        }
        for tid in tids {
            // Intentionally seeded bug (chaos-harness validation target):
            // strand runnable threads in the dead enclave instead of
            // moving them back to CFS. Never enabled in normal builds.
            #[cfg(feature = "seeded-bug")]
            if k.thread(tid).state == ThreadState::Runnable {
                continue;
            }
            k.move_to_class(tid, CLASS_CFS);
        }
        for agent in agents {
            self.agent_enclave.remove(agent);
            k.kill(agent);
        }
        self.stats.enclave_destroys += 1;
        k.trace().emit(k.now(), 0, || TraceEvent::EnclaveDestroyed {
            enclave: eid.0,
        });
    }

    /// Kicks the enclave's agents so the incoming policy runs promptly
    /// even with no fresh messages — right after an upgrade or respawn,
    /// the status-word reconstruction must happen before organic traffic
    /// would next wake an agent.
    fn notify_agents(&mut self, k: &mut dyn GhostBackend, eid: EnclaveId) {
        let Some(enclave) = self.enclaves[eid.0 as usize].as_mut() else {
            return;
        };
        if enclave.destroyed {
            return;
        }
        let at = k.now() + k.costs().msg_enqueue;
        match enclave.config.mode {
            AgentMode::Centralized => {
                if let Some(global) = enclave.global_agent {
                    match k.thread(global).state {
                        ThreadState::Running if !enclave.loop_armed => {
                            enclave.loop_armed = true;
                            k.schedule_agent_loop(at, global);
                        }
                        ThreadState::Blocked => k.wake_at(at, global),
                        _ => {}
                    }
                }
            }
            AgentMode::PerCpu => {
                let mut agents: Vec<Tid> = enclave.agents.values().map(|a| a.tid).collect();
                agents.sort_by_key(|t| t.0);
                for a in agents {
                    if k.thread(a).state == ThreadState::Blocked {
                        k.wake_at(at, a);
                    }
                }
            }
            AgentMode::PerCore => {
                let mut slots: Vec<(CpuId, Tid)> =
                    enclave.agents.values().map(|a| (a.cpu, a.tid)).collect();
                slots.sort_by_key(|&(c, _)| c.0);
                for (cpu, tid) in slots {
                    let key = core_key_of(k, cpu);
                    let active = *enclave.core_active.or_insert(key, tid);
                    if active == tid && k.thread(tid).state == ThreadState::Blocked {
                        k.wake_at(at, tid);
                    }
                }
            }
        }
    }

    /// Starts (or extends) degraded-mode failover after an agent crash
    /// (§3.4): the affected threads transiently fall back to CFS — with
    /// their kernel-side `ThreadInfo` stashed, so `Tseq` stays monotone
    /// and the status word survives the excursion — while a standby
    /// respawn is scheduled with exponential backoff. Destruction becomes
    /// the last resort, once `max_respawns` attempts are consumed.
    fn begin_degraded_failover(
        &mut self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
        cpu: CpuId,
        standby: StandbyConfig,
        victims: Vec<Tid>,
    ) {
        let now = k.now();
        let Some(enclave) = self.enclaves[eid.0 as usize].as_mut() else {
            return;
        };
        let (mut stashed, mut pending_cpus, started_at) = match enclave.recovery.take() {
            Some(r) => (r.stashed, r.pending_cpus, r.started_at),
            None => (TidSlab::new(), Vec::new(), now),
        };
        let attempts = enclave.respawn_attempts;
        if attempts >= standby.max_respawns {
            // The standby itself keeps dying: give up and destroy.
            self.stats.fallbacks += 1;
            self.destroy_enclave(k, eid);
            return;
        }
        k.trace()
            .emit(now, cpu.0, || TraceEvent::RecoveryStart { enclave: eid.0 });
        enclave.loop_armed = false;
        for tid in victims {
            let Some(mut info) = enclave.threads.remove(tid) else {
                continue;
            };
            enclave.committed.retain(|_, slot| slot.tid != tid);
            if let Some(pnt) = &mut enclave.pnt {
                pnt.revoke(tid);
            }
            info.picked = false;
            stashed.insert(tid, info);
            // With the registry entry gone, the class move below posts no
            // THREAD_DEAD — the thread is expected back.
            self.thread_enclave.remove(tid);
            k.move_to_class(tid, CLASS_CFS);
        }
        if !pending_cpus.contains(&cpu) {
            pending_cpus.push(cpu);
        }
        enclave.recovery = Some(RecoveryState {
            stashed,
            pending_cpus,
            started_at,
        });
        let backoff = standby.respawn_backoff << attempts.min(16);
        k.arm_driver_timer(now + backoff, RESPAWN_TIMER_FLAG | eid.0 as u64);
    }

    /// Per-CPU fault granularity without a standby (§3.4): only the dead
    /// agent's CPU leaves the enclave, and only the threads it served
    /// fall back to CFS. Peers keep scheduling theirs — the crash is
    /// contained to the slice of the enclave the dead agent managed.
    fn partial_fallback(
        &mut self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
        cpu: CpuId,
        dead_agent: Tid,
        victims: Vec<Tid>,
    ) {
        self.stats.fallbacks += 1;
        let Some(enclave) = self.enclaves[eid.0 as usize].as_mut() else {
            return;
        };
        self.cpu_enclave[cpu.index()] = None;
        enclave.cpus.remove(cpu);
        enclave.cpu_queues.remove(cpu);
        if let Some(slot) = enclave.committed.remove(cpu) {
            if let Some(info) = enclave.threads.get_mut(slot.tid) {
                info.picked = false;
            }
        }
        // Hand the default queue to the lowest-CPU survivor if the dead
        // agent owned its wakeups.
        let mut survivors: Vec<(CpuId, Tid)> =
            enclave.agents.values().map(|a| (a.cpu, a.tid)).collect();
        survivors.sort_by_key(|&(c, _)| c.0);
        let dq = enclave.default_queue;
        if let Some(Some(qs)) = enclave.queues.get_mut(dq.0 as usize) {
            if qs.wake == WakeMode::WakeAgent(dead_agent) {
                if let Some(&(_, succ)) = survivors.first() {
                    qs.wake = WakeMode::WakeAgent(succ);
                }
            }
        }
        // Organic departure: the class move posts THREAD_DEAD, so the
        // surviving agents forget the victims.
        for t in victims {
            k.move_to_class(t, CLASS_CFS);
        }
    }
}

/// The shared-everything runtime; clone freely (all clones are views of
/// the same state).
///
/// `Send + Sync`: the shared state sits behind `Arc<Mutex<..>>` so an
/// entire wired simulation can run on a `ghost-lab` worker thread. Each
/// simulation is single-threaded, so the lock is never contended; all
/// cross-context side effects go through `KernelState`'s deferred-op
/// buffers, so the lock is never taken re-entrantly either.
#[derive(Clone)]
pub struct GhostRuntime {
    shared: Arc<Mutex<Core>>,
}

/// The userspace control handle (same object as the runtime).
pub type GhostHandle = GhostRuntime;

/// A typed handle to one live enclave: the runtime plus the enclave's id.
///
/// [`GhostRuntime::launch_enclave`] returns one after installing the
/// class (if needed), creating the enclave, and spawning its agents — so
/// holding an `EnclaveHandle` means the enclave is fully wired and a
/// scenario cannot forget a setup step. All per-enclave follow-up calls
/// (attach, upgrade, standby, crash injection, teardown) live here
/// instead of taking a bare [`EnclaveId`].
#[derive(Clone)]
pub struct EnclaveHandle {
    runtime: GhostRuntime,
    id: EnclaveId,
}

impl EnclaveHandle {
    /// The raw enclave id (for trace matching and low-level calls).
    pub fn id(&self) -> EnclaveId {
        self.id
    }

    /// The runtime this enclave belongs to.
    pub fn runtime(&self) -> &GhostRuntime {
        &self.runtime
    }

    /// Attaches a native thread to this enclave (moves it into the ghOSt
    /// scheduling class, generating `THREAD_CREATED`/`THREAD_WAKEUP`).
    pub fn attach_thread(&self, k: &mut dyn GhostBackend, tid: Tid) {
        self.runtime.attach_thread(k, self.id, tid);
    }

    /// Stages a new policy version for an in-place upgrade (§3.4).
    pub fn stage_upgrade(&self, policy: Box<dyn GhostPolicy>) {
        self.runtime.stage_upgrade(self.id, policy);
    }

    /// Promotes the staged policy right now (§3.4); false if none staged.
    pub fn upgrade_now(&self, k: &mut dyn GhostBackend) -> bool {
        self.runtime.upgrade_now(k, self.id)
    }

    /// Registers a policy factory for standby respawns (§3.4 degraded-mode
    /// failover).
    pub fn set_standby_policy(&self, factory: impl Fn() -> Box<dyn GhostPolicy> + Send + 'static) {
        self.runtime.set_standby_policy(self.id, factory);
    }

    /// Destroys the enclave: threads fall back to CFS, agents die.
    pub fn destroy(&self, k: &mut dyn GhostBackend) {
        self.runtime.destroy_enclave(k, self.id);
    }

    /// Agent pthreads of the enclave (for crash injection in tests).
    pub fn agent_tids(&self) -> Vec<Tid> {
        self.runtime.agent_tids(self.id)
    }

    /// The agent pthread pinned to `cpu`, if the enclave owns that CPU.
    pub fn agent_on(&self, cpu: CpuId) -> Option<Tid> {
        self.runtime.agent_on(self.id, cpu)
    }

    /// The current global agent of a centralized enclave.
    pub fn global_agent(&self) -> Option<Tid> {
        self.runtime.global_agent(self.id)
    }

    /// True while the enclave exists and has not been destroyed.
    pub fn alive(&self) -> bool {
        self.runtime.enclave_alive(self.id)
    }

    /// Runs `f` against the enclave's policy (to extract policy-internal
    /// results after a run).
    pub fn with_policy<R>(&self, f: impl FnOnce(&mut dyn GhostPolicy) -> R) -> Option<R> {
        self.runtime.with_policy(self.id, f)
    }

    /// Validated attach: see [`GhostRuntime::try_attach_thread`].
    pub fn try_attach_thread(&self, k: &mut dyn GhostBackend, tid: Tid) -> Result<(), AbiError> {
        self.runtime.try_attach_thread(k, self.id, tid)
    }

    /// Validated staging: see [`GhostRuntime::try_stage_upgrade`].
    pub fn try_stage_upgrade(&self, policy: Box<dyn GhostPolicy>) -> Result<(), AbiError> {
        self.runtime.try_stage_upgrade(self.id, policy)
    }

    /// Validated in-place upgrade: see [`GhostRuntime::try_upgrade_now`].
    pub fn try_upgrade_now(&self, k: &mut dyn GhostBackend) -> Result<(), AbiError> {
        self.runtime.try_upgrade_now(k, self.id)
    }

    /// Validated destruction: see [`GhostRuntime::try_destroy_enclave`].
    pub fn try_destroy(&self, k: &mut dyn GhostBackend) -> Result<(), AbiError> {
        self.runtime.try_destroy_enclave(k, self.id)
    }

    /// Validated status-word read: see [`GhostRuntime::try_thread_status`].
    pub fn try_thread_status(&self, tid: Tid) -> Result<(u64, u64), AbiError> {
        self.runtime.try_thread_status(self.id, tid)
    }

    /// Garbage status-word write (always rejected): see
    /// [`GhostRuntime::try_write_status`].
    pub fn try_write_status(
        &self,
        k: &mut dyn GhostBackend,
        tid: Tid,
        garbage: u64,
    ) -> Result<(), AbiError> {
        self.runtime.try_write_status(k, self.id, tid, garbage)
    }
}

impl GhostRuntime {
    /// Creates a runtime for a machine with `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        Self {
            shared: Arc::new(Mutex::new(Core {
                enclaves: Vec::new(),
                policies: Vec::new(),
                staged: Vec::new(),
                standby_factories: Vec::new(),
                thread_enclave: TidMap::new(),
                pending_attach: TidMap::new(),
                agent_enclave: TidMap::new(),
                cpu_enclave: vec![None; num_cpus],
                installed: false,
                stats: GhostStats::default(),
                drain_buf: Vec::new(),
                commit_scratch: CommitScratch::default(),
            })),
        }
    }

    /// Installs the ghOSt class and driver into the kernel. Idempotent —
    /// [`GhostRuntime::launch_enclave`] calls it on first use, so the
    /// canonical setup path cannot forget it.
    pub fn install(&self, kernel: &mut Kernel) {
        kernel.install_class(
            CLASS_GHOST,
            Box::new(GhostClass {
                shared: Arc::clone(&self.shared),
            }),
        );
        kernel.set_driver(Box::new(GhostDriver {
            shared: Arc::clone(&self.shared),
        }));
        self.shared.lock().unwrap().installed = true;
    }

    /// The canonical enclave setup path: installs the class and driver if
    /// no one did yet, creates the enclave, spawns its pinned agents, and
    /// returns a typed [`EnclaveHandle`] — so a scenario cannot forget to
    /// install or spawn. The id-based [`GhostRuntime::create_enclave`] /
    /// [`GhostRuntime::spawn_agents`] pair stays available for tests that
    /// need to observe the half-constructed states in between.
    pub fn launch_enclave(
        &self,
        kernel: &mut Kernel,
        cpus: CpuSet,
        config: EnclaveConfig,
        policy: Box<dyn GhostPolicy>,
    ) -> EnclaveHandle {
        if !self.shared.lock().unwrap().installed {
            self.install(kernel);
        }
        let id = self.create_enclave(cpus, config, policy);
        self.spawn_agents(kernel, id);
        EnclaveHandle {
            runtime: self.clone(),
            id,
        }
    }

    /// Wraps an already-created enclave id in a typed handle.
    pub fn handle(&self, id: EnclaveId) -> EnclaveHandle {
        EnclaveHandle {
            runtime: self.clone(),
            id,
        }
    }

    /// Creates an enclave over `cpus` with the given policy (low level:
    /// agents are not spawned yet — prefer
    /// [`GhostRuntime::launch_enclave`]).
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is empty or overlaps an existing enclave. This is
    /// the trusted setup-code path; the validated, typed-error variant is
    /// [`GhostRuntime::try_create_enclave`].
    pub fn create_enclave(
        &self,
        cpus: CpuSet,
        config: EnclaveConfig,
        policy: Box<dyn GhostPolicy>,
    ) -> EnclaveId {
        match self.try_create_enclave(cpus, config, policy) {
            Ok(id) => id,
            Err(AbiError::EmptyCpuSet) => panic!("enclave must own at least one CPU"),
            Err(err) => panic!(
                "create_enclave: a CPU already belongs to an enclave or is out of range ({err})"
            ),
        }
    }

    /// Validated enclave creation: rejects an empty CPU set, CPU ids the
    /// machine does not have, and CPUs already owned by another enclave
    /// with a typed [`AbiError`] instead of panicking.
    pub fn try_create_enclave(
        &self,
        cpus: CpuSet,
        config: EnclaveConfig,
        policy: Box<dyn GhostPolicy>,
    ) -> Result<EnclaveId, AbiError> {
        let mut core = self.shared.lock().unwrap();
        if cpus.is_empty() {
            return Err(core.note_reject(AbiError::EmptyCpuSet));
        }
        for c in cpus.iter() {
            if c.index() >= core.cpu_enclave.len() {
                return Err(core.note_reject(AbiError::InvalidCpu));
            }
            if core.cpu_enclave[c.index()].is_some() {
                return Err(core.note_reject(AbiError::CpuConflict));
            }
        }
        let id = EnclaveId(core.enclaves.len() as u32);
        for c in cpus.iter() {
            core.cpu_enclave[c.index()] = Some(id);
        }
        let default_q = QueueState {
            queue: MessageQueue::new(config.queue_capacity),
            wake: WakeMode::Polled,
        };
        // One PNT ring per NUMA node is the paper's §5 layout; sized from
        // the config if enabled.
        let pnt = config.pnt_ring_capacity.map(|cap| PntRings::new(2, cap));
        let enclave = Enclave {
            id,
            cpus,
            queues: vec![Some(default_q)],
            default_queue: QueueId(0),
            cpu_queues: CpuMap::new(),
            threads: TidSlab::new(),
            agents: CpuMap::new(),
            global_agent: None,
            core_active: CpuMap::new(),
            committed: CpuMap::new(),
            pnt,
            hints: TidMap::new(),
            destroyed: false,
            loop_armed: false,
            upgraded_at: None,
            needs_reconstruct: false,
            recovery: None,
            abi_strikes: 0,
            respawn_attempts: 0,
            config,
        };
        core.enclaves.push(Some(enclave));
        core.policies.push(Some(policy));
        core.staged.push(None);
        core.standby_factories.push(None);
        Ok(id)
    }

    /// Spawns one pinned agent pthread per enclave CPU, configures queues
    /// for the enclave's [`AgentMode`], starts the global agent (if
    /// centralized), and arms the watchdog.
    pub fn spawn_agents(&self, kernel: &mut Kernel, eid: EnclaveId) {
        let cpus: Vec<CpuId> = {
            let core = self.shared.lock().unwrap();
            core.enclaves[eid.0 as usize]
                .as_ref()
                .expect("enclave exists")
                .cpus
                .iter()
                .collect()
        };
        // Spawn agent threads (outside the borrow: spawn touches classes).
        let mut slots: Vec<(CpuId, Tid)> = Vec::new();
        for &cpu in &cpus {
            let tid = kernel.spawn(
                ThreadSpec::workload(
                    &format!("ghost-agent-e{}-c{}", eid.0, cpu.0),
                    &kernel.state.topo,
                )
                .affinity(CpuSet::from_iter([cpu]))
                .agent(),
            );
            slots.push((cpu, tid));
        }
        let mut to_wake = Vec::new();
        {
            let mut core = self.shared.lock().unwrap();
            for &(cpu, tid) in &slots {
                core.agent_enclave.insert(tid, (eid, cpu));
            }
            let enclave = core.enclave_mut(eid).expect("enclave exists");
            for (cpu, tid) in slots {
                let status = StatusWord::new();
                status.set_flags(SW_ATTACHED);
                enclave.agents.insert(cpu, AgentSlot { tid, cpu, status });
            }
            match enclave.config.mode {
                AgentMode::Centralized => {
                    let global = enclave.agents.get(cpus[0]).expect("agent spawned").tid;
                    enclave.global_agent = Some(global);
                    to_wake.push(global);
                }
                AgentMode::PerCpu => {
                    for &cpu in &cpus {
                        let agent = enclave.agents.get(cpu).expect("agent spawned").tid;
                        let qid = QueueId(enclave.queues.len() as u32);
                        enclave.queues.push(Some(QueueState {
                            queue: MessageQueue::new(enclave.config.queue_capacity),
                            wake: WakeMode::WakeAgent(agent),
                        }));
                        enclave.cpu_queues.insert(cpu, qid);
                    }
                    // The default queue wakes the first agent, which
                    // redistributes new threads via ASSOCIATE_QUEUE.
                    let first_agent = enclave.agents.get(cpus[0]).expect("agent spawned").tid;
                    if let Some(Some(qs)) = enclave.queues.get_mut(0) {
                        qs.wake = WakeMode::WakeAgent(first_agent);
                    }
                }
                AgentMode::PerCore => {
                    let mut per_core: HashMap<CpuId, QueueId> = HashMap::new();
                    for &cpu in &cpus {
                        let key = core_key_of(&kernel.state, cpu);
                        let qid = *per_core.entry(key).or_insert_with(|| {
                            let qid = QueueId(enclave.queues.len() as u32);
                            enclave.queues.push(Some(QueueState {
                                queue: MessageQueue::new(enclave.config.queue_capacity),
                                wake: WakeMode::WakeEventCpuAgent,
                            }));
                            qid
                        });
                        enclave.cpu_queues.insert(cpu, qid);
                    }
                    // New threads are associated with the default queue;
                    // in per-core mode the agent of the event's CPU is
                    // woken for those messages too, and every activation
                    // drains the default queue alongside its core queue.
                    if let Some(Some(qs)) = enclave.queues.get_mut(0) {
                        qs.wake = WakeMode::WakeEventCpuAgent;
                    }
                }
            }
            if let Some(timeout) = enclave.config.watchdog_timeout {
                let at = kernel.state.now + timeout / 2;
                kernel.state.arm_driver_timer(at, eid.0 as u64);
            }
        }
        for tid in to_wake {
            kernel.wake_now(tid);
        }
    }

    /// Backend-generic agent spawn: the same wiring as
    /// [`GhostRuntime::spawn_agents`] — one pinned agent per enclave CPU,
    /// queue configuration per [`AgentMode`], global-agent wake, watchdog
    /// arm — expressed against [`GhostBackend`] so the live backend can
    /// launch enclaves over real OS threads. The DES keeps its own
    /// `spawn_agents` (above) untouched: its event interleaving is pinned
    /// by the digest-freeze test, and this path must be free to evolve
    /// with the live backend without risking that freeze.
    ///
    /// The caller settles the backend afterwards (deferred wakes/spawns).
    pub fn spawn_agents_backend(&self, k: &mut dyn GhostBackend, eid: EnclaveId) -> Vec<Tid> {
        let cpus: Vec<CpuId> = {
            let core = self.shared.lock().unwrap();
            core.enclaves[eid.0 as usize]
                .as_ref()
                .expect("enclave exists")
                .cpus
                .iter()
                .collect()
        };
        let mut slots: Vec<(CpuId, Tid)> = Vec::new();
        for &cpu in &cpus {
            let tid = k.spawn_agent(&format!("ghost-agent-e{}-c{}", eid.0, cpu.0), cpu);
            slots.push((cpu, tid));
        }
        let tids: Vec<Tid> = slots.iter().map(|&(_, t)| t).collect();
        let mut to_wake = Vec::new();
        {
            let mut core = self.shared.lock().unwrap();
            for &(cpu, tid) in &slots {
                core.agent_enclave.insert(tid, (eid, cpu));
            }
            let enclave = core.enclave_mut(eid).expect("enclave exists");
            for (cpu, tid) in slots {
                let status = StatusWord::new();
                status.set_flags(SW_ATTACHED);
                enclave.agents.insert(cpu, AgentSlot { tid, cpu, status });
            }
            match enclave.config.mode {
                AgentMode::Centralized => {
                    let global = enclave.agents.get(cpus[0]).expect("agent spawned").tid;
                    enclave.global_agent = Some(global);
                    to_wake.push(global);
                }
                AgentMode::PerCpu => {
                    for &cpu in &cpus {
                        let agent = enclave.agents.get(cpu).expect("agent spawned").tid;
                        let qid = QueueId(enclave.queues.len() as u32);
                        enclave.queues.push(Some(QueueState {
                            queue: MessageQueue::new(enclave.config.queue_capacity),
                            wake: WakeMode::WakeAgent(agent),
                        }));
                        enclave.cpu_queues.insert(cpu, qid);
                    }
                    let first_agent = enclave.agents.get(cpus[0]).expect("agent spawned").tid;
                    if let Some(Some(qs)) = enclave.queues.get_mut(0) {
                        qs.wake = WakeMode::WakeAgent(first_agent);
                    }
                }
                AgentMode::PerCore => {
                    let mut per_core: HashMap<CpuId, QueueId> = HashMap::new();
                    for &cpu in &cpus {
                        let key = core_key_of(k, cpu);
                        let qid = *per_core.entry(key).or_insert_with(|| {
                            let qid = QueueId(enclave.queues.len() as u32);
                            enclave.queues.push(Some(QueueState {
                                queue: MessageQueue::new(enclave.config.queue_capacity),
                                wake: WakeMode::WakeEventCpuAgent,
                            }));
                            qid
                        });
                        enclave.cpu_queues.insert(cpu, qid);
                    }
                    if let Some(Some(qs)) = enclave.queues.get_mut(0) {
                        qs.wake = WakeMode::WakeEventCpuAgent;
                    }
                }
            }
            if let Some(timeout) = enclave.config.watchdog_timeout {
                let at = k.now() + timeout / 2;
                k.arm_driver_timer(at, eid.0 as u64);
            }
        }
        for tid in to_wake {
            k.wake(tid);
        }
        tids
    }

    /// Attaches a native thread to an enclave: moves it into the ghOSt
    /// scheduling class, generating `THREAD_CREATED` (and `THREAD_WAKEUP`
    /// if it is runnable). Invalid requests are rejected (and counted);
    /// use [`GhostRuntime::try_attach_thread`] to see the cause.
    pub fn attach_thread(&self, k: &mut dyn GhostBackend, eid: EnclaveId, tid: Tid) {
        let _ = self.try_attach_thread(k, eid, tid);
    }

    /// Validated attach: rejects dead/nonexistent tids, agent pthreads,
    /// threads already in an enclave, and dead or unknown enclaves with a
    /// typed [`AbiError`] instead of corrupting the registry.
    pub fn try_attach_thread(
        &self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
        tid: Tid,
    ) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        let enclave_ok = core.check_enclave(eid);
        let err = if let Err(e) = enclave_ok {
            Some(e)
        } else if !k.valid_tid(tid) {
            Some(AbiError::NoSuchThread)
        } else if k.thread(tid).state == ThreadState::Dead {
            Some(AbiError::DeadThread)
        } else if k.thread(tid).kind == ghost_sim::thread::ThreadKind::Agent {
            Some(AbiError::AgentThread)
        } else if core.thread_enclave.contains(tid) || core.pending_attach.contains(tid) {
            Some(AbiError::AlreadyAttached)
        } else {
            None
        };
        if let Some(err) = err {
            // Strikes only land on an enclave that exists — a forged eid
            // has nothing to quarantine.
            let strike_eid = enclave_ok.is_ok().then_some(eid);
            return Err(core.reject(k, strike_eid, CpuId(0), err));
        }
        core.pending_attach.insert(tid, eid);
        drop(core);
        k.move_to_class(tid, CLASS_GHOST);
        Ok(())
    }

    /// Stages a new policy version for an in-place upgrade (§3.4): "the
    /// new agent blocks until the old agent crashes or exits", then takes
    /// over. Staging onto a dead or unknown enclave drops the policy.
    pub fn stage_upgrade(&self, eid: EnclaveId, policy: Box<dyn GhostPolicy>) {
        let _ = self.try_stage_upgrade(eid, policy);
    }

    /// Validated staging: rejects dead or unknown enclaves with a typed
    /// [`AbiError`] (the policy object is dropped).
    pub fn try_stage_upgrade(
        &self,
        eid: EnclaveId,
        policy: Box<dyn GhostPolicy>,
    ) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        if let Err(e) = core.check_enclave(eid) {
            return Err(core.note_reject(e));
        }
        core.staged[eid.0 as usize] = Some(policy);
        Ok(())
    }

    /// Performs an in-place upgrade right now (§3.4): the staged policy
    /// takes over and rebuilds its view by scanning the status words of
    /// the enclave's threads at its next activation — no synthetic
    /// message replay. An `Aseq` barrier is raised on every agent so
    /// commits prepared against the old policy's view fail `ESTALE`.
    /// Returns false if no policy was staged.
    pub fn upgrade_now(&self, k: &mut dyn GhostBackend, eid: EnclaveId) -> bool {
        self.try_upgrade_now(k, eid).is_ok()
    }

    /// Validated in-place upgrade: rejects dead or unknown enclaves and
    /// upgrades with nothing staged with a typed [`AbiError`].
    pub fn try_upgrade_now(
        &self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
    ) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        if let Err(e) = core.check_enclave(eid) {
            return Err(core.reject(k, None, CpuId(0), e));
        }
        let Some(staged) = core.staged[eid.0 as usize].take() else {
            return Err(core.reject(k, Some(eid), CpuId(0), AbiError::NothingStaged));
        };
        core.policies[eid.0 as usize] = Some(staged);
        core.stats.upgrades += 1;
        let Some(enclave) = core.enclave_mut(eid) else {
            return Ok(());
        };
        // The watchdog excuses pre-upgrade starvation: the new policy gets
        // a full timeout from here before it can be blamed (§3.4 — without
        // this a hung-then-upgraded agent is double-reaped).
        enclave.upgraded_at = Some(k.now());
        enclave.needs_reconstruct = true;
        // Aseq barrier: in-flight commits that captured a pre-upgrade
        // agent sequence number must not land under the new policy.
        for slot in enclave.agents.values() {
            slot.status.bump_seq();
        }
        core.notify_agents(k, eid);
        Ok(())
    }

    /// Registers a policy factory for standby respawns in `eid`'s
    /// degraded-mode failover: each respawned agent starts from a fresh
    /// policy instance and rebuilds purely from the status-word scan.
    /// Without a factory the surviving in-memory policy object is
    /// re-seeded in place (the reconstruction still runs).
    pub fn set_standby_policy(
        &self,
        eid: EnclaveId,
        factory: impl Fn() -> Box<dyn GhostPolicy> + Send + 'static,
    ) {
        let _ = self.try_set_standby_policy(eid, factory);
    }

    /// Validated standby registration: rejects dead or unknown enclaves
    /// with a typed [`AbiError`] (the factory is dropped).
    pub fn try_set_standby_policy(
        &self,
        eid: EnclaveId,
        factory: impl Fn() -> Box<dyn GhostPolicy> + Send + 'static,
    ) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        if let Err(e) = core.check_enclave(eid) {
            return Err(core.note_reject(e));
        }
        core.standby_factories[eid.0 as usize] = Some(Box::new(factory));
        Ok(())
    }

    /// Destroys an enclave: threads fall back to CFS, agents die.
    /// Destroying twice (or a forged id) is a counted, typed rejection —
    /// see [`GhostRuntime::try_destroy_enclave`].
    pub fn destroy_enclave(&self, k: &mut dyn GhostBackend, eid: EnclaveId) {
        let _ = self.try_destroy_enclave(k, eid);
    }

    /// Validated destruction: rejects double destroys and unknown ids
    /// with a typed [`AbiError`].
    pub fn try_destroy_enclave(
        &self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
    ) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        if let Err(e) = core.check_enclave(eid) {
            return Err(core.reject(k, None, CpuId(0), e));
        }
        core.destroy_enclave(k, eid);
        Ok(())
    }

    /// Agent pthreads of an enclave, in agent-CPU order (for crash
    /// injection in tests — a deterministic order keeps "kill the first
    /// satellite" reproducible).
    pub fn agent_tids(&self, eid: EnclaveId) -> Vec<Tid> {
        let core = self.shared.lock().unwrap();
        core.enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|e| {
                let mut slots: Vec<(CpuId, Tid)> =
                    e.agents.values().map(|a| (a.cpu, a.tid)).collect();
                slots.sort_by_key(|&(c, _)| c.0);
                slots.into_iter().map(|(_, t)| t).collect()
            })
            .unwrap_or_default()
    }

    /// The agent pthread attached to `cpu`, if the enclave owns that CPU
    /// (for targeted crash injection in tests and the chaos harness).
    pub fn agent_on(&self, eid: EnclaveId, cpu: CpuId) -> Option<Tid> {
        let core = self.shared.lock().unwrap();
        core.enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .and_then(|e| e.agents.get(cpu))
            .map(|a| a.tid)
    }

    /// The current global agent of a centralized enclave.
    pub fn global_agent(&self, eid: EnclaveId) -> Option<Tid> {
        let core = self.shared.lock().unwrap();
        core.enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .and_then(|e| e.global_agent)
    }

    /// Slab handle backing `tid`'s entry in the enclave's thread table
    /// (`None` if the thread is not managed there). Handles are recycled
    /// after a thread dies; this accessor lets tests observe free-list
    /// reuse and prove a recycled handle is never reachable through the
    /// dead tid.
    pub fn thread_handle(&self, eid: EnclaveId, tid: Tid) -> Option<u32> {
        let core = self.shared.lock().unwrap();
        core.enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .and_then(|e| e.threads.handle_of(tid))
    }

    /// True if the enclave exists and has not been destroyed.
    pub fn enclave_alive(&self, eid: EnclaveId) -> bool {
        let core = self.shared.lock().unwrap();
        core.enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|e| !e.destroyed)
    }

    /// True while the enclave is in §3.4 degraded mode: its agent died,
    /// threads were shed to CFS, and recovery (standby respawn + thread
    /// reclaim) has not yet completed. Embedding services poll this to
    /// drive graceful degradation (load shedding, timeouts) while the
    /// scheduler is down.
    pub fn enclave_degraded(&self, eid: EnclaveId) -> bool {
        let core = self.shared.lock().unwrap();
        core.enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|e| e.recovery.is_some())
    }

    /// Publishes a scheduling hint for a managed thread (the workload
    /// side of Fig. 1's "optional scheduling hints" arrow). The next
    /// agent activation can read it via `PolicyCtx::hint`. Hints for
    /// unmanaged tids are rejected (and counted); see
    /// [`GhostRuntime::try_set_hint`].
    pub fn set_hint(&self, tid: Tid, hint: u64) {
        let _ = self.try_set_hint(tid, hint);
    }

    /// Validated hint publication: rejects tids the runtime does not
    /// manage — and hints for a dead enclave — with a typed [`AbiError`]
    /// instead of silently dropping them.
    pub fn try_set_hint(&self, tid: Tid, hint: u64) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        let Some(&eid) = core.thread_enclave.get(tid) else {
            return Err(core.note_reject(AbiError::ForeignThread));
        };
        let destroyed = match core.enclave_mut(eid) {
            None => return Err(core.note_reject(AbiError::NoSuchEnclave)),
            Some(e) => e.destroyed,
        };
        if destroyed {
            return Err(core.note_reject(AbiError::EnclaveDestroyed));
        }
        if let Some(enclave) = core.enclave_mut(eid) {
            enclave.hints.insert(tid, hint);
        }
        Ok(())
    }

    /// Reads a managed thread's status word (seq, flags) through the
    /// validated boundary: forged eids and tids yield a typed
    /// [`AbiError`], never a panic.
    pub fn try_thread_status(&self, eid: EnclaveId, tid: Tid) -> Result<(u64, u64), AbiError> {
        let mut core = self.shared.lock().unwrap();
        if let Err(e) = core.check_enclave(eid) {
            return Err(core.note_reject(e));
        }
        let found = core
            .enclaves
            .get(eid.0 as usize)
            .and_then(|s| s.as_ref())
            .and_then(|e| e.threads.get(tid))
            .map(|info| (info.status.seq(), info.status.flags()));
        match found {
            Some(sw) => Ok(sw),
            None => Err(core.note_reject(AbiError::ForeignThread)),
        }
    }

    /// Models an agent scribbling into kernel-owned status-word memory.
    /// Status words are kernel-published and read-only to agents, so this
    /// always rejects with [`AbiError::StatusReadOnly`] — and, because no
    /// benign agent issues kernel-memory writes, always counts a
    /// byzantine strike against the enclave.
    pub fn try_write_status(
        &self,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
        _tid: Tid,
        _garbage: u64,
    ) -> Result<(), AbiError> {
        let mut core = self.shared.lock().unwrap();
        let strike_eid = core.check_enclave(eid).is_ok().then_some(eid);
        Err(core.reject(k, strike_eid, CpuId(0), AbiError::StatusReadOnly))
    }

    /// Snapshot of runtime statistics.
    pub fn stats(&self) -> GhostStats {
        self.shared.lock().unwrap().stats.clone()
    }

    /// Runs `f` against the enclave's policy (to extract policy-internal
    /// results after a run).
    pub fn with_policy<R>(
        &self,
        eid: EnclaveId,
        f: impl FnOnce(&mut dyn GhostPolicy) -> R,
    ) -> Option<R> {
        let mut core = self.shared.lock().unwrap();
        core.policies
            .get_mut(eid.0 as usize)
            .and_then(|p| p.as_mut())
            .map(|p| f(p.as_mut()))
    }
}

// ---------------------------------------------------------------------------
// Transaction commit (TXNS_COMMIT) — kernel-side validation and effects.
// ---------------------------------------------------------------------------

impl<'a> PolicyCtx<'a> {
    /// `TXNS_COMMIT()`: commits a group of transactions, writing each
    /// transaction's `status` in place (the paper's Figs. 3–4 check
    /// `txn->status` right after the call).
    ///
    /// Costs charged to the activation: one syscall, per-transaction
    /// validation, and — for remote targets — a single batched IPI
    /// (first target full price, extra targets amortized), with
    /// cross-socket and SMT multipliers applied.
    pub fn commit(&mut self, txns: &mut [Transaction]) {
        self.do_commit(txns, false);
    }

    /// Commits a group atomically: if any transaction fails validation,
    /// none take effect (failed ones carry their real failure status,
    /// would-have-succeeded ones are `Aborted`). Used by per-core secure
    /// VM scheduling, §4.5: "issuing commits for both CPUs of a core
    /// which must either all succeed or all fail".
    pub fn commit_atomic(&mut self, txns: &mut [Transaction]) {
        self.do_commit(txns, true);
    }

    /// Commits a single transaction and returns its status.
    pub fn commit_one(&mut self, txn: &mut Transaction) -> TxnStatus {
        let mut arr = [*txn];
        self.commit(&mut arr);
        *txn = arr[0];
        txn.status
    }

    /// The queue CPU-scoped events for `cpu` are routed to.
    pub fn queue_of_cpu(&self, cpu: CpuId) -> QueueId {
        self.enclave.queue_for_cpu(cpu)
    }

    /// Tids of all threads managed by this enclave, in Tid order (the
    /// slab's handle order must not steer a policy's decisions).
    pub fn managed_threads(&self) -> Vec<Tid> {
        self.enclave.threads.sorted_tids()
    }

    fn scaled(&self, cost: Nanos) -> Nanos {
        if self.smt_scale {
            self.k.costs().smt_scaled(cost)
        } else {
            cost
        }
    }

    /// Kernel-side validation of one transaction (§2.2: agents "are not
    /// trusted for system integrity", so the kernel checks every field an
    /// agent hands it). Returns the precise typed rejection cause; the
    /// wire status the agent observes is [`AbiError::txn_status`]. Every
    /// check is total — a fully forged transaction (out-of-range CPU,
    /// nonexistent tid) rejects, it never indexes out of bounds.
    fn validate(&self, txn: &Transaction) -> Result<(), AbiError> {
        let enclave = &*self.enclave;
        if enclave.destroyed {
            return Err(AbiError::EnclaveDestroyed);
        }
        // Bounds before membership: a CPU id the machine does not even
        // have is a forged argument, not an unlucky placement choice —
        // and everything downstream (topology, cpu state) may index by it.
        if !self.k.valid_cpu(txn.cpu) {
            return Err(AbiError::InvalidCpu);
        }
        if !enclave.cpus.contains(txn.cpu) {
            return Err(AbiError::CpuOutsideEnclave);
        }
        // Not a thread of this enclave: discriminate the cause precisely —
        // a tid the kernel never issued, a thread that already died, a
        // thread belonging to someone else, or an agent pthread.
        let Some(info) = enclave.threads.get(txn.tid) else {
            return Err(match self.k.thread_checked(txn.tid) {
                None => AbiError::NoSuchThread,
                Some(t) if t.state == ThreadState::Dead => AbiError::DeadThread,
                Some(t) if t.kind == ghost_sim::thread::ThreadKind::Agent => AbiError::AgentThread,
                Some(_) => AbiError::ForeignThread,
            });
        };
        if info.picked {
            return Err(AbiError::TargetNotRunnable);
        }
        let t = &self.k.thread(txn.tid);
        if t.state != ThreadState::Runnable {
            return Err(AbiError::TargetNotRunnable);
        }
        if !t.affinity.contains(txn.cpu) {
            return Err(AbiError::CpuOutsideAffinity);
        }
        match txn.seq {
            SeqConstraint::None => {}
            SeqConstraint::Agent(aseq) => {
                let cur = enclave
                    .agents
                    .get(self.agent_cpu)
                    .map_or(0, |a| a.status.seq());
                if aseq < cur {
                    return Err(AbiError::StaleSeq);
                }
            }
            SeqConstraint::Thread(tseq) => {
                if tseq < info.tseq {
                    return Err(AbiError::StaleSeq);
                }
            }
        }
        if enclave.committed.contains(txn.cpu) {
            return Err(AbiError::CpuBusy);
        }
        // Occupancy: ghOSt may preempt its own threads but nothing of a
        // higher class — except the agent's own CPU, which the agent is
        // about to give up (local commit), and CPUs occupied by *agent*
        // threads, which vacate as soon as their activation ends (the
        // committed slot is consumed when the CPU next picks).
        let cs = &self.k.cpu(txn.cpu);
        if cs.is_occupied() && txn.cpu != self.agent_cpu {
            if let Some(cur) = cs.current {
                let cur = &self.k.thread(cur);
                if cur.class < CLASS_GHOST && cur.kind != ghost_sim::thread::ThreadKind::Agent {
                    return Err(AbiError::CpuBusy);
                }
            }
        }
        Ok(())
    }

    fn do_commit(&mut self, txns: &mut [Transaction], atomic: bool) {
        let costs_syscall = self.k.costs().syscall;
        let costs_validate = self.k.costs().txn_validate;
        let costs_local = self
            .k
            .costs()
            .txn_local_commit
            .saturating_sub(costs_syscall);
        self.busy += self.scaled(costs_syscall);
        // Validation pass. Duplicate targets within the group are caught
        // by inserting provisional slots as we go.
        self.scratch.provisional.clear();
        for i in 0..txns.len() {
            let verdict = self.validate(&txns[i]);
            let (t_cpu, t_tid) = (txns[i].cpu.0, txns[i].tid.0);
            // A per-txn validation charge, dearer across sockets. Local
            // transactions are charged via `txn_local_commit` in the
            // effect pass instead (Table 3 line 3 subsumes validation).
            // A forged CPU id rejects before any topology lookup, so it
            // is charged the base price only.
            if txns[i].cpu != self.agent_cpu {
                let mut vcost = costs_validate;
                if verdict != Err(AbiError::InvalidCpu)
                    && !self.k.topo().same_socket(self.agent_cpu, txns[i].cpu)
                {
                    vcost = self.k.costs().cross_socket_scaled(vcost);
                }
                self.busy += self.scaled(vcost);
            }
            match verdict {
                Ok(()) => {
                    self.k
                        .trace()
                        .emit(self.k.now(), t_cpu, || TraceEvent::TxnArmed {
                            cpu: t_cpu,
                            tid: t_tid,
                        });
                    // Reserve target CPU and thread against duplicates.
                    self.enclave.committed.insert(
                        txns[i].cpu,
                        CommittedSlot {
                            tid: txns[i].tid,
                            arm_at: Nanos::MAX, // Patched below.
                        },
                    );
                    if let Some(info) = self.enclave.threads.get_mut(txns[i].tid) {
                        info.picked = true;
                    }
                    self.scratch.provisional.push(i);
                    txns[i].status = TxnStatus::Committed;
                    txns[i].error = None;
                }
                Err(err) if atomic => {
                    // Unwind everything and mark the rest aborted; every
                    // casualty carries the group-failing cause.
                    for j in 0..self.scratch.provisional.len() {
                        let j = self.scratch.provisional[j];
                        self.enclave.committed.remove(txns[j].cpu);
                        if let Some(info) = self.enclave.threads.get_mut(txns[j].tid) {
                            info.picked = false;
                        }
                        let (j_cpu, j_tid) = (txns[j].cpu.0, txns[j].tid.0);
                        self.k
                            .trace()
                            .emit(self.k.now(), j_cpu, || TraceEvent::TxnCommitRace {
                                cpu: j_cpu,
                                tid: j_tid,
                            });
                        txns[j].status = TxnStatus::Aborted;
                        txns[j].error = Some(err);
                        self.stats.txns_aborted += 1;
                    }
                    txns[i].status = err.txn_status();
                    txns[i].error = Some(err);
                    self.reject_txn(err, t_cpu, t_tid);
                    // Remaining txns are aborted unexamined.
                    for t in txns[i + 1..].iter_mut() {
                        t.status = TxnStatus::Aborted;
                        t.error = Some(err);
                        self.stats.txns_aborted += 1;
                    }
                    return;
                }
                Err(err) => {
                    txns[i].status = err.txn_status();
                    txns[i].error = Some(err);
                    self.reject_txn(err, t_cpu, t_tid);
                }
            }
        }
        if txns.len() > 1 {
            self.stats.group_commits += 1;
        }
        // Effect pass: charge IPI batch, arm slots.
        self.scratch.remote.clear(); // (txn index, cross-socket)
        for pi in 0..self.scratch.provisional.len() {
            let i = self.scratch.provisional[pi];
            if txns[i].cpu == self.agent_cpu {
                self.busy += self.scaled(costs_local);
            } else {
                let cross = !self.k.topo().same_socket(self.agent_cpu, txns[i].cpu);
                self.scratch.remote.push((i, cross));
            }
        }
        let n_remote = self.scratch.remote.len() as u64;
        for idx in 0..self.scratch.remote.len() {
            let (_, cross) = self.scratch.remote[idx];
            let base = if idx == 0 {
                self.k.costs().ipi_send
            } else {
                self.k.costs().ipi_send_extra
            };
            let c = if cross {
                self.k.costs().cross_socket_scaled(base)
            } else {
                base
            };
            self.busy += self.scaled(c);
        }
        let dispatch = self.k.now() + self.busy;
        // Arm local slots: visible as soon as the agent parks.
        for pi in 0..self.scratch.provisional.len() {
            let i = self.scratch.provisional[pi];
            if txns[i].cpu == self.agent_cpu {
                if let Some(slot) = self.enclave.committed.get_mut(txns[i].cpu) {
                    slot.arm_at = dispatch;
                }
                // The local CPU reschedules when the agent parks; no IPI.
            }
        }
        // Arm remote slots and send IPIs.
        for ri in 0..self.scratch.remote.len() {
            let (i, cross) = self.scratch.remote[ri];
            let prop = self.k.costs().ipi_propagation
                + if cross {
                    self.k.costs().ipi_propagation_cross_socket
                } else {
                    0
                };
            let contention = if n_remote > 1 {
                self.k.costs().group_target_contention
            } else {
                0
            };
            let resched_at = dispatch + prop + self.k.costs().ipi_receive + contention;
            if let Some(slot) = self.enclave.committed.get_mut(txns[i].cpu) {
                slot.arm_at = resched_at;
            }
            self.k.send_ipi(txns[i].cpu, resched_at);
        }
        if atomic && self.scratch.provisional.len() > 1 {
            // Synchronized group commit (§4.5): all targets act on the
            // commit at the same instant, so a core never transiently
            // runs threads of different VMs while the switches land.
            let arm_all = self
                .scratch
                .provisional
                .iter()
                .filter_map(|&i| self.enclave.committed.get(txns[i].cpu))
                .map(|s| s.arm_at)
                .max()
                .unwrap_or(dispatch);
            for pi in 0..self.scratch.provisional.len() {
                let i = self.scratch.provisional[pi];
                if let Some(slot) = self.enclave.committed.get_mut(txns[i].cpu) {
                    slot.arm_at = arm_all;
                }
                self.k.send_ipi(txns[i].cpu, arm_all);
            }
        }
        for pi in 0..self.scratch.provisional.len() {
            let i = self.scratch.provisional[pi];
            let (t_cpu, t_tid) = (txns[i].cpu.0, txns[i].tid.0);
            self.k
                .trace()
                .emit(self.k.now(), t_cpu, || TraceEvent::TxnCommitOk {
                    cpu: t_cpu,
                    tid: t_tid,
                });
        }
        self.stats.txns_committed += self.scratch.provisional.len() as u64;
    }

    /// Funnels one failed transaction through the rejection bookkeeping:
    /// the legacy wire-status counters and tracepoints, the typed
    /// [`AbiError`] counter, the `ghost_abi_reject` tracepoint, and — for
    /// byzantine-classified errors — a strike against the enclave (the
    /// driver checks the budget when the activation ends). No rejected
    /// commit is ever dropped silently.
    fn reject_txn(&mut self, err: AbiError, cpu: u16, tid: u32) {
        let status = err.txn_status();
        self.count_failure(status);
        self.trace_failure(status, cpu, tid);
        self.stats.abi_rejects[err.kind()] += 1;
        // Emitted on the agent's CPU: the target CPU may be forged (the
        // recorder clamps out-of-range ids, but attribution to a real CPU
        // is more useful than a clamp artifact).
        let acpu = self.agent_cpu.0;
        self.k
            .trace()
            .emit(self.k.now(), acpu, || TraceEvent::AbiReject {
                cpu: acpu,
                kind: err.kind() as u8,
            });
        if err.byzantine() {
            self.enclave.abi_strikes += 1;
        }
    }

    fn count_failure(&mut self, status: TxnStatus) {
        match status {
            TxnStatus::Stale => self.stats.txns_stale += 1,
            TxnStatus::TargetNotRunnable => self.stats.txns_not_runnable += 1,
            TxnStatus::UnknownTarget => self.stats.txns_unknown_target += 1,
            TxnStatus::CpuBusy => self.stats.txns_cpu_busy += 1,
            TxnStatus::CpuUnavailable => self.stats.txns_cpu_unavailable += 1,
            TxnStatus::Aborted => self.stats.txns_aborted += 1,
            TxnStatus::Committed | TxnStatus::Pending => {}
        }
    }

    /// Traces a failed commit: `ESTALE` keeps its own tracepoint (the
    /// paper's headline failure mode); every other loss is a commit race.
    fn trace_failure(&mut self, status: TxnStatus, cpu: u16, tid: u32) {
        match status {
            TxnStatus::Stale => {
                self.k
                    .trace()
                    .emit(self.k.now(), cpu, || TraceEvent::TxnCommitEstale {
                        cpu,
                        tid,
                    });
            }
            TxnStatus::TargetNotRunnable
            | TxnStatus::UnknownTarget
            | TxnStatus::CpuBusy
            | TxnStatus::CpuUnavailable
            | TxnStatus::Aborted => {
                self.k
                    .trace()
                    .emit(self.k.now(), cpu, || TraceEvent::TxnCommitRace { cpu, tid });
            }
            TxnStatus::Committed | TxnStatus::Pending => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The kernel scheduling class.
// ---------------------------------------------------------------------------

/// The ghOSt scheduling class (kernel side).
pub struct GhostClass {
    shared: Arc<Mutex<Core>>,
}

impl GhostClass {
    fn rt(&self) -> GhostRuntime {
        GhostRuntime {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl SchedClass for GhostClass {
    fn name(&self) -> &'static str {
        "ghost"
    }

    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId> {
        self.rt().hook_enqueue(k, tid)
    }

    fn dequeue(&mut self, tid: Tid, k: &mut KernelState) {
        self.rt().hook_dequeue(k, tid)
    }

    fn pick_next(&mut self, cpu: CpuId, k: &mut KernelState) -> Option<Tid> {
        self.rt().hook_pick_next(k, cpu)
    }

    fn put_prev(&mut self, tid: Tid, cpu: CpuId, _still_runnable: bool, k: &mut KernelState) {
        // `offcpu_reason` is DES bookkeeping, not backend surface: read
        // it here, in the adapter, and pass it explicitly.
        let reason = k.offcpu_reason;
        self.rt().hook_put_prev(k, tid, cpu, reason)
    }

    fn on_tick(&mut self, _cpu: CpuId, _current: Tid, _k: &mut KernelState) -> bool {
        // Agents drive all preemption decisions; the kernel class never
        // preempts on its own.
        false
    }

    fn on_tick_all(&mut self, cpu: CpuId, k: &mut KernelState) {
        self.rt().hook_tick(k, cpu)
    }

    fn has_runnable(&self, cpu: CpuId, k: &KernelState) -> bool {
        self.rt().hook_has_runnable(k, cpu)
    }

    fn on_attach(&mut self, tid: Tid, k: &mut KernelState) {
        self.rt().hook_attach(k, tid)
    }

    fn on_detach(&mut self, tid: Tid, k: &mut KernelState) {
        self.rt().hook_detach(k, tid)
    }

    fn on_affinity_changed(&mut self, tid: Tid, k: &mut KernelState) {
        self.rt().hook_affinity_changed(k, tid)
    }
}

/// Scheduling-event entry points, generic over the backend.
///
/// The DES kernel reaches these through the [`GhostClass`] /
/// [`GhostDriver`] adapters above; a live backend (`ghost-live`) calls
/// them directly when real threads block, wake, tick, or get picked.
impl GhostRuntime {
    /// A thread became runnable (`THREAD_WAKEUP`).
    pub fn hook_enqueue(&self, k: &mut dyn GhostBackend, tid: Tid) -> Option<CpuId> {
        // A ghOSt thread became runnable: no kernel runqueue — tell the
        // agent instead (THREAD_WAKEUP).
        let mut core = self.shared.lock().unwrap();
        if let Some(&eid) = core.thread_enclave.get(tid) {
            let cpu = k.thread(tid).last_cpu.unwrap_or(CpuId(0));
            if let Some(enclave) = core.enclave_mut(eid) {
                if let Some(info) = enclave.threads.get(tid) {
                    info.status.set_flags(SW_RUNNABLE);
                }
            }
            core.post(k, eid, MsgType::ThreadWakeup, Some(tid), cpu);
        }
        None
    }

    /// A runnable thread left the class (kill or class move).
    pub fn hook_dequeue(&self, _k: &mut dyn GhostBackend, tid: Tid) {
        // Runnable thread leaving the class (kill or class move): drop
        // any committed slot or PNT offer referencing it.
        let mut core = self.shared.lock().unwrap();
        if let Some(&eid) = core.thread_enclave.get(tid) {
            if let Some(enclave) = core.enclave_mut(eid) {
                enclave.committed.retain(|_, slot| slot.tid != tid);
                if let Some(pnt) = &mut enclave.pnt {
                    pnt.revoke(tid);
                }
                if let Some(info) = enclave.threads.get_mut(tid) {
                    info.picked = false;
                }
            }
        }
    }

    /// The backend asks what to run on an idle `cpu` (committed slot
    /// or PNT fast path).
    pub fn hook_pick_next(&self, k: &mut dyn GhostBackend, cpu: CpuId) -> Option<Tid> {
        let mut core = self.shared.lock().unwrap();
        let eid = core.enclave_of_cpu(cpu)?;
        let now = k.now();
        let node = k.topo().info(cpu).socket as usize;
        let enclave = core.enclave_mut(eid)?;
        if enclave.destroyed {
            return None;
        }
        // Committed transaction for this CPU?
        if let Some(slot) = enclave.committed.get(cpu).copied() {
            if slot.arm_at <= now {
                enclave.committed.remove(cpu);
                if let Some(info) = enclave.threads.get_mut(slot.tid) {
                    info.picked = false;
                }
                if k.thread(slot.tid).state == ThreadState::Runnable
                    && k.thread(slot.tid).affinity.contains(cpu)
                {
                    if let Some(info) = enclave.threads.get(slot.tid) {
                        info.status
                            .publish(|s, f| (s, (f | SW_ONCPU) & !SW_RUNNABLE));
                    }
                    return Some(slot.tid);
                }
                // Slot target went away between commit and pick: fall
                // through (maybe PNT has something).
            } else {
                // The commit's IPI has not logically arrived yet.
                return None;
            }
        }
        // BPF pick_next_task fast path.
        if enclave.pnt.is_some() {
            loop {
                let Some(cand) = enclave.pnt.as_mut().and_then(|p| p.pop_for(node)) else {
                    k.trace()
                        .emit(now, cpu.0, || TraceEvent::PntMiss { cpu: cpu.0 });
                    return None;
                };
                let ok = enclave.threads.get(cand).is_some_and(|i| !i.picked)
                    && k.thread(cand).state == ThreadState::Runnable
                    && k.thread(cand).affinity.contains(cpu);
                if ok {
                    if let Some(info) = enclave.threads.get(cand) {
                        info.status
                            .publish(|s, f| (s, (f | SW_ONCPU) & !SW_RUNNABLE));
                    }
                    core.stats.pnt_picks += 1;
                    k.trace().emit(now, cpu.0, || TraceEvent::PntHit {
                        cpu: cpu.0,
                        tid: cand.0,
                    });
                    return Some(cand);
                }
            }
        }
        None
    }

    /// A thread came off `cpu` for `reason`.
    pub fn hook_put_prev(
        &self,
        k: &mut dyn GhostBackend,
        tid: Tid,
        cpu: CpuId,
        reason: OffCpuReason,
    ) {
        let mut core = self.shared.lock().unwrap();
        let Some(&eid) = core.thread_enclave.get(tid) else {
            return;
        };
        let ty = match reason {
            OffCpuReason::Preempt => MsgType::ThreadPreempted,
            OffCpuReason::Yield => MsgType::ThreadYield,
            OffCpuReason::Block => MsgType::ThreadBlocked,
            OffCpuReason::Exit => MsgType::ThreadDead,
        };
        if let Some(enclave) = core.enclave_mut(eid) {
            if let Some(info) = enclave.threads.get(tid) {
                let runnable = matches!(reason, OffCpuReason::Preempt | OffCpuReason::Yield);
                info.status.publish(|s, f| {
                    let f = f & !SW_ONCPU;
                    (
                        s,
                        if runnable {
                            f | SW_RUNNABLE
                        } else {
                            f & !SW_RUNNABLE
                        },
                    )
                });
            }
        }
        core.post(k, eid, ty, Some(tid), cpu);
        if reason == OffCpuReason::Exit {
            // Registry cleanup happens in on_detach; drop the mapping so
            // the detach path does not double-post THREAD_DEAD.
            if let Some(enclave) = core.enclave_mut(eid) {
                enclave.threads.remove(tid);
            }
            core.thread_enclave.remove(tid);
        }
    }

    /// Timer tick on `cpu` (`CPU_TICK` delivery).
    pub fn hook_tick(&self, k: &mut dyn GhostBackend, cpu: CpuId) {
        let mut core = self.shared.lock().unwrap();
        let Some(eid) = core.enclave_of_cpu(cpu) else {
            return;
        };
        let deliver = core.enclaves[eid.0 as usize]
            .as_ref()
            .is_some_and(|e| !e.destroyed && e.config.deliver_ticks);
        if deliver {
            core.post(k, eid, MsgType::TimerTick, None, cpu);
        }
    }

    /// True if the enclave owning `cpu` has anything it could run.
    pub fn hook_has_runnable(&self, k: &dyn GhostBackend, cpu: CpuId) -> bool {
        let core = self.shared.lock().unwrap();
        let Some(eid) = core.cpu_enclave[cpu.index()] else {
            return false;
        };
        core.enclaves[eid.0 as usize].as_ref().is_some_and(|e| {
            e.committed.contains(cpu)
                || e.pnt.as_ref().is_some_and(|p| !p.is_empty())
                || e.threads
                    .tids()
                    .any(|t| k.thread(t).state == ThreadState::Runnable)
        })
    }

    /// A thread entered the ghOSt class (`THREAD_CREATED` / reclaim).
    pub fn hook_attach(&self, k: &mut dyn GhostBackend, tid: Tid) {
        let mut core = self.shared.lock().unwrap();
        let Some(eid) = core.pending_attach.remove(tid) else {
            panic!(
                "thread {tid} moved into the ghOSt class without an enclave; \
                 use GhostHandle::attach_thread"
            );
        };
        core.thread_enclave.insert(tid, eid);
        let Some(enclave) = core.enclave_mut(eid) else {
            return;
        };
        if enclave.destroyed {
            // The enclave died between the attach request and the class
            // move landing: send the thread straight back to CFS.
            core.thread_enclave.remove(tid);
            k.move_to_class(tid, CLASS_CFS);
            return;
        }
        // Reclaim path: a degraded thread returning from its transient
        // CFS excursion gets its preserved `ThreadInfo` back — `Tseq`
        // stays monotone, the status word survives — and posts no
        // `THREAD_CREATED`: the standby's status-word scan absorbs it.
        if let Some(rec) = enclave.recovery.as_mut() {
            if let Some(info) = rec.stashed.remove(tid) {
                let state = k.thread(tid).state;
                info.status.publish(|s, f| {
                    let mut f = f & !(SW_ONCPU | SW_RUNNABLE);
                    match state {
                        ThreadState::Runnable => f |= SW_RUNNABLE,
                        ThreadState::Running => f |= SW_ONCPU,
                        _ => {}
                    }
                    (s, f)
                });
                enclave.threads.insert(tid, info);
                let cpu = k.thread(tid).last_cpu.unwrap_or(CpuId(0));
                k.trace()
                    .emit(k.now(), cpu.0, || TraceEvent::ThreadReclaimed {
                        enclave: eid.0,
                        tid: tid.0,
                    });
                return;
            }
        }
        let status = StatusWord::new();
        status.set_flags(SW_ATTACHED);
        let default_q = enclave.default_queue;
        enclave.threads.insert(
            tid,
            ThreadInfo {
                queue: default_q,
                tseq: 0,
                pending_msgs: 0,
                status,
                picked: false,
            },
        );
        let cpu = k.thread(tid).last_cpu.unwrap_or(CpuId(0));
        core.post(k, eid, MsgType::ThreadCreated, Some(tid), cpu);
    }

    /// A thread left the ghOSt class (`THREAD_DEAD` to the policy).
    pub fn hook_detach(&self, k: &mut dyn GhostBackend, tid: Tid) {
        let mut core = self.shared.lock().unwrap();
        let Some(eid) = core.thread_enclave.remove(tid) else {
            return; // Already cleaned (death path).
        };
        let cpu = k.thread(tid).last_cpu.unwrap_or(CpuId(0));
        if let Some(enclave) = core.enclave_mut(eid) {
            enclave.committed.retain(|_, slot| slot.tid != tid);
            if let Some(pnt) = &mut enclave.pnt {
                pnt.revoke(tid);
            }
        }
        // Departure is indistinguishable from death for the policy.
        core.post(k, eid, MsgType::ThreadDead, Some(tid), cpu);
        if let Some(enclave) = core.enclave_mut(eid) {
            enclave.threads.remove(tid);
            enclave.hints.remove(tid);
        }
    }

    /// A thread's affinity mask changed (`THREAD_AFFINITY`).
    pub fn hook_affinity_changed(&self, k: &mut dyn GhostBackend, tid: Tid) {
        let mut core = self.shared.lock().unwrap();
        let Some(&eid) = core.thread_enclave.get(tid) else {
            return;
        };
        let cpu = k.thread(tid).last_cpu.unwrap_or(CpuId(0));
        // Invalidate a committed slot the new mask forbids.
        if let Some(enclave) = core.enclave_mut(eid) {
            let affinity = k.thread(tid).affinity;
            let stale: Vec<CpuId> = enclave
                .committed
                .iter()
                .filter(|&(c, slot)| slot.tid == tid && !affinity.contains(c))
                .map(|(c, _)| c)
                .collect();
            for c in stale {
                enclave.committed.remove(c);
                if let Some(info) = enclave.threads.get_mut(tid) {
                    info.picked = false;
                }
            }
        }
        core.post(k, eid, MsgType::ThreadAffinity, Some(tid), cpu);
    }
}

// ---------------------------------------------------------------------------
// The agent driver.
// ---------------------------------------------------------------------------

/// Runs agent activations (the `AgentDriver` plugged into the kernel).
pub struct GhostDriver {
    shared: Arc<Mutex<Core>>,
}

/// Agent-driver entry points, generic over the backend.
impl GhostRuntime {
    /// One activation: drain the queue feeding this agent, feed messages
    /// and a schedule() call to the policy, return the outcome.
    fn activate(
        core: &mut Core,
        k: &mut dyn GhostBackend,
        eid: EnclaveId,
        agent_tid: Tid,
        agent_cpu: CpuId,
        qids: &[QueueId],
        spinning: bool,
    ) -> AgentOutcome {
        let mut policy = match core.policies[eid.0 as usize].take() {
            Some(p) => p,
            None => return AgentOutcome::Block { busy: 0 },
        };
        let Some(enclave) = core.enclaves[eid.0 as usize].as_mut() else {
            core.policies[eid.0 as usize] = Some(policy);
            return AgentOutcome::Block { busy: 0 };
        };
        enclave.loop_armed = false;
        let aseq = enclave.agents.get(agent_cpu).map_or(0, |a| a.status.seq());
        k.trace()
            .emit(k.now(), agent_cpu.0, || TraceEvent::AgentActivationBegin {
                cpu: agent_cpu.0,
                agent_tid: agent_tid.0,
                aseq,
            });
        let mut msgs = std::mem::take(&mut core.drain_buf);
        msgs.clear();
        for &qid in qids {
            let start = msgs.len();
            enclave.drain_queue_into(qid, &mut msgs);
            if k.trace().is_enabled() {
                for m in &msgs[start..] {
                    k.trace()
                        .emit(k.now(), agent_cpu.0, || TraceEvent::MsgDequeued {
                            queue: qid.0,
                            ty: GhostStats::msg_idx(m.ty) as u8,
                            tid: m.tid.0,
                            seq: m.seq,
                        });
                }
            }
        }
        // §3.4 state reconstruction: an incoming agent (staged upgrade or
        // respawned standby) rebuilds its view by scanning the enclave's
        // status-word table before consuming any message. The scan runs
        // under the Aseq barrier raised at promotion time, so commits
        // prepared against the predecessor's view fail `ESTALE`; stale
        // in-flight messages are discarded downstream by seqnum.
        let scan: Option<Vec<ThreadSnapshot>> = if enclave.needs_reconstruct {
            enclave.needs_reconstruct = false;
            let mut snaps: Vec<ThreadSnapshot> = enclave
                .threads
                .iter()
                .map(|(t, info)| {
                    let th = &k.thread(t);
                    ThreadSnapshot {
                        tid: t,
                        seq: info.status.seq(),
                        runnable: info.status.has_flags(SW_RUNNABLE),
                        on_cpu: info.status.has_flags(SW_ONCPU),
                        last_cpu: th.last_cpu.unwrap_or(CpuId(0)),
                        cookie: th.cookie,
                    }
                })
                .collect();
            // Deterministic scan order (the slab iterates in handle order).
            snaps.sort_by_key(|s| s.tid.0);
            Some(snaps)
        } else {
            None
        };
        let smt_scale = k.sibling_busy(agent_cpu);
        let mut ctx = PolicyCtx {
            k,
            enclave,
            stats: &mut core.stats,
            agent_cpu,
            agent_tid,
            busy: 0,
            smt_scale,
            wakeup_request: None,
            scratch: &mut core.commit_scratch,
        };
        ctx.stats.activations += 1;
        if msgs.is_empty() {
            ctx.stats.empty_activations += 1;
        }
        if let Some(snaps) = &scan {
            let cost = ctx.k.costs().reconstruction_scan(snaps.len() as u64);
            ctx.charge(cost);
            policy.on_reconstruct(snaps, &mut ctx);
            ctx.stats.reconstructions += 1;
            let threads = snaps.len() as u32;
            let at = ctx.k.now() + ctx.busy;
            ctx.k
                .trace()
                .emit(at, agent_cpu.0, || TraceEvent::ReconstructDone {
                    enclave: eid.0,
                    threads,
                    agent_tid: agent_tid.0,
                });
        }
        let dequeue = ctx.k.costs().msg_dequeue;
        for m in &msgs {
            // Consuming a message posted by a remote-socket CPU drags the
            // queue slot and status-word cachelines across the
            // interconnect.
            let cost = if ctx.k.topo().same_socket(m.cpu, agent_cpu) {
                dequeue
            } else {
                ctx.k.costs().cross_socket_scaled(dequeue)
            };
            ctx.charge(cost);
            policy.on_msg(m, &mut ctx);
        }
        policy.schedule(&mut ctx);
        let busy = ctx.busy;
        let wakeup = ctx.wakeup_request;
        ctx.stats.agent_busy_ns += busy;
        core.policies[eid.0 as usize] = Some(policy);
        if scan.is_some() {
            // A reconstruction just ran; if no stashed thread or pending
            // respawn remains, the degraded-mode failover is complete.
            if let Some(e) = core.enclaves[eid.0 as usize].as_mut() {
                let finished = e
                    .recovery
                    .as_ref()
                    .is_some_and(|r| r.stashed.is_empty() && r.pending_cpus.is_empty());
                if finished {
                    e.recovery = None;
                    core.stats.recoveries += 1;
                }
            }
        }
        // Byzantine strike budget: commits rejected during this activation
        // charged strikes inline (`reject_txn`); if the budget is now
        // exhausted, quarantine the enclave. All teardown side effects go
        // through the kernel's deferred-op buffers, so destroying the
        // enclave — and killing the very agent being activated — is safe
        // from inside its own activation.
        let quarantine = core.enclaves[eid.0 as usize].as_ref().is_some_and(|e| {
            !e.destroyed
                && e.config
                    .abi_strike_budget
                    .is_some_and(|budget| e.abi_strikes >= budget)
        });
        if quarantine {
            core.quarantine(k, eid);
        }
        k.trace().emit(k.now() + busy, agent_cpu.0, || {
            TraceEvent::AgentActivationEnd {
                cpu: agent_cpu.0,
                agent_tid: agent_tid.0,
                msgs: msgs.len() as u32,
            }
        });
        core.drain_buf = msgs;
        if spinning {
            let next = wakeup.map(|at| at.max(k.now() + busy));
            AgentOutcome::Spin { busy, next }
        } else {
            AgentOutcome::Block { busy }
        }
    }

    /// Fires when a degraded enclave's respawn backoff expires: spawn a
    /// standby agent pthread on the dead agent's CPU, wire it in for the
    /// enclave's mode, flag a status-word reconstruction, and reclaim the
    /// stashed threads from their transient CFS excursion.
    fn handle_respawn(&self, eid: EnclaveId, k: &mut dyn GhostBackend) {
        let mut core = self.shared.lock().unwrap();
        let core = &mut *core;
        let Some(enclave) = core.enclaves[eid.0 as usize].as_mut() else {
            return;
        };
        if enclave.destroyed {
            return;
        }
        let Some(cpu) = enclave.recovery.as_mut().and_then(|r| {
            if r.pending_cpus.is_empty() {
                None
            } else {
                Some(r.pending_cpus.remove(0))
            }
        }) else {
            return;
        };
        enclave.respawn_attempts += 1;
        core.stats.respawns += 1;
        let tid = k.spawn_agent(&format!("ghost-standby-e{}-c{}", eid.0, cpu.0), cpu);
        core.agent_enclave.insert(tid, (eid, cpu));
        let status = StatusWord::new();
        status.set_flags(SW_ATTACHED);
        enclave.agents.insert(cpu, AgentSlot { tid, cpu, status });
        match enclave.config.mode {
            AgentMode::Centralized => {
                if enclave.global_agent.is_none() {
                    enclave.global_agent = Some(tid);
                }
            }
            AgentMode::PerCpu => {
                // The respawned agent serves its CPU's queue again — and
                // adopts the default queue if its owner died with it.
                if let Some(&qid) = enclave.cpu_queues.get(cpu) {
                    if let Some(Some(qs)) = enclave.queues.get_mut(qid.0 as usize) {
                        qs.wake = WakeMode::WakeAgent(tid);
                    }
                }
                let dq = enclave.default_queue;
                if let Some(Some(qs)) = enclave.queues.get_mut(dq.0 as usize) {
                    if let WakeMode::WakeAgent(owner) = qs.wake {
                        if !core.agent_enclave.contains(owner) {
                            qs.wake = WakeMode::WakeAgent(tid);
                        }
                    }
                }
            }
            AgentMode::PerCore => {
                enclave.core_active.insert(core_key_of(k, cpu), tid);
            }
        }
        // A fresh policy process, when a factory is registered; either way
        // the incoming agent reconstructs from status words and gets
        // watchdog grace for the backlog it inherits.
        if let Some(factory) = core.standby_factories[eid.0 as usize].as_ref() {
            core.policies[eid.0 as usize] = Some(factory());
        }
        enclave.needs_reconstruct = true;
        enclave.upgraded_at = Some(k.now());
        // Aseq barrier, as in an in-place upgrade.
        for slot in enclave.agents.values() {
            slot.status.bump_seq();
        }
        // Reclaim: re-attach every surviving stashed thread; `on_attach`
        // restores its preserved state. Sorted for deterministic replay.
        let mut tids: Vec<Tid> = enclave
            .recovery
            .as_ref()
            .map(|r| r.stashed.tids().collect())
            .unwrap_or_default();
        tids.sort_by_key(|t| t.0);
        for t in tids {
            if k.thread(t).state == ThreadState::Dead {
                if let Some(r) = enclave.recovery.as_mut() {
                    r.stashed.remove(t);
                }
                continue;
            }
            core.pending_attach.insert(t, eid);
            k.move_to_class(t, CLASS_GHOST);
        }
        k.wake(tid);
    }
}

impl GhostRuntime {
    /// One agent activation on `cpu` (the backend's `run_agent` hook).
    pub fn hook_run_agent(&self, k: &mut dyn GhostBackend, tid: Tid, cpu: CpuId) -> AgentOutcome {
        let mut core = self.shared.lock().unwrap();
        let core = &mut *core;
        let Some(&(eid, agent_cpu)) = core.agent_enclave.get(tid) else {
            return AgentOutcome::Block { busy: 0 };
        };
        debug_assert_eq!(cpu, agent_cpu, "agents are pinned");
        let Some(enclave) = core.enclaves[eid.0 as usize].as_ref() else {
            return AgentOutcome::Block { busy: 0 };
        };
        if enclave.destroyed {
            return AgentOutcome::Block { busy: 0 };
        }
        // A hang fault window: the agent occupies its CPU doing no
        // scheduling work until the window closes (a wedged agent, §3.4 —
        // the watchdog is the backstop if the hang outlasts its timeout).
        if let Some(until) = k.fault_agent_hang_until(cpu) {
            return AgentOutcome::Spin {
                busy: until.saturating_sub(k.now()),
                next: Some(until),
            };
        }
        let outcome = match enclave.config.mode {
            AgentMode::Centralized => {
                if enclave.global_agent != Some(tid) {
                    // Inactive agents immediately vacate their CPUs.
                    return AgentOutcome::Block { busy: 0 };
                }
                // Hot handoff: a CFS thread wants this CPU (§3.3).
                if k.cpu(cpu).cfs_queued > 0 {
                    let successor = enclave
                        .cpus
                        .iter()
                        .filter(|&c| c != cpu)
                        .find(|&c| k.cpu(c).is_idle())
                        .and_then(|c| enclave.agents.get(c).map(|a| a.tid));
                    if let Some(succ) = successor {
                        let enclave = core.enclaves[eid.0 as usize].as_mut().expect("alive");
                        enclave.global_agent = Some(succ);
                        core.stats.handoffs += 1;
                        k.wake(succ);
                        return AgentOutcome::Block { busy: 0 };
                    }
                    // No idle CPU to hand off to: keep spinning (the
                    // paper's agent also stays if it cannot find one).
                }
                let qid = enclave.default_queue;
                Self::activate(core, k, eid, tid, agent_cpu, &[qid], true)
            }
            AgentMode::PerCpu => {
                // An agent drains its own CPU's queue; the agent that the
                // default queue wakes also owns new-thread traffic on it
                // (and redistributes via ASSOCIATE_QUEUE).
                let default_q = enclave.default_queue;
                let drains_default = matches!(
                    enclave.queues.get(default_q.0 as usize),
                    Some(Some(qs)) if qs.wake == WakeMode::WakeAgent(tid)
                );
                let own = enclave.queue_for_cpu(agent_cpu);
                let qids: [QueueId; 2] = [default_q, own];
                let qids: &[QueueId] = if drains_default && own != default_q {
                    &qids
                } else if drains_default {
                    &qids[..1]
                } else {
                    &qids[1..]
                };
                Self::activate(core, k, eid, tid, agent_cpu, qids, false)
            }
            AgentMode::PerCore => {
                let key = core_key_of(k, agent_cpu);
                if enclave.core_active.get(key) != Some(&tid) {
                    return AgentOutcome::Block { busy: 0 };
                }
                // Drain the shared default queue (new-thread traffic)
                // plus this core's own queue.
                let default_q = enclave.default_queue;
                let own = enclave.queue_for_cpu(agent_cpu);
                let qids: [QueueId; 2] = [default_q, own];
                let qids: &[QueueId] = if own == default_q { &qids[..1] } else { &qids };
                Self::activate(core, k, eid, tid, agent_cpu, qids, false)
            }
        };
        // A slow-resume fault window stretches the activation's charged
        // time (a GC pause or fault storm in the agent process).
        let factor = k.fault_agent_slow_factor(cpu);
        if factor <= 1 {
            return outcome;
        }
        match outcome {
            AgentOutcome::Spin { busy, next } => AgentOutcome::Spin {
                busy: busy.saturating_mul(factor),
                next,
            },
            AgentOutcome::Block { busy } => AgentOutcome::Block {
                busy: busy.saturating_mul(factor),
            },
            AgentOutcome::Yield { busy } => AgentOutcome::Yield {
                busy: busy.saturating_mul(factor),
            },
        }
    }

    /// A driver timer fired (watchdog scan or respawn backoff).
    pub fn hook_timer(&self, k: &mut dyn GhostBackend, key: u64) {
        if key & RESPAWN_TIMER_FLAG != 0 {
            // A standby-respawn timer from degraded-mode failover.
            self.handle_respawn(EnclaveId((key & !RESPAWN_TIMER_FLAG) as u32), k);
            return;
        }
        // Watchdog scan for enclave `key` (§3.4): a runnable ghOSt thread
        // left unscheduled for longer than the timeout means the agent is
        // misbehaving. Starvation is measured from the last in-place
        // upgrade, if any: a freshly promoted policy inherits its
        // predecessor's backlog and must not be reaped for it.
        let eid = EnclaveId(key as u32);
        let (timeout, starved, has_staged) = {
            let core = self.shared.lock().unwrap();
            let Some(enclave) = core.enclaves[eid.0 as usize].as_ref() else {
                return;
            };
            if enclave.destroyed {
                return;
            }
            let Some(timeout) = enclave.config.watchdog_timeout else {
                return;
            };
            let grace_from = enclave.upgraded_at.unwrap_or(0);
            let starved = enclave.threads.tids().any(|t| {
                let th = &k.thread(t);
                th.state == ThreadState::Runnable
                    && k.now().saturating_sub(th.runnable_since.max(grace_from)) > timeout
            });
            (timeout, starved, core.staged[eid.0 as usize].is_some())
        };
        if starved && has_staged {
            // A replacement is already staged: promote it in place rather
            // than destroying the enclave the handoff is about to fix.
            self.upgrade_now(k, eid);
            k.arm_driver_timer(k.now() + timeout / 2, key);
        } else if starved {
            let mut core = self.shared.lock().unwrap();
            core.stats.watchdog_destroys += 1;
            k.trace()
                .emit(k.now(), 0, || TraceEvent::WatchdogFired { enclave: eid.0 });
            core.destroy_enclave(k, eid);
        } else {
            k.arm_driver_timer(k.now() + timeout / 2, key);
        }
    }

    /// An injected fault arrived (only `Upgrade` is interpreted).
    pub fn hook_fault(&self, k: &mut dyn GhostBackend, fault: &FaultKind) {
        // The only fault the runtime interprets itself: an in-place
        // upgrade promotes whatever policy is staged on each enclave
        // (no-op where nothing is staged).
        if !matches!(fault, FaultKind::Upgrade) {
            return;
        }
        let eids: Vec<EnclaveId> = {
            let core = self.shared.lock().unwrap();
            (0..core.enclaves.len() as u32)
                .map(EnclaveId)
                .filter(|eid| core.staged[eid.0 as usize].is_some())
                .collect()
        };
        for eid in eids {
            self.upgrade_now(k, eid);
        }
    }

    /// An agent pthread died (crash path, §3.4).
    pub fn hook_agent_killed(&self, k: &mut dyn GhostBackend, tid: Tid) {
        // Agent crash (§3.4). In order of preference: promote a staged
        // policy in place; run degraded-mode failover if a standby is
        // configured; fall back to CFS — for the whole enclave only when
        // the crash actually takes out its scheduling capacity, at
        // per-CPU granularity when peers survive.
        let (eid, cpu) = {
            let mut core = self.shared.lock().unwrap();
            let Some((eid, cpu)) = core.agent_enclave.remove(tid) else {
                return;
            };
            (eid, cpu)
        };
        let has_staged = self.shared.lock().unwrap().staged[eid.0 as usize].is_some();
        if has_staged {
            // In-place upgrade: the staged policy takes over; the dead
            // agent's pthread is respawned by reusing a surviving agent
            // as global (centralized) or leaving per-CPU peers in place.
            self.upgrade_now(k, eid);
            let mut core = self.shared.lock().unwrap();
            if let Some(enclave) = core.enclave_mut(eid) {
                enclave.agents.remove(cpu);
                if enclave.global_agent == Some(tid) {
                    // Deterministic successor: the lowest-CPU survivor,
                    // not whatever the agent map yields first.
                    let succ = enclave
                        .agents
                        .values()
                        .min_by_key(|a| a.cpu.0)
                        .map(|a| a.tid);
                    enclave.global_agent = succ;
                    if let Some(s) = succ {
                        k.wake(s);
                    }
                }
            }
        } else {
            let mut core = self.shared.lock().unwrap();
            let core = &mut *core;
            let Some(enclave) = core.enclaves[eid.0 as usize].as_mut() else {
                return;
            };
            if enclave.destroyed {
                return;
            }
            enclave.agents.remove(cpu);
            let was_global = enclave.global_agent == Some(tid);
            if was_global {
                enclave.global_agent = None;
                enclave.loop_armed = false;
            }
            let any_left = !enclave.agents.is_empty();
            let mode = enclave.config.mode;
            let standby = enclave.config.standby;
            if mode == AgentMode::Centralized && !was_global && any_left {
                // An inactive hot standby died; the global spinner is
                // intact and loses nothing.
                return;
            }
            if mode == AgentMode::PerCore && any_left {
                let key = core_key_of(k, cpu);
                if enclave.core_active.get(key) == Some(&tid) {
                    enclave.core_active.remove(key);
                }
                let sibling_alive = k
                    .topo()
                    .core_cpus(cpu)
                    .iter()
                    .any(|c| c != cpu && enclave.agents.contains(c));
                if sibling_alive {
                    // The SMT sibling's agent serves the whole core.
                    return;
                }
            }
            let whole = mode == AgentMode::Centralized || !any_left;
            let victims: Vec<Tid> = if whole {
                enclave.threads.sorted_tids()
            } else {
                // Threads homed to a queue the dead agent consumed: its
                // own CPU's queue, or any queue explicitly waking it (the
                // default queue, when the dead agent owned new-thread
                // traffic).
                let dead_qs: Vec<QueueId> = enclave
                    .queues
                    .iter()
                    .enumerate()
                    .filter_map(|(i, q)| match q {
                        Some(qs) if qs.wake == WakeMode::WakeAgent(tid) => Some(QueueId(i as u32)),
                        _ => None,
                    })
                    .collect();
                let cpu_q = enclave.cpu_queues.get(cpu).copied();
                let mut v: Vec<Tid> = enclave
                    .threads
                    .iter()
                    .filter(|(_, info)| Some(info.queue) == cpu_q || dead_qs.contains(&info.queue))
                    .map(|(t, _)| t)
                    .collect();
                v.sort_by_key(|t| t.0);
                v
            };
            if let Some(sc) = standby {
                core.begin_degraded_failover(k, eid, cpu, sc, victims);
            } else if whole {
                // Fault isolation: the whole enclave falls back to CFS.
                core.stats.fallbacks += 1;
                core.destroy_enclave(k, eid);
            } else {
                core.partial_fallback(k, eid, cpu, tid, victims);
            }
        }
    }
}

impl GhostDriver {
    fn rt(&self) -> GhostRuntime {
        GhostRuntime {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl AgentDriver for GhostDriver {
    fn run_agent(&mut self, tid: Tid, cpu: CpuId, k: &mut KernelState) -> AgentOutcome {
        self.rt().hook_run_agent(k, tid, cpu)
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        self.rt().hook_timer(k, key)
    }

    fn on_fault(&mut self, fault: &FaultKind, k: &mut KernelState) {
        self.rt().hook_fault(k, fault)
    }

    fn on_agent_killed(&mut self, tid: Tid, k: &mut KernelState) {
        self.rt().hook_agent_killed(k, tid)
    }
}
