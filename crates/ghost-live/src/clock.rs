//! The live time source: a monotonic wall clock.
//!
//! The DES backend's `now` is the virtual event clock; here it is
//! `Instant`-based nanoseconds since backend creation. Everything
//! downstream (trace timestamps, watchdog deadlines, histogram samples)
//! is expressed in backend time, so the two worlds stay unit-compatible:
//! nanoseconds from an epoch of zero (or a caller-chosen base, for
//! harnesses that splice live traces after simulated ones).

use ghost_sim::time::Nanos;
use std::time::Instant;

/// Monotonic nanoseconds since construction (plus an optional base).
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    start: Instant,
    base: Nanos,
}

impl MonotonicClock {
    /// Starts the clock; `now()` reads zero at this moment.
    pub fn new() -> Self {
        Self::with_base(0)
    }

    /// Starts the clock at `base`; `now()` reads `base` at this moment
    /// and advances monotonically from there.
    pub fn with_base(base: Nanos) -> Self {
        Self {
            start: Instant::now(),
            base,
        }
    }

    /// Current backend time.
    pub fn now(&self) -> Nanos {
        self.base
            .saturating_add(self.start.elapsed().as_nanos() as Nanos)
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn base_offsets_every_reading() {
        let base = 5_000_000_000;
        let c = MonotonicClock::with_base(base);
        let a = c.now();
        assert!(a >= base);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = c.now();
        assert!(b > a);
        assert!(b - base >= 1_000_000);
    }

    #[test]
    fn concurrent_readers_each_observe_monotonic_time() {
        // `MonotonicClock` is `Copy` and read lock-free from worker,
        // agent, and timer threads at once; every reader must see a
        // non-decreasing sequence, including across a copy boundary.
        let c = Arc::new(MonotonicClock::with_base(123));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let local = *c; // Copy, as workers do.
                    let mut last = 0;
                    for _ in 0..50_000 {
                        let t = local.now();
                        assert!(t >= last, "clock went backwards: {t} < {last}");
                        assert!(t >= 123);
                        last = t;
                    }
                    last
                })
            })
            .collect();
        let mut max_seen = 0;
        for h in handles {
            max_seen = max_seen.max(h.join().unwrap());
        }
        // And the original instance has kept pace with its copies: a
        // copy shares the same start instant, so no reading from any
        // copy can run ahead of a later reading from the original.
        assert!(c.now() >= max_seen);
    }
}
