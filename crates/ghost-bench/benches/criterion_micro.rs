//! Criterion microbenchmarks of the *real* data structures backing the
//! ghOSt ABI — host-time measurements complementing the virtual-time
//! Table 3 harness: the shared-memory message queue, status words, PNT
//! rings, CPU sets, the event queue, and the latency histogram.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ghost_core::msg::{Message, MsgType};
use ghost_core::pnt::PntRings;
use ghost_core::queue::MessageQueue;
use ghost_core::status::{StatusWord, SW_RUNNABLE};
use ghost_metrics::LogHistogram;
use ghost_sim::event::{Ev, EventQueue};
use ghost_sim::thread::Tid;
use ghost_sim::topology::{CpuId, Topology};
use std::hint::black_box;

fn msg(i: u32) -> Message {
    Message::thread(MsgType::ThreadWakeup, Tid(i), i as u64, CpuId(0), 0)
}

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("message_queue");
    g.bench_function("push_pop", |b| {
        let q = MessageQueue::new(1024);
        let mut i = 0u32;
        b.iter(|| {
            q.push(black_box(msg(i))).unwrap();
            black_box(q.pop());
            i = i.wrapping_add(1);
        });
    });
    g.bench_function("burst_64", |b| {
        let q = MessageQueue::new(1024);
        b.iter(|| {
            for i in 0..64 {
                q.push(msg(i)).unwrap();
            }
            while q.pop().is_some() {}
        });
    });
    g.finish();
}

fn bench_status_word(c: &mut Criterion) {
    let mut g = c.benchmark_group("status_word");
    let sw = StatusWord::new();
    g.bench_function("bump_seq", |b| b.iter(|| black_box(sw.bump_seq())));
    g.bench_function("read_seq", |b| b.iter(|| black_box(sw.seq())));
    g.bench_function("publish", |b| {
        b.iter(|| sw.publish(|s, f| (s + 1, f ^ SW_RUNNABLE)))
    });
    g.finish();
}

fn bench_pnt(c: &mut Criterion) {
    let mut g = c.benchmark_group("pnt_rings");
    g.bench_function("push_pop", |b| {
        let mut rings = PntRings::new(2, 256);
        let mut i = 0u32;
        b.iter(|| {
            rings.push((i % 2) as usize, Tid(i));
            black_box(rings.pop_for((i % 2) as usize));
            i = i.wrapping_add(1);
        });
    });
    g.finish();
}

fn bench_cpuset(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpuset");
    let topo = Topology::rome_256();
    let all = topo.all_cpus_set();
    let socket0 = topo.socket_cpus(0);
    g.bench_function("and_iter_first", |b| {
        b.iter(|| black_box(all.and(&socket0).first()))
    });
    g.bench_function("count_256", |b| b.iter(|| black_box(all.count())));
    g.bench_function("iter_sum", |b| {
        b.iter(|| black_box(socket0.iter().map(|c| c.0 as u64).sum::<u64>()))
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.push(i * 37 % 1000, Ev::Resched { cpu: CpuId(0) });
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.bench_function("record", |b| {
        let mut h = LogHistogram::new();
        let mut i = 1u64;
        b.iter(|| {
            h.record(black_box(i));
            i = i.wrapping_mul(48271) % 1_000_000 + 1;
        });
    });
    g.bench_function("percentile", |b| {
        let mut h = LogHistogram::new();
        for i in 1..100_000u64 {
            h.record(i * 31 % 1_000_000 + 1);
        }
        b.iter(|| black_box(h.percentile(99.0)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_status_word,
    bench_pnt,
    bench_cpuset,
    bench_event_queue,
    bench_histogram
);
criterion_main!(benches);
