//! Regression replays of shrunk byzantine repros that panicked the
//! kernel before the ABI boundary was hardened. Each repro is the
//! 1-minimal hostile op sequence found by the sweep + shrinker; they are
//! checked in so the panics can never come back silently.

use ghost_chaos::{byz_from_json, run_byzantine};
use ghost_core::abi::AbiError;

fn load(name: &str) -> String {
    let path = format!("{}/tests/repros/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Pre-hardening, a transaction targeting a forged CPU id (999 on an
/// 8-CPU machine) indexed out of bounds in the commit path's
/// `CpuSet::contains` and panicked the kernel. It must now settle as a
/// typed `InvalidCpu` rejection while the victim enclave keeps its SLO.
#[test]
fn forged_commit_cpu_is_a_typed_rejection() {
    let combo = byz_from_json(&load("byzantine-forged-cpu.json")).unwrap();
    let report = run_byzantine(&combo);
    assert!(
        report.failures.is_empty(),
        "oracles failed: {:?}",
        report.failures
    );
    assert!(report.hostile_rejected >= 1);
    assert!(report.stats.rejects(AbiError::InvalidCpu) >= 1);
}

/// Pre-hardening, creating an enclave whose CPU mask named an id beyond
/// `MAX_CPUS` indexed out of bounds in `CpuSet::add` and panicked
/// before validation ever ran. The unrepresentable id now simply never
/// joins the mask, so creation fails closed with a typed `EmptyCpuSet`
/// rejection. (The shrunk repro originally used id 300 against
/// `MAX_CPUS = 256`; when the mask grew to 1024 words for the zen
/// topology, the id moved to 1300 to stay unrepresentable.)
#[test]
fn oversized_enclave_mask_is_a_typed_rejection() {
    let combo = byz_from_json(&load("byzantine-overlapping-create.json")).unwrap();
    let report = run_byzantine(&combo);
    assert!(
        report.failures.is_empty(),
        "oracles failed: {:?}",
        report.failures
    );
    assert!(report.hostile_rejected >= 1);
    assert!(report.stats.rejects(AbiError::EmptyCpuSet) >= 1);
}
