//! Live smoke: unmodified ghOSt policies scheduling **real OS threads**.
//!
//! ```text
//! cargo run --release --example live_smoke
//! ```
//!
//! Two phases, same policies the simulator runs, zero policy changes:
//!
//! 1. **FIFO-centralized, closed loop** — a global agent schedules KV
//!    worker threads serving a fixed budget of requests kept in flight by
//!    reinjection.
//! 2. **Per-CPU, open loop** — one agent per lane, a load generator
//!    pushing batches at a fixed rate and kicking blocked workers.
//!
//! Each phase records the live trace and runs `ghost-trace`'s invariant
//! checker over it (with a wall-clock-sized grace window), then prints an
//! enqueue→completion latency histogram. Exit status is non-zero on any
//! violation or on a stalled phase.

use ghost::core::enclave::EnclaveConfig;
use ghost::live::{await_completion, open_loop_drive, KvService, LiveConfig, LiveKernel};
use ghost::metrics::LogHistogram;
use ghost::policies::{CentralizedFifo, PerCpuPolicy};
use ghost::sim::cpuset::CpuSet;
use ghost::sim::time::{MICROS, SECS};
use ghost::trace::check::{check_with_grace, LIVE_GRACE_NS};
use ghost::trace::TraceSink;
use std::time::Duration;

/// Per-request service-time floor (busy-spin), roughly a small KV hit.
const SERVICE_NS: u64 = 2 * MICROS;

fn print_histogram(label: &str, h: &LogHistogram) {
    println!(
        "  {label}: {} requests, latency mean {:.1} us, p50 {} us, p95 {} us, p99 {} us, max {} us",
        h.count(),
        h.mean() / 1e3,
        h.percentile(50.0) / 1_000,
        h.percentile(95.0) / 1_000,
        h.percentile(99.0) / 1_000,
        h.max() / 1_000,
    );
}

/// Runs the trace through the invariant checker; returns true when clean.
fn check_phase(label: &str, kernel: &LiveKernel) -> bool {
    let records = kernel.trace_snapshot();
    let violations = check_with_grace(&records, LIVE_GRACE_NS);
    if violations.is_empty() {
        println!(
            "  {label}: invariant checker clean over {} trace records",
            records.len()
        );
        true
    } else {
        println!("  {label}: {} INVARIANT VIOLATIONS:", violations.len());
        for v in violations.iter().take(10) {
            println!("    {v:?}");
        }
        false
    }
}

/// Phase 1: centralized FIFO, closed loop. Returns (ok, served).
fn fifo_closed_loop(cpus: usize, total: u64) -> (bool, u64) {
    println!("[1/2] FIFO-centralized, closed loop: {total} requests on {cpus} lanes");
    let kernel = LiveKernel::new(LiveConfig {
        cpus,
        trace: TraceSink::recording(cpus, 1 << 20),
        ..LiveConfig::default()
    });
    let enclave = kernel.launch_enclave(
        CpuSet::first_n(cpus),
        // A generous watchdog: it must ARM live (driver timers through the
        // backend), but must not fire on ordinary host-scheduler jitter.
        EnclaveConfig::centralized("live-fifo").with_watchdog(5 * SECS),
        Box::new(CentralizedFifo::new()),
    );

    let kv = KvService::new(16, SERVICE_NS);
    let workers: Vec<_> = (0..cpus)
        .map(|i| kernel.spawn_kv_worker(&format!("kv-worker-{i}"), Arc::clone(&kv)))
        .collect();
    for &tid in &workers {
        kernel.attach(&enclave, tid);
    }

    // Keep 2x workers of requests in flight so lanes stay busy.
    kv.start_closed_loop(total, 2 * workers.len() as u64, kernel.now());
    for &tid in &workers {
        kernel.wake(tid);
    }

    // Supervise: closed-loop reinjection pushes requests but does not wake
    // through the scheduler, so kick a blocked worker whenever work is
    // pending (this also exercises the live wake path continuously).
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while kv.completed_count() < total {
        if std::time::Instant::now() > deadline {
            break;
        }
        if kv.depth() > 0 {
            kernel.wake_one_blocked(&workers);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let served = kv.completed_count();
    let done = await_completion(&kv, total, Duration::from_secs(1));

    let stats = kernel.stats();
    println!(
        "  served {served}/{total} (dispatches {}, wakes {}, ipis {}, preempts {}, timers {})",
        stats.dispatches, stats.wakes, stats.ipis, stats.preempts, stats.timers_fired
    );
    let clean = check_phase("fifo", &kernel);
    kernel.shutdown();
    print_histogram("fifo", &kv.latency_histogram());
    (done && clean, served)
}

/// Phase 2: per-CPU agents, open loop. Returns (ok, served).
fn per_cpu_open_loop(cpus: usize, duration: Duration) -> (bool, u64) {
    println!("[2/2] per-CPU, open loop: {duration:?} of load on {cpus} lanes");
    let kernel = LiveKernel::new(LiveConfig {
        cpus,
        trace: TraceSink::recording(cpus, 1 << 20),
        ..LiveConfig::default()
    });
    let enclave = kernel.launch_enclave(
        CpuSet::first_n(cpus),
        EnclaveConfig::per_cpu("live-percpu").with_watchdog(5 * SECS),
        Box::new(PerCpuPolicy::new()),
    );

    let kv = KvService::new(16, SERVICE_NS);
    let workers: Vec<_> = (0..cpus)
        .map(|i| kernel.spawn_kv_worker(&format!("kv-open-{i}"), Arc::clone(&kv)))
        .collect();
    for &tid in &workers {
        kernel.attach(&enclave, tid);
    }

    // ~32k requests/second of offered load.
    let pushed = open_loop_drive(
        &kernel,
        &kv,
        &workers,
        64,
        Duration::from_millis(2),
        duration,
    );
    // Drain the tail.
    let drained = await_completion(&kv, pushed, Duration::from_secs(30));
    let served = kv.completed_count();

    let stats = kernel.stats();
    println!(
        "  served {served}/{pushed} (dispatches {}, wakes {}, ipis {}, preempts {}, timers {})",
        stats.dispatches, stats.wakes, stats.ipis, stats.preempts, stats.timers_fired
    );
    let clean = check_phase("per-cpu", &kernel);
    kernel.shutdown();
    print_histogram("per-cpu", &kv.latency_histogram());
    (drained && clean, served)
}

use std::sync::Arc;

fn main() {
    let cpus = 4;
    let (fifo_ok, fifo_served) = fifo_closed_loop(cpus, 100_000);
    let (percpu_ok, percpu_served) = per_cpu_open_loop(cpus, Duration::from_secs(2));

    let total = fifo_served + percpu_served;
    println!("total: {total} KV requests served by real OS threads under ghOSt policies");
    if !(fifo_ok && percpu_ok) {
        eprintln!("live_smoke FAILED");
        std::process::exit(1);
    }
    println!("live_smoke OK");
}
