//! The centralized FIFO / round-robin policy — the paper's Fig. 4 global
//! agent and the policy behind the Fig. 5 scalability experiment ("The
//! policy manages all threads in a FIFO runqueue, scheduling them on CPUs
//! as soon as CPUs become idle. The agent groups as many transactions as
//! possible per commit.").

use crate::tracker::ThreadTracker;
use ghost_core::msg::Message;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::slab::TidMap;
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_core::{CommitGovernor, StaleVerdict, ThreadSnapshot};
use ghost_sim::thread::Tid;
use std::collections::VecDeque;

/// Centralized FIFO over all managed threads.
#[derive(Default)]
pub struct CentralizedFifo {
    tracker: ThreadTracker,
    rq: VecDeque<Tid>,
    /// Dense membership set guarding `rq` against duplicates.
    queued: TidMap<()>,
    /// Reused group-commit buffer so `schedule()` never allocates in
    /// steady state.
    txn_buf: Vec<Transaction>,
    /// Bounded `ESTALE` retry: persistent-overflow threads are shed to
    /// CFS instead of livelocking the agent.
    pub governor: CommitGovernor,
    /// Per-decision compute cost charged to the agent (ns); models the
    /// policy's own bookkeeping.
    pub decision_cost: u64,
    /// Transactions committed (for harness assertions).
    pub commits: u64,
    /// Commit failures (requeued).
    pub failures: u64,
    /// Threads shed to CFS after exhausting their stale-retry budget.
    pub sheds: u64,
    /// Commits dropped because the target no longer exists in the enclave
    /// (`TxnStatus::UnknownTarget`): the kernel could not find the thread
    /// at all, so a retry can never succeed and the tid is not requeued.
    pub unknown_drops: u64,
}

impl CentralizedFifo {
    /// Creates the policy with a small default decision cost.
    pub fn new() -> Self {
        Self {
            decision_cost: 50,
            ..Self::default()
        }
    }

    fn enqueue(&mut self, tid: Tid) {
        if self.queued.insert(tid, ()).is_none() {
            self.rq.push_back(tid);
        }
    }

    fn dequeue(&mut self, tid: Tid) {
        if self.queued.remove(tid).is_some() {
            self.rq.retain(|&t| t != tid);
        }
    }

    /// Current runqueue length.
    pub fn backlog(&self) -> usize {
        self.rq.len()
    }

    /// Pops the next thread from the FIFO (for wrappers that drive the
    /// queue with different commit strategies, e.g. the no-group-commit
    /// ablation).
    pub fn pop_next(&mut self) -> Option<Tid> {
        let tid = self.rq.pop_front()?;
        self.queued.remove(tid);
        Some(tid)
    }

    /// Latest known sequence number of `tid`.
    pub fn seq_of(&self, tid: Tid) -> u64 {
        self.tracker.seq(tid)
    }

    /// Records a successful external commit of `tid`.
    pub fn note_scheduled(&mut self, tid: Tid) {
        self.tracker.mark_scheduled(tid);
    }

    /// Puts `tid` back on the queue after a failed external commit.
    pub fn requeue(&mut self, tid: Tid) {
        self.enqueue(tid);
    }
}

impl GhostPolicy for CentralizedFifo {
    fn name(&self) -> &str {
        "centralized-fifo"
    }

    fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
        let Some(view) = self.tracker.apply(msg) else {
            return;
        };
        if view.dead {
            self.dequeue(msg.tid);
        } else if view.runnable {
            self.enqueue(msg.tid);
        } else {
            self.dequeue(msg.tid);
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        if self.rq.is_empty() {
            return;
        }
        // Group as many transactions as possible into one commit (Fig. 4).
        let mut txns = std::mem::take(&mut self.txn_buf);
        txns.clear();
        for cpu in ctx.idle_cpus().iter() {
            let Some(tid) = self.rq.pop_front() else {
                break;
            };
            self.queued.remove(tid);
            ctx.charge(self.decision_cost);
            txns.push(Transaction::new(tid, cpu).with_thread_seq(self.tracker.seq(tid)));
        }
        if txns.is_empty() {
            self.txn_buf = txns;
            return;
        }
        ctx.commit(&mut txns);
        let mut next_retry: Option<u64> = None;
        for txn in &txns {
            if txn.status.committed() {
                self.commits += 1;
                self.tracker.mark_scheduled(txn.tid);
                self.governor.on_committed(txn.tid);
            } else if txn.status == TxnStatus::Stale {
                self.failures += 1;
                match self.governor.on_stale(txn.tid) {
                    StaleVerdict::Retry { backoff } => {
                        self.enqueue(txn.tid);
                        let at = ctx.now() + backoff;
                        next_retry = Some(next_retry.map_or(at, |cur| cur.min(at)));
                    }
                    StaleVerdict::Shed => {
                        // Persistent overflow: this thread's state churns
                        // faster than the agent observes it. CFS takes it
                        // (the THREAD_DEAD from the departure cleans up
                        // the tracker organically).
                        self.sheds += 1;
                        ctx.shed_to_cfs(txn.tid);
                    }
                }
            } else if txn.status == TxnStatus::UnknownTarget {
                // The kernel has no such thread in this enclave (dead,
                // foreign, or forged tid). Requeueing would retry forever;
                // drop it and clear any stale-retry streak. A genuinely
                // departing thread's THREAD_DEAD cleans up the tracker.
                self.failures += 1;
                self.unknown_drops += 1;
                self.governor.forget(txn.tid);
            } else {
                self.failures += 1;
                self.enqueue(txn.tid);
            }
        }
        if let Some(at) = next_retry {
            ctx.request_wakeup_at(at);
        }
        self.txn_buf = txns;
    }

    fn on_reconstruct(&mut self, snapshot: &[ThreadSnapshot], _ctx: &mut PolicyCtx<'_>) {
        self.tracker.resync(
            snapshot
                .iter()
                .map(|s| (s.tid, s.seq, s.runnable, s.last_cpu)),
        );
        self.rq.clear();
        self.queued.clear();
        self.governor.reset();
        for s in snapshot {
            if s.runnable && !s.on_cpu {
                self.enqueue(s.tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_core::msg::MsgType;
    use ghost_sim::topology::CpuId;

    #[test]
    fn runqueue_is_fifo_without_duplicates() {
        let mut p = CentralizedFifo::new();
        for i in [1u32, 2, 3, 2, 1] {
            let m = Message::thread(MsgType::ThreadWakeup, Tid(i), 1, CpuId(0), 0);
            let v = p.tracker.apply(&m).unwrap();
            if v.runnable {
                p.enqueue(Tid(i));
            }
        }
        assert_eq!(p.backlog(), 3);
        assert_eq!(p.rq.pop_front(), Some(Tid(1)));
        assert_eq!(p.rq.pop_front(), Some(Tid(2)));
        assert_eq!(p.rq.pop_front(), Some(Tid(3)));
    }

    #[test]
    fn blocked_threads_leave_the_queue() {
        let mut p = CentralizedFifo::new();
        p.enqueue(Tid(7));
        p.dequeue(Tid(7));
        assert_eq!(p.backlog(), 0);
    }
}
