//! Native threads as the kernel sees them.

use crate::app::AppId;
use crate::class::ClassId;
use crate::cpuset::CpuSet;
use crate::time::Nanos;
use crate::topology::CpuId;

/// A native thread identifier (the simulator's TID space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u32);

impl Tid {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Thread lifecycle states, mirroring the kernel's view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Waiting on a runqueue (or, for ghOSt threads, waiting for an agent
    /// to schedule it).
    Runnable,
    /// Currently on a CPU.
    Running,
    /// Sleeping; must be woken to run again.
    Blocked,
    /// Exited; will never run again.
    Dead,
}

/// What drives a thread's on-CPU behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadKind {
    /// A workload thread: runs work segments dispensed by its [`AppId`].
    Workload,
    /// A scheduling agent: on-CPU behaviour is delegated to the
    /// [`crate::agent::AgentDriver`].
    Agent,
}

/// A simulated native thread.
#[derive(Debug, Clone)]
pub struct SimThread {
    /// This thread's id.
    pub tid: Tid,
    /// Debug name.
    pub name: String,
    /// Lifecycle state.
    pub state: ThreadState,
    /// Scheduling class the thread currently belongs to.
    pub class: ClassId,
    /// Nice value (-20..=19), used by CFS weighting.
    pub nice: i8,
    /// CPUs this thread may run on (`sched_setaffinity`).
    pub affinity: CpuSet,
    /// Owning application, if any.
    pub app: Option<AppId>,
    /// Workload vs agent.
    pub kind: ThreadKind,
    /// CPU currently running this thread.
    pub cpu: Option<CpuId>,
    /// CPU the thread last ran on (for locality decisions).
    pub last_cpu: Option<CpuId>,
    /// Remaining work in the current segment, in lone-core nanoseconds.
    pub remaining: Nanos,
    /// Generation counter bumped whenever the thread goes on/off CPU;
    /// stale `SegmentEnd` events are ignored by comparing this.
    pub stint: u64,
    /// When the current on-CPU stint started.
    pub stint_start: Nanos,
    /// Execution rate of the current stint (1.0, or the SMT factor).
    pub rate: f64,
    /// When the thread last became runnable (for wait-time accounting).
    pub runnable_since: Nanos,
    /// Wall duration of the last completed on-CPU stint (read by classes
    /// in `put_prev` for runtime accounting such as CFS vruntime).
    pub last_stint_wall: Nanos,
    /// Total on-CPU time accumulated (scaled by rate; i.e., work done).
    pub total_work: Nanos,
    /// Total wall time spent on CPU.
    pub total_oncpu: Nanos,
    /// Total time spent waiting while runnable.
    pub total_wait: Nanos,
    /// Number of involuntary preemptions suffered.
    pub preemptions: u64,
    /// Number of cross-CPU migrations.
    pub migrations: u64,
    /// Opaque cookie for policies that need grouping (e.g., the VM id for
    /// core scheduling). 0 means "no cookie".
    pub cookie: u64,
    /// For agent threads: the virtual time until which the current
    /// activation's charged work occupies the agent. New activations are
    /// deferred past this point so agent work is properly serialized.
    pub agent_busy_until: Nanos,
    /// For agent threads: the scheduled time of the single live
    /// `AgentLoop` event, if any. Arming is deduplicated against this so
    /// a spinning agent never accumulates redundant wakeup events.
    pub agent_next_loop: Option<Nanos>,
}

impl SimThread {
    /// Creates a new thread in the [`ThreadState::Blocked`] state.
    pub fn new(tid: Tid, name: String, class: ClassId, affinity: CpuSet) -> Self {
        Self {
            tid,
            name,
            state: ThreadState::Blocked,
            class,
            nice: 0,
            affinity,
            app: None,
            kind: ThreadKind::Workload,
            cpu: None,
            last_cpu: None,
            remaining: 0,
            stint: 0,
            stint_start: 0,
            rate: 1.0,
            runnable_since: 0,
            last_stint_wall: 0,
            total_work: 0,
            total_oncpu: 0,
            total_wait: 0,
            preemptions: 0,
            migrations: 0,
            cookie: 0,
            agent_busy_until: 0,
            agent_next_loop: None,
        }
    }

    /// True if the thread can run on `cpu`.
    pub fn can_run_on(&self, cpu: CpuId) -> bool {
        self.affinity.contains(cpu)
    }

    /// True if the thread is runnable or running.
    pub fn is_active(&self) -> bool {
        matches!(self.state, ThreadState::Runnable | ThreadState::Running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::CLASS_CFS;

    #[test]
    fn new_thread_starts_blocked() {
        let t = SimThread::new(Tid(1), "t".into(), CLASS_CFS, CpuSet::first_n(4));
        assert_eq!(t.state, ThreadState::Blocked);
        assert!(!t.is_active());
        assert!(t.can_run_on(CpuId(3)));
        assert!(!t.can_run_on(CpuId(4)));
    }

    #[test]
    fn active_states() {
        let mut t = SimThread::new(Tid(1), "t".into(), CLASS_CFS, CpuSet::first_n(1));
        t.state = ThreadState::Runnable;
        assert!(t.is_active());
        t.state = ThreadState::Running;
        assert!(t.is_active());
        t.state = ThreadState::Dead;
        assert!(!t.is_active());
    }
}
