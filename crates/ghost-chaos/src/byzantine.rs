//! The Byzantine-agent adversary: a seeded generator of hostile ABI call
//! sequences, executed by a co-resident malicious enclave while a
//! well-behaved victim enclave runs the normal chaos workload.
//!
//! The paper's trust model (§2.2) is that agents "are not trusted for
//! system integrity": whatever an agent writes into the shared-memory
//! ABI — transactions, queue configuration, status-word addresses — the
//! kernel must validate, and the worst a misbehaving agent can achieve
//! is the destruction of its own enclave (threads fall back to CFS).
//! This module tests that claim adversarially with three oracles:
//!
//! * **never-panic** — the whole run executes under `catch_unwind`; any
//!   kernel-side panic reached through the ABI is a failure.
//! * **typed-rejection** — every hostile call the kernel rejects must
//!   carry a specific [`AbiError`] (commits via [`Transaction::error`],
//!   runtime calls via `Result`), and every rejection must be counted in
//!   [`GhostStats::abi_rejects`] — no silent drops.
//! * **victim-liveness** — the co-resident victim enclave, which also
//!   absorbs an agent crash and recovers through a hot standby, must
//!   keep meeting the PR 3 recovery SLO and all chaos liveness oracles
//!   regardless of what the byzantine neighbour does.
//!
//! A [`ByzCombo`] is `(victim policy, seed, ops)` and is fully
//! deterministic: the same combo always produces the same report, so
//! failures shrink (drop ops one at a time) and replay from
//! `repro.json` exactly like fault-plan combos.

use crate::oracle::{self, Failure};
use crate::run::{PolicyKind, WATCHDOG};
use ghost_core::enclave::{EnclaveConfig, QueueId, WakeMode};
use ghost_core::msg::Message;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::{EnclaveHandle, GhostRuntime, GhostStats};
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_core::{AbiError, StandbyConfig, ThreadSnapshot};
use ghost_lab::engine::{Experiment, ExperimentResult};
use ghost_policies::CentralizedFifo;
use ghost_sim::app::{App, Next};
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_trace::{TraceRecord, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Virtual run length of a byzantine combo.
pub const BYZ_HORIZON: Nanos = 120 * MILLIS;

/// One hostile ABI call. Policy-layer ops are issued by the byzantine
/// agent from inside its own activation (through [`PolicyCtx`], exactly
/// like a real agent would); runtime-layer ops are issued between kernel
/// steps through the enclave/runtime API (the syscall surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzOp {
    /// Commit the agent's own thread onto a forged CPU id (out of range
    /// or outside the enclave).
    CommitForgedCpu {
        /// Forged target CPU.
        cpu: u16,
    },
    /// Commit a tid the enclave does not manage (a victim thread, an
    /// agent, or a nonexistent id).
    CommitForeignTid {
        /// Forged target tid.
        tid: u32,
    },
    /// Commit with a deliberately stale agent sequence number.
    CommitStaleSeq,
    /// Atomic group commit where one member carries a forged CPU: the
    /// whole group must fail with typed errors, none may take effect.
    CommitAtomicMixed {
        /// Forged CPU of the poisoned group member.
        cpu: u16,
    },
    /// `RECALL` a forged CPU.
    RecallForged {
        /// Forged CPU.
        cpu: u16,
    },
    /// Destroy the enclave's default queue (protected).
    QueueDestroyDefault,
    /// `ASSOCIATE_QUEUE` with a forged tid and/or queue id.
    QueueAssociateForged {
        /// Forged tid.
        tid: u32,
        /// Queue id (may or may not exist).
        queue: u32,
    },
    /// `CONFIG_QUEUE_WAKEUP` pointing the default queue at a forged
    /// wake-target tid.
    QueueWakeupForged {
        /// Forged wake target.
        tid: u32,
    },
    /// Push a foreign/nonexistent tid into the pick_next_task ring.
    PntPushForeign {
        /// Forged tid.
        tid: u32,
    },
    /// Ping the core agent of a forged CPU.
    PingForged {
        /// Forged CPU.
        cpu: u16,
    },
    /// Attach a forged tid (dead, foreign, agent, or nonexistent) to the
    /// byzantine enclave.
    AttachForged {
        /// Forged tid.
        tid: u32,
    },
    /// Write garbage into a thread's status word (the word is
    /// kernel-owned; every write must reject).
    StatusWrite {
        /// Target tid.
        tid: u32,
        /// Garbage payload.
        value: u64,
    },
    /// Read the status word of a thread the enclave does not manage.
    StatusReadForged {
        /// Forged tid.
        tid: u32,
    },
    /// Set a scheduling hint on a forged tid.
    HintForged {
        /// Forged tid.
        tid: u32,
    },
    /// `UPGRADE` with nothing staged.
    UpgradeWithoutStage,
    /// Destroy the enclave, then destroy it again (the second call must
    /// reject with [`AbiError::EnclaveDestroyed`], never panic or
    /// silently succeed).
    DestroyTwice,
    /// Create a second enclave over a CPU that is already owned (or out
    /// of range).
    CreateOverlapping {
        /// Contested CPU.
        cpu: u16,
    },
}

impl ByzOp {
    /// True if the op executes inside the byzantine agent's activation
    /// (via [`PolicyCtx`]); false if the harness issues it through the
    /// runtime API between kernel steps.
    pub fn is_policy_op(&self) -> bool {
        !matches!(
            self,
            ByzOp::AttachForged { .. }
                | ByzOp::StatusWrite { .. }
                | ByzOp::StatusReadForged { .. }
                | ByzOp::HintForged { .. }
                | ByzOp::UpgradeWithoutStage
                | ByzOp::DestroyTwice
                | ByzOp::CreateOverlapping { .. }
        )
    }

    /// Stable one-line rendering for spec strings and reports. Field
    /// names match the `repro.json` vocabulary.
    pub fn spec(&self) -> String {
        match *self {
            ByzOp::CommitForgedCpu { cpu } => format!("commit-forged-cpu cpu={cpu}"),
            ByzOp::CommitForeignTid { tid } => format!("commit-foreign-tid tid={tid}"),
            ByzOp::CommitStaleSeq => "commit-stale-seq".into(),
            ByzOp::CommitAtomicMixed { cpu } => format!("commit-atomic-mixed cpu={cpu}"),
            ByzOp::RecallForged { cpu } => format!("recall-forged cpu={cpu}"),
            ByzOp::QueueDestroyDefault => "queue-destroy-default".into(),
            ByzOp::QueueAssociateForged { tid, queue } => {
                format!("queue-associate-forged tid={tid} queue={queue}")
            }
            ByzOp::QueueWakeupForged { tid } => format!("queue-wakeup-forged tid={tid}"),
            ByzOp::PntPushForeign { tid } => format!("pnt-push-foreign tid={tid}"),
            ByzOp::PingForged { cpu } => format!("ping-forged cpu={cpu}"),
            ByzOp::AttachForged { tid } => format!("attach-forged tid={tid}"),
            ByzOp::StatusWrite { tid, value } => format!("status-write tid={tid} value={value}"),
            ByzOp::StatusReadForged { tid } => format!("status-read-forged tid={tid}"),
            ByzOp::HintForged { tid } => format!("hint-forged tid={tid}"),
            ByzOp::UpgradeWithoutStage => "upgrade-without-stage".into(),
            ByzOp::DestroyTwice => "destroy-twice".into(),
            ByzOp::CreateOverlapping { cpu } => format!("create-overlapping cpu={cpu}"),
        }
    }
}

/// One point of the byzantine sweep: everything needed to reproduce the
/// hostile run exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByzCombo {
    /// The co-resident well-behaved policy whose liveness is judged.
    pub victim: PolicyKind,
    /// Seed for the kernel RNG and the victim workload shape.
    pub seed: u64,
    /// The hostile call sequence, in issue order per layer.
    pub ops: Vec<ByzOp>,
}

impl ByzCombo {
    /// Victim policies the byzantine sweep rotates through. Core
    /// scheduling is excluded: it requires whole physical cores across
    /// the entire machine and cannot co-reside with a second enclave.
    pub const VICTIMS: [PolicyKind; 4] = [
        PolicyKind::CentralizedFifo,
        PolicyKind::PerCpu,
        PolicyKind::Shinjuku,
        PolicyKind::Snap,
    ];

    /// The sweep's combo for `(victim, seed)`: hostile ops derived from
    /// the seed.
    pub fn generated(victim: PolicyKind, seed: u64) -> Self {
        Self {
            victim,
            seed,
            ops: generate_byz_ops(seed),
        }
    }

    /// Byzantine strike budget of the hostile enclave: even seeds arm
    /// quarantine (four strikes), odd seeds leave it unarmed so both
    /// configurations stay in every sweep. Derived from the seed alone —
    /// never stored — so a replayed `repro.json` rebuilds it.
    pub fn strike_budget(&self) -> Option<u32> {
        self.seed.is_multiple_of(2).then_some(4)
    }

    /// Canonical spec string: every field that affects the outcome, one
    /// per line. The sweep cache key.
    pub fn spec_string(&self) -> String {
        let mut s = String::from("ghost-chaos byzantine v1\n");
        s.push_str(&format!("victim {}\n", self.victim.name()));
        s.push_str(&format!("seed {}\n", self.seed));
        match self.strike_budget() {
            Some(b) => s.push_str(&format!("strike-budget {b}\n")),
            None => s.push_str("strike-budget none\n"),
        }
        for op in &self.ops {
            s.push_str(&format!("op {}\n", op.spec()));
        }
        s
    }
}

/// Generates a 3–8 op hostile sequence from `seed`. Parameters are drawn
/// from adversarial pools: CPU ids that are out of range for the 8-CPU
/// machine, inside the victim enclave, or merely outside the byzantine
/// enclave; tids that are agents, victim threads, or nonexistent.
pub fn generate_byz_ops(seed: u64) -> Vec<ByzOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB12A_0D5E);
    // CPU 0 is CFS-only, 1–3 are the victim's, 4–5 the byzantine
    // enclave's; everything from 8 up does not exist on the machine
    // (and u16::MAX is beyond MAX_CPUS, so it is unrepresentable in
    // any mask).
    const CPUS: [u16; 7] = [0, 1, 8, 250, 300, 999, u16::MAX];
    const TIDS: [u32; 6] = [0, 1, 5, 40, 9_999, u32::MAX];
    const QUEUES: [u32; 3] = [0, 9, 250];
    const VALUES: [u64; 3] = [0, 0xDEAD_BEEF, u64::MAX];
    let cpu = |rng: &mut StdRng| CPUS[rng.gen_range(0..CPUS.len())];
    let tid = |rng: &mut StdRng| TIDS[rng.gen_range(0..TIDS.len())];
    let n = rng.gen_range(3usize..=8);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let op = match rng.gen_range(0u32..17) {
            0 => ByzOp::CommitForgedCpu { cpu: cpu(&mut rng) },
            1 => ByzOp::CommitForeignTid { tid: tid(&mut rng) },
            2 => ByzOp::CommitStaleSeq,
            3 => ByzOp::CommitAtomicMixed { cpu: cpu(&mut rng) },
            4 => ByzOp::RecallForged { cpu: cpu(&mut rng) },
            5 => ByzOp::QueueDestroyDefault,
            6 => ByzOp::QueueAssociateForged {
                tid: tid(&mut rng),
                queue: QUEUES[rng.gen_range(0..QUEUES.len())],
            },
            7 => ByzOp::QueueWakeupForged { tid: tid(&mut rng) },
            8 => ByzOp::PntPushForeign { tid: tid(&mut rng) },
            9 => ByzOp::PingForged { cpu: cpu(&mut rng) },
            10 => ByzOp::AttachForged { tid: tid(&mut rng) },
            11 => ByzOp::StatusWrite {
                tid: tid(&mut rng),
                value: VALUES[rng.gen_range(0..VALUES.len())],
            },
            12 => ByzOp::StatusReadForged { tid: tid(&mut rng) },
            13 => ByzOp::HintForged { tid: tid(&mut rng) },
            14 => ByzOp::UpgradeWithoutStage,
            15 => ByzOp::DestroyTwice,
            // Contested CPUs only: victim-owned or out of range, so the
            // call always rejects (a free CPU would legitimately
            // succeed and leave a stray agent-less enclave behind).
            _ => ByzOp::CreateOverlapping {
                cpu: [1u16, 2, 3, 300, 999][rng.gen_range(0..5usize)],
            },
        };
        ops.push(op);
    }
    ops
}

/// Everything a finished byzantine run exposes to the CLI and tests.
pub struct ByzReport {
    /// Oracle verdicts; empty means the hostile sequence was absorbed.
    pub failures: Vec<Failure>,
    /// Victim workload segments completed.
    pub victim_completions: u64,
    /// Hostile calls the kernel rejected.
    pub hostile_rejected: u64,
    /// True if the byzantine enclave was quarantined.
    pub quarantined: bool,
    /// Runtime counters at end of run.
    pub stats: GhostStats,
    /// The recorded trace (for Chrome export of failing runs).
    pub records: Vec<TraceRecord>,
}

/// Shared outcome ledger between the byzantine policy (in-activation
/// ops) and the harness (runtime-layer ops).
#[derive(Default)]
struct Ledger {
    /// Hostile calls the kernel rejected; each must show up in
    /// [`GhostStats::abi_rejects`].
    rejected: u64,
    /// Typed-rejection contract violations.
    violations: Vec<String>,
}

impl Ledger {
    /// Checks the commit contract on every settled transaction: a
    /// failing status must carry a typed error that maps back to it
    /// (casualties of an atomic unwind are `Aborted` and carry the
    /// group-failing error instead).
    fn check_txns(&mut self, op: &ByzOp, txns: &[Transaction]) {
        for t in txns {
            if t.status.committed() || t.status == TxnStatus::Pending {
                continue;
            }
            // An `Aborted` casualty of an atomic unwind is collateral of
            // the group's one rejection, not an independently rejected
            // call — it still must carry the group error, but only the
            // group-failing txn counts against `abi_rejects`.
            if t.status != TxnStatus::Aborted {
                self.rejected += 1;
            }
            match t.error {
                None => self.violations.push(format!(
                    "{}: commit rejected with status {:?} but no AbiError",
                    op.spec(),
                    t.status
                )),
                Some(e) if e.txn_status() != t.status && t.status != TxnStatus::Aborted => {
                    self.violations.push(format!(
                        "{}: error {e} maps to {:?} but status is {:?}",
                        op.spec(),
                        e.txn_status(),
                        t.status
                    ))
                }
                Some(_) => {}
            }
        }
    }
}

/// The hostile agent: drains one queued [`ByzOp`] per activation through
/// the real agent ABI, then behaves like a normal centralized FIFO for
/// its own threads (so its enclave produces a well-formed trace and the
/// only anomalies are the deliberate ones).
struct ByzantinePolicy {
    inner: CentralizedFifo,
    ops: Arc<Mutex<VecDeque<ByzOp>>>,
    ledger: Arc<Mutex<Ledger>>,
}

impl ByzantinePolicy {
    fn new(ops: Arc<Mutex<VecDeque<ByzOp>>>, ledger: Arc<Mutex<Ledger>>) -> Self {
        Self {
            inner: CentralizedFifo::new(),
            ops,
            ledger,
        }
    }

    fn run_op(&mut self, op: ByzOp, ctx: &mut PolicyCtx<'_>) {
        let own_cpu = ctx.enclave_cpus().first().unwrap_or(CpuId(0));
        let own_tid = ctx.managed_threads().first().copied().unwrap_or(Tid(0));
        let mut led = self.ledger.lock().unwrap();
        match op {
            ByzOp::CommitForgedCpu { cpu } => {
                let mut t = Transaction::new(own_tid, CpuId(cpu));
                ctx.commit_one(&mut t);
                led.check_txns(&op, &[t]);
            }
            ByzOp::CommitForeignTid { tid } => {
                let mut t = Transaction::new(Tid(tid), own_cpu);
                ctx.commit_one(&mut t);
                led.check_txns(&op, &[t]);
            }
            ByzOp::CommitStaleSeq => {
                let mut t = Transaction::new(own_tid, own_cpu).with_agent_seq(0);
                ctx.commit_one(&mut t);
                led.check_txns(&op, &[t]);
            }
            ByzOp::CommitAtomicMixed { cpu } => {
                let mut txns = [
                    Transaction::new(own_tid, own_cpu),
                    Transaction::new(own_tid, CpuId(cpu)),
                ];
                ctx.commit_atomic(&mut txns);
                if txns.iter().any(|t| t.status.committed()) {
                    led.violations.push(format!(
                        "{}: poisoned atomic group partially committed",
                        op.spec()
                    ));
                }
                led.check_txns(&op, &txns);
            }
            ByzOp::RecallForged { cpu } => match ctx.try_recall(CpuId(cpu)) {
                Ok(_) => {}
                Err(_) => led.rejected += 1,
            },
            ByzOp::QueueDestroyDefault => {
                let q = ctx.queue_of_cpu(own_cpu);
                match ctx.try_destroy_queue(q) {
                    Ok(()) => led
                        .violations
                        .push(format!("{}: default queue destroyed", op.spec())),
                    Err(_) => led.rejected += 1,
                }
            }
            ByzOp::QueueAssociateForged { tid, queue } => {
                match ctx.try_associate_queue(Tid(tid), QueueId(queue)) {
                    Ok(_) => {}
                    Err(_) => led.rejected += 1,
                }
            }
            ByzOp::QueueWakeupForged { tid } => {
                let q = ctx.queue_of_cpu(own_cpu);
                match ctx.try_config_queue_wakeup(q, WakeMode::WakeAgent(Tid(tid))) {
                    // A forged wake target would be dereferenced by the
                    // kernel on every later message: acceptance is only
                    // legal if the tid really is one of our agents.
                    Ok(()) if tid != ctx.agent_tid().0 => led
                        .violations
                        .push(format!("{}: forged wake target accepted", op.spec())),
                    Ok(()) => {}
                    Err(_) => led.rejected += 1,
                }
            }
            ByzOp::PntPushForeign { tid } => {
                // Pushing a thread we DO manage may benignly return false
                // (PNT disabled, ring full) with no reject; only a tid we
                // do not manage is a typed rejection.
                let foreign = !ctx.managed_threads().contains(&Tid(tid));
                if !ctx.pnt_push(0, Tid(tid)) && foreign {
                    led.rejected += 1;
                }
            }
            ByzOp::PingForged { cpu } => {
                // Pinging a machine-valid CPU that simply has no core
                // agent in this enclave is a benign miss (false, no
                // reject); only a forged id is a typed rejection.
                let forged = (cpu as usize) >= ctx.topo().num_cpus();
                if !ctx.ping_core_agent(CpuId(cpu)) && forged {
                    led.rejected += 1;
                }
            }
            // Runtime-layer ops never reach the policy.
            _ => {}
        }
    }
}

impl GhostPolicy for ByzantinePolicy {
    fn name(&self) -> &str {
        "byzantine"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        self.inner.on_msg(msg, ctx);
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        let op = self.ops.lock().unwrap().pop_front();
        if let Some(op) = op {
            self.run_op(op, ctx);
        }
        self.inner.schedule(ctx);
        if !self.ops.lock().unwrap().is_empty() {
            ctx.request_wakeup_at(ctx.now() + 500 * MICROS);
        }
    }

    fn on_reconstruct(&mut self, snapshot: &[ThreadSnapshot], ctx: &mut PolicyCtx<'_>) {
        self.inner.on_reconstruct(snapshot, ctx);
    }
}

/// Issues one runtime-layer op through the enclave/runtime API.
fn run_runtime_op(
    op: &ByzOp,
    k: &mut KernelState,
    runtime: &GhostRuntime,
    byz: &EnclaveHandle,
    led: &mut Ledger,
) {
    match *op {
        ByzOp::AttachForged { tid } => match byz.try_attach_thread(k, Tid(tid)) {
            Ok(_) => {}
            Err(_) => led.rejected += 1,
        },
        ByzOp::StatusWrite { tid, value } => match byz.try_write_status(k, Tid(tid), value) {
            Ok(()) => led.violations.push(format!(
                "{}: kernel-owned status word accepted a write",
                op.spec()
            )),
            Err(_) => led.rejected += 1,
        },
        ByzOp::StatusReadForged { tid } => match byz.try_thread_status(Tid(tid)) {
            Ok(_) => {}
            Err(_) => led.rejected += 1,
        },
        ByzOp::HintForged { tid } => match runtime.try_set_hint(Tid(tid), u64::MAX) {
            Ok(_) => {}
            Err(_) => led.rejected += 1,
        },
        ByzOp::UpgradeWithoutStage => match byz.try_upgrade_now(k) {
            Ok(()) => led.violations.push(format!(
                "{}: upgrade succeeded with nothing staged",
                op.spec()
            )),
            Err(_) => led.rejected += 1,
        },
        ByzOp::DestroyTwice => {
            if byz.try_destroy(k).is_err() {
                led.rejected += 1; // Already gone (e.g. quarantined): still typed.
            }
            match byz.try_destroy(k) {
                Ok(()) => led
                    .violations
                    .push(format!("{}: double destroy accepted", op.spec())),
                Err(AbiError::EnclaveDestroyed) => led.rejected += 1,
                Err(e) => led.violations.push(format!(
                    "{}: double destroy rejected with {e}, want enclave-destroyed",
                    op.spec()
                )),
            }
        }
        ByzOp::CreateOverlapping { cpu } => {
            match runtime.try_create_enclave(
                CpuSet::from_iter([CpuId(cpu)]),
                EnclaveConfig::centralized("byz-clone"),
                Box::new(CentralizedFifo::new()),
            ) {
                Ok(_) => led
                    .violations
                    .push(format!("{}: contested CPU {cpu} granted", op.spec())),
                Err(_) => led.rejected += 1,
            }
        }
        _ => {}
    }
}

/// The victim/byzantine pulse workload: every thread repeatedly runs a
/// seed-derived segment then blocks until its periodic timer re-arms it.
/// Completions are tracked per tid so victim progress can be judged
/// separately from byzantine-enclave noise.
struct SplitPulseApp {
    conf: HashMap<Tid, (Nanos, Nanos)>, // (segment, period)
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
}

impl App for SplitPulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "byz-pulse"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        let Some(&(seg, period)) = self.conf.get(&tid) else {
            return;
        };
        if k.thread(tid).state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = seg;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("pulse threads have an app");
        k.arm_app_timer(k.now + period, app, key);
    }

    fn on_segment_end(&mut self, tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.lock().unwrap().entry(tid).or_insert(0) += 1;
        Next::Block
    }
}

fn run_byzantine_inner(combo: &ByzCombo) -> ByzReport {
    let sink = TraceSink::recording(1, 1 << 18);
    // The victim also absorbs an agent crash mid-run: its hot standby
    // must recover within the SLO *while* the byzantine neighbour is
    // hammering the ABI.
    let plan = FaultPlan::from_events([(30 * MILLIS, FaultKind::AgentCrash { cpu: CpuId(1) })]);
    let config = KernelConfig {
        seed: combo.seed,
        trace: sink.clone(),
        faults: plan,
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(Topology::test_small(4), config);
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());

    // Victim enclave on CPUs 1–3, watchdog + hot standby armed.
    let victim_kind = combo.victim;
    let victim_cfg = victim_kind
        .enclave_config("victim")
        .with_watchdog(WATCHDOG)
        .with_standby(StandbyConfig::default());
    let victim = runtime.launch_enclave(
        &mut kernel,
        [1u16, 2, 3].into_iter().map(CpuId).collect(),
        victim_cfg,
        victim_kind.build(),
    );
    victim.set_standby_policy(move || victim_kind.build());

    // Byzantine enclave on CPUs 4–5.
    let ledger = Arc::new(Mutex::new(Ledger::default()));
    let policy_ops: VecDeque<ByzOp> = combo
        .ops
        .iter()
        .filter(|o| o.is_policy_op())
        .copied()
        .collect();
    let ops_queue = Arc::new(Mutex::new(policy_ops));
    let mut byz_cfg = EnclaveConfig::centralized("byzantine").with_watchdog(WATCHDOG);
    if let Some(budget) = combo.strike_budget() {
        byz_cfg = byz_cfg.with_abi_strikes(budget);
    }
    let byz = runtime.launch_enclave(
        &mut kernel,
        [4u16, 5].into_iter().map(CpuId).collect(),
        byz_cfg,
        Box::new(ByzantinePolicy::new(
            Arc::clone(&ops_queue),
            Arc::clone(&ledger),
        )),
    );

    // Workload: four victim threads, two byzantine-enclave threads.
    let completions = Arc::new(Mutex::new(HashMap::new()));
    let app = kernel.state.next_app_id();
    let mut conf = HashMap::new();
    let mut rng = StdRng::seed_from_u64(combo.seed ^ 0x0C0F_FEE0);
    let mut spawn = |kernel: &mut Kernel, name: String, cookie: u64| {
        let tid = kernel.spawn(
            ThreadSpec::workload(&name, &kernel.state.topo)
                .app(app)
                .cookie(cookie),
        );
        let seg = rng.gen_range(20 * MICROS..200 * MICROS);
        let period = rng.gen_range(500 * MICROS..2 * MILLIS);
        conf.insert(tid, (seg, period));
        tid
    };
    let victim_tids: Vec<Tid> = (0..4)
        .map(|i| spawn(&mut kernel, format!("v{i}"), victim_kind.cookie_for(i)))
        .collect();
    let byz_tids: Vec<Tid> = (0..2)
        .map(|i| spawn(&mut kernel, format!("b{i}"), 0))
        .collect();
    kernel.add_app(Box::new(SplitPulseApp {
        conf,
        completions: Arc::clone(&completions),
    }));
    for &tid in &victim_tids {
        victim.attach_thread(&mut kernel.state, tid);
    }
    for &tid in &byz_tids {
        byz.attach_thread(&mut kernel.state, tid);
    }
    for (i, &tid) in victim_tids.iter().chain(byz_tids.iter()).enumerate() {
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 10_000, app, tid.0 as u64);
    }

    // Run, issuing runtime-layer ops at deterministic breakpoints.
    let runtime_ops: Vec<ByzOp> = combo
        .ops
        .iter()
        .filter(|o| !o.is_policy_op())
        .copied()
        .collect();
    for (i, op) in runtime_ops.iter().enumerate() {
        kernel.run_until((8 + 9 * i as u64) * MILLIS);
        let mut led = ledger.lock().unwrap();
        run_runtime_op(op, &mut kernel.state, &runtime, &byz, &mut led);
    }
    kernel.run_until(BYZ_HORIZON);

    // Judge.
    let records = sink.snapshot();
    let stats = runtime.stats();
    let led = ledger.lock().unwrap();
    let mut failures: Vec<Failure> = led
        .violations
        .iter()
        .map(|v| Failure {
            oracle: "typed-rejection",
            detail: v.clone(),
        })
        .collect();
    if stats.abi_rejects_total() < led.rejected {
        failures.push(Failure {
            oracle: "typed-rejection",
            detail: format!(
                "silent drop: {} hostile calls rejected but only {} typed rejections counted",
                led.rejected,
                stats.abi_rejects_total()
            ),
        });
    }
    let victim_completions: u64 = {
        let c = completions.lock().unwrap();
        victim_tids
            .iter()
            .map(|t| c.get(t).copied().unwrap_or(0))
            .sum()
    };
    failures.extend(oracle::evaluate(
        &records,
        sink.dropped(),
        &kernel.state,
        &runtime,
        victim.id(),
        &victim_tids,
        victim_completions,
        Some(StandbyConfig::default().recovery_slo),
    ));
    ByzReport {
        failures,
        victim_completions,
        hostile_rejected: led.rejected,
        quarantined: stats.quarantines > 0,
        stats,
        records,
    }
}

/// Runs `combo` to its horizon under the never-panic oracle and judges
/// it with the typed-rejection and victim-liveness oracles. Fully
/// deterministic: the same combo always returns the same report.
pub fn run_byzantine(combo: &ByzCombo) -> ByzReport {
    match catch_unwind(AssertUnwindSafe(|| run_byzantine_inner(combo))) {
        Ok(report) => report,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("opaque panic payload");
            ByzReport {
                failures: vec![Failure {
                    oracle: "never-panic",
                    detail: format!("hostile ABI sequence panicked the kernel: {msg}"),
                }],
                victim_completions: 0,
                hostile_rejected: 0,
                quarantined: false,
                stats: GhostStats::default(),
                records: Vec::new(),
            }
        }
    }
}

/// Shrinks a failing byzantine combo to a 1-minimal op sequence, exactly
/// like [`crate::shrink::shrink`] does for fault plans. A combo that
/// does not fail is returned unchanged.
pub fn shrink_byzantine(combo: &ByzCombo) -> ByzCombo {
    let mut best = combo.clone();
    if run_byzantine(&best).failures.is_empty() {
        return best;
    }
    loop {
        let mut improved = false;
        for i in 0..best.ops.len() {
            let mut cand = best.clone();
            cand.ops.remove(i);
            if !run_byzantine(&cand).failures.is_empty() {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// A byzantine combo as a `ghost-lab` experiment, so the hostile sweep
/// runs on the same parallel engine (and cache) as the fault sweep.
pub struct ByzExperiment(pub ByzCombo);

impl Experiment for ByzExperiment {
    fn label(&self) -> String {
        format!("byz/{}/seed={}", self.0.victim.name(), self.0.seed)
    }

    fn spec(&self) -> String {
        self.0.spec_string()
    }

    fn execute(&self) -> ExperimentResult {
        let report = run_byzantine(&self.0);
        let mut lines = vec![
            format!("victim-completions {}", report.victim_completions),
            format!("hostile-rejected {}", report.hostile_rejected),
            format!("abi-rejects {}", report.stats.abi_rejects_total()),
            format!("quarantines {}", report.stats.quarantines),
            format!("txns-committed {}", report.stats.txns_committed),
            format!("trace-records {}", report.records.len()),
        ];
        for f in &report.failures {
            lines.push(format!("failure {f}"));
        }
        let hash = ghost_lab::fnv64_lines(&lines);
        ExperimentResult {
            pass: report.failures.is_empty(),
            hash,
            lines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_ops() {
        for seed in 0..64 {
            assert_eq!(
                generate_byz_ops(seed),
                generate_byz_ops(seed),
                "seed {seed} not deterministic"
            );
        }
    }

    #[test]
    fn ops_are_bounded_and_cover_both_layers() {
        let mut policy_ops = 0usize;
        let mut runtime_ops = 0usize;
        for seed in 0..64 {
            let ops = generate_byz_ops(seed);
            assert!((3..=8).contains(&ops.len()));
            policy_ops += ops.iter().filter(|o| o.is_policy_op()).count();
            runtime_ops += ops.iter().filter(|o| !o.is_policy_op()).count();
        }
        assert!(policy_ops > 0, "no in-activation hostile ops generated");
        assert!(runtime_ops > 0, "no runtime-layer hostile ops generated");
    }

    #[test]
    fn byzantine_smoke_sweep_absorbs_hostile_sequences() {
        // A bounded in-tree slice of the CI byzantine sweep: every
        // hostile sequence must be absorbed — no panic, every rejection
        // typed, the victim alive — across all rotated victim policies.
        for seed in 1..=12u64 {
            let victim = ByzCombo::VICTIMS[(seed % ByzCombo::VICTIMS.len() as u64) as usize];
            let combo = ByzCombo::generated(victim, seed);
            let report = run_byzantine(&combo);
            assert!(
                report.failures.is_empty(),
                "victim={} seed={seed} ops={:?} failed: {:?}",
                victim.name(),
                combo.ops,
                report.failures
            );
        }
    }

    #[test]
    fn byzantine_runs_are_deterministic() {
        let combo = ByzCombo::generated(PolicyKind::PerCpu, 3);
        let a = run_byzantine(&combo);
        let b = run_byzantine(&combo);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.victim_completions, b.victim_completions);
        assert_eq!(a.hostile_rejected, b.hostile_rejected);
        assert_eq!(a.records.len(), b.records.len());
    }

    #[test]
    fn quarantine_fires_on_even_seeds_with_enough_strikes() {
        // Craft a sequence of guaranteed byzantine-classified strikes
        // (forged out-of-range CPUs and kernel-owned status writes) on
        // an even seed, which arms a budget of four.
        let combo = ByzCombo {
            victim: PolicyKind::PerCpu,
            seed: 2,
            ops: vec![
                ByzOp::CommitForgedCpu { cpu: 999 },
                ByzOp::CommitForgedCpu { cpu: 998 },
                ByzOp::StatusWrite {
                    tid: 0,
                    value: u64::MAX,
                },
                ByzOp::StatusWrite { tid: 1, value: 7 },
                ByzOp::CommitForgedCpu { cpu: 997 },
                ByzOp::CommitForgedCpu { cpu: 996 },
            ],
        };
        assert_eq!(combo.strike_budget(), Some(4));
        let report = run_byzantine(&combo);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(
            report.quarantined,
            "six byzantine strikes against a budget of four must quarantine"
        );
        assert!(report.hostile_rejected >= 6);
    }
}
