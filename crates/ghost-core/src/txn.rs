//! Transactions: the agent → kernel scheduling interface (§3.2).
//!
//! Agents open transactions in shared memory (`TXN_CREATE()`), fill in the
//! thread to run and the CPU to run it on, and commit one or many with a
//! single `TXNS_COMMIT()` syscall. Group commits amortize the syscall and
//! send one batched IPI instead of one per target CPU.

use crate::abi::AbiError;
use ghost_sim::thread::Tid;
use ghost_sim::topology::CpuId;

/// The sequence-number freshness constraint attached to a transaction.
///
/// Per-CPU agents commit with their agent sequence number `Aseq` (§3.2);
/// the centralized agent commits with the target thread's `Tseq` (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqConstraint {
    /// No freshness check (used by the BPF fast path, which runs
    /// synchronously in the kernel and cannot be stale).
    None,
    /// Fail with [`TxnStatus::Stale`] if the committing agent's `Aseq`
    /// advanced past this value (a new message is waiting).
    Agent(u64),
    /// Fail with [`TxnStatus::Stale`] if the target thread's `Tseq`
    /// advanced past this value (the thread changed state).
    Thread(u64),
}

/// Commit outcome of a single transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnStatus {
    /// Not yet committed.
    Pending,
    /// Committed: the target CPU will run the thread.
    Committed,
    /// The sequence-number check failed (`ESTALE` in the paper): the
    /// agent's view of the world is out of date. Drain and retry.
    Stale,
    /// The target thread is known to the enclave but not runnable
    /// (blocked, running elsewhere, or double-scheduled).
    TargetNotRunnable,
    /// The target tid is not a schedulable thread of this enclave at
    /// all (never created, dead, foreign, or an agent). Unlike
    /// [`TxnStatus::TargetNotRunnable`] this is a policy bug, not a
    /// race: retrying cannot succeed.
    UnknownTarget,
    /// The target CPU is running a higher-priority-class thread (e.g.
    /// CFS), which ghOSt must not preempt.
    CpuBusy,
    /// The target CPU is not in the enclave or not in the thread's
    /// affinity mask.
    CpuUnavailable,
    /// The enclave rejected the transaction (e.g. being destroyed).
    Aborted,
}

impl TxnStatus {
    /// True only for [`TxnStatus::Committed`].
    pub fn committed(self) -> bool {
        self == TxnStatus::Committed
    }
}

/// A scheduling transaction: run `tid` on `cpu`, subject to `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Thread to schedule.
    pub tid: Tid,
    /// Target CPU.
    pub cpu: CpuId,
    /// Freshness constraint.
    pub seq: SeqConstraint,
    /// Commit outcome, written by the kernel.
    pub status: TxnStatus,
    /// Precise rejection cause, written by the kernel alongside a
    /// failing `status`. `None` while pending or committed.
    pub error: Option<AbiError>,
}

impl Transaction {
    /// `TXN_CREATE()`: opens a transaction scheduling `tid` on `cpu` with
    /// no freshness constraint.
    pub fn new(tid: Tid, cpu: CpuId) -> Self {
        Self {
            tid,
            cpu,
            seq: SeqConstraint::None,
            status: TxnStatus::Pending,
            error: None,
        }
    }

    /// Attaches an agent-sequence constraint.
    pub fn with_agent_seq(mut self, aseq: u64) -> Self {
        self.seq = SeqConstraint::Agent(aseq);
        self
    }

    /// Attaches a thread-sequence constraint.
    pub fn with_thread_seq(mut self, tseq: u64) -> Self {
        self.seq = SeqConstraint::Thread(tseq);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_txn_is_pending() {
        let t = Transaction::new(Tid(3), CpuId(1));
        assert_eq!(t.status, TxnStatus::Pending);
        assert_eq!(t.seq, SeqConstraint::None);
        assert!(!t.status.committed());
    }

    #[test]
    fn seq_builders() {
        let a = Transaction::new(Tid(1), CpuId(0)).with_agent_seq(9);
        assert_eq!(a.seq, SeqConstraint::Agent(9));
        let t = Transaction::new(Tid(1), CpuId(0)).with_thread_seq(4);
        assert_eq!(t.seq, SeqConstraint::Thread(4));
    }

    #[test]
    fn committed_predicate() {
        assert!(TxnStatus::Committed.committed());
        for s in [
            TxnStatus::Pending,
            TxnStatus::Stale,
            TxnStatus::TargetNotRunnable,
            TxnStatus::UnknownTarget,
            TxnStatus::CpuBusy,
            TxnStatus::CpuUnavailable,
            TxnStatus::Aborted,
        ] {
            assert!(!s.committed());
        }
    }
}
