//! A deterministic discrete-event simulator of the Linux kernel scheduling
//! machinery, built as the substrate for the ghOSt (SOSP 2021) reproduction.
//!
//! The simulator models exactly the pieces of Linux that ghOSt interacts
//! with:
//!
//! * **CPUs and topology** ([`topology`]) — sockets, physical cores, SMT
//!   siblings, AMD-style CCXs, and NUMA distances, with presets matching the
//!   machines used in the paper's evaluation.
//! * **Native threads** ([`thread`]) — created / runnable / running /
//!   blocked / dead state machine, affinity masks, nice values, runtime
//!   accounting, and an SMT-contention execution-rate model.
//! * **The scheduling-class hierarchy** ([`class`]) — Stop > Agent > RT >
//!   CFS > ghOSt > Idle priority ordering, exactly the property §3.4 of the
//!   paper relies on (ghOSt threads are preempted by CFS threads).
//! * **A CFS model** ([`cfs`]) — vruntime fair queueing with the kernel's
//!   nice-to-weight table, wakeup preemption, idle stealing, and periodic
//!   load balancing at millisecond granularity.
//! * **Kernel mechanics** ([`kernel`]) — timer ticks, IPIs, context
//!   switches, wakeup paths, and a virtual-nanosecond event loop.
//! * **A cost model** ([`costs`]) — operation costs calibrated against
//!   Table 3 of the paper.
//!
//! Workloads plug in through the [`app::App`] trait; userspace schedulers
//! (ghOSt agents, implemented in the `ghost-core` crate) plug in through
//! the [`agent::AgentDriver`] trait and a pluggable [`class::SchedClass`].
//!
//! Everything is single-threaded and deterministic: given the same seed and
//! configuration, a simulation replays event-for-event.

pub mod agent;
pub mod app;
pub mod cfs;
pub mod class;
pub mod costs;
pub mod cpu;
pub mod cpuset;
pub mod event;
pub mod faults;
pub mod idle;
pub mod kernel;
pub mod rt;
pub mod thread;
pub mod time;
pub mod topology;

pub use agent::{AgentDriver, AgentOutcome};
pub use app::{App, AppId, Next};
pub use class::{ClassId, SchedClass, CLASS_AGENT, CLASS_CFS, CLASS_GHOST, CLASS_IDLE, CLASS_RT};
pub use costs::CostModel;
pub use cpu::CpuState;
pub use cpuset::CpuSet;
pub use faults::{FaultEvent, FaultKind, FaultPlan, IpiFate};
pub use kernel::{Kernel, KernelConfig, KernelState};
pub use thread::{SimThread, ThreadKind, ThreadState, Tid};
pub use time::{Nanos, MICROS, MILLIS, SECS};
pub use topology::{CpuId, Topology};
