//! End-to-end tests of the ghOSt runtime on the simulated kernel:
//! message flow, transactions (local/remote/group/ESTALE), preemption by
//! CFS, hot handoff, the PNT fast path, the watchdog, crash fallback, and
//! in-place upgrade.

use ghost_core::enclave::EnclaveConfig;
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::{CpuSet, CLASS_CFS};
use ghost_trace::{check, TraceEvent, TraceSink};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// A centralized FIFO policy (the paper's Fig. 4 example).
#[derive(Default)]
struct FifoPolicy {
    rq: VecDeque<Tid>,
    queued: HashSet<Tid>,
    seqs: HashMap<Tid, u64>,
    /// Failed-commit log for assertions.
    failures: Vec<TxnStatus>,
}

impl FifoPolicy {
    fn enqueue(&mut self, tid: Tid) {
        if self.queued.insert(tid) {
            self.rq.push_back(tid);
        }
    }

    fn remove(&mut self, tid: Tid) {
        if self.queued.remove(&tid) {
            self.rq.retain(|&t| t != tid);
        }
    }
}

impl GhostPolicy for FifoPolicy {
    fn name(&self) -> &str {
        "test-fifo"
    }

    fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
        if msg.ty.is_thread_msg() {
            self.seqs.insert(msg.tid, msg.seq);
        }
        match msg.ty {
            MsgType::ThreadWakeup | MsgType::ThreadPreempted | MsgType::ThreadYield => {
                self.enqueue(msg.tid)
            }
            MsgType::ThreadBlocked | MsgType::ThreadDead => self.remove(msg.tid),
            _ => {}
        }
    }

    fn on_reconstruct(
        &mut self,
        snapshot: &[ghost_core::ThreadSnapshot],
        _ctx: &mut PolicyCtx<'_>,
    ) {
        self.rq.clear();
        self.queued.clear();
        self.seqs.clear();
        for s in snapshot {
            self.seqs.insert(s.tid, s.seq);
            if s.runnable && !s.on_cpu {
                self.enqueue(s.tid);
            }
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        let idle = ctx.idle_cpus();
        let mut txns = Vec::new();
        let mut scheduled = Vec::new();
        for cpu in idle.iter() {
            let Some(tid) = self.rq.pop_front() else {
                break;
            };
            self.queued.remove(&tid);
            scheduled.push(tid);
            let seq = self.seqs.get(&tid).copied().unwrap_or(0);
            txns.push(Transaction::new(tid, cpu).with_thread_seq(seq));
        }
        if txns.is_empty() {
            return;
        }
        ctx.commit(&mut txns);
        for txn in &txns {
            if !txn.status.committed() {
                self.failures.push(txn.status);
                self.enqueue(txn.tid);
            }
        }
    }
}

/// Workload app: each thread runs `seg` then blocks; timers re-arm work.
struct PulseApp {
    conf: HashMap<Tid, (Nanos, Nanos)>, // (segment, period)
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
}

impl App for PulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "pulse"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        let (seg, period) = self.conf[&tid];
        if k.threads[tid.index()].state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = seg;
            k.wake(tid);
        }
        if period > 0 {
            let app = k.thread(tid).app.expect("pulse thread has app");
            k.arm_app_timer(k.now + period, app, key);
        }
    }

    fn on_segment_end(&mut self, tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.lock().unwrap().entry(tid).or_insert(0) += 1;
        Next::Block
    }
}

struct Setup {
    kernel: Kernel,
    runtime: GhostRuntime,
    enclave: ghost_core::runtime::EnclaveHandle,
    app: AppId,
    threads: Vec<Tid>,
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
}

/// Builds: a machine, a centralized enclave over all but CPU 0, `n`
/// ghOSt-managed pulse threads (seg every period).
fn centralized_setup(
    topo: Topology,
    n: usize,
    seg: Nanos,
    period: Nanos,
    config: EnclaveConfig,
    policy: Box<dyn GhostPolicy>,
) -> Setup {
    centralized_setup_opts(topo, n, seg, period, config, policy, true, TraceSink::Null)
}

/// Like [`centralized_setup`] but records every tracepoint into `trace`.
fn centralized_setup_traced(
    topo: Topology,
    n: usize,
    seg: Nanos,
    period: Nanos,
    config: EnclaveConfig,
    policy: Box<dyn GhostPolicy>,
    trace: TraceSink,
) -> Setup {
    centralized_setup_opts(topo, n, seg, period, config, policy, true, trace)
}

#[allow(clippy::too_many_arguments)]
fn centralized_setup_opts(
    topo: Topology,
    n: usize,
    seg: Nanos,
    period: Nanos,
    config: EnclaveConfig,
    policy: Box<dyn GhostPolicy>,
    stagger: bool,
    trace: TraceSink,
) -> Setup {
    let mut kernel = Kernel::new(
        topo,
        KernelConfig {
            trace,
            ..KernelConfig::default()
        },
    );
    let ncpus = kernel.state.topo.num_cpus();
    let runtime = GhostRuntime::new(ncpus);
    let cpus: CpuSet = (1..ncpus as u16).map(CpuId).collect();
    let enclave = runtime.launch_enclave(&mut kernel, cpus, config, policy);

    let app = kernel.state.next_app_id();
    let completions = Arc::new(Mutex::new(HashMap::new()));
    let mut conf = HashMap::new();
    let mut threads = Vec::new();
    for i in 0..n {
        let tid = kernel.spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app));
        conf.insert(tid, (seg, period));
        threads.push(tid);
    }
    kernel.add_app(Box::new(PulseApp {
        conf,
        completions: Arc::clone(&completions),
    }));
    for &tid in &threads {
        enclave.attach_thread(&mut kernel.state, tid);
    }
    for (i, &tid) in threads.iter().enumerate() {
        let at = if stagger {
            (i as u64 + 1) * 10_000
        } else {
            10_000
        };
        kernel.state.arm_app_timer(at, app, tid.0 as u64);
    }
    Setup {
        kernel,
        runtime,
        enclave,
        app,
        threads,
        completions,
    }
}

#[test]
fn centralized_fifo_schedules_threads() {
    let mut s = centralized_setup(
        Topology::test_small(4), // 8 CPUs.
        4,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(50 * MILLIS);
    let stats = s.runtime.stats();
    assert!(
        stats.txns_committed >= 100,
        "txns: {}",
        stats.txns_committed
    );
    assert!(stats.posted(MsgType::ThreadWakeup) >= 100);
    assert!(stats.posted(MsgType::ThreadBlocked) >= 100);
    assert!(stats.posted(MsgType::ThreadCreated) == 4);
    for &t in &s.threads {
        let done = s.completions.lock().unwrap()[&t];
        assert!(done >= 40, "thread {t} completed only {done} pulses");
    }
    // The agent spent real virtual time working.
    assert!(stats.agent_busy_ns > 0);
    assert!(stats.activations > 100);
}

#[test]
fn ghost_threads_are_preempted_by_cfs() {
    // 4 CPUs: enclave = {1,2,3}; agent spins on 1, ghOSt work on 2–3.
    let mut s = centralized_setup(
        Topology::test_small(2),
        2,
        5 * MILLIS,
        10 * MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    // A second app drives a CFS hog pinned to CPU 2, where ghOSt threads
    // run 5 ms segments — every hog wakeup must preempt them.
    let hog_app_id = s.kernel.state.next_app_id();
    let hog = s.kernel.spawn(
        ThreadSpec::workload("cfs-hog", &s.kernel.state.topo)
            .app(hog_app_id)
            .affinity(CpuSet::from_iter([CpuId(2)])),
    );
    let hog_completions = Arc::new(Mutex::new(HashMap::new()));
    let mut conf = HashMap::new();
    conf.insert(hog, (2 * MILLIS, 10 * MILLIS));
    s.kernel.add_app(Box::new(PulseApp {
        conf,
        completions: Arc::clone(&hog_completions),
    }));
    s.kernel
        .state
        .arm_app_timer(3 * MILLIS, hog_app_id, hog.0 as u64);
    s.kernel.run_until(200 * MILLIS);
    let stats = s.runtime.stats();
    assert!(
        stats.posted(MsgType::ThreadPreempted) > 0,
        "CFS hog must preempt ghOSt threads"
    );
    // The ghOSt thread still made progress afterwards.
    assert!(s.completions.lock().unwrap()[&s.threads[0]] >= 10);
}

#[test]
fn group_commit_schedules_multiple_cpus() {
    // All threads wake at the same instant so the FIFO commits groups.
    let mut s = centralized_setup_opts(
        Topology::test_small(4),
        6,
        500 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
        false,
        TraceSink::Null,
    );
    s.kernel.run_until(30 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.group_commits > 0, "expected group commits");
    assert!(stats.txns_committed > 50);
}

#[test]
fn stale_thread_seq_fails_with_estale() {
    /// A policy that deliberately commits with an outdated Tseq once.
    #[derive(Default)]
    struct StalePolicy {
        inner: FifoPolicy,
        sabotaged: bool,
        stale_seen: Arc<Mutex<bool>>,
    }
    impl GhostPolicy for StalePolicy {
        fn name(&self) -> &str {
            "stale-test"
        }
        fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
            self.inner.on_msg(msg, ctx);
        }
        fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
            if !self.sabotaged {
                if let Some(&tid) = self.inner.rq.front() {
                    let seq = self.inner.seqs.get(&tid).copied().unwrap_or(0);
                    if seq >= 2 {
                        // Commit with an old sequence number.
                        self.sabotaged = true;
                        let cpu = ctx.idle_cpus().first();
                        if let Some(cpu) = cpu {
                            let mut txn = Transaction::new(tid, cpu).with_thread_seq(seq - 1);
                            let status = ctx.commit_one(&mut txn);
                            assert_eq!(status, TxnStatus::Stale);
                            *self.stale_seen.lock().unwrap() = true;
                        }
                    }
                }
            }
            self.inner.schedule(ctx);
        }
    }
    let stale_seen = Arc::new(Mutex::new(false));
    let policy = StalePolicy {
        stale_seen: Arc::clone(&stale_seen),
        ..Default::default()
    };
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(policy),
    );
    s.kernel.run_until(50 * MILLIS);
    assert!(*stale_seen.lock().unwrap(), "ESTALE path never exercised");
    assert!(s.runtime.stats().txns_stale >= 1);
    // Despite the sabotage, scheduling continued.
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > 10);
}

#[test]
fn watchdog_destroys_enclave_and_falls_back_to_cfs() {
    /// A policy that never schedules anything (a "buggy agent").
    struct DeadPolicy;
    impl GhostPolicy for DeadPolicy {
        fn name(&self) -> &str {
            "dead"
        }
        fn on_msg(&mut self, _msg: &Message, _ctx: &mut PolicyCtx<'_>) {}
        fn schedule(&mut self, _ctx: &mut PolicyCtx<'_>) {}
    }
    let sink = TraceSink::recording(1, 1 << 17);
    let mut s = centralized_setup_traced(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test").with_watchdog(20 * MILLIS),
        Box::new(DeadPolicy),
        sink.clone(),
    );
    s.kernel.run_until(200 * MILLIS);
    let stats = s.runtime.stats();
    assert_eq!(stats.watchdog_destroys, 1);
    assert!(!s.enclave.alive());
    // Threads fell back to CFS and resumed making progress.
    for &t in &s.threads {
        assert_eq!(s.kernel.state.thread(t).class, CLASS_CFS);
        assert!(
            s.completions.lock().unwrap().get(&t).copied().unwrap_or(0) > 50,
            "thread {t} should run under CFS after the fallback"
        );
    }
    // The trace shows the watchdog firing and tearing the enclave down,
    // and the checker excuses the pre-blackout stranded wakeups.
    assert_eq!(sink.dropped(), 0, "trace ring overflowed");
    let records = sink.snapshot();
    let fired = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::WatchdogFired { .. }))
        .count();
    let torn_down = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::EnclaveDestroyed { .. }))
        .count();
    assert_eq!(fired, 1, "exactly one watchdog firing");
    assert_eq!(torn_down, 1, "exactly one enclave teardown");
    check::assert_clean(&records);
}

#[test]
fn agent_crash_without_standby_falls_back_to_cfs() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(20 * MILLIS);
    assert!(s.enclave.alive());
    let global = s.enclave.global_agent().expect("global agent");
    s.kernel.kill(global);
    s.kernel.run_until(60 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.fallbacks >= 1);
    assert!(!s.enclave.alive());
    for &t in &s.threads {
        assert_eq!(s.kernel.state.thread(t).class, CLASS_CFS);
    }
    // And they keep running under CFS.
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(120 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before);
}

#[test]
fn staged_upgrade_survives_agent_crash() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(20 * MILLIS);
    // Stage a new policy version, then crash the running agent.
    s.enclave.stage_upgrade(Box::new(FifoPolicy::default()));
    let global = s.enclave.global_agent().expect("global agent");
    s.kernel.kill(global);
    s.kernel.run_until(100 * MILLIS);
    let stats = s.runtime.stats();
    assert_eq!(stats.upgrades, 1);
    assert!(s.enclave.alive(), "enclave survives upgrade");
    // The new policy schedules: threads still make ghOSt progress.
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(200 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before + 50);
    assert_ne!(s.kernel.state.thread(s.threads[0]).class, CLASS_CFS);
}

#[test]
fn watchdog_promotes_staged_policy_instead_of_reaping() {
    /// A hung agent: activates but never schedules anything.
    struct HungPolicy;
    impl GhostPolicy for HungPolicy {
        fn name(&self) -> &str {
            "hung"
        }
        fn on_msg(&mut self, _msg: &Message, _ctx: &mut PolicyCtx<'_>) {}
        fn schedule(&mut self, _ctx: &mut PolicyCtx<'_>) {}
    }
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test").with_watchdog(20 * MILLIS),
        Box::new(HungPolicy),
    );
    // A fixed policy version is staged before the watchdog trips: the
    // watchdog must hand over to it in place instead of reaping the
    // enclave (the mid-upgrade handoff is excused, not double-reaped).
    s.enclave.stage_upgrade(Box::new(FifoPolicy::default()));
    s.kernel.run_until(200 * MILLIS);
    let stats = s.runtime.stats();
    assert_eq!(stats.upgrades, 1, "watchdog should promote the standby");
    assert_eq!(
        stats.watchdog_destroys, 0,
        "upgraded enclave must not be reaped"
    );
    assert!(s.enclave.alive());
    // Threads stayed under ghOSt and the new policy actually schedules.
    for &t in &s.threads {
        assert_ne!(s.kernel.state.thread(t).class, CLASS_CFS);
        let done = s.completions.lock().unwrap().get(&t).copied().unwrap_or(0);
        assert!(done > 50, "thread {t} completed only {done} pulses");
    }
}

#[test]
fn upgraded_agent_gets_fresh_watchdog_grace() {
    /// Dead policy used for both the running and the staged version.
    struct DeadPolicy;
    impl GhostPolicy for DeadPolicy {
        fn name(&self) -> &str {
            "dead"
        }
        fn on_msg(&mut self, _msg: &Message, _ctx: &mut PolicyCtx<'_>) {}
        fn schedule(&mut self, _ctx: &mut PolicyCtx<'_>) {}
    }
    let sink = TraceSink::recording(1, 1 << 17);
    let mut s = centralized_setup_traced(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test").with_watchdog(20 * MILLIS),
        Box::new(DeadPolicy),
        sink.clone(),
    );
    // The staged version is just as dead: the watchdog promotes it once,
    // then must re-measure starvation from the upgrade instant — not
    // reap the fresh agent with the stale pre-upgrade clock.
    s.enclave.stage_upgrade(Box::new(DeadPolicy));
    s.kernel.run_until(200 * MILLIS);
    let stats = s.runtime.stats();
    assert_eq!(stats.upgrades, 1);
    assert_eq!(stats.watchdog_destroys, 1, "dead upgrade is finally reaped");
    assert!(!s.enclave.alive());
    for &t in &s.threads {
        assert_eq!(s.kernel.state.thread(t).class, CLASS_CFS);
    }
    // Timing proves the grace: without it the destroy would land on the
    // first watchdog check after the upgrade (~40 ms); with the clock
    // reset it cannot fire before upgrade + a full timeout (~60 ms).
    let records = sink.snapshot();
    let fired_ts = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::WatchdogFired { .. }))
        .map(|r| r.ts)
        .expect("watchdog fired");
    assert!(
        fired_ts >= 50 * MILLIS,
        "reaped {fired_ts} ns after boot: upgrade grace not applied"
    );
    check::assert_clean(&records);
}

#[test]
fn pnt_fast_path_schedules_idle_cpus() {
    /// A policy that only offers threads to the PNT rings and never
    /// commits transactions itself.
    struct PntOnly2(FifoPolicy);
    impl GhostPolicy for PntOnly2 {
        fn name(&self) -> &str {
            "pnt-only"
        }
        fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
            self.0.on_msg(msg, ctx);
        }
        fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
            let node = ctx.topo().info(ctx.local_cpu()).socket as usize;
            while let Some(tid) = self.0.rq.pop_front() {
                self.0.queued.remove(&tid);
                ctx.pnt_push(node, tid);
            }
        }
    }
    let mut s = centralized_setup(
        Topology::test_small(4),
        4,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test").with_pnt(64),
        Box::new(PntOnly2(FifoPolicy::default())),
    );
    // CFS blips: short CFS work on enclave CPUs forces rescheds whose
    // pick_next consults the PNT rings when the CPU would otherwise idle.
    let app = s.app;
    for c in 2..8u16 {
        let blip = s.kernel.spawn(
            ThreadSpec::workload(&format!("blip{c}"), &s.kernel.state.topo)
                .app(app)
                .affinity(CpuSet::from_iter([CpuId(c)])),
        );
        s.kernel.state.thread_mut(blip).remaining = 10 * MICROS;
        for i in 0..100u64 {
            s.kernel.state.wake_at(i * MILLIS + 100_000, blip);
        }
    }
    s.kernel.run_until(100 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.pnt_picks > 0, "PNT fast path never picked a thread");
    assert!(
        s.completions
            .lock()
            .unwrap()
            .get(&s.threads[0])
            .copied()
            .unwrap_or(0)
            > 10,
        "threads should run via PNT"
    );
}

#[test]
fn hot_handoff_moves_global_agent() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(10 * MILLIS);
    let global_before = s.enclave.global_agent().expect("global");
    let gcpu = s.kernel.state.thread(global_before).cpu.expect("on cpu");
    // Pin a CFS thread to exactly the global agent's CPU.
    let app = s.app;
    let hog = s.kernel.spawn(
        ThreadSpec::workload("pinned-cfs", &s.kernel.state.topo)
            .app(app)
            .affinity(CpuSet::from_iter([gcpu])),
    );
    s.kernel.state.thread_mut(hog).remaining = 5 * MILLIS;
    s.kernel.wake_now(hog);
    s.kernel.run_until(30 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.handoffs >= 1, "no hot handoff happened");
    let global_after = s.enclave.global_agent().expect("global");
    assert_ne!(global_before, global_after);
    // The CFS thread got its CPU.
    assert!(s.kernel.state.thread(hog).total_work >= 4 * MILLIS);
    // And ghOSt scheduling continued under the new global agent.
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(60 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before);
}

#[test]
fn destroy_enclave_api_moves_threads_to_cfs() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(10 * MILLIS);
    s.enclave.destroy(&mut s.kernel.state);
    s.kernel.run_until(20 * MILLIS);
    assert!(!s.enclave.alive());
    for &t in &s.threads {
        assert_eq!(s.kernel.state.thread(t).class, CLASS_CFS);
        assert_ne!(s.kernel.state.thread(t).state, ThreadState::Dead);
    }
    for agent in s.enclave.agent_tids() {
        assert_eq!(s.kernel.state.thread(agent).state, ThreadState::Dead);
    }
}

/// Fig. 2: multiple enclaves run independent policies concurrently, and
/// destroying one leaves the other intact (§3.4 fault isolation).
#[test]
fn enclaves_are_isolated_from_each_other() {
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    // Enclave A on CPUs 1-3, enclave B on CPUs 4-7.
    let cpus_a: CpuSet = (1..4u16).map(CpuId).collect();
    let cpus_b: CpuSet = (4..8u16).map(CpuId).collect();
    let enc_a = runtime.launch_enclave(
        &mut kernel,
        cpus_a,
        EnclaveConfig::centralized("A"),
        Box::new(FifoPolicy::default()),
    );
    let enc_b = runtime.launch_enclave(
        &mut kernel,
        cpus_b,
        EnclaveConfig::centralized("B"),
        Box::new(FifoPolicy::default()),
    );

    let app = kernel.state.next_app_id();
    let completions = Arc::new(Mutex::new(HashMap::new()));
    let mut conf = HashMap::new();
    let mut a_tids = Vec::new();
    let mut b_tids = Vec::new();
    for i in 0..2 {
        let ta = kernel.spawn(ThreadSpec::workload(&format!("a{i}"), &kernel.state.topo).app(app));
        let tb = kernel.spawn(ThreadSpec::workload(&format!("b{i}"), &kernel.state.topo).app(app));
        conf.insert(ta, (100 * MICROS, MILLIS));
        conf.insert(tb, (100 * MICROS, MILLIS));
        a_tids.push(ta);
        b_tids.push(tb);
    }
    kernel.add_app(Box::new(PulseApp {
        conf,
        completions: Arc::clone(&completions),
    }));
    for &t in &a_tids {
        enc_a.attach_thread(&mut kernel.state, t);
        kernel.state.arm_app_timer(10_000, app, t.0 as u64);
    }
    for &t in &b_tids {
        enc_b.attach_thread(&mut kernel.state, t);
        kernel.state.arm_app_timer(10_000, app, t.0 as u64);
    }
    kernel.run_until(50 * MILLIS);
    // Both enclaves schedule concurrently; threads stay inside their
    // enclave's CPUs.
    for &t in &a_tids {
        assert!(cpus_a.contains(kernel.state.thread(t).last_cpu.expect("ran")));
    }
    for &t in &b_tids {
        assert!(cpus_b.contains(kernel.state.thread(t).last_cpu.expect("ran")));
    }

    // Crash enclave A's agent: A falls back to CFS, B keeps scheduling.
    let a_agent = enc_a.global_agent().expect("A has a global agent");
    kernel.kill(a_agent);
    kernel.run_until(60 * MILLIS);
    assert!(!enc_a.alive());
    assert!(enc_b.alive(), "enclave B must be untouched");
    for &t in &a_tids {
        assert_eq!(kernel.state.thread(t).class, CLASS_CFS);
    }
    let b_before = completions.lock().unwrap()[&b_tids[0]];
    kernel.run_until(120 * MILLIS);
    assert!(
        completions.lock().unwrap()[&b_tids[0]] > b_before + 30,
        "enclave B must keep scheduling after A's crash"
    );
    // And A's threads keep running, now under CFS.
    let a_before = completions.lock().unwrap()[&a_tids[0]];
    kernel.run_until(180 * MILLIS);
    assert!(completions.lock().unwrap()[&a_tids[0]] > a_before + 30);
}

/// The Fig. 4 FIFO scenario replayed through the tracer: the recorded
/// stream is lossless, contains every event family the runtime emits on
/// the happy path, and satisfies all checker invariants.
#[test]
fn traced_centralized_run_passes_invariant_checker() {
    let sink = TraceSink::recording(1, 1 << 19);
    let mut s = centralized_setup_traced(
        Topology::test_small(4),
        4,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
        sink.clone(),
    );
    s.kernel.run_until(50 * MILLIS);
    assert_eq!(sink.dropped(), 0, "trace ring overflowed");
    let records = sink.snapshot();
    assert!(!records.is_empty());
    let has = |pred: fn(&TraceEvent) -> bool| records.iter().any(|r| pred(&r.event));
    assert!(has(|e| matches!(e, TraceEvent::SchedSwitch { .. })));
    assert!(has(|e| matches!(e, TraceEvent::SchedWakeup { .. })));
    assert!(has(|e| matches!(e, TraceEvent::MsgEnqueued { .. })));
    assert!(has(|e| matches!(e, TraceEvent::MsgDequeued { .. })));
    assert!(has(|e| matches!(
        e,
        TraceEvent::AgentActivationBegin { .. }
    )));
    assert!(has(|e| matches!(e, TraceEvent::TxnArmed { .. })));
    assert!(has(|e| matches!(e, TraceEvent::TxnCommitOk { .. })));
    check::assert_clean(&records);
}

/// Overflowing a tiny message queue: drops are counted (runtime stats +
/// per-queue cumulative counter), surface as `QueueOverflow` tracepoints,
/// and Tseq keeps advancing past dropped messages so a later delivery
/// carries the right sequence number.
#[test]
fn queue_overflow_is_counted_traced_and_seqnums_stay_consistent() {
    let sink = TraceSink::recording(1, 1 << 14);
    let mut kernel = Kernel::new(
        Topology::test_small(4),
        KernelConfig {
            trace: sink.clone(),
            ..KernelConfig::default()
        },
    );
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus: CpuSet = (1..8u16).map(CpuId).collect();
    let mut config = EnclaveConfig::centralized("tiny");
    config.queue_capacity = 4;
    let enclave =
        runtime.launch_enclave(&mut kernel, cpus, config, Box::new(FifoPolicy::default()));

    // No agents yet: nothing drains the 4-slot default queue, so the 8
    // THREAD_CREATED messages below overflow it.
    let threads: Vec<Tid> = (0..8)
        .map(|i| kernel.spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo)))
        .collect();
    for &t in &threads {
        enclave.attach_thread(&mut kernel.state, t);
    }
    kernel.run_until(MILLIS);
    let stats = runtime.stats();
    assert_eq!(stats.msgs_dropped, 4, "4 of 8 creates must overflow");
    assert_eq!(stats.posted(MsgType::ThreadCreated), 4);

    // Start the agents: the backlog drains, making room in the queue.
    kernel.run_until(2 * MILLIS);

    // Wake a thread whose THREAD_CREATED was dropped. Its Tseq advanced
    // despite the loss, so the wakeup must be delivered with seq 2.
    let victim = threads[7];
    kernel.state.thread_mut(victim).remaining = 100 * MICROS;
    let at = kernel.state.now + 10_000;
    kernel.state.wake_at(at, victim);
    kernel.run_until(3 * MILLIS);

    assert_eq!(sink.dropped(), 0, "trace ring must not drop records");
    let records = sink.snapshot();

    let overflows: Vec<(u32, u8, u32, u64)> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::QueueOverflow {
                queue,
                ty,
                tid,
                dropped_total,
            } => Some((queue, ty, tid, dropped_total)),
            _ => None,
        })
        .collect();
    assert_eq!(overflows.len(), 4, "one tracepoint per dropped message");
    for (i, &(queue, ty, _, dropped_total)) in overflows.iter().enumerate() {
        assert_eq!(queue, 0, "drops hit the default queue");
        assert_eq!(ty, 0, "dropped messages are THREAD_CREATED");
        assert_eq!(
            dropped_total,
            i as u64 + 1,
            "per-queue drop counter is cumulative and gapless"
        );
    }
    assert!(
        overflows.iter().any(|o| o.2 == victim.0),
        "the victim's create was among the drops"
    );

    let victim_seqs: Vec<u64> = records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::MsgEnqueued { tid, seq, .. } if tid == victim.0 => Some(seq),
            _ => None,
        })
        .collect();
    assert_eq!(
        victim_seqs.first(),
        Some(&2),
        "wakeup after a dropped create must carry Tseq 2, got {victim_seqs:?}"
    );

    // Global trace seqnums stay gapless even across queue overflow.
    for w in records.windows(2) {
        assert_eq!(w[1].seq, w[0].seq + 1);
    }
    check::assert_clean(&records);
}

// ---------------------------------------------------------------------------
// Failover & bounded-time recovery (§3.4 + the rejoin experiment, Fig. 9).
// ---------------------------------------------------------------------------

#[test]
fn upgrade_reconstructs_without_synthetic_messages() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        3,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(20 * MILLIS);
    let created_before = s.runtime.stats().posted(MsgType::ThreadCreated);
    s.enclave.stage_upgrade(Box::new(FifoPolicy::default()));
    assert!(s.enclave.upgrade_now(&mut s.kernel.state));
    s.kernel.run_until(100 * MILLIS);
    let stats = s.runtime.stats();
    // The incoming agent seeds itself from the status-word scan: no
    // synthetic THREAD_CREATED replay (the pre-reconstruction hack).
    assert_eq!(
        stats.posted(MsgType::ThreadCreated),
        created_before,
        "upgrade must not post synthetic creation messages"
    );
    assert_eq!(stats.reconstructions, 1);
    assert_eq!(stats.upgrades, 1);
    assert!(s.enclave.alive());
    // The reconstructed policy actually schedules.
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(200 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before + 50);
    assert_ne!(s.kernel.state.thread(s.threads[0]).class, CLASS_CFS);
}

#[test]
fn standby_failover_recovers_within_slo() {
    let standby = ghost_core::StandbyConfig::default();
    let sink = TraceSink::recording(1, 1 << 17);
    let mut s = centralized_setup_traced(
        Topology::test_small(4),
        3,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test").with_standby(standby),
        Box::new(FifoPolicy::default()),
        sink.clone(),
    );
    s.enclave
        .set_standby_policy(|| Box::new(FifoPolicy::default()));
    s.kernel.run_until(20 * MILLIS);
    let global = s.enclave.global_agent().expect("global agent");
    s.kernel.kill(global);
    s.kernel.run_until(60 * MILLIS);
    let stats = s.runtime.stats();
    assert!(s.enclave.alive(), "enclave survives crash");
    assert_eq!(stats.respawns, 1, "one standby respawn");
    assert_eq!(stats.recoveries, 1, "recovery completed");
    assert_eq!(stats.reconstructions, 1);
    assert_eq!(stats.fallbacks, 0, "degraded mode is not a fallback");
    // Every managed thread is back under ghOSt.
    for &t in &s.threads {
        assert_ne!(s.kernel.state.thread(t).class, CLASS_CFS);
    }
    // And still makes progress under the respawned agent.
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(160 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before + 50);

    // The trace proves the bound: crash → reconstruction-done within the
    // recovery SLO, with every thread reclaimed in between.
    let records = sink.snapshot();
    let start = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::RecoveryStart { .. }))
        .map(|r| r.ts)
        .expect("recovery start traced");
    let done = records
        .iter()
        .find(|r| matches!(r.event, TraceEvent::ReconstructDone { .. }))
        .map(|r| r.ts)
        .expect("reconstruction traced");
    assert!(
        done >= start && done - start <= standby.recovery_slo,
        "recovery took {} ns, SLO is {} ns",
        done - start,
        standby.recovery_slo
    );
    let reclaimed = records
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::ThreadReclaimed { .. }))
        .count();
    assert_eq!(reclaimed, s.threads.len(), "every thread reclaimed");
    check::assert_clean(&records);
}

#[test]
fn respawn_exhaustion_destroys_enclave() {
    let standby = ghost_core::StandbyConfig::default();
    let mut s = centralized_setup(
        Topology::test_small(4),
        2,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test").with_standby(standby),
        Box::new(FifoPolicy::default()),
    );
    s.enclave
        .set_standby_policy(|| Box::new(FifoPolicy::default()));
    s.kernel.run_until(20 * MILLIS);
    // Keep killing whichever agent is in charge: the respawn budget is
    // finite, so the enclave is eventually torn down for good.
    for round in 0..=standby.max_respawns {
        let global = s
            .enclave
            .global_agent()
            .unwrap_or_else(|| panic!("agent alive before crash {round}"));
        s.kernel.kill(global);
        s.kernel.run_until(s.kernel.state.now + 20 * MILLIS);
    }
    let stats = s.runtime.stats();
    assert_eq!(stats.respawns, standby.max_respawns as u64);
    assert!(!s.enclave.alive(), "budget exhausted");
    assert!(stats.fallbacks >= 1, "final crash is a CFS fallback");
    for &t in &s.threads {
        assert_eq!(s.kernel.state.thread(t).class, CLASS_CFS);
    }
    // CFS keeps the workload alive after the enclave is gone.
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(s.kernel.state.now + 100 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before);
}

#[test]
fn per_cpu_agent_crash_falls_back_only_its_own_threads() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        3,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::per_cpu("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(20 * MILLIS);
    // The test policy never re-associates queues, so all threads ride the
    // default queue owned by the first CPU's agent. Killing a *different*
    // CPU's agent must not take the whole enclave down, and no thread is
    // routed through the dead queue, so none leave ghOSt.
    let bystander = s.enclave.agent_on(CpuId(2)).expect("agent on cpu 2");
    s.kernel.kill(bystander);
    s.kernel.run_until(60 * MILLIS);
    let stats = s.runtime.stats();
    assert!(s.enclave.alive(), "peer agents keep the enclave alive");
    assert_eq!(stats.fallbacks, 1, "per-CPU crash is a scoped fallback");
    for &t in &s.threads {
        assert_ne!(
            s.kernel.state.thread(t).class,
            CLASS_CFS,
            "threads of surviving queues stay in ghOSt"
        );
    }
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(120 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before);
}

#[test]
fn per_cpu_default_queue_owner_crash_sheds_its_threads() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        3,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::per_cpu("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(20 * MILLIS);
    // All threads ride the default queue, owned by the first CPU's agent:
    // killing it sheds exactly those threads to CFS — but the enclave
    // itself survives on its remaining agents.
    let owner = s.enclave.agent_on(CpuId(1)).expect("agent on cpu 1");
    s.kernel.kill(owner);
    s.kernel.run_until(60 * MILLIS);
    let stats = s.runtime.stats();
    assert!(s.enclave.alive());
    assert_eq!(stats.fallbacks, 1);
    for &t in &s.threads {
        assert_eq!(s.kernel.state.thread(t).class, CLASS_CFS);
    }
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(120 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before);
}

#[test]
fn centralized_non_global_agent_crash_keeps_enclave() {
    let mut s = centralized_setup(
        Topology::test_small(4),
        3,
        100 * MICROS,
        MILLIS,
        EnclaveConfig::centralized("test"),
        Box::new(FifoPolicy::default()),
    );
    s.kernel.run_until(20 * MILLIS);
    let global = s.enclave.global_agent().expect("global agent");
    let satellite = s
        .enclave
        .agent_tids()
        .into_iter()
        .find(|&t| t != global)
        .expect("inactive satellite agent");
    s.kernel.kill(satellite);
    s.kernel.run_until(60 * MILLIS);
    let stats = s.runtime.stats();
    assert!(
        s.enclave.alive(),
        "losing an inactive satellite is not fatal"
    );
    assert_eq!(stats.fallbacks, 0);
    assert_eq!(stats.enclave_destroys, 0);
    for &t in &s.threads {
        assert_ne!(s.kernel.state.thread(t).class, CLASS_CFS);
    }
    let before = s.completions.lock().unwrap()[&s.threads[0]];
    s.kernel.run_until(120 * MILLIS);
    assert!(s.completions.lock().unwrap()[&s.threads[0]] > before);
}
