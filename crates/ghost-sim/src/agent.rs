//! Agent plug-in interface.
//!
//! ghOSt agents are ordinary threads in the top-priority Agent class; what
//! they *do* while on CPU is delegated to an [`AgentDriver`] — implemented
//! by `ghost-core`'s enclave runtime. The kernel invokes the driver when an
//! agent thread lands on a CPU and whenever a scheduled agent-loop or
//! driver timer fires.

use crate::kernel::KernelState;
use crate::thread::Tid;
use crate::time::Nanos;
use crate::topology::CpuId;

/// How an agent activation ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentOutcome {
    /// The agent blocks after `busy` nanoseconds of work (the per-CPU
    /// model: committing a local transaction gives up the CPU, §3.2).
    Block { busy: Nanos },
    /// The agent yields the CPU after `busy` nanoseconds but stays
    /// runnable (inactive agents "immediately yield, vacating their
    /// CPUs", §3.3).
    Yield { busy: Nanos },
    /// The agent keeps spinning. `busy` is the work performed this
    /// activation; if `next` is set, the kernel re-invokes the driver at
    /// that absolute time (otherwise the next activation comes from a
    /// message post or driver timer).
    Spin { busy: Nanos, next: Option<Nanos> },
}

/// The userspace-scheduler runtime plugged into the kernel.
///
/// `Send` so a fully wired kernel can run on a `ghost-lab` worker thread.
pub trait AgentDriver: Send {
    /// Agent thread `tid` is running on `cpu`; perform one activation.
    fn run_agent(&mut self, tid: Tid, cpu: CpuId, k: &mut KernelState) -> AgentOutcome;

    /// A timer armed via [`KernelState::arm_driver_timer`] fired.
    fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}

    /// An agent thread was preempted or dequeued while runnable. Gives the
    /// driver a chance to account for lost spin time.
    fn on_agent_descheduled(&mut self, _tid: Tid, _k: &mut KernelState) {}

    /// An agent thread was killed (crash injection or teardown). The
    /// driver reacts per §3.4 of the paper: fall back to the default
    /// scheduler or promote a staged replacement.
    fn on_agent_killed(&mut self, _tid: Tid, _k: &mut KernelState) {}

    /// A one-shot fault from the configured [`crate::faults::FaultPlan`]
    /// fired, after its kernel-level effect was applied. Lets the runtime
    /// react to faults only it can interpret (e.g.
    /// [`crate::faults::FaultKind::Upgrade`]).
    fn on_fault(&mut self, _fault: &crate::faults::FaultKind, _k: &mut KernelState) {}
}

/// A driver that does nothing — the default when no enclaves exist.
pub struct NullDriver;

impl AgentDriver for NullDriver {
    fn run_agent(&mut self, _tid: Tid, _cpu: CpuId, _k: &mut KernelState) -> AgentOutcome {
        AgentOutcome::Block { busy: 0 }
    }
}
