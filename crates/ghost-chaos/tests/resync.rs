//! `MSG_QUEUE_OVERFLOW` recovery (§3.1): when the kernel drops messages,
//! the agent's message-derived view is unreliable and must be rebuilt
//! from the threads' status words. This property test runs a lossy
//! tracker (≈30% of messages dropped) against a lossless reference over
//! random message streams, resyncs, and checks the rebuilt state is
//! consistent — including that stale in-flight messages cannot regress
//! it — across seeds 0..64.

use ghost_chaos::for_seeds;
use ghost_chaos::rand::rngs::StdRng;
use ghost_chaos::rand::Rng;
use ghost_core::msg::{Message, MsgType};
use ghost_policies::tracker::ThreadTracker;
use ghost_sim::thread::Tid;
use ghost_sim::topology::CpuId;

const THREADS: u32 = 6;

/// Canonical ordered view of a tracker for equality checks.
fn snapshot(t: &ThreadTracker) -> Vec<(Tid, u64, bool, CpuId)> {
    let mut v: Vec<_> = t
        .iter()
        .map(|(tid, th)| (tid, th.seq, th.runnable, th.last_cpu))
        .collect();
    v.sort_by_key(|e| e.0 .0);
    v
}

/// Per-thread stream state for the random message generator.
struct Stream {
    seqs: Vec<u64>,
    runnable: Vec<bool>,
    alive: Vec<bool>,
}

impl Stream {
    fn new() -> Self {
        Self {
            seqs: vec![0; THREADS as usize],
            runnable: vec![false; THREADS as usize],
            alive: vec![true; THREADS as usize],
        }
    }

    /// Generates the next random but *legal* message: wakeups only for
    /// blocked threads, blocks/preempts only for runnable ones, and an
    /// occasional death.
    fn next(&mut self, rng: &mut StdRng) -> Option<Message> {
        let live: Vec<usize> = (0..THREADS as usize).filter(|&i| self.alive[i]).collect();
        let &i = live.get(rng.gen_range(0..live.len().max(1)))?;
        self.seqs[i] += 1;
        let cpu = CpuId(rng.gen_range(0..4));
        let ty = if rng.gen_bool(0.02) && live.len() > 2 {
            self.alive[i] = false;
            MsgType::ThreadDead
        } else if self.runnable[i] {
            match rng.gen_range(0..3) {
                0 => MsgType::ThreadPreempted,
                1 => MsgType::ThreadYield,
                _ => {
                    self.runnable[i] = false;
                    MsgType::ThreadBlocked
                }
            }
        } else {
            self.runnable[i] = true;
            MsgType::ThreadWakeup
        };
        Some(Message::thread(ty, Tid(i as u32), self.seqs[i], cpu, 0))
    }
}

#[test]
fn tracker_rebuilds_consistent_state_after_drops() {
    for_seeds!(0, 64, |rng: &mut StdRng| {
        let mut reference = ThreadTracker::new();
        let mut lossy = ThreadTracker::new();
        let mut stream = Stream::new();

        for i in 0..THREADS {
            let m = Message::thread(MsgType::ThreadCreated, Tid(i), 1, CpuId(0), 0);
            stream.seqs[i as usize] = 1;
            reference.apply(&m);
            lossy.apply(&m);
        }

        // Phase 1: the queue overflows — the lossy tracker misses ~30%
        // of the stream (drops bunch arbitrarily; independence is fine
        // for the property).
        for _ in 0..200 {
            let Some(m) = stream.next(rng) else { break };
            reference.apply(&m);
            if rng.gen_bool(0.7) {
                lossy.apply(&m);
            }
        }

        // MSG_QUEUE_OVERFLOW noticed: rebuild from ground truth (here
        // the reference stands in for re-reading the status words).
        lossy.resync(
            reference
                .iter()
                .map(|(tid, t)| (tid, t.seq, t.runnable, t.last_cpu)),
        );
        assert_eq!(snapshot(&lossy), snapshot(&reference), "resync mismatch");
        assert_eq!(
            lossy.len(),
            reference.len(),
            "missed deaths must be forgotten"
        );

        // A stale message still in flight from before the overflow must
        // not regress the rebuilt sequence number.
        if let Some(&(tid, seq, _, _)) = snapshot(&lossy).first() {
            if seq > 1 {
                lossy.apply(&Message::thread(
                    MsgType::ThreadWakeup,
                    tid,
                    seq - 1,
                    CpuId(0),
                    0,
                ));
                assert_eq!(lossy.seq(tid), seq, "stale in-flight message regressed seq");
            }
        }

        // Phase 2: no more drops. The stale replay above may have
        // flipped one runnable bit; each thread's next real message
        // resets it, so after a full round of fresh messages the
        // trackers are back in lockstep.
        for _ in 0..100 {
            let Some(m) = stream.next(rng) else { break };
            reference.apply(&m);
            lossy.apply(&m);
        }
        for i in 0..THREADS as usize {
            if !stream.alive[i] {
                continue;
            }
            stream.seqs[i] += 1;
            stream.runnable[i] = true;
            let m = Message::thread(
                MsgType::ThreadWakeup,
                Tid(i as u32),
                stream.seqs[i],
                CpuId(1),
                0,
            );
            reference.apply(&m);
            lossy.apply(&m);
        }
        assert_eq!(
            snapshot(&lossy),
            snapshot(&reference),
            "post-resync divergence"
        );
    });
}
