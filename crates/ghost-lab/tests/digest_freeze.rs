//! Digest freeze: the DES results of all seven policies, pinned.
//!
//! Two scenario families are frozen, each at seeds 1..=3:
//!
//! * **baseline** — the plain pulse workload. These hashes were captured
//!   on the DES backend immediately *before* the `GhostBackend` trait
//!   refactor that generalized `ghost-core` over sim/live backends.
//! * **chaos** — the same workload with a deterministic fault plan
//!   layered on top (agent crash + standby failover, an IPI-delay
//!   window, tick skew, a spurious wakeup), so the recovery,
//!   reconstruction, and IPI paths are pinned too. Captured immediately
//!   *before* the DES fast-path refactor (slab runtime state, timer
//!   wheel, batched drain).
//!
//! The contract is that hot-path refactors are byte-identical: every
//! policy, at every seed below, in both families, must keep producing
//! exactly these result hashes. If a hash changes, the refactor altered
//! simulation behavior — that is a bug in the refactor, not an expected
//! drift. Do not re-pin without understanding exactly which event
//! ordering changed and why.
//!
//! Regenerate (only for an intentional semantic change) with:
//! `cargo test -p ghost-lab --test digest_freeze -- --nocapture` after
//! setting `PRINT_DIGESTS=1` in the environment.

use ghost_lab::scenario::{PolicyKind, Scenario, WorkloadSpec};
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::time::{MICROS, MILLIS};
use ghost_sim::topology::CpuId;

/// (policy, seed, frozen result hash) — plain pulse workload.
const FROZEN_BASELINE: &[(&str, u64, u64)] = &[
    ("centralized-fifo", 1, 0x0ac452b232b10472),
    ("centralized-fifo", 2, 0xebc4dd03827a0c9c),
    ("centralized-fifo", 3, 0x54ed523bff637387),
    ("per-cpu", 1, 0x3270543848b48dad),
    ("per-cpu", 2, 0xae56052dae2377ec),
    ("per-cpu", 3, 0x512723b9d76ed921),
    ("shinjuku", 1, 0x525edb1e1fce31bb),
    ("shinjuku", 2, 0x573a21a15ac00641),
    ("shinjuku", 3, 0x394f24d8afda7148),
    ("snap", 1, 0x860fc9df7a2fb5dd),
    ("snap", 2, 0x8522150d5136c800),
    ("snap", 3, 0x811bf4542750fc6d),
    ("core-sched", 1, 0xdcfe5af1c0de90f4),
    ("core-sched", 2, 0x33aeb931abbf5011),
    ("core-sched", 3, 0x7138615264227c58),
    // Shinjuku+Shenango matches plain Shinjuku on the pulse workload: the
    // Shenango layer only diverges when core reallocation triggers, which
    // this workload never does. The rows are still pinned independently so
    // a refactor-induced divergence in either policy is caught.
    ("shinjuku-shenango", 1, 0x525edb1e1fce31bb),
    ("shinjuku-shenango", 2, 0x573a21a15ac00641),
    ("shinjuku-shenango", 3, 0x394f24d8afda7148),
    ("search", 1, 0x2982f5e47b365524),
    ("search", 2, 0x1b4e2b162d856d9d),
    ("search", 3, 0x77362c0343528335),
];

/// (policy, seed, frozen result hash) — chaos-seeded fault plan.
const FROZEN_CHAOS: &[(&str, u64, u64)] = &[
    ("centralized-fifo", 1, 0xdb354436bf37fb29),
    ("centralized-fifo", 2, 0x49483252cb26e82d),
    ("centralized-fifo", 3, 0xbf89699572869602),
    ("per-cpu", 1, 0x28e3c10d3627de27),
    ("per-cpu", 2, 0x154f00d33c5cfe7f),
    ("per-cpu", 3, 0xb44e94c8191ce8ae),
    ("shinjuku", 1, 0xfd113c93663e24d1),
    ("shinjuku", 2, 0xb8566003f4527921),
    ("shinjuku", 3, 0x84d4a1e40c8aec30),
    ("snap", 1, 0xd013f41781a76469),
    ("snap", 2, 0xa034785c23fcddc2),
    ("snap", 3, 0xba97af2031b65f78),
    ("core-sched", 1, 0xcb399830f7034d77),
    ("core-sched", 2, 0x3164e856b6769dab),
    ("core-sched", 3, 0xd45ca48bc6f9f49d),
    // Shinjuku+Shenango tracks plain Shinjuku here too (the fault plan
    // never triggers core reallocation); pinned independently regardless.
    ("shinjuku-shenango", 1, 0xfd113c93663e24d1),
    ("shinjuku-shenango", 2, 0xb8566003f4527921),
    ("shinjuku-shenango", 3, 0x84d4a1e40c8aec30),
    ("search", 1, 0x442cceea53ec4423),
    ("search", 2, 0xb9cb54ee8404eeef),
    ("search", 3, 0xa19ae36d3f62142a),
];

fn scenario(policy: PolicyKind, seed: u64) -> Scenario {
    Scenario::builder()
        .name(format!("freeze/{}/seed={seed}", policy.name()))
        .cpus(8)
        .policy(policy)
        .workload(WorkloadSpec::pulse(5))
        .seed(seed)
        .horizon(50 * MILLIS)
        .watchdog(20 * MILLIS)
        .trace_capacity(1 << 16)
        .build()
}

/// The chaos variant: the same pulse scenario with a standby agent armed
/// and a fixed, seed-dependent fault schedule. The crash exercises §3.4
/// degraded-mode failover and status-word reconstruction; the IPI and
/// tick windows perturb delivery timing on every policy.
fn chaos_scenario(policy: PolicyKind, seed: u64) -> Scenario {
    let plan = FaultPlan::from_events([
        (
            5 * MILLIS,
            FaultKind::IpiDelay {
                dur: 10 * MILLIS,
                extra: 50 * MICROS,
            },
        ),
        ((8 + seed) * MILLIS, FaultKind::AgentCrash { cpu: CpuId(0) }),
        (
            20 * MILLIS,
            FaultKind::TickSkew {
                dur: 10 * MILLIS,
                extra: 20 * MICROS,
            },
        ),
        (30 * MILLIS, FaultKind::SpuriousWakeup { nth: seed as u32 }),
    ]);
    Scenario::builder()
        .name(format!("freeze-chaos/{}/seed={seed}", policy.name()))
        .cpus(8)
        .policy(policy)
        .workload(WorkloadSpec::pulse(5))
        .seed(seed)
        .horizon(50 * MILLIS)
        .watchdog(20 * MILLIS)
        .standby(true)
        .faults(plan)
        .trace_capacity(1 << 16)
        .build()
}

fn check_family(
    family: &str,
    frozen: &[(&str, u64, u64)],
    build: impl Fn(PolicyKind, u64) -> Scenario,
) {
    let print = std::env::var("PRINT_DIGESTS").is_ok();
    let mut failures = Vec::new();
    for policy in PolicyKind::EVERY {
        for seed in 1..=3u64 {
            let summary = build(policy, seed).run();
            if print {
                println!(
                    "    [{family}] (\"{}\", {seed}, {:#018x}),",
                    policy.name(),
                    summary.hash
                );
                continue;
            }
            let row = frozen
                .iter()
                .find(|(name, s, _)| *name == policy.name() && *s == seed)
                .unwrap_or_else(|| {
                    panic!("no frozen {family} digest for {}/{seed}", policy.name())
                });
            if summary.hash != row.2 {
                failures.push(format!(
                    "{family}/{}/seed={seed}: got {:#018x}, frozen {:#018x}",
                    policy.name(),
                    summary.hash,
                    row.2
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "DES digests drifted from the pre-refactor freeze:\n{}",
        failures.join("\n")
    );
}

#[test]
fn all_seven_policies_des_digests_are_frozen() {
    check_family("baseline", FROZEN_BASELINE, scenario);
}

#[test]
fn all_seven_policies_chaos_digests_are_frozen() {
    check_family("chaos", FROZEN_CHAOS, chaos_scenario);
}
