//! Quickstart: delegate scheduling of a few threads to a userspace FIFO
//! policy on a small simulated machine.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --trace out.json
//! ```
//!
//! With `--trace`, every tracepoint fired during the run is recorded and
//! exported as a Chrome `trace_event` JSON file — open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use ghost::core::enclave::EnclaveConfig;
use ghost::core::msg::MsgType;
use ghost::lab::Scenario;
use ghost::policies::CentralizedFifo;
use ghost::sim::app::{App, Next};
use ghost::sim::kernel::{KernelState, ThreadSpec};
use ghost::sim::thread::Tid;
use ghost::sim::time::{MICROS, MILLIS};

/// A toy workload: threads run 100 µs bursts, sleeping 1 ms in between.
struct Bursts;

impl App for Bursts {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "bursts"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        if k.threads[tid.index()].state == ghost::sim::ThreadState::Blocked {
            k.thread_mut(tid).remaining = 100 * MICROS;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("burst thread has an app");
        k.arm_app_timer(k.now + MILLIS, app, key);
    }

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Block
    }
}

fn main() {
    // 0. Parse `--trace <path>`: record tracepoints into one merged ring
    //    (records carry their own CPU id, so one big ring beats many
    //    per-CPU rings when a spinning agent dominates the volume).
    let mut argv = std::env::args().skip(1);
    let mut trace_path: Option<String> = None;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--trace" => match argv.next() {
                Some(path) => trace_path = Some(path),
                None => {
                    eprintln!("--trace needs a file path");
                    eprintln!("usage: quickstart [--trace out.json]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: quickstart [--trace out.json]");
                std::process::exit(2);
            }
        }
    }
    // 1–2. Boot a small machine (4 cores, 8 logical CPUs) and launch an
    //    enclave over CPUs 1..7 running a centralized FIFO policy (CPU 0
    //    stays with CFS). The scenario builder is the canonical setup
    //    path: it installs the runtime, creates the enclave, and spawns
    //    its agents in one call.
    let sim = Scenario::builder()
        .name("quickstart")
        .cpus(8)
        .trace_capacity(if trace_path.is_some() { 1 << 21 } else { 0 })
        .enclave_cpus(1..8)
        .build_with(
            EnclaveConfig::centralized("quickstart"),
            Box::new(CentralizedFifo::new()),
        );
    let ghost::lab::GhostSim {
        mut kernel,
        runtime,
        enclave,
        sink,
    } = sim;

    // 3. Spawn workload threads and hand them to ghOSt.
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..6 {
        let tid = kernel
            .spawn(ThreadSpec::workload(&format!("worker-{i}"), &kernel.state.topo).app(app_id));
        tids.push(tid);
    }
    kernel.add_app(Box::new(Bursts));
    for (i, &tid) in tids.iter().enumerate() {
        enclave.attach_thread(&mut kernel.state, tid);
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 50 * MICROS, app_id, tid.0 as u64);
    }

    // 4. Run one virtual second and report.
    kernel.run_until(1_000 * MILLIS);
    let stats = runtime.stats();
    println!("ghOSt quickstart — 1 virtual second on {} CPUs", 8);
    println!("  agent activations : {}", stats.activations);
    println!("  txns committed    : {}", stats.txns_committed);
    println!("  txns failed       : {}", stats.txns_failed());
    println!(
        "  THREAD_WAKEUPs    : {}",
        stats.posted(MsgType::ThreadWakeup)
    );
    println!(
        "  THREAD_BLOCKEDs   : {}",
        stats.posted(MsgType::ThreadBlocked)
    );
    for &tid in &tids {
        let t = kernel.state.thread(tid);
        println!(
            "  {:<9} ran {:>6} µs over {} stints",
            t.name,
            t.total_work / 1_000,
            t.stint
        );
    }
    assert!(stats.txns_committed > 5_000, "scheduling should be brisk");

    // 5. Export the trace, if requested.
    if let Some(path) = trace_path {
        let records = sink.snapshot();
        assert_eq!(sink.dropped(), 0, "trace ring overflowed; raise capacity");
        ghost::trace::check::assert_clean(&records);
        let json = ghost::trace::chrome::export(&records);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        let metrics = ghost::trace::derive::TraceMetrics::from_records(&records);
        println!("  trace             : {} records -> {path}", records.len());
        println!(
            "  wakeup-to-run p99 : {} µs",
            metrics.wakeup_to_run.percentile(99.0) / 1_000
        );
    }
    println!("OK");
}
