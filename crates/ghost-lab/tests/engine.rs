//! End-to-end engine properties: parallel sweeps are byte-identical to
//! serial ones, and an unchanged sweep re-run is a pure cache hit.

use ghost_lab::engine::{run_sweep, Experiment, ExperimentResult};
use ghost_lab::scenario::{PolicyKind, Scenario, WorkloadSpec};
use ghost_lab::Cache;
use ghost_sim::time::MILLIS;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A 16-scenario matrix: 4 policies × 4 seeds, with staged upgrades and
/// standbys sprinkled in so the heavier machinery is exercised too.
fn matrix() -> Vec<Scenario> {
    let policies = [
        PolicyKind::CentralizedFifo,
        PolicyKind::PerCpu,
        PolicyKind::Shinjuku,
        PolicyKind::Snap,
    ];
    let mut scenarios = Vec::new();
    for (pi, policy) in policies.into_iter().enumerate() {
        for seed in 1..=4u64 {
            scenarios.push(
                Scenario::builder()
                    .name(format!("{}/seed={seed}", policy.name()))
                    .cpus(8)
                    .policy(policy)
                    .workload(WorkloadSpec::pulse(4))
                    .seed(seed)
                    .horizon(30 * MILLIS)
                    .watchdog(20 * MILLIS)
                    .stage_upgrade(pi % 2 == 0)
                    .standby(seed % 2 == 1)
                    .trace_capacity(1 << 16)
                    .build(),
            );
        }
    }
    scenarios
}

/// The tentpole determinism property: running the same 16-scenario
/// sweep with 1 worker and with N workers yields identical per-scenario
/// result hashes (and identical full result lines).
#[test]
fn parallel_sweep_matches_serial() {
    let scenarios = matrix();
    let serial = run_sweep(&scenarios, 1, None);
    for jobs in [2, 4, 8] {
        let parallel = run_sweep(&scenarios, jobs, None);
        assert_eq!(serial.items.len(), parallel.items.len());
        for (s, p) in serial.items.iter().zip(parallel.items.iter()) {
            assert_eq!(s.label, p.label, "jobs={jobs}: report order must match");
            assert_eq!(
                s.result, p.result,
                "jobs={jobs}: scenario {} diverged between serial and parallel",
                s.label
            );
        }
    }
}

/// Distinct seeds must actually produce distinct outcomes — otherwise
/// the determinism test above would pass vacuously on constant hashes.
#[test]
fn different_seeds_differ() {
    let scenarios = matrix();
    let report = run_sweep(&scenarios, 4, None);
    let hashes: std::collections::HashSet<u64> =
        report.items.iter().map(|i| i.result.hash).collect();
    assert!(
        hashes.len() > scenarios.len() / 2,
        "expected mostly-distinct hashes, got {} distinct of {}",
        hashes.len(),
        scenarios.len()
    );
}

fn temp_cache_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ghost-lab-test-{tag}-{}", std::process::id()))
}

/// An experiment that counts its own executions, so the cache-hit test
/// can assert the second sweep ran *zero* simulations.
struct Counted {
    scenario: Scenario,
    executions: AtomicUsize,
}

impl Experiment for Counted {
    fn label(&self) -> String {
        self.scenario.label()
    }
    fn spec(&self) -> String {
        self.scenario.spec()
    }
    fn execute(&self) -> ExperimentResult {
        self.executions.fetch_add(1, Ordering::Relaxed);
        self.scenario.execute()
    }
}

/// The cache property: a second run of an unchanged sweep executes zero
/// simulations and returns identical results.
#[test]
fn second_sweep_is_pure_cache_hit() {
    let dir = temp_cache_dir("hit");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Cache::open(&dir).unwrap();
    let exps: Vec<Counted> = matrix()
        .into_iter()
        .take(6)
        .map(|scenario| Counted {
            scenario,
            executions: AtomicUsize::new(0),
        })
        .collect();

    let first = run_sweep(&exps, 4, Some(&cache));
    assert_eq!(first.executed, 6);
    assert_eq!(first.cached, 0);

    let second = run_sweep(&exps, 4, Some(&cache));
    assert_eq!(second.executed, 0, "unchanged sweep must be a pure hit");
    assert_eq!(second.cached, 6);
    for e in &exps {
        assert_eq!(
            e.executions.load(Ordering::Relaxed),
            1,
            "{}: executed again despite cache",
            e.label()
        );
    }
    for (a, b) in first.items.iter().zip(second.items.iter()) {
        assert_eq!(a.result, b.result, "{}: cached result diverged", a.label);
    }
    assert_eq!(first.digest(), second.digest());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Changing any outcome-relevant knob must miss the cache.
#[test]
fn changed_spec_misses_cache() {
    let dir = temp_cache_dir("miss");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Cache::open(&dir).unwrap();
    let base = Scenario::builder()
        .name("miss")
        .cpus(8)
        .policy(PolicyKind::PerCpu)
        .workload(WorkloadSpec::pulse(3))
        .seed(11)
        .horizon(10 * MILLIS)
        .trace_capacity(1 << 14)
        .build();
    let first = run_sweep(std::slice::from_ref(&base), 1, Some(&cache));
    assert_eq!(first.executed, 1);

    let reseeded = Scenario { seed: 12, ..base };
    let second = run_sweep(std::slice::from_ref(&reseeded), 1, Some(&cache));
    assert_eq!(second.executed, 1, "a changed seed must re-execute");
    let _ = std::fs::remove_dir_all(&dir);
}
