//! Seeded fault-plan generation: maps a `u64` seed to a small,
//! deterministic [`FaultPlan`] so a failing combo is reproducible from
//! `(policy, seed)` alone.

use ghost_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::CpuId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a 0–3 event fault plan for a run of length `horizon` over
/// enclave CPUs `cpus`. The same `(seed, horizon, cpus)` always yields
/// the same plan; roughly one seed in four yields an empty plan, so
/// unperturbed baselines stay in every sweep.
pub fn generate_plan(seed: u64, horizon: Nanos, cpus: &[CpuId]) -> FaultPlan {
    assert!(!cpus.is_empty(), "fault plans need at least one target CPU");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA01_7000);
    let n = rng.gen_range(0usize..=3);
    // Faults land early enough that recovery (watchdog, CFS fallback) can
    // finish inside the horizon.
    let latest = horizon.saturating_sub(30 * MILLIS).max(2 * MILLIS);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let at = rng.gen_range(MILLIS..latest);
        let cpu = cpus[rng.gen_range(0..cpus.len())];
        let kind = match rng.gen_range(0u32..9) {
            0 => FaultKind::AgentCrash { cpu },
            1 => FaultKind::AgentHang {
                cpu,
                dur: rng.gen_range(MILLIS..30 * MILLIS),
            },
            2 => FaultKind::AgentSlow {
                cpu,
                dur: rng.gen_range(MILLIS..20 * MILLIS),
                factor: rng.gen_range(2u32..=8),
            },
            3 => FaultKind::QueueOverflow {
                dur: rng.gen_range(100 * MICROS..5 * MILLIS),
            },
            4 => FaultKind::IpiDelay {
                dur: rng.gen_range(MILLIS..10 * MILLIS),
                extra: rng.gen_range(50 * MICROS..2 * MILLIS),
            },
            5 => FaultKind::IpiLoss {
                dur: rng.gen_range(100 * MICROS..3 * MILLIS),
            },
            6 => FaultKind::SpuriousWakeup {
                nth: rng.gen_range(0u32..16),
            },
            7 => FaultKind::TickSkew {
                dur: rng.gen_range(MILLIS..10 * MILLIS),
                extra: rng.gen_range(100 * MICROS..MILLIS),
            },
            _ => FaultKind::Upgrade,
        };
        events.push(FaultEvent { at, kind });
    }
    FaultPlan { events }
}

/// Generates a crash/upgrade-focused plan for the recovery sweep: every
/// seed injects at least one agent crash or in-place upgrade, so each
/// combo exercises reconstruction, degraded-mode failover, or both.
/// Deterministic in `(seed, horizon, cpus)` like [`generate_plan`].
pub fn generate_recovery_plan(seed: u64, horizon: Nanos, cpus: &[CpuId]) -> FaultPlan {
    assert!(!cpus.is_empty(), "fault plans need at least one target CPU");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC0_7E11);
    let n = rng.gen_range(1usize..=2);
    // Leave enough tail for respawn backoff + reconstruction + the SLO.
    let latest = horizon.saturating_sub(40 * MILLIS).max(2 * MILLIS);
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        let at = rng.gen_range(MILLIS..latest);
        let cpu = cpus[rng.gen_range(0..cpus.len())];
        let kind = if rng.gen_range(0u32..4) < 3 {
            FaultKind::AgentCrash { cpu }
        } else {
            FaultKind::Upgrade
        };
        events.push(FaultEvent { at, kind });
    }
    FaultPlan { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpus() -> Vec<CpuId> {
        (1..8u16).map(CpuId).collect()
    }

    #[test]
    fn same_seed_same_plan() {
        for seed in 0..32 {
            let a = generate_plan(seed, 120 * MILLIS, &cpus());
            let b = generate_plan(seed, 120 * MILLIS, &cpus());
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn plans_are_bounded_and_inside_horizon() {
        let horizon = 120 * MILLIS;
        let mut nonempty = 0;
        for seed in 0..64 {
            let plan = generate_plan(seed, horizon, &cpus());
            assert!(plan.events.len() <= 3);
            for fe in &plan.events {
                assert!(fe.at >= MILLIS && fe.at < horizon);
            }
            if !plan.is_empty() {
                nonempty += 1;
            }
        }
        // Most seeds perturb something; some leave the baseline alone.
        assert!(nonempty > 32, "only {nonempty}/64 plans had faults");
        assert!(nonempty < 64, "no seed produced an empty baseline plan");
    }

    #[test]
    fn recovery_plans_always_crash_or_upgrade() {
        for seed in 0..64 {
            let plan = generate_recovery_plan(seed, 120 * MILLIS, &cpus());
            let b = generate_recovery_plan(seed, 120 * MILLIS, &cpus());
            assert_eq!(plan, b, "seed {seed} not deterministic");
            assert!(!plan.is_empty() && plan.events.len() <= 2);
            assert!(plan
                .events
                .iter()
                .all(|fe| matches!(fe.kind, FaultKind::AgentCrash { .. } | FaultKind::Upgrade)));
        }
    }
}
