//! Replayable repros: a failing [`Combo`] serialized to `repro.json` and
//! parsed back for bit-identical replay (the simulation is deterministic,
//! so the combo *is* the repro).
//!
//! The format is hand-rolled JSON (the offline build has no serde);
//! parsing reuses the `ghost-trace` JSON reader. The seed is encoded as a
//! decimal string because the reader parses numbers as `f64`, which would
//! silently round seeds above 2⁵³.

use crate::byzantine::{ByzCombo, ByzOp};
use crate::live::LiveCombo;
use crate::run::{Combo, PolicyKind};
use ghost_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use ghost_sim::topology::CpuId;
use ghost_trace::json::{self, Json};

fn repro_kind(input: &str) -> Option<String> {
    json::parse(input)
        .ok()
        .and_then(|doc| doc.get("kind").and_then(|k| k.as_str().map(String::from)))
}

/// True if `input` is a byzantine-adversary repro (`"kind":
/// "byzantine"`) rather than a fault-plan repro. Used by the CLI to
/// dispatch `--replay`.
pub fn is_byzantine_repro(input: &str) -> bool {
    repro_kind(input).as_deref() == Some("byzantine")
}

/// True if `input` is a live-backend repro (`"kind": "live"`). Used by
/// the CLI to dispatch `--replay` onto the real-thread backend.
pub fn is_live_repro(input: &str) -> bool {
    repro_kind(input).as_deref() == Some("live")
}

/// Serializes a combo as a self-contained `repro.json` document.
pub fn combo_to_json(combo: &Combo) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"policy\": \"{}\",\n",
        json::escape(combo.policy.name())
    ));
    out.push_str(&format!("  \"seed\": \"{}\",\n", combo.seed));
    out.push_str(&format!("  \"horizon\": {},\n", combo.horizon));
    out.push_str(&format!("  \"threads\": {},\n", combo.threads));
    out.push_str("  \"plan\": [");
    for (i, fe) in combo.plan.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&fault_to_json(fe));
    }
    if !combo.plan.events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn fault_to_json(fe: &FaultEvent) -> String {
    let body = match &fe.kind {
        FaultKind::AgentCrash { cpu } => format!("\"kind\": \"agent-crash\", \"cpu\": {}", cpu.0),
        FaultKind::AgentHang { cpu, dur } => {
            format!(
                "\"kind\": \"agent-hang\", \"cpu\": {}, \"dur\": {dur}",
                cpu.0
            )
        }
        FaultKind::AgentSlow { cpu, dur, factor } => format!(
            "\"kind\": \"agent-slow\", \"cpu\": {}, \"dur\": {dur}, \"factor\": {factor}",
            cpu.0
        ),
        FaultKind::QueueOverflow { dur } => {
            format!("\"kind\": \"queue-overflow\", \"dur\": {dur}")
        }
        FaultKind::IpiDelay { dur, extra } => {
            format!("\"kind\": \"ipi-delay\", \"dur\": {dur}, \"extra\": {extra}")
        }
        FaultKind::IpiLoss { dur } => format!("\"kind\": \"ipi-loss\", \"dur\": {dur}"),
        FaultKind::SpuriousWakeup { nth } => {
            format!("\"kind\": \"spurious-wakeup\", \"nth\": {nth}")
        }
        FaultKind::TickSkew { dur, extra } => {
            format!("\"kind\": \"tick-skew\", \"dur\": {dur}, \"extra\": {extra}")
        }
        FaultKind::Upgrade => "\"kind\": \"upgrade\"".to_string(),
    };
    format!("{{\"at\": {}, {body}}}", fe.at)
}

/// Parses a `repro.json` document back into a combo.
pub fn combo_from_json(input: &str) -> Result<Combo, String> {
    let doc = json::parse(input)?;
    let policy_name = doc
        .get("policy")
        .and_then(Json::as_str)
        .ok_or("missing string field 'policy'")?;
    let policy = PolicyKind::from_name(policy_name)
        .ok_or_else(|| format!("unknown policy '{policy_name}'"))?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_str)
        .ok_or("missing string field 'seed'")?
        .parse::<u64>()
        .map_err(|e| format!("bad seed: {e}"))?;
    let horizon = field_u64(&doc, "horizon")?;
    let threads = field_u64(&doc, "threads")? as usize;
    let mut events = Vec::new();
    for item in doc
        .get("plan")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'plan'")?
    {
        events.push(fault_from_json(item)?);
    }
    Ok(Combo {
        policy,
        seed,
        plan: FaultPlan { events },
        horizon,
        threads,
    })
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn fault_from_json(v: &Json) -> Result<FaultEvent, String> {
    let at = field_u64(v, "at")?;
    let kind_name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("fault without 'kind'")?;
    let cpu = || field_u64(v, "cpu").map(|c| CpuId(c as u16));
    let kind = match kind_name {
        "agent-crash" => FaultKind::AgentCrash { cpu: cpu()? },
        "agent-hang" => FaultKind::AgentHang {
            cpu: cpu()?,
            dur: field_u64(v, "dur")?,
        },
        "agent-slow" => FaultKind::AgentSlow {
            cpu: cpu()?,
            dur: field_u64(v, "dur")?,
            factor: field_u64(v, "factor")? as u32,
        },
        "queue-overflow" => FaultKind::QueueOverflow {
            dur: field_u64(v, "dur")?,
        },
        "ipi-delay" => FaultKind::IpiDelay {
            dur: field_u64(v, "dur")?,
            extra: field_u64(v, "extra")?,
        },
        "ipi-loss" => FaultKind::IpiLoss {
            dur: field_u64(v, "dur")?,
        },
        "spurious-wakeup" => FaultKind::SpuriousWakeup {
            nth: field_u64(v, "nth")? as u32,
        },
        "tick-skew" => FaultKind::TickSkew {
            dur: field_u64(v, "dur")?,
            extra: field_u64(v, "extra")?,
        },
        "upgrade" => FaultKind::Upgrade,
        other => return Err(format!("unknown fault kind '{other}'")),
    };
    Ok(FaultEvent { at, kind })
}

/// Serializes a live combo as a self-contained `repro.json` document,
/// distinguished by `"kind": "live"`. The plan (and so the injected
/// faults) replays exactly; the wall-clock interleaving around it is
/// best-effort, which is why live repros exist at all — rerunning the
/// captured combo is the closest thing to replay the real-thread
/// backend can offer.
pub fn live_to_json(combo: &LiveCombo) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\n");
    out.push_str("  \"kind\": \"live\",\n");
    out.push_str(&format!(
        "  \"policy\": \"{}\",\n",
        json::escape(combo.policy.name())
    ));
    out.push_str(&format!("  \"seed\": \"{}\",\n", combo.seed));
    out.push_str(&format!("  \"requests\": {},\n", combo.requests));
    out.push_str(&format!("  \"cpus\": {},\n", combo.cpus));
    out.push_str("  \"plan\": [");
    for (i, fe) in combo.plan.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&fault_to_json(fe));
    }
    if !combo.plan.events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses a live `repro.json` document back into a combo.
pub fn live_from_json(input: &str) -> Result<LiveCombo, String> {
    let doc = json::parse(input)?;
    if doc.get("kind").and_then(Json::as_str) != Some("live") {
        return Err("not a live repro (missing \"kind\": \"live\")".into());
    }
    let policy_name = doc
        .get("policy")
        .and_then(Json::as_str)
        .ok_or("missing string field 'policy'")?;
    let policy = PolicyKind::from_name(policy_name)
        .filter(|p| crate::live::LIVE_POLICIES.contains(p))
        .ok_or_else(|| format!("unsupported live policy '{policy_name}'"))?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_str)
        .ok_or("missing string field 'seed'")?
        .parse::<u64>()
        .map_err(|e| format!("bad seed: {e}"))?;
    let requests = field_u64(&doc, "requests")?;
    let cpus = field_u64(&doc, "cpus")? as usize;
    let mut events = Vec::new();
    for item in doc
        .get("plan")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'plan'")?
    {
        events.push(fault_from_json(item)?);
    }
    Ok(LiveCombo {
        policy,
        seed,
        plan: FaultPlan { events },
        requests,
        cpus,
    })
}

/// Serializes a byzantine combo as a self-contained `repro.json`
/// document, distinguished from fault-plan repros by `"kind":
/// "byzantine"`. Status-word payloads are encoded as decimal strings
/// for the same `f64` reason as seeds.
pub fn byz_to_json(combo: &ByzCombo) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\n");
    out.push_str("  \"kind\": \"byzantine\",\n");
    out.push_str(&format!(
        "  \"victim\": \"{}\",\n",
        json::escape(combo.victim.name())
    ));
    out.push_str(&format!("  \"seed\": \"{}\",\n", combo.seed));
    out.push_str("  \"ops\": [");
    for (i, op) in combo.ops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&byz_op_to_json(op));
    }
    if !combo.ops.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn byz_op_to_json(op: &ByzOp) -> String {
    match *op {
        ByzOp::CommitForgedCpu { cpu } => {
            format!("{{\"op\": \"commit-forged-cpu\", \"cpu\": {cpu}}}")
        }
        ByzOp::CommitForeignTid { tid } => {
            format!("{{\"op\": \"commit-foreign-tid\", \"tid\": {tid}}}")
        }
        ByzOp::CommitStaleSeq => "{\"op\": \"commit-stale-seq\"}".into(),
        ByzOp::CommitAtomicMixed { cpu } => {
            format!("{{\"op\": \"commit-atomic-mixed\", \"cpu\": {cpu}}}")
        }
        ByzOp::RecallForged { cpu } => format!("{{\"op\": \"recall-forged\", \"cpu\": {cpu}}}"),
        ByzOp::QueueDestroyDefault => "{\"op\": \"queue-destroy-default\"}".into(),
        ByzOp::QueueAssociateForged { tid, queue } => {
            format!("{{\"op\": \"queue-associate-forged\", \"tid\": {tid}, \"queue\": {queue}}}")
        }
        ByzOp::QueueWakeupForged { tid } => {
            format!("{{\"op\": \"queue-wakeup-forged\", \"tid\": {tid}}}")
        }
        ByzOp::PntPushForeign { tid } => {
            format!("{{\"op\": \"pnt-push-foreign\", \"tid\": {tid}}}")
        }
        ByzOp::PingForged { cpu } => format!("{{\"op\": \"ping-forged\", \"cpu\": {cpu}}}"),
        ByzOp::AttachForged { tid } => format!("{{\"op\": \"attach-forged\", \"tid\": {tid}}}"),
        ByzOp::StatusWrite { tid, value } => {
            format!("{{\"op\": \"status-write\", \"tid\": {tid}, \"value\": \"{value}\"}}")
        }
        ByzOp::StatusReadForged { tid } => {
            format!("{{\"op\": \"status-read-forged\", \"tid\": {tid}}}")
        }
        ByzOp::HintForged { tid } => format!("{{\"op\": \"hint-forged\", \"tid\": {tid}}}"),
        ByzOp::UpgradeWithoutStage => "{\"op\": \"upgrade-without-stage\"}".into(),
        ByzOp::DestroyTwice => "{\"op\": \"destroy-twice\"}".into(),
        ByzOp::CreateOverlapping { cpu } => {
            format!("{{\"op\": \"create-overlapping\", \"cpu\": {cpu}}}")
        }
    }
}

/// Parses a byzantine `repro.json` document back into a combo.
pub fn byz_from_json(input: &str) -> Result<ByzCombo, String> {
    let doc = json::parse(input)?;
    if doc.get("kind").and_then(Json::as_str) != Some("byzantine") {
        return Err("not a byzantine repro (missing \"kind\": \"byzantine\")".into());
    }
    let victim_name = doc
        .get("victim")
        .and_then(Json::as_str)
        .ok_or("missing string field 'victim'")?;
    let victim = PolicyKind::from_name(victim_name)
        .filter(|p| ByzCombo::VICTIMS.contains(p))
        .ok_or_else(|| format!("unsupported byzantine victim '{victim_name}'"))?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_str)
        .ok_or("missing string field 'seed'")?
        .parse::<u64>()
        .map_err(|e| format!("bad seed: {e}"))?;
    let mut ops = Vec::new();
    for item in doc
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'ops'")?
    {
        ops.push(byz_op_from_json(item)?);
    }
    Ok(ByzCombo { victim, seed, ops })
}

fn byz_op_from_json(v: &Json) -> Result<ByzOp, String> {
    let name = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("byzantine op without 'op'")?;
    let cpu = || field_u64(v, "cpu").map(|c| c as u16);
    let tid = || field_u64(v, "tid").map(|t| t as u32);
    let op = match name {
        "commit-forged-cpu" => ByzOp::CommitForgedCpu { cpu: cpu()? },
        "commit-foreign-tid" => ByzOp::CommitForeignTid { tid: tid()? },
        "commit-stale-seq" => ByzOp::CommitStaleSeq,
        "commit-atomic-mixed" => ByzOp::CommitAtomicMixed { cpu: cpu()? },
        "recall-forged" => ByzOp::RecallForged { cpu: cpu()? },
        "queue-destroy-default" => ByzOp::QueueDestroyDefault,
        "queue-associate-forged" => ByzOp::QueueAssociateForged {
            tid: tid()?,
            queue: field_u64(v, "queue")? as u32,
        },
        "queue-wakeup-forged" => ByzOp::QueueWakeupForged { tid: tid()? },
        "pnt-push-foreign" => ByzOp::PntPushForeign { tid: tid()? },
        "ping-forged" => ByzOp::PingForged { cpu: cpu()? },
        "attach-forged" => ByzOp::AttachForged { tid: tid()? },
        "status-write" => ByzOp::StatusWrite {
            tid: tid()?,
            value: v
                .get("value")
                .and_then(Json::as_str)
                .ok_or("status-write without string field 'value'")?
                .parse::<u64>()
                .map_err(|e| format!("bad status-write value: {e}"))?,
        },
        "status-read-forged" => ByzOp::StatusReadForged { tid: tid()? },
        "hint-forged" => ByzOp::HintForged { tid: tid()? },
        "upgrade-without-stage" => ByzOp::UpgradeWithoutStage,
        "destroy-twice" => ByzOp::DestroyTwice,
        "create-overlapping" => ByzOp::CreateOverlapping { cpu: cpu()? },
        other => return Err(format!("unknown byzantine op '{other}'")),
    };
    Ok(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::time::MILLIS;

    #[test]
    fn every_fault_kind_round_trips() {
        let combo = Combo {
            policy: PolicyKind::Shinjuku,
            seed: u64::MAX - 7, // would not survive an f64 round trip
            plan: FaultPlan::from_events([
                (MILLIS, FaultKind::AgentCrash { cpu: CpuId(1) }),
                (
                    2 * MILLIS,
                    FaultKind::AgentHang {
                        cpu: CpuId(2),
                        dur: MILLIS,
                    },
                ),
                (
                    3 * MILLIS,
                    FaultKind::AgentSlow {
                        cpu: CpuId(3),
                        dur: MILLIS,
                        factor: 4,
                    },
                ),
                (4 * MILLIS, FaultKind::QueueOverflow { dur: MILLIS }),
                (
                    5 * MILLIS,
                    FaultKind::IpiDelay {
                        dur: MILLIS,
                        extra: 100,
                    },
                ),
                (6 * MILLIS, FaultKind::IpiLoss { dur: MILLIS }),
                (7 * MILLIS, FaultKind::SpuriousWakeup { nth: 3 }),
                (
                    8 * MILLIS,
                    FaultKind::TickSkew {
                        dur: MILLIS,
                        extra: 50,
                    },
                ),
                (9 * MILLIS, FaultKind::Upgrade),
            ]),
            horizon: 120 * MILLIS,
            threads: 5,
        };
        let doc = combo_to_json(&combo);
        let back = combo_from_json(&doc).expect("parses");
        assert_eq!(back, combo);
    }

    #[test]
    fn empty_plan_round_trips() {
        let combo = Combo {
            policy: PolicyKind::PerCpu,
            seed: 0,
            plan: FaultPlan::none(),
            horizon: MILLIS,
            threads: 1,
        };
        assert_eq!(combo_from_json(&combo_to_json(&combo)).unwrap(), combo);
    }

    #[test]
    fn rejects_garbage() {
        assert!(combo_from_json("{}").is_err());
        assert!(combo_from_json("not json").is_err());
        assert!(combo_from_json(
            r#"{"policy": "nope", "seed": "1", "horizon": 1, "threads": 1, "plan": []}"#
        )
        .is_err());
    }

    #[test]
    fn live_combos_round_trip() {
        let combo = LiveCombo {
            policy: PolicyKind::PerCpu,
            seed: u64::MAX - 3, // would not survive an f64 round trip
            plan: FaultPlan::from_events([
                (50 * MILLIS, FaultKind::AgentCrash { cpu: CpuId(0) }),
                (
                    60 * MILLIS,
                    FaultKind::AgentHang {
                        cpu: CpuId(1),
                        dur: 100 * MILLIS,
                    },
                ),
            ]),
            requests: 60_000,
            cpus: 2,
        };
        let doc = live_to_json(&combo);
        assert!(is_live_repro(&doc));
        assert!(!is_byzantine_repro(&doc));
        let back = live_from_json(&doc).expect("parses");
        assert_eq!(back, combo);
        // The other parsers reject live repros and vice versa.
        assert!(combo_from_json(&doc).is_err());
        assert!(live_from_json("{}").is_err());
        assert!(live_from_json(
            r#"{"kind": "live", "policy": "shinjuku", "seed": "1", "requests": 1, "cpus": 1, "plan": []}"#
        )
        .is_err());
    }

    #[test]
    fn every_byzantine_op_round_trips() {
        let combo = ByzCombo {
            victim: PolicyKind::PerCpu,
            seed: u64::MAX - 11, // would not survive an f64 round trip
            ops: vec![
                ByzOp::CommitForgedCpu { cpu: 999 },
                ByzOp::CommitForeignTid { tid: u32::MAX },
                ByzOp::CommitStaleSeq,
                ByzOp::CommitAtomicMixed { cpu: 300 },
                ByzOp::RecallForged { cpu: u16::MAX },
                ByzOp::QueueDestroyDefault,
                ByzOp::QueueAssociateForged { tid: 7, queue: 250 },
                ByzOp::QueueWakeupForged { tid: 9_999 },
                ByzOp::PntPushForeign { tid: 40 },
                ByzOp::PingForged { cpu: 8 },
                ByzOp::AttachForged { tid: 0 },
                ByzOp::StatusWrite {
                    tid: 1,
                    value: u64::MAX, // would not survive an f64 round trip
                },
                ByzOp::StatusReadForged { tid: 5 },
                ByzOp::HintForged { tid: 4_096 },
                ByzOp::UpgradeWithoutStage,
                ByzOp::DestroyTwice,
                ByzOp::CreateOverlapping { cpu: 1 },
            ],
        };
        let doc = byz_to_json(&combo);
        assert!(is_byzantine_repro(&doc));
        let back = byz_from_json(&doc).expect("parses");
        assert_eq!(back, combo);
    }

    #[test]
    fn byzantine_parser_rejects_garbage() {
        assert!(byz_from_json("{}").is_err());
        assert!(byz_from_json("not json").is_err());
        // A fault-plan repro is not a byzantine repro, and vice versa.
        let combo = Combo {
            policy: PolicyKind::PerCpu,
            seed: 0,
            plan: FaultPlan::none(),
            horizon: MILLIS,
            threads: 1,
        };
        let doc = combo_to_json(&combo);
        assert!(!is_byzantine_repro(&doc));
        assert!(byz_from_json(&doc).is_err());
        // Core scheduling cannot co-reside with the byzantine enclave.
        assert!(byz_from_json(
            r#"{"kind": "byzantine", "victim": "core-sched", "seed": "1", "ops": []}"#
        )
        .is_err());
    }
}
