//! Chrome `trace_event` JSON export, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Layout: each CPU is rendered as a "process" (`pid` = cpu), with one
//! complete slice (`ph: "X"`) per scheduling stint reconstructed from
//! `sched_switch` pairs, and every other tracepoint as an instant event
//! (`ph: "i"`). Timestamps are virtual-time microseconds with nanosecond
//! precision (three decimals), formatted deterministically so identical
//! traces export to identical bytes.

use crate::{json, TraceEvent, TraceRecord, NO_TID};

fn class_name(class: u8) -> &'static str {
    match class {
        crate::CLASS_AGENT => "agent",
        crate::CLASS_RT => "rt",
        crate::CLASS_CFS => "cfs",
        crate::CLASS_GHOST => "ghost",
        crate::CLASS_IDLE => "idle",
        _ => "unknown",
    }
}

/// Nanoseconds → microsecond string with fixed 3 decimals ("12.345").
fn us(ts: u64) -> String {
    format!("{}.{:03}", ts / 1_000, ts % 1_000)
}

fn args_json(event: &TraceEvent) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in event.args().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Serializes `records` (must be in `seq` order, as returned by
/// `TraceSink::snapshot`) into a Chrome trace-event JSON document.
pub fn export(records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::new();
    // (tid, class, start_ts) currently running per CPU, for slice emission.
    let mut running: std::collections::BTreeMap<u16, (u32, u8, u64)> =
        std::collections::BTreeMap::new();
    let mut last_ts = 0u64;

    for rec in records {
        last_ts = last_ts.max(rec.ts);
        if let TraceEvent::SchedSwitch {
            cpu,
            prev_tid,
            next_tid,
            next_class,
            ..
        } = rec.event
        {
            if let Some((tid, class, start)) = running.remove(&cpu) {
                // The switch names the outgoing thread; trust the slice we
                // opened, but only close it for a real (non-idle) thread.
                debug_assert!(prev_tid == tid || prev_tid == NO_TID);
                events.push(slice(cpu, tid, class, start, rec.ts));
            }
            if next_tid != NO_TID {
                running.insert(cpu, (next_tid, next_class, rec.ts));
            }
        }
        events.push(instant(rec));
    }
    // Close slices still open at the end of the trace.
    for (&cpu, &(tid, class, start)) in &running {
        events.push(slice(cpu, tid, class, start, last_ts.max(start)));
    }

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&events.join(",\n"));
    doc.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"producer\":\"ghost-trace\"}}\n");
    doc
}

fn slice(cpu: u16, tid: u32, class: u8, start: u64, end: u64) -> String {
    let dur_ns = end.saturating_sub(start);
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
        json::escape(&format!("tid {tid} ({})", class_name(class))),
        class_name(class),
        us(start),
        us(dur_ns),
        cpu,
        tid,
    )
}

fn instant(rec: &TraceRecord) -> String {
    format!(
        "{{\"name\":\"{}\",\"cat\":\"tracepoint\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{}}}",
        rec.event.name(),
        us(rec.ts),
        rec.cpu,
        args_json(&rec.event),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::TraceSink;

    fn sample_trace() -> Vec<TraceRecord> {
        let sink = TraceSink::recording(2, 64);
        sink.emit(0, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 5 });
        sink.emit(100, 0, || TraceEvent::SchedSwitch {
            cpu: 0,
            prev_tid: NO_TID,
            prev_class: crate::CLASS_IDLE,
            prev_state: crate::PREV_RUNNABLE,
            next_tid: 5,
            next_class: crate::CLASS_GHOST,
        });
        sink.emit(2_500, 1, || TraceEvent::TickDelivered { cpu: 1 });
        sink.emit(5_000, 0, || TraceEvent::SchedSwitch {
            cpu: 0,
            prev_tid: 5,
            prev_class: crate::CLASS_GHOST,
            prev_state: crate::PREV_BLOCKED,
            next_tid: NO_TID,
            next_class: crate::CLASS_IDLE,
        });
        sink.snapshot()
    }

    #[test]
    fn export_is_valid_json_with_expected_events() {
        let doc = export(&sample_trace());
        let v = parse(&doc).expect("export must parse");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 4 instants + 1 closed slice.
        assert_eq!(events.len(), 5);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name")?.as_str())
            .collect();
        assert!(names.contains(&"sched_wakeup"));
        assert!(names.contains(&"tid 5 (ghost)"));
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("ts").unwrap().as_num(), Some(0.1));
        assert_eq!(slice.get("dur").unwrap().as_num(), Some(4.9));
    }

    #[test]
    fn export_is_deterministic() {
        let a = export(&sample_trace());
        let b = export(&sample_trace());
        assert_eq!(a, b);
    }

    #[test]
    fn open_slices_are_closed_at_trace_end() {
        let sink = TraceSink::recording(1, 8);
        sink.emit(10, 0, || TraceEvent::SchedSwitch {
            cpu: 0,
            prev_tid: NO_TID,
            prev_class: crate::CLASS_IDLE,
            prev_state: crate::PREV_RUNNABLE,
            next_tid: 3,
            next_class: crate::CLASS_CFS,
        });
        sink.emit(400, 0, || TraceEvent::TickDelivered { cpu: 0 });
        let doc = export(&sink.snapshot());
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let slice = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(slice.get("dur").unwrap().as_num(), Some(0.39));
    }
}
