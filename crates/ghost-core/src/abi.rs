//! Typed errors for the agent → kernel ABI boundary (§2.2, §3.4).
//!
//! "Agents are *untrusted* for system integrity": every value an agent
//! hands the kernel — tids, CPUs, sequence numbers, queue and enclave
//! ids — is validated at the boundary, and malformed input is rejected
//! with a typed [`AbiError`] (the simulated analogue of the paper's
//! errno-style syscall returns) rather than trusted. A hostile agent can
//! at worst get its own enclave quarantined (destroyed, threads handed
//! back to CFS); it can never panic the kernel.
//!
//! [`AbiError`] complements [`crate::txn::TxnStatus`]: `TxnStatus` is the
//! shared-memory commit result agents poll (coarse, ABI-stable), while
//! `AbiError` is the precise cause, carried on the transaction via
//! [`crate::txn::Transaction::error`] and surfaced in [`GhostStats`]
//! reject counters and `ghost_abi_reject` tracepoints.
//!
//! [`GhostStats`]: crate::runtime::GhostStats

use crate::txn::TxnStatus;
use std::fmt;

/// A typed rejection at the agent → kernel ABI boundary.
///
/// Every agent-facing entry point that refuses an operation reports one
/// of these; there are no silent drops and no agent-reachable panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AbiError {
    /// The enclave id does not name a live or destroyed enclave slot.
    NoSuchEnclave,
    /// The enclave exists but has been destroyed.
    EnclaveDestroyed,
    /// Enclave creation with an empty CPU set.
    EmptyCpuSet,
    /// Enclave creation claiming a CPU already owned by another enclave.
    CpuConflict,
    /// A CPU id outside the machine (≥ `num_cpus`).
    InvalidCpu,
    /// A valid CPU id that is not part of the enclave's partition.
    CpuOutsideEnclave,
    /// The target CPU is not in the target thread's affinity mask.
    CpuOutsideAffinity,
    /// The target CPU is claimed: a prior commit is pending there, or a
    /// higher-priority class (CFS) owns it.
    CpuBusy,
    /// A tid that names no thread the kernel has ever created.
    NoSuchThread,
    /// A tid whose thread has exited.
    DeadThread,
    /// A live thread that is not managed by this enclave.
    ForeignThread,
    /// The tid names an agent pthread, which cannot be a scheduling
    /// target or attach target.
    AgentThread,
    /// The target thread is known to the enclave but not runnable
    /// (blocked, already on a CPU, or double-scheduled).
    TargetNotRunnable,
    /// The `Aseq`/`Tseq` freshness check failed (`ESTALE`).
    StaleSeq,
    /// A queue id that names no live queue of the enclave.
    NoSuchQueue,
    /// The enclave's default queue cannot be destroyed.
    DefaultQueueProtected,
    /// The queue still has threads associated with it.
    QueueInUse,
    /// `ASSOCIATE_QUEUE()` with messages still pending in the thread's
    /// current queue (§3.1), or `DESTROY_QUEUE()` on a non-empty queue.
    PendingMessages,
    /// `START_GHOST()` on a thread already in the ghOSt class.
    AlreadyAttached,
    /// An upgrade was requested with no staged policy.
    NothingStaged,
    /// `TXNS_RECALL()` on a CPU with no commit pending.
    NoCommitPending,
    /// An attempted write to kernel-owned status-word state; status
    /// words are read-only to agents.
    StatusReadOnly,
}

/// All variants, in `kind()` order (for table-driven tests and for
/// sizing per-kind counter arrays).
pub const ABI_ERROR_KINDS: usize = 22;

impl AbiError {
    /// Dense index of this error, `0..ABI_ERROR_KINDS`; indexes the
    /// per-kind reject counters in `GhostStats`.
    pub fn kind(self) -> usize {
        self as usize
    }

    /// Rebuilds the error from a `kind()` index (trace decoding).
    pub fn from_kind(kind: usize) -> Option<Self> {
        ALL.get(kind).copied()
    }

    /// Stable snake_case name, used in stats dumps and trace args.
    pub fn name(self) -> &'static str {
        match self {
            AbiError::NoSuchEnclave => "no_such_enclave",
            AbiError::EnclaveDestroyed => "enclave_destroyed",
            AbiError::EmptyCpuSet => "empty_cpu_set",
            AbiError::CpuConflict => "cpu_conflict",
            AbiError::InvalidCpu => "invalid_cpu",
            AbiError::CpuOutsideEnclave => "cpu_outside_enclave",
            AbiError::CpuOutsideAffinity => "cpu_outside_affinity",
            AbiError::CpuBusy => "cpu_busy",
            AbiError::NoSuchThread => "no_such_thread",
            AbiError::DeadThread => "dead_thread",
            AbiError::ForeignThread => "foreign_thread",
            AbiError::AgentThread => "agent_thread",
            AbiError::TargetNotRunnable => "target_not_runnable",
            AbiError::StaleSeq => "stale_seq",
            AbiError::NoSuchQueue => "no_such_queue",
            AbiError::DefaultQueueProtected => "default_queue_protected",
            AbiError::QueueInUse => "queue_in_use",
            AbiError::PendingMessages => "pending_messages",
            AbiError::AlreadyAttached => "already_attached",
            AbiError::NothingStaged => "nothing_staged",
            AbiError::NoCommitPending => "no_commit_pending",
            AbiError::StatusReadOnly => "status_read_only",
        }
    }

    /// The coarse shared-memory commit status this error maps to when it
    /// fails a transaction. Non-transaction errors map to `Aborted`.
    pub fn txn_status(self) -> TxnStatus {
        match self {
            AbiError::StaleSeq => TxnStatus::Stale,
            AbiError::TargetNotRunnable => TxnStatus::TargetNotRunnable,
            AbiError::CpuBusy => TxnStatus::CpuBusy,
            AbiError::InvalidCpu | AbiError::CpuOutsideEnclave | AbiError::CpuOutsideAffinity => {
                TxnStatus::CpuUnavailable
            }
            AbiError::NoSuchThread
            | AbiError::DeadThread
            | AbiError::ForeignThread
            | AbiError::AgentThread => TxnStatus::UnknownTarget,
            _ => TxnStatus::Aborted,
        }
    }

    /// True for rejections that are structurally impossible from a
    /// *benign* racing agent: no interleaving of legitimate kernel
    /// events can forge a CPU id off the machine, a tid the kernel
    /// never allocated, or a write into kernel-owned status words.
    /// These count as byzantine strikes against the enclave's
    /// `abi_strike_budget`; everything else (stale seqs, threads that
    /// blocked or died underneath the agent, CPUs that CFS reclaimed)
    /// is an expected race and never penalized.
    pub fn byzantine(self) -> bool {
        matches!(
            self,
            AbiError::InvalidCpu | AbiError::NoSuchThread | AbiError::StatusReadOnly
        )
    }
}

const ALL: [AbiError; ABI_ERROR_KINDS] = [
    AbiError::NoSuchEnclave,
    AbiError::EnclaveDestroyed,
    AbiError::EmptyCpuSet,
    AbiError::CpuConflict,
    AbiError::InvalidCpu,
    AbiError::CpuOutsideEnclave,
    AbiError::CpuOutsideAffinity,
    AbiError::CpuBusy,
    AbiError::NoSuchThread,
    AbiError::DeadThread,
    AbiError::ForeignThread,
    AbiError::AgentThread,
    AbiError::TargetNotRunnable,
    AbiError::StaleSeq,
    AbiError::NoSuchQueue,
    AbiError::DefaultQueueProtected,
    AbiError::QueueInUse,
    AbiError::PendingMessages,
    AbiError::AlreadyAttached,
    AbiError::NothingStaged,
    AbiError::NoCommitPending,
    AbiError::StatusReadOnly,
];

impl fmt::Display for AbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_dense_and_roundtrip() {
        for (i, e) in ALL.iter().enumerate() {
            assert_eq!(e.kind(), i);
            assert_eq!(AbiError::from_kind(i), Some(*e));
        }
        assert_eq!(AbiError::from_kind(ABI_ERROR_KINDS), None);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ABI_ERROR_KINDS);
    }

    #[test]
    fn txn_status_mapping_is_specific() {
        assert_eq!(AbiError::StaleSeq.txn_status(), TxnStatus::Stale);
        assert_eq!(
            AbiError::ForeignThread.txn_status(),
            TxnStatus::UnknownTarget
        );
        assert_eq!(
            AbiError::CpuOutsideEnclave.txn_status(),
            TxnStatus::CpuUnavailable
        );
        assert_eq!(AbiError::EnclaveDestroyed.txn_status(), TxnStatus::Aborted);
    }

    #[test]
    fn byzantine_classification_excludes_races() {
        assert!(AbiError::InvalidCpu.byzantine());
        assert!(AbiError::NoSuchThread.byzantine());
        assert!(AbiError::StatusReadOnly.byzantine());
        // Everything a benign agent can hit through an honest race must
        // never count as a strike.
        for e in [
            AbiError::StaleSeq,
            AbiError::TargetNotRunnable,
            AbiError::CpuBusy,
            AbiError::DeadThread,
            AbiError::CpuOutsideAffinity,
            AbiError::PendingMessages,
        ] {
            assert!(!e.byzantine(), "{e} must not be a strike");
        }
    }
}
