//! The live time source: a monotonic wall clock.
//!
//! The DES backend's `now` is the virtual event clock; here it is
//! `Instant`-based nanoseconds since backend creation. Everything
//! downstream (trace timestamps, watchdog deadlines, histogram samples)
//! is expressed in backend time, so the two worlds stay unit-compatible:
//! nanoseconds from an epoch of zero.

use ghost_sim::time::Nanos;
use std::time::Instant;

/// Monotonic nanoseconds since construction.
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    start: Instant,
}

impl MonotonicClock {
    /// Starts the clock; `now()` reads zero at this moment.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Current backend time.
    pub fn now(&self) -> Nanos {
        self.start.elapsed().as_nanos() as Nanos
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
