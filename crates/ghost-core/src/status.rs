//! Status words: per-thread and per-agent state shared between kernel and
//! agents through (simulated) shared memory.
//!
//! "ghOSt allows agents to efficiently poll auxiliary information about
//! thread and CPU state through status words, mapped into the agent's
//! address space" (§3.1). We implement them with real atomics so the same
//! type is sound if the agent runs in a different OS thread than the
//! simulated kernel (the `ghost-bench` Criterion microbenchmarks exercise
//! exactly that).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Flag bit: the thread is on a CPU right now.
pub const SW_ONCPU: u64 = 1 << 0;
/// Flag bit: the thread is runnable (waiting for an agent decision).
pub const SW_RUNNABLE: u64 = 1 << 1;
/// Flag bit: the enclave/agent considers this entity attached and live.
pub const SW_ATTACHED: u64 = 1 << 2;

/// A shared status word holding a sequence number and state flags.
///
/// The kernel publishes with [`StatusWord::publish`]; agents read with
/// acquire loads, so a read of the sequence number orders after the state
/// change it describes.
///
/// # Examples
///
/// ```
/// use ghost_core::status::{StatusWord, SW_RUNNABLE};
///
/// let sw = StatusWord::new();
/// sw.publish(|seq, flags| (seq + 1, flags | SW_RUNNABLE));
/// assert_eq!(sw.seq(), 1);
/// assert!(sw.has_flags(SW_RUNNABLE));
/// ```
#[derive(Debug, Default)]
pub struct StatusWord {
    /// Packed as two u64s to keep reads cheap and tear-free.
    seq: AtomicU64,
    flags: AtomicU64,
    /// Debug-build guard enforcing the single-publisher contract of
    /// [`StatusWord::publish`]. Absent in release builds.
    #[cfg(debug_assertions)]
    publishing: AtomicU64,
}

/// Shared handle to a status word.
pub type StatusWordRef = Arc<StatusWord>;

impl StatusWord {
    /// Creates a zeroed status word.
    pub fn new() -> StatusWordRef {
        Arc::new(Self::default())
    }

    /// Current sequence number (acquire).
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Current flags (acquire).
    pub fn flags(&self) -> u64 {
        self.flags.load(Ordering::Acquire)
    }

    /// True if all bits of `mask` are set.
    pub fn has_flags(&self, mask: u64) -> bool {
        self.flags() & mask == mask
    }

    /// Kernel-side update: applies `f` to `(seq, flags)` and publishes the
    /// result with release ordering (flags first, then seq, so an agent
    /// that observes the new seq also observes the new flags).
    ///
    /// # Single-writer contract
    ///
    /// The relaxed load → modify → release store is **not** an atomic RMW:
    /// two concurrent publishers can interleave and lose an update. That is
    /// by design — like the real ghOSt ABI, a status word has exactly one
    /// writer (the kernel), and readers (agents) only ever poll. Keeping
    /// the write path free of CAS loops is what makes status words cheap
    /// enough to update on every context switch. Callers that need a
    /// multi-writer counter must use [`StatusWord::bump_seq`] /
    /// [`StatusWord::set_flags`] / [`StatusWord::clear_flags`], which are
    /// genuine atomic RMWs. Debug builds enforce the contract: a second
    /// publisher entering while one is in flight panics.
    pub fn publish<F: FnOnce(u64, u64) -> (u64, u64)>(&self, f: F) {
        #[cfg(debug_assertions)]
        assert_eq!(
            self.publishing.swap(1, Ordering::AcqRel),
            0,
            "StatusWord::publish: concurrent publishers — the kernel must be \
             the only writer (see the single-writer contract)"
        );
        let seq = self.seq.load(Ordering::Relaxed);
        let flags = self.flags.load(Ordering::Relaxed);
        let (nseq, nflags) = f(seq, flags);
        self.flags.store(nflags, Ordering::Release);
        self.seq.store(nseq, Ordering::Release);
        #[cfg(debug_assertions)]
        self.publishing.store(0, Ordering::Release);
    }

    /// Increments the sequence number, returning the new value.
    pub fn bump_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Sets flag bits.
    pub fn set_flags(&self, mask: u64) {
        self.flags.fetch_or(mask, Ordering::AcqRel);
    }

    /// Clears flag bits.
    pub fn clear_flags(&self, mask: u64) {
        self.flags.fetch_and(!mask, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed() {
        let sw = StatusWord::new();
        assert_eq!(sw.seq(), 0);
        assert_eq!(sw.flags(), 0);
        assert!(!sw.has_flags(SW_ONCPU));
    }

    #[test]
    fn bump_and_flags() {
        let sw = StatusWord::new();
        assert_eq!(sw.bump_seq(), 1);
        assert_eq!(sw.bump_seq(), 2);
        sw.set_flags(SW_ONCPU | SW_RUNNABLE);
        assert!(sw.has_flags(SW_ONCPU));
        sw.clear_flags(SW_ONCPU);
        assert!(!sw.has_flags(SW_ONCPU));
        assert!(sw.has_flags(SW_RUNNABLE));
    }

    #[test]
    fn publish_is_atomic_pairwise() {
        let sw = StatusWord::new();
        sw.publish(|s, f| (s + 10, f | SW_ATTACHED));
        assert_eq!(sw.seq(), 10);
        assert!(sw.has_flags(SW_ATTACHED));
    }

    #[test]
    fn cross_thread_visibility() {
        let sw = StatusWord::new();
        let sw2 = Arc::clone(&sw);
        let h = std::thread::spawn(move || {
            for _ in 0..10_000 {
                sw2.publish(|s, f| (s + 1, f ^ SW_RUNNABLE));
            }
        });
        // Reader: seq must be monotone.
        let mut last = 0;
        while last < 10_000 {
            let s = sw.seq();
            assert!(s >= last);
            last = last.max(s);
        }
        h.join().unwrap();
        assert_eq!(sw.seq(), 10_000);
    }

    /// Loom-style interleaving probe for the single-writer contract: one
    /// publisher parks *inside* `publish` (its closure blocks on a
    /// barrier), a second publisher then enters and must be rejected.
    #[cfg(debug_assertions)]
    #[test]
    fn publish_detects_second_publisher() {
        use std::sync::Barrier;

        let sw = StatusWord::new();
        let barrier = Arc::new(Barrier::new(2));
        let (sw_hold, b_hold) = (Arc::clone(&sw), Arc::clone(&barrier));
        let holder = std::thread::spawn(move || {
            sw_hold.publish(|s, f| {
                b_hold.wait(); // publisher is now mid-publish
                b_hold.wait(); // held open until the intruder has panicked
                (s + 1, f)
            });
        });
        barrier.wait();
        let sw_intruder = Arc::clone(&sw);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
        let intruder = std::thread::spawn(move || sw_intruder.publish(|s, f| (s + 1, f)));
        let outcome = intruder.join();
        std::panic::set_hook(prev_hook);
        assert!(outcome.is_err(), "second concurrent publisher must panic");
        barrier.wait();
        holder.join().unwrap();
        assert_eq!(sw.seq(), 1);
    }
}
