//! # ghost-bench — experiment harnesses for the paper's evaluation
//!
//! Each module wires a complete experiment (machine, scheduler(s) under
//! test, workload) and returns structured results. The `benches/`
//! directory contains one `harness = false` bench target per table and
//! figure that sweeps parameters and prints the same rows/series the
//! paper reports; `tests/` runs shrunken versions to lock in the paper's
//! *shapes* (who wins, where crossovers fall) as assertions.
//!
//! | module | regenerates |
//! |---|---|
//! | [`loc`] | Table 2 (lines of code) |
//! | [`fig5`] | Fig. 5 (global-agent scalability) |
//! | [`fig6`] | Fig. 6a–c (Shinjuku comparison + batch sharing) |
//! | [`fig7`] | Fig. 7a–b (Snap tail latencies) |
//! | [`fig8`] | Fig. 8a–f (Google Search throughput + tails) |
//! | [`table4`] | Table 4 (secure VM core scheduling) |
//!
//! Table 3 is regenerated directly from `ghost_sim::CostModel` plus
//! Criterion microbenchmarks of the real data structures
//! (`benches/criterion_micro.rs`).

pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod loc;
pub mod table4;
