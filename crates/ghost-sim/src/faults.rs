//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a fixed schedule of perturbations baked into
//! [`crate::kernel::KernelConfig`] before the run starts, exercising the
//! failure modes §3.4 of the paper claims ghOSt survives: crashed, hung,
//! and upgraded agents, overflowing message queues, and delayed or lost
//! wakeup interrupts. Because the plan is data (not callbacks) a failing
//! run can be shrunk to a minimal plan and replayed bit-for-bit.
//!
//! Two delivery mechanisms:
//!
//! * **One-shot faults** ([`FaultKind::is_one_shot`]) are scheduled as
//!   events at their `at` time and dispatched once by the kernel (and
//!   forwarded to [`crate::agent::AgentDriver::on_fault`]).
//! * **Window faults** are pure time-range predicates the kernel (and the
//!   agent runtime) consult on every affected operation — e.g. every IPI
//!   send checks [`FaultPlan::ipi_fate`].

use crate::time::Nanos;
use crate::topology::CpuId;

/// One scheduled perturbation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires (one-shot) or its window opens.
    pub at: Nanos,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of perturbation a plan can inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the agent pthread pinned to `cpu` (§3.4 agent crash).
    AgentCrash { cpu: CpuId },
    /// The agent pinned to `cpu` spins uselessly until `at + dur`: its
    /// activations do no scheduling work, emulating a deadlocked agent.
    AgentHang { cpu: CpuId, dur: Nanos },
    /// Activations of the agent pinned to `cpu` take `factor`× their
    /// normal time during the window (a slow resume after e.g. a GC
    /// pause or page fault storm).
    AgentSlow { cpu: CpuId, dur: Nanos, factor: u32 },
    /// All message-queue pushes in the window are rejected as if the
    /// rings were full (queue shrink/overflow).
    QueueOverflow { dur: Nanos },
    /// Reschedule IPIs sent during the window arrive `extra` late.
    IpiDelay { dur: Nanos, extra: Nanos },
    /// Reschedule IPIs sent during the window are dropped outright.
    IpiLoss { dur: Nanos },
    /// Wake the `nth` (modulo live count) workload thread even though
    /// nothing unblocked it.
    SpuriousWakeup { nth: u32 },
    /// Timer ticks re-armed during the window land `extra` late (clock
    /// skew between CPUs).
    TickSkew { dur: Nanos, extra: Nanos },
    /// Promote the staged policy in place (§3.4 in-place upgrade).
    /// Delivered to the agent driver; a no-op if nothing is staged.
    Upgrade,
}

impl FaultKind {
    /// True for faults delivered once as an event (vs. window predicates).
    pub fn is_one_shot(&self) -> bool {
        matches!(
            self,
            FaultKind::AgentCrash { .. } | FaultKind::SpuriousWakeup { .. } | FaultKind::Upgrade
        )
    }

    /// Stable kebab-case label, matching the `repro.json` encoding.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::AgentCrash { .. } => "agent-crash",
            FaultKind::AgentHang { .. } => "agent-hang",
            FaultKind::AgentSlow { .. } => "agent-slow",
            FaultKind::QueueOverflow { .. } => "queue-overflow",
            FaultKind::IpiDelay { .. } => "ipi-delay",
            FaultKind::IpiLoss { .. } => "ipi-loss",
            FaultKind::SpuriousWakeup { .. } => "spurious-wakeup",
            FaultKind::TickSkew { .. } => "tick-skew",
            FaultKind::Upgrade => "upgrade",
        }
    }
}

/// What happens to an IPI sent while fault windows are open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpiFate {
    /// Delivered normally.
    Normal,
    /// Delivered this much later.
    Delayed(Nanos),
    /// Never delivered.
    Lost,
}

/// A deterministic schedule of faults; empty by default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled perturbations, in no particular order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a plan from `(at, kind)` pairs.
    pub fn from_events(events: impl IntoIterator<Item = (Nanos, FaultKind)>) -> Self {
        Self {
            events: events
                .into_iter()
                .map(|(at, kind)| FaultEvent { at, kind })
                .collect(),
        }
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn windows<'a, F: Fn(&'a FaultKind) -> Option<Nanos> + 'a>(
        &'a self,
        now: Nanos,
        dur_of: F,
    ) -> impl Iterator<Item = &'a FaultEvent> {
        self.events.iter().filter(move |fe| {
            dur_of(&fe.kind).is_some_and(|dur| fe.at <= now && now < fe.at.saturating_add(dur))
        })
    }

    /// True while a [`FaultKind::QueueOverflow`] window is open.
    pub fn queue_overflow_active(&self, now: Nanos) -> bool {
        self.windows(now, |k| match k {
            FaultKind::QueueOverflow { dur } => Some(*dur),
            _ => None,
        })
        .next()
        .is_some()
    }

    /// The fate of an IPI sent at `now`. Loss wins over delay; delays
    /// from overlapping windows add up.
    pub fn ipi_fate(&self, now: Nanos) -> IpiFate {
        let lost = self
            .windows(now, |k| match k {
                FaultKind::IpiLoss { dur } => Some(*dur),
                _ => None,
            })
            .next()
            .is_some();
        if lost {
            return IpiFate::Lost;
        }
        let extra: Nanos = self
            .windows(now, |k| match k {
                FaultKind::IpiDelay { dur, .. } => Some(*dur),
                _ => None,
            })
            .map(|fe| match fe.kind {
                FaultKind::IpiDelay { extra, .. } => extra,
                _ => 0,
            })
            .sum();
        if extra > 0 {
            IpiFate::Delayed(extra)
        } else {
            IpiFate::Normal
        }
    }

    /// If the agent pinned to `cpu` is hung at `now`, the time the hang
    /// ends (the latest end across overlapping windows).
    pub fn agent_hang_until(&self, cpu: CpuId, now: Nanos) -> Option<Nanos> {
        self.windows(now, move |k| match k {
            FaultKind::AgentHang { cpu: c, dur } if *c == cpu => Some(*dur),
            _ => None,
        })
        .map(|fe| match fe.kind {
            FaultKind::AgentHang { dur, .. } => fe.at.saturating_add(dur),
            _ => unreachable!(),
        })
        .max()
    }

    /// Slowdown multiplier for activations of the agent pinned to `cpu`
    /// at `now` (1 when no window is open; overlapping windows multiply).
    pub fn agent_slow_factor(&self, cpu: CpuId, now: Nanos) -> u64 {
        self.windows(now, move |k| match k {
            FaultKind::AgentSlow { cpu: c, dur, .. } if *c == cpu => Some(*dur),
            _ => None,
        })
        .map(|fe| match fe.kind {
            FaultKind::AgentSlow { factor, .. } => factor.max(1) as u64,
            _ => 1,
        })
        .product::<u64>()
        .max(1)
    }

    /// Extra delay applied to a tick re-armed at `now` (0 when no skew
    /// window is open; overlapping windows add up).
    pub fn tick_extra(&self, now: Nanos) -> Nanos {
        self.windows(now, |k| match k {
            FaultKind::TickSkew { dur, .. } => Some(*dur),
            _ => None,
        })
        .map(|fe| match fe.kind {
            FaultKind::TickSkew { extra, .. } => extra,
            _ => 0,
        })
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_perturbs_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.queue_overflow_active(0));
        assert_eq!(p.ipi_fate(0), IpiFate::Normal);
        assert_eq!(p.agent_hang_until(CpuId(0), 0), None);
        assert_eq!(p.agent_slow_factor(CpuId(0), 0), 1);
        assert_eq!(p.tick_extra(0), 0);
    }

    #[test]
    fn windows_are_half_open() {
        let p = FaultPlan::from_events([(100, FaultKind::QueueOverflow { dur: 50 })]);
        assert!(!p.queue_overflow_active(99));
        assert!(p.queue_overflow_active(100));
        assert!(p.queue_overflow_active(149));
        assert!(!p.queue_overflow_active(150));
    }

    #[test]
    fn ipi_loss_wins_over_delay() {
        let p = FaultPlan::from_events([
            (0, FaultKind::IpiDelay { dur: 100, extra: 7 }),
            (50, FaultKind::IpiLoss { dur: 10 }),
        ]);
        assert_eq!(p.ipi_fate(10), IpiFate::Delayed(7));
        assert_eq!(p.ipi_fate(55), IpiFate::Lost);
        assert_eq!(p.ipi_fate(200), IpiFate::Normal);
    }

    #[test]
    fn agent_windows_are_per_cpu() {
        let p = FaultPlan::from_events([
            (
                10,
                FaultKind::AgentHang {
                    cpu: CpuId(1),
                    dur: 20,
                },
            ),
            (
                10,
                FaultKind::AgentSlow {
                    cpu: CpuId(2),
                    dur: 20,
                    factor: 4,
                },
            ),
        ]);
        assert_eq!(p.agent_hang_until(CpuId(1), 15), Some(30));
        assert_eq!(p.agent_hang_until(CpuId(2), 15), None);
        assert_eq!(p.agent_slow_factor(CpuId(2), 15), 4);
        assert_eq!(p.agent_slow_factor(CpuId(1), 15), 1);
    }

    #[test]
    fn one_shot_classification() {
        assert!(FaultKind::AgentCrash { cpu: CpuId(0) }.is_one_shot());
        assert!(FaultKind::Upgrade.is_one_shot());
        assert!(FaultKind::SpuriousWakeup { nth: 3 }.is_one_shot());
        assert!(!FaultKind::QueueOverflow { dur: 1 }.is_one_shot());
        assert!(!FaultKind::IpiLoss { dur: 1 }.is_one_shot());
    }
}
