//! A model of Linux's Completely Fair Scheduler.
//!
//! This is not a line-for-line port, but it reproduces the behaviours the
//! paper's evaluation depends on:
//!
//! * weighted fair sharing through per-thread **vruntime** and the kernel's
//!   nice→weight table (Fig. 6c compares against a nice-19 batch app),
//! * slice-based tick preemption (`sched_latency` / `min_granularity`),
//! * wakeup preemption with `wakeup_granularity`,
//! * wakeup placement preferring the previous CPU and idle CPUs,
//! * **millisecond-scale** periodic and idle load balancing — the property
//!   §4.4 highlights ("CFS only rebalances threads across CPUs at periodic
//!   intervals on the order of milliseconds, harming query tail latencies").

use crate::class::SchedClass;
use crate::kernel::KernelState;
use crate::thread::Tid;
use crate::time::{Nanos, MILLIS};
use crate::topology::CpuId;
use std::collections::{BTreeSet, HashMap};

/// Kernel nice→weight table (`sched_prio_to_weight`), nice −20 at index 0.
pub const NICE_TO_WEIGHT: [u32; 40] = [
    88761, 71755, 56483, 46273, 36291, // −20 … −16
    29154, 23254, 18705, 14949, 11916, // −15 … −11
    9548, 7620, 6100, 4904, 3906, // −10 … −6
    3121, 2501, 1991, 1586, 1277, // −5 … −1
    1024, 820, 655, 526, 423, // 0 … 4
    335, 272, 215, 172, 137, // 5 … 9
    110, 87, 70, 56, 45, // 10 … 14
    36, 29, 23, 18, 15, // 15 … 19
];

/// Weight of nice 0.
pub const NICE_0_WEIGHT: u64 = 1024;

/// Weight for a nice value.
pub fn weight_of(nice: i8) -> u32 {
    NICE_TO_WEIGHT[(nice as i32 + 20).clamp(0, 39) as usize]
}

/// Tunables mirroring the kernel's CFS knobs.
#[derive(Debug, Clone)]
pub struct CfsTunables {
    /// Target latency for every runnable thread to run once.
    pub sched_latency: Nanos,
    /// Minimum slice regardless of runqueue length.
    pub min_granularity: Nanos,
    /// A waking thread preempts only if it beats current by this much.
    pub wakeup_granularity: Nanos,
    /// Periodic load-balance interval per CPU.
    pub balance_interval: Nanos,
}

impl Default for CfsTunables {
    fn default() -> Self {
        Self {
            sched_latency: 6 * MILLIS,
            min_granularity: 750_000,
            wakeup_granularity: MILLIS,
            balance_interval: 4 * MILLIS,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CfsTask {
    vruntime: u64,
    weight: u32,
    /// CPU whose runqueue holds the task when queued.
    cpu: CpuId,
    on_rq: bool,
}

#[derive(Debug, Default)]
struct CfsRq {
    /// Runnable (not running) tasks ordered by (vruntime, tid).
    queue: BTreeSet<(u64, Tid)>,
    /// Monotonic floor for entering tasks.
    min_vruntime: u64,
    /// Includes the running task of this class, if any.
    nr_running: u32,
}

/// The CFS scheduling-class implementation.
pub struct CfsClass {
    tun: CfsTunables,
    tasks: HashMap<Tid, CfsTask>,
    rqs: Vec<CfsRq>,
    last_balance: Vec<Nanos>,
}

impl CfsClass {
    /// Creates the class for a machine with `num_cpus` CPUs.
    pub fn new(num_cpus: usize) -> Self {
        Self::with_tunables(num_cpus, CfsTunables::default())
    }

    /// Creates the class with explicit tunables.
    pub fn with_tunables(num_cpus: usize, tun: CfsTunables) -> Self {
        Self {
            tun,
            tasks: HashMap::new(),
            rqs: (0..num_cpus).map(|_| CfsRq::default()).collect(),
            last_balance: vec![0; num_cpus],
        }
    }

    /// Number of runnable CFS tasks associated with `cpu` (queued +
    /// running), mirrored into `CpuState::cfs_queued` for observers.
    pub fn nr_running(&self, cpu: CpuId) -> u32 {
        self.rqs[cpu.index()].nr_running
    }

    fn sync_cpu_counter(&self, cpu: CpuId, k: &mut KernelState) {
        k.cpus[cpu.index()].cfs_queued = self.rqs[cpu.index()].queue.len() as u32;
    }

    fn vdelta(wall: Nanos, weight: u32) -> u64 {
        wall * NICE_0_WEIGHT / weight as u64
    }

    /// Time slice for a runqueue with `nr` runnable threads.
    fn slice(&self, nr: u32) -> Nanos {
        (self.tun.sched_latency / nr.max(1) as u64).max(self.tun.min_granularity)
    }

    fn select_cpu(&self, tid: Tid, k: &KernelState) -> CpuId {
        let t = &k.threads[tid.index()];
        // 1. Previous CPU if it is idle and its sibling is free too (a
        //    warm idle core beats everything).
        if let Some(prev) = t.last_cpu {
            if t.affinity.contains(prev)
                && k.cpus[prev.index()].is_idle()
                && !k
                    .topo
                    .sibling(prev)
                    .is_some_and(|s| k.cpus[s.index()].is_occupied())
            {
                return prev;
            }
        }
        // 2. Like Linux's select_idle_sibling: search for an idle CPU
        //    only within the previous CPU's LLC domain (idle cores before
        //    idle SMT siblings). CFS does NOT scan the whole machine on
        //    wakeup — that myopia is what §4.4's global agent exploits.
        let llc = t
            .last_cpu
            .map(|p| k.topo.ccx_cpus(k.topo.info(p).ccx))
            .unwrap_or_else(|| t.affinity);
        let mut best_idle: Option<(bool, u8, CpuId)> = None;
        // 3. A CPU running only lower-class work (e.g. a ghOSt thread),
        //    which CFS will preempt.
        let mut best_lower: Option<CpuId> = None;
        // 4. Least-loaded CFS runqueue in the LLC.
        let mut least: Option<(u32, CpuId)> = None;
        for c in llc.and(&t.affinity).iter() {
            let cs = &k.cpus[c.index()];
            if cs.is_idle() {
                let sibling_busy = k
                    .topo
                    .sibling(c)
                    .is_some_and(|s| k.cpus[s.index()].is_occupied());
                let d = t.last_cpu.map_or(2, |p| k.topo.distance(p, c));
                if best_idle.is_none_or(|(bb, bd, _)| (sibling_busy, d) < (bb, bd)) {
                    best_idle = Some((sibling_busy, d, c));
                }
            } else if best_idle.is_none() {
                if let Some(cur) = cs.current {
                    let cur_class = k.threads[cur.index()].class;
                    if cur_class > crate::class::CLASS_CFS && best_lower.is_none() {
                        best_lower = Some(c);
                    }
                }
                let nr = self.rqs[c.index()].nr_running;
                if least.is_none_or(|(bn, _)| nr < bn) {
                    least = Some((nr, c));
                }
            }
        }
        if let Some((_, _, c)) = best_idle {
            return c;
        }
        if let Some(c) = best_lower {
            return c;
        }
        if let Some((_, c)) = least {
            return c;
        }
        // LLC fully outside the affinity mask (e.g. after an affinity
        // change): fall back to any allowed CPU, idle first.
        t.affinity
            .iter()
            .find(|&c| k.cpus[c.index()].is_idle())
            .or_else(|| t.affinity.first())
            .expect("thread must have a non-empty affinity")
    }

    fn enqueue_on(&mut self, tid: Tid, cpu: CpuId, k: &mut KernelState) {
        let rq_min = self.rqs[cpu.index()].min_vruntime;
        let latency = self.tun.sched_latency;
        let task = self.tasks.get_mut(&tid).expect("task attached");
        // Sleeper fairness: place no earlier than min_vruntime − latency.
        task.vruntime = task.vruntime.max(rq_min.saturating_sub(latency));
        task.cpu = cpu;
        task.on_rq = true;
        let key = (task.vruntime, tid);
        let rq = &mut self.rqs[cpu.index()];
        rq.queue.insert(key);
        rq.nr_running += 1;
        self.sync_cpu_counter(cpu, k);
    }

    fn remove_queued(&mut self, tid: Tid, k: &mut KernelState) -> bool {
        let Some(task) = self.tasks.get_mut(&tid) else {
            return false;
        };
        if !task.on_rq {
            return false;
        }
        task.on_rq = false;
        let cpu = task.cpu;
        let key = (task.vruntime, tid);
        let rq = &mut self.rqs[cpu.index()];
        let removed = rq.queue.remove(&key);
        debug_assert!(removed, "queued task must be present in its rq");
        rq.nr_running = rq.nr_running.saturating_sub(1);
        self.sync_cpu_counter(cpu, k);
        true
    }

    /// Steals the highest-vruntime task from the busiest runqueue that the
    /// thief CPU may run; used for idle balancing.
    fn steal_for(&mut self, thief: CpuId, k: &mut KernelState) -> Option<Tid> {
        let busiest = (0..self.rqs.len())
            .filter(|&i| i != thief.index() && !self.rqs[i].queue.is_empty())
            .max_by_key(|&i| self.rqs[i].queue.len())?;
        // Take from the back (largest vruntime → least cache-hot loss).
        let cand = self.rqs[busiest]
            .queue
            .iter()
            .rev()
            .find(|(_, t)| k.threads[t.index()].affinity.contains(thief))
            .copied()?;
        let (_, tid) = cand;
        self.rqs[busiest].queue.remove(&cand);
        self.rqs[busiest].nr_running -= 1;
        self.sync_cpu_counter(CpuId(busiest as u16), k);
        // vruntimes live on one global clock (all runqueues start from the
        // same epoch), so migration needs no renormalization; the floor in
        // `enqueue_on` handles rqs that have run ahead. Renormalizing by
        // (to_min - from_min) here would compound across migrations.
        let task = self.tasks.get_mut(&tid).expect("stolen task attached");
        task.on_rq = false;
        Some(tid)
    }

    /// Periodic balance: pull one task toward `cpu` if a remote runqueue is
    /// at least two tasks longer.
    fn periodic_balance(&mut self, cpu: CpuId, k: &mut KernelState) {
        let here = self.rqs[cpu.index()].nr_running;
        let Some(busiest) = (0..self.rqs.len())
            .filter(|&i| i != cpu.index())
            .max_by_key(|&i| self.rqs[i].nr_running)
        else {
            return;
        };
        if self.rqs[busiest].nr_running < here + 2 || self.rqs[busiest].queue.is_empty() {
            return;
        }
        let cand = self.rqs[busiest]
            .queue
            .iter()
            .rev()
            .find(|(_, t)| k.threads[t.index()].affinity.contains(cpu))
            .copied();
        if let Some(key @ (_, tid)) = cand {
            self.rqs[busiest].queue.remove(&key);
            self.rqs[busiest].nr_running -= 1;
            self.sync_cpu_counter(CpuId(busiest as u16), k);
            // Same global-clock argument as `steal_for`: no renorm.
            let task = self.tasks.get_mut(&tid).expect("balanced task attached");
            task.on_rq = false;
            self.enqueue_on(tid, cpu, k);
            if k.cpus[cpu.index()].is_idle() {
                k.request_resched(cpu);
            }
        }
    }
}

impl SchedClass for CfsClass {
    fn name(&self) -> &'static str {
        "cfs"
    }

    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId> {
        let cpu = self.select_cpu(tid, k);
        self.enqueue_on(tid, cpu, k);
        Some(cpu)
    }

    fn dequeue(&mut self, tid: Tid, k: &mut KernelState) {
        self.remove_queued(tid, k);
    }

    fn pick_next(&mut self, cpu: CpuId, k: &mut KernelState) -> Option<Tid> {
        let rq = &mut self.rqs[cpu.index()];
        if let Some(&key @ (vr, tid)) = rq.queue.iter().next() {
            rq.queue.remove(&key);
            rq.min_vruntime = rq.min_vruntime.max(vr);
            let task = self.tasks.get_mut(&tid).expect("picked task attached");
            task.on_rq = false;
            // nr_running keeps counting it: it is now current.
            self.sync_cpu_counter(cpu, k);
            return Some(tid);
        }
        // Idle balance: steal from the busiest runqueue.
        if let Some(tid) = self.steal_for(cpu, k) {
            let rq = &mut self.rqs[cpu.index()];
            rq.nr_running += 1;
            self.sync_cpu_counter(cpu, k);
            return Some(tid);
        }
        None
    }

    fn put_prev(&mut self, tid: Tid, cpu: CpuId, still_runnable: bool, k: &mut KernelState) {
        let wall = k.threads[tid.index()].last_stint_wall;
        let rq = &mut self.rqs[cpu.index()];
        rq.nr_running = rq.nr_running.saturating_sub(1);
        let task = self.tasks.get_mut(&tid).expect("prev task attached");
        debug_assert!(
            task.vruntime < 1 << 62 && wall < 1 << 50,
            "CFS accounting out of range: vruntime={} wall={wall}",
            task.vruntime,
        );
        task.vruntime += Self::vdelta(wall, task.weight);
        if still_runnable {
            self.enqueue_on(tid, cpu, k);
        } else {
            self.sync_cpu_counter(cpu, k);
        }
    }

    fn on_tick(&mut self, cpu: CpuId, current: Tid, k: &mut KernelState) -> bool {
        let rq = &self.rqs[cpu.index()];
        let t = &k.threads[current.index()];
        let ran = k.now.saturating_sub(t.stint_start);

        !rq.queue.is_empty() && ran >= self.slice(rq.nr_running)
    }

    fn on_tick_all(&mut self, cpu: CpuId, k: &mut KernelState) {
        if k.now.saturating_sub(self.last_balance[cpu.index()]) >= self.tun.balance_interval {
            self.last_balance[cpu.index()] = k.now;
            self.periodic_balance(cpu, k);
        }
    }

    fn should_preempt(&self, waking: Tid, running: Tid, _k: &KernelState) -> bool {
        let (Some(w), Some(r)) = (self.tasks.get(&waking), self.tasks.get(&running)) else {
            return false;
        };
        let gran = Self::vdelta(self.tun.wakeup_granularity, r.weight);
        w.vruntime + gran < r.vruntime
    }

    fn has_runnable(&self, cpu: CpuId, _k: &KernelState) -> bool {
        !self.rqs[cpu.index()].queue.is_empty()
    }

    fn on_attach(&mut self, tid: Tid, k: &mut KernelState) {
        let t = &k.threads[tid.index()];
        let cpu = t
            .last_cpu
            .or_else(|| t.affinity.first())
            .unwrap_or(CpuId(0));
        let vr = self.rqs[cpu.index()].min_vruntime;
        self.tasks.insert(
            tid,
            CfsTask {
                vruntime: vr,
                weight: weight_of(t.nice),
                cpu,
                on_rq: false,
            },
        );
    }

    fn on_detach(&mut self, tid: Tid, k: &mut KernelState) {
        self.remove_queued(tid, k);
        self.tasks.remove(&tid);
    }

    fn on_affinity_changed(&mut self, tid: Tid, k: &mut KernelState) {
        // Requeue a queued task if its runqueue is no longer allowed.
        if let Some(task) = self.tasks.get(&tid) {
            if task.on_rq && !k.threads[tid.index()].affinity.contains(task.cpu) {
                self.remove_queued(tid, k);
                let cpu = self.select_cpu(tid, k);
                self.enqueue_on(tid, cpu, k);
            }
        }
    }

    fn on_nice_changed(&mut self, tid: Tid, k: &mut KernelState) {
        if let Some(task) = self.tasks.get_mut(&tid) {
            task.weight = weight_of(k.threads[tid.index()].nice);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_table_is_kernel_table() {
        assert_eq!(weight_of(0), 1024);
        assert_eq!(weight_of(-20), 88761);
        assert_eq!(weight_of(19), 15);
        // Each nice step is ~1.25x.
        let ratio = weight_of(-1) as f64 / weight_of(0) as f64;
        assert!((ratio - 1.25).abs() < 0.01);
    }

    #[test]
    fn weight_clamps_out_of_range() {
        assert_eq!(weight_of(-128), weight_of(-20));
        assert_eq!(weight_of(127), weight_of(19));
    }

    #[test]
    fn vdelta_is_inverse_weighted() {
        // Nice 0 advances 1:1; heavier weight advances slower.
        assert_eq!(CfsClass::vdelta(1000, 1024), 1000);
        assert!(CfsClass::vdelta(1000, weight_of(-20)) < 100);
        assert!(CfsClass::vdelta(1000, weight_of(19)) > 60_000);
    }

    #[test]
    fn slice_scales_with_runqueue() {
        let c = CfsClass::new(1);
        assert_eq!(c.slice(1), 6 * MILLIS);
        assert_eq!(c.slice(3), 2 * MILLIS);
        // Floored at min_granularity.
        assert_eq!(c.slice(100), 750_000);
    }
}
