//! The Google Snap policy (§4.3): "a simple, yet effective centralized
//! FIFO policy. The global agent tries to find an idle CPU to schedule
//! its threads, giving Snap worker threads strict priority over
//! antagonist threads. ... We did not use any dedicated cores."
//!
//! Snap worker threads are marked with [`SNAP_COOKIE`]; everything else
//! managed by the enclave is treated as antagonist (batch) load.

use crate::tracker::ThreadTracker;
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::txn::Transaction;
use ghost_sim::thread::Tid;
use ghost_sim::topology::CpuId;
use std::collections::{HashSet, VecDeque};

/// Cookie value marking Snap packet-processing worker threads.
pub const SNAP_COOKIE: u64 = 0x54A9;

/// Strict-priority centralized FIFO: Snap workers over antagonists.
pub struct SnapPolicy {
    tracker: ThreadTracker,
    snap_threads: HashSet<Tid>,
    snap_rq: VecDeque<Tid>,
    batch_rq: VecDeque<Tid>,
    queued: HashSet<Tid>,
    /// Antagonist preemptions by Snap workers.
    pub batch_preemptions: u64,
    /// Commits (both classes).
    pub commits: u64,
    /// Failed commits.
    pub failures: u64,
}

impl SnapPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        Self {
            tracker: ThreadTracker::new(),
            snap_threads: HashSet::new(),
            snap_rq: VecDeque::new(),
            batch_rq: VecDeque::new(),
            queued: HashSet::new(),
            batch_preemptions: 0,
            commits: 0,
            failures: 0,
        }
    }

    fn enqueue(&mut self, tid: Tid) {
        if self.queued.insert(tid) {
            if self.snap_threads.contains(&tid) {
                self.snap_rq.push_back(tid);
            } else {
                self.batch_rq.push_back(tid);
            }
        }
    }

    fn dequeue(&mut self, tid: Tid) {
        if self.queued.remove(&tid) {
            self.snap_rq.retain(|&t| t != tid);
            self.batch_rq.retain(|&t| t != tid);
        }
    }

    /// Picks a target CPU for a Snap worker: an idle CPU near where the
    /// worker last ran, falling back to preempting an antagonist.
    fn pick_cpu(&self, tid: Tid, ctx: &PolicyCtx<'_>) -> Option<(CpuId, bool)> {
        let idle = ctx.idle_cpus();
        let last = self.tracker.get(tid).map(|t| t.last_cpu);
        if let Some(last) = last {
            if idle.contains(last) {
                return Some((last, false));
            }
            // Same-socket idle CPU next.
            if let Some(c) = idle.iter().find(|&c| ctx.topo().same_socket(c, last)) {
                return Some((c, false));
            }
        }
        if let Some(c) = idle.first() {
            return Some((c, false));
        }
        // No idle CPU: preempt an antagonist (never another Snap worker).
        let victim_cpu = ctx.enclave_cpus().iter().find(|&cpu| {
            !ctx.commit_pending(cpu)
                && ctx
                    .running_ghost(cpu)
                    .is_some_and(|t| !self.snap_threads.contains(&t))
        })?;
        Some((victim_cpu, true))
    }
}

impl Default for SnapPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl GhostPolicy for SnapPolicy {
    fn name(&self) -> &str {
        "snap-fifo"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        if msg.ty == MsgType::ThreadCreated {
            if let Some(view) = ctx.thread_view(msg.tid) {
                if view.cookie == SNAP_COOKIE {
                    self.snap_threads.insert(msg.tid);
                }
            }
        }
        let Some(view) = self.tracker.apply(msg) else {
            return;
        };
        if view.dead {
            self.dequeue(msg.tid);
            self.snap_threads.remove(&msg.tid);
        } else if view.runnable {
            self.enqueue(msg.tid);
        } else {
            self.dequeue(msg.tid);
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        // Snap workers first — they may preempt antagonists.
        while let Some(&tid) = self.snap_rq.front() {
            let Some((cpu, preempts)) = self.pick_cpu(tid, ctx) else {
                break; // Everything busy with Snap work or CFS.
            };
            self.snap_rq.pop_front();
            self.queued.remove(&tid);
            ctx.charge(60);
            let mut txn = Transaction::new(tid, cpu).with_thread_seq(self.tracker.seq(tid));
            if ctx.commit_one(&mut txn).committed() {
                self.commits += 1;
                if preempts {
                    self.batch_preemptions += 1;
                }
                self.tracker.mark_scheduled(tid);
            } else {
                self.failures += 1;
                self.enqueue(tid);
                break;
            }
        }
        // Antagonists fill whatever is still idle.
        for cpu in ctx.idle_cpus().iter() {
            let Some(tid) = self.batch_rq.pop_front() else {
                break;
            };
            self.queued.remove(&tid);
            ctx.charge(60);
            let mut txn = Transaction::new(tid, cpu).with_thread_seq(self.tracker.seq(tid));
            if ctx.commit_one(&mut txn).committed() {
                self.commits += 1;
                self.tracker.mark_scheduled(tid);
            } else {
                self.failures += 1;
                self.enqueue(tid);
            }
        }
    }

    fn on_reconstruct(
        &mut self,
        snapshot: &[ghost_core::ThreadSnapshot],
        _ctx: &mut PolicyCtx<'_>,
    ) {
        self.tracker.resync(
            snapshot
                .iter()
                .map(|s| (s.tid, s.seq, s.runnable, s.last_cpu)),
        );
        self.snap_rq.clear();
        self.batch_rq.clear();
        self.queued.clear();
        // The Snap/antagonist split comes from the cookie, not message
        // history, so the scan recovers it completely.
        self.snap_threads = snapshot
            .iter()
            .filter(|s| s.cookie == SNAP_COOKIE)
            .map(|s| s.tid)
            .collect();
        for s in snapshot {
            if s.runnable && !s.on_cpu {
                self.enqueue(s.tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_and_batch_queues_are_separate() {
        let mut p = SnapPolicy::new();
        p.snap_threads.insert(Tid(1));
        p.enqueue(Tid(1));
        p.enqueue(Tid(2));
        assert_eq!(p.snap_rq.len(), 1);
        assert_eq!(p.batch_rq.len(), 1);
        p.dequeue(Tid(1));
        assert!(p.snap_rq.is_empty());
        assert_eq!(p.batch_rq.len(), 1);
    }
}
