//! The live kernel state: a [`GhostBackend`] over real OS threads.
//!
//! One mutex-protected [`LiveState`] plays the role the event-driven
//! `KernelState` plays in the DES: it owns the thread table, the CPU
//! lanes, the timer heap, and the deferred-operation buffers. Scheduling
//! logic runs on whichever OS thread triggered it (a worker ending a
//! stint, the timer thread firing a watchdog, an agent committing a
//! transaction), serialized by the state lock; the `ghost-core` hooks are
//! invoked from [`LiveState::settle`] in exactly the DES's deferred-op
//! priority order (class moves → wakes → kills → rescheds), so the two
//! backends present the same event ordering to an unmodified policy.
//!
//! "CPUs" here are the enclave's logical lanes, not pinned hardware
//! threads: a dispatched worker is unparked and runs wherever the host
//! kernel puts it. Exclusive occupancy per lane is still enforced — one
//! thread on a lane at a time, transaction commits move workers between
//! lanes — which is what the invariant checker verifies on live traces.

use crate::clock::MonotonicClock;
use crate::ring::SpscConsumer;
use crate::worker::{WorkerCmd, WorkerCtl};
use ghost_core::{GhostBackend, GhostRuntime};
use ghost_sim::class::{ClassId, OffCpuReason, CLASS_CFS, CLASS_GHOST, CLASS_IDLE};
use ghost_sim::costs::CostModel;
use ghost_sim::cpuset::CpuSet;
use ghost_sim::faults::{FaultPlan, IpiFate};
use ghost_sim::thread::{ThreadKind, ThreadState, Tid};
use ghost_sim::time::Nanos;
use ghost_sim::topology::{CpuId, Topology};
use ghost_trace::{TraceEvent, TraceSink, NO_TID, PREV_BLOCKED, PREV_DEAD, PREV_RUNNABLE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;

/// IPIs and near-now wakes within this slack of `now` are applied on the
/// spot instead of round-tripping through the timer thread: the modelled
/// propagation delays (sub-microsecond) are below what a wall-clock timer
/// hop can resolve.
const IMMEDIATE_SLACK_NS: Nanos = 100_000;

/// A wake pushed into an agent's lock-free signal ring when scheduling
/// events land, so a spinning agent can re-activate without taking locks.
#[derive(Debug, Clone, Copy)]
pub struct WakeSignal {
    /// Thread the event concerned.
    pub tid: u32,
    /// Backend time of the event.
    pub at: Nanos,
}

/// What a timer-heap entry does when it fires.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TimerEntry {
    /// Wake a thread ([`GhostBackend::wake_at`]).
    Wake(Tid),
    /// Deliver a driver timer ([`GhostBackend::arm_driver_timer`]).
    Driver(u64),
    /// A resched IPI logically arrives ([`GhostBackend::send_ipi`]).
    Resched(CpuId),
    /// Re-activate a (spinning) agent ([`GhostBackend::schedule_agent_loop`]).
    AgentLoop(Tid),
    /// Dispatch the one-shot fault at this index of the configured
    /// [`FaultPlan`] (agent crash, spurious wakeup, in-place upgrade).
    Fault(usize),
}

/// Min-heap slot ordered by deadline, FIFO within a deadline.
pub(crate) struct TimerSlot {
    pub at: Nanos,
    pub seq: u64,
    pub entry: TimerEntry,
}

impl PartialEq for TimerSlot {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerSlot {}
impl PartialOrd for TimerSlot {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerSlot {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One real OS thread under live-kernel management.
pub(crate) struct LiveThread {
    pub name: String,
    pub state: ThreadState,
    pub kind: ThreadKind,
    pub class: ClassId,
    pub cpu: Option<CpuId>,
    pub last_cpu: Option<CpuId>,
    pub affinity: CpuSet,
    pub nice: i8,
    pub cookie: u64,
    pub runnable_since: Nanos,
    pub total_work: Nanos,
    pub stint_start: Nanos,
    pub ctl: Arc<WorkerCtl>,
    pub join: Option<JoinHandle<()>>,
}

/// One logical CPU lane.
#[derive(Default)]
pub(crate) struct LiveCpu {
    pub current: Option<Tid>,
    pub dispatches: u64,
}

/// Live-backend counters (the analogue of the DES `SimStats` slice the
/// smoke harness cares about).
#[derive(Debug, Default, Clone, Copy)]
pub struct LiveStats {
    /// Worker dispatches (context switches in).
    pub dispatches: u64,
    /// Stints ended (context switches out).
    pub stints: u64,
    /// Wakes applied.
    pub wakes: u64,
    /// Resched IPIs delivered.
    pub ipis: u64,
    /// Timer-heap entries fired.
    pub timers_fired: u64,
    /// Preempt flags raised against running workers.
    pub preempts: u64,
    /// Resched IPIs dropped by an open `IpiLoss` fault window.
    pub ipis_lost: u64,
    /// Resched IPIs deferred by an open `IpiDelay` fault window.
    pub ipis_delayed: u64,
    /// One-shot faults dispatched from the configured plan.
    pub faults_injected: u64,
    /// Wall-clock nanoseconds agent loops stalled to honour an open
    /// `AgentSlow` window (real stretched time, not bookkeeping).
    pub fault_stall_ns: u64,
}

/// Spawns the OS thread for a respawned/new agent. Installed by
/// `LiveKernel`; invoked from [`LiveState::settle`] so agents created by
/// the runtime itself (e.g. §3.4 standby respawn) get real threads too.
pub(crate) type AgentSpawner =
    Arc<dyn Fn(Tid, CpuId, SpscConsumer<WakeSignal>) -> JoinHandle<()> + Send + Sync>;

pub struct LiveState {
    pub(crate) clock: MonotonicClock,
    pub(crate) topo: Topology,
    pub(crate) costs: CostModel,
    pub(crate) trace: TraceSink,
    pub(crate) rng: StdRng,
    pub(crate) threads: Vec<LiveThread>,
    pub(crate) cpus: Vec<LiveCpu>,
    pub(crate) stats: LiveStats,
    pub(crate) runtime: Option<GhostRuntime>,
    pub(crate) shutdown: bool,

    // Deferred operations, drained by `settle()` in DES priority order.
    pending_class_moves: Vec<(Tid, ClassId)>,
    pending_wakes: Vec<Tid>,
    pending_kills: Vec<Tid>,
    /// `(cpu, arm_at)`: reschedule `cpu`, honouring the commit's arm
    /// time — `hook_pick_next` refuses slots whose IPI has not logically
    /// arrived, so an early resched re-arms a timer instead of dropping
    /// the dispatch on the floor.
    pending_resched: Vec<(CpuId, Nanos)>,
    /// Agents created via the trait that still need an OS thread.
    pending_spawns: Vec<(Tid, CpuId)>,

    pub(crate) timers: BinaryHeap<Reverse<TimerSlot>>,
    timer_seq: u64,
    /// Notified when a timer is armed earlier than the timer thread's
    /// current sleep; the timer thread waits on the state mutex with this
    /// condvar.
    pub(crate) timer_cv: Arc<Condvar>,
    /// Signal-ring producers, one per live agent, pushed under the state
    /// lock (a serialized single producer) and drained by the agent's own
    /// OS thread.
    pub(crate) agent_rings: Vec<(Tid, crate::ring::SpscProducer<WakeSignal>)>,
    pub(crate) agent_spawner: Option<AgentSpawner>,
    /// The deterministic fault schedule, consulted against wall-clock
    /// `now`. Window predicates are checked inline by the fault hooks
    /// below; one-shot events are armed as [`TimerEntry::Fault`] timers
    /// by the kernel at construction.
    pub(crate) faults: FaultPlan,
}

impl LiveState {
    pub(crate) fn new(topo: Topology, costs: CostModel, trace: TraceSink, seed: u64) -> Self {
        let n = topo.num_cpus();
        Self {
            clock: MonotonicClock::new(),
            topo,
            costs,
            trace,
            rng: StdRng::seed_from_u64(seed),
            threads: Vec::new(),
            cpus: (0..n).map(|_| LiveCpu::default()).collect(),
            stats: LiveStats::default(),
            runtime: None,
            shutdown: false,
            pending_class_moves: Vec::new(),
            pending_wakes: Vec::new(),
            pending_kills: Vec::new(),
            pending_resched: Vec::new(),
            pending_spawns: Vec::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            timer_cv: Arc::new(Condvar::new()),
            agent_rings: Vec::new(),
            agent_spawner: None,
            faults: FaultPlan::none(),
        }
    }

    /// Registers a new workload OS thread (blocked, CFS class). The
    /// caller spawns the actual `std::thread` and stores its handle via
    /// [`LiveState::set_join`].
    pub(crate) fn add_worker(&mut self, name: &str) -> (Tid, Arc<WorkerCtl>) {
        let tid = Tid(self.threads.len() as u32);
        let ctl = WorkerCtl::new();
        self.threads.push(LiveThread {
            name: name.to_string(),
            state: ThreadState::Blocked,
            kind: ThreadKind::Workload,
            class: CLASS_CFS,
            cpu: None,
            last_cpu: None,
            affinity: self.topo.all_cpus_set(),
            nice: 0,
            cookie: 0,
            runnable_since: 0,
            total_work: 0,
            stint_start: 0,
            ctl: Arc::clone(&ctl),
            join: None,
        });
        (tid, ctl)
    }

    pub(crate) fn set_join(&mut self, tid: Tid, join: JoinHandle<()>) {
        self.threads[tid.index()].join = Some(join);
    }

    /// The name a thread was registered under (diagnostics).
    pub fn thread_name(&self, tid: Tid) -> Option<&str> {
        self.threads.get(tid.index()).map(|t| t.name.as_str())
    }

    /// Requests a reschedule of `cpu` (applied at the next settle). Used
    /// by agent threads when they park: local commits (`txn.cpu ==
    /// agent_cpu`) send no IPI — in the DES the kernel reschedules the
    /// agent's CPU when the agent blocks, and this is the live analogue.
    pub(crate) fn request_resched(&mut self, cpu: CpuId) {
        let now = self.clock.now();
        self.pending_resched.push((cpu, now));
    }

    fn arm_timer(&mut self, at: Nanos, entry: TimerEntry) {
        self.timer_seq += 1;
        self.timers.push(Reverse(TimerSlot {
            at,
            seq: self.timer_seq,
            entry,
        }));
        // The timer thread may be sleeping past this deadline.
        self.timer_cv.notify_all();
    }

    pub(crate) fn next_deadline(&self) -> Option<Nanos> {
        self.timers.peek().map(|Reverse(slot)| slot.at)
    }

    /// Pops every timer due at or before `now`, applying each: wakes and
    /// IPIs go to the deferred buffers; driver timers and agent loops are
    /// returned for the caller (the timer thread) to run outside this
    /// borrow.
    pub(crate) fn take_due_timers(&mut self, now: Nanos) -> Vec<TimerEntry> {
        let mut due = Vec::new();
        while let Some(Reverse(slot)) = self.timers.peek() {
            if slot.at > now {
                break;
            }
            let Reverse(slot) = self.timers.pop().unwrap();
            self.stats.timers_fired += 1;
            match slot.entry {
                TimerEntry::Wake(tid) => self.pending_wakes.push(tid),
                TimerEntry::Resched(cpu) => self.pending_resched.push((cpu, slot.at)),
                entry => due.push(entry),
            }
        }
        due
    }

    /// Applies deferred operations until quiescent, in the DES's priority
    /// order. Mirrors `ghost-sim`'s `Kernel::settle`.
    pub(crate) fn settle(&mut self) {
        if self.shutdown {
            self.pending_class_moves.clear();
            self.pending_wakes.clear();
            self.pending_kills.clear();
            self.pending_resched.clear();
            return;
        }
        let Some(rt) = self.runtime.clone() else {
            return;
        };
        for _ in 0..100_000 {
            if !self.pending_class_moves.is_empty() {
                let (tid, class) = self.pending_class_moves.remove(0);
                self.apply_class_move(&rt, tid, class);
            } else if !self.pending_wakes.is_empty() {
                let tid = self.pending_wakes.remove(0);
                self.apply_wake(&rt, tid);
            } else if !self.pending_kills.is_empty() {
                let tid = self.pending_kills.remove(0);
                self.apply_kill(&rt, tid);
            } else if !self.pending_resched.is_empty() {
                let (cpu, at) = self.pending_resched.remove(0);
                self.apply_resched(&rt, cpu, at);
            } else if !self.pending_spawns.is_empty() {
                let (tid, cpu) = self.pending_spawns.remove(0);
                self.spawn_agent_thread(tid, cpu);
            } else {
                return;
            }
        }
        panic!("live settle() did not converge: livelock in deferred operations");
    }

    fn apply_wake(&mut self, rt: &GhostRuntime, tid: Tid) {
        let now = self.clock.now();
        let t = &mut self.threads[tid.index()];
        if t.state == ThreadState::Dead {
            return;
        }
        if t.kind == ThreadKind::Agent {
            // Agents never park-wait on the live kernel's runqueues; a
            // wake (re)activates their OS thread directly. Idempotent.
            if t.state == ThreadState::Blocked {
                t.state = ThreadState::Runnable;
                t.runnable_since = now;
            }
            let cpu = t.affinity.iter().next().unwrap_or(CpuId(0));
            t.ctl.post(WorkerCmd::Run { cpu });
            self.stats.wakes += 1;
            return;
        }
        if t.state != ThreadState::Blocked {
            return;
        }
        t.state = ThreadState::Runnable;
        t.runnable_since = now;
        let class = t.class;
        let last_cpu = t.last_cpu;
        let ctl = Arc::clone(&t.ctl);
        let wake_cpu = last_cpu.map(|c| c.0).unwrap_or(0);
        self.trace.emit(now, wake_cpu, || TraceEvent::SchedWakeup {
            cpu: wake_cpu,
            tid: tid.0,
        });
        self.stats.wakes += 1;
        if class == CLASS_GHOST {
            rt.hook_enqueue(self, tid);
            // Let spinning agents see the event without taking locks.
            for (atid, ring) in &self.agent_rings {
                if self.threads[atid.index()].state != ThreadState::Dead {
                    let _ = ring.push(WakeSignal {
                        tid: tid.0,
                        at: now,
                    });
                    self.threads[atid.index()].ctl.nudge();
                }
            }
        } else {
            // Unmanaged (CFS-shed): the host scheduler runs it freely.
            ctl.post(WorkerCmd::Free);
        }
    }

    fn apply_resched(&mut self, rt: &GhostRuntime, cpu: CpuId, at: Nanos) {
        if at > self.clock.now() {
            // The commit armed this slot in the (near) future; picking now
            // would be refused and never retried. Deliver on time instead.
            self.arm_timer(at, TimerEntry::Resched(cpu));
            return;
        }
        if let Some(cur) = self.cpus[cpu.index()].current {
            // Occupied lane: raise the preempt flag; the worker ends its
            // stint at the next request boundary (the live analogue of
            // the resched IPI interrupting a running thread).
            self.threads[cur.index()].ctl.set_preempt();
            self.stats.preempts += 1;
            return;
        }
        let Some(tid) = rt.hook_pick_next(self, cpu) else {
            return;
        };
        self.dispatch(tid, cpu);
    }

    fn dispatch(&mut self, tid: Tid, cpu: CpuId) {
        let now = self.clock.now();
        debug_assert_eq!(self.threads[tid.index()].state, ThreadState::Runnable);
        debug_assert!(self.cpus[cpu.index()].current.is_none());
        {
            let t = &mut self.threads[tid.index()];
            t.state = ThreadState::Running;
            t.cpu = Some(cpu);
            t.last_cpu = Some(cpu);
            t.stint_start = now;
        }
        self.cpus[cpu.index()].current = Some(tid);
        self.cpus[cpu.index()].dispatches += 1;
        self.stats.dispatches += 1;
        let class = self.threads[tid.index()].class;
        self.trace.emit(now, cpu.0, || TraceEvent::SchedSwitch {
            cpu: cpu.0,
            prev_tid: NO_TID,
            prev_class: CLASS_IDLE,
            prev_state: PREV_RUNNABLE,
            next_tid: tid.0,
            next_class: class,
        });
        self.threads[tid.index()].ctl.post(WorkerCmd::Run { cpu });
    }

    /// A worker's stint on `cpu` ended for `reason`. Called by the worker
    /// itself (under the state lock) — the live analogue of the DES's
    /// `take_off_cpu`. The caller then drops the lock and re-enters its
    /// command wait.
    pub(crate) fn end_stint(&mut self, tid: Tid, cpu: CpuId, reason: OffCpuReason) {
        if self.shutdown {
            return;
        }
        let Some(rt) = self.runtime.clone() else {
            return;
        };
        if self.threads[tid.index()].state == ThreadState::Dead {
            // A kill raced with the stint; the kill path already took the
            // thread off the lane and posted THREAD_DEAD.
            return;
        }
        if self.cpus[cpu.index()].current != Some(tid) {
            return;
        }
        let now = self.clock.now();
        let still_runnable = matches!(reason, OffCpuReason::Preempt | OffCpuReason::Yield);
        let class;
        {
            let t = &mut self.threads[tid.index()];
            t.total_work += now.saturating_sub(t.stint_start);
            t.cpu = None;
            t.state = match reason {
                OffCpuReason::Preempt | OffCpuReason::Yield => ThreadState::Runnable,
                OffCpuReason::Block => ThreadState::Blocked,
                OffCpuReason::Exit => ThreadState::Dead,
            };
            if still_runnable {
                t.runnable_since = now;
            }
            class = t.class;
            // Consume any stale preempt flag so it cannot leak into the
            // thread's next stint.
            t.ctl.take_preempt();
        }
        self.cpus[cpu.index()].current = None;
        self.stats.stints += 1;
        // Reset the worker's mailbox: the `Run` that started this stint is
        // consumed. A re-dispatch below (settle) or any later command
        // overwrites this — all posts happen under the state lock, which
        // this thread holds. A thread shed from ghOSt mid-stint (degraded
        // fallback, quarantine) must NOT park: it is runnable but no agent
        // will ever dispatch it, so it runs free on the host scheduler —
        // the §3.4 guarantee that workers keep progressing under CFS
        // while the enclave is degraded.
        if still_runnable && class != CLASS_GHOST {
            self.threads[tid.index()].ctl.post(WorkerCmd::Free);
        } else {
            self.threads[tid.index()].ctl.post(WorkerCmd::Park);
        }
        let prev_state = match reason {
            OffCpuReason::Preempt | OffCpuReason::Yield => PREV_RUNNABLE,
            OffCpuReason::Block => PREV_BLOCKED,
            OffCpuReason::Exit => PREV_DEAD,
        };
        self.trace.emit(now, cpu.0, || TraceEvent::SchedSwitch {
            cpu: cpu.0,
            prev_tid: tid.0,
            prev_class: class,
            prev_state,
            next_tid: NO_TID,
            next_class: CLASS_IDLE,
        });
        if class == CLASS_GHOST {
            rt.hook_put_prev(self, tid, cpu, reason);
        }
        self.pending_resched.push((cpu, now));
        self.settle();
    }

    fn apply_kill(&mut self, rt: &GhostRuntime, tid: Tid) {
        let st = self.threads[tid.index()].state;
        if st == ThreadState::Dead {
            return;
        }
        let class = self.threads[tid.index()].class;
        let now = self.clock.now();
        match st {
            ThreadState::Running => {
                let cpu = self.threads[tid.index()]
                    .cpu
                    .expect("running thread on lane");
                {
                    let t = &mut self.threads[tid.index()];
                    t.total_work += now.saturating_sub(t.stint_start);
                    t.cpu = None;
                    t.state = ThreadState::Dead;
                }
                self.cpus[cpu.index()].current = None;
                self.trace.emit(now, cpu.0, || TraceEvent::SchedSwitch {
                    cpu: cpu.0,
                    prev_tid: tid.0,
                    prev_class: class,
                    prev_state: PREV_DEAD,
                    next_tid: NO_TID,
                    next_class: CLASS_IDLE,
                });
                if class == CLASS_GHOST {
                    rt.hook_put_prev(self, tid, cpu, OffCpuReason::Exit);
                }
                // The OS thread itself finds out at its next stint
                // boundary (preempt flag + Exit command below).
                self.pending_resched.push((cpu, now));
            }
            ThreadState::Runnable => {
                if class == CLASS_GHOST {
                    rt.hook_dequeue(self, tid);
                }
                self.threads[tid.index()].state = ThreadState::Dead;
            }
            ThreadState::Blocked => {
                self.threads[tid.index()].state = ThreadState::Dead;
            }
            ThreadState::Dead => unreachable!(),
        }
        if class == CLASS_GHOST {
            rt.hook_detach(self, tid);
        }
        if self.threads[tid.index()].kind == ThreadKind::Agent {
            rt.hook_agent_killed(self, tid);
        }
        let ctl = Arc::clone(&self.threads[tid.index()].ctl);
        ctl.set_preempt();
        ctl.post(WorkerCmd::Exit);
    }

    fn apply_class_move(&mut self, rt: &GhostRuntime, tid: Tid, new_class: ClassId) {
        let old = self.threads[tid.index()].class;
        if old == new_class {
            return;
        }
        let st = self.threads[tid.index()].state;
        if st == ThreadState::Runnable && old == CLASS_GHOST {
            rt.hook_dequeue(self, tid);
        }
        if old == CLASS_GHOST {
            rt.hook_detach(self, tid);
        }
        self.threads[tid.index()].class = new_class;
        if new_class == CLASS_GHOST {
            rt.hook_attach(self, tid);
        }
        match st {
            ThreadState::Runnable => {
                if new_class == CLASS_GHOST {
                    rt.hook_enqueue(self, tid);
                } else {
                    // Left ghOSt management while waiting: run free.
                    self.threads[tid.index()].ctl.post(WorkerCmd::Free);
                }
            }
            ThreadState::Running => {
                if let Some(cpu) = self.threads[tid.index()].cpu {
                    if new_class != CLASS_GHOST {
                        // Shed mid-stint: force the stint to end; the
                        // worker sees its new class and runs free.
                        self.threads[tid.index()].ctl.set_preempt();
                        let _ = cpu;
                    } else {
                        self.pending_resched.push((cpu, self.clock.now()));
                    }
                }
            }
            _ => {}
        }
    }

    /// Installs the fault plan and arms one one-shot timer per
    /// crash/spurious-wakeup/upgrade event, mirroring the DES's
    /// `Ev::Fault` scheduling at kernel construction. Window faults need
    /// no timers — they are pure predicates over wall-clock `now`.
    pub(crate) fn install_faults(&mut self, plan: FaultPlan) {
        for (idx, fe) in plan.events.iter().enumerate() {
            if fe.kind.is_one_shot() {
                self.arm_timer(fe.at, TimerEntry::Fault(idx));
            }
        }
        self.faults = plan;
    }

    /// The live agent thread pinned to `cpu` (victim lookup for
    /// `FaultKind::AgentCrash`); mirrors the DES's `handle_fault`.
    pub(crate) fn agent_on(&self, cpu: CpuId) -> Option<Tid> {
        self.threads
            .iter()
            .enumerate()
            .find(|(_, t)| {
                t.kind == ThreadKind::Agent
                    && t.state != ThreadState::Dead
                    && t.affinity.contains(cpu)
            })
            .map(|(i, _)| Tid(i as u32))
    }

    /// The `nth` (modulo live count) workload thread, for
    /// `FaultKind::SpuriousWakeup`; mirrors the DES's `handle_fault`.
    pub(crate) fn nth_live_workload(&self, nth: u32) -> Option<Tid> {
        let live: Vec<Tid> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.kind == ThreadKind::Workload && t.state != ThreadState::Dead)
            .map(|(i, _)| Tid(i as u32))
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[nth as usize % live.len()])
        }
    }

    fn spawn_agent_thread(&mut self, tid: Tid, cpu: CpuId) {
        let Some(spawner) = self.agent_spawner.clone() else {
            return;
        };
        let (prod, cons) = crate::ring::spsc::<WakeSignal>(1024);
        self.agent_rings.push((tid, prod));
        let join = spawner(tid, cpu, cons);
        self.threads[tid.index()].join = Some(join);
    }
}

impl GhostBackend for LiveState {
    fn now(&self) -> Nanos {
        self.clock.now()
    }

    fn topo(&self) -> &Topology {
        &self.topo
    }

    fn costs(&self) -> &CostModel {
        &self.costs
    }

    fn trace(&self) -> &TraceSink {
        &self.trace
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn valid_tid(&self, tid: Tid) -> bool {
        tid.index() < self.threads.len()
    }

    fn valid_cpu(&self, cpu: CpuId) -> bool {
        cpu.index() < self.cpus.len()
    }

    fn thread(&self, tid: Tid) -> ghost_core::BackendThread {
        let t = &self.threads[tid.index()];
        ghost_core::BackendThread {
            state: t.state,
            kind: t.kind,
            class: t.class,
            cpu: t.cpu,
            last_cpu: t.last_cpu,
            affinity: t.affinity,
            nice: t.nice,
            cookie: t.cookie,
            runnable_since: t.runnable_since,
            total_work: t.total_work,
        }
    }

    fn thread_checked(&self, tid: Tid) -> Option<ghost_core::BackendThread> {
        if self.valid_tid(tid) {
            Some(self.thread(tid))
        } else {
            None
        }
    }

    fn cpu(&self, cpu: CpuId) -> ghost_core::BackendCpu {
        let c = &self.cpus[cpu.index()];
        ghost_core::BackendCpu {
            current: c.current,
            idle: c.current.is_none(),
            // No CFS runqueues behind the live lanes: unmanaged threads
            // run on the host scheduler, so hot-handoff pressure is 0.
            cfs_queued: 0,
        }
    }

    fn cpu_checked(&self, cpu: CpuId) -> Option<ghost_core::BackendCpu> {
        if self.valid_cpu(cpu) {
            Some(GhostBackend::cpu(self, cpu))
        } else {
            None
        }
    }

    fn sibling_busy(&self, cpu: CpuId) -> bool {
        self.topo
            .sibling(cpu)
            .is_some_and(|s| self.cpus[s.index()].current.is_some())
    }

    fn sync_runtime(&mut self, tid: Tid) {
        let now = self.clock.now();
        let t = &mut self.threads[tid.index()];
        if t.state == ThreadState::Running {
            t.total_work += now.saturating_sub(t.stint_start);
            t.stint_start = now;
        }
    }

    fn wake(&mut self, tid: Tid) {
        self.pending_wakes.push(tid);
    }

    fn wake_at(&mut self, at: Nanos, tid: Tid) {
        if at <= self.clock.now() + IMMEDIATE_SLACK_NS {
            self.pending_wakes.push(tid);
        } else {
            self.arm_timer(at, TimerEntry::Wake(tid));
        }
    }

    fn kill(&mut self, tid: Tid) {
        self.pending_kills.push(tid);
    }

    fn move_to_class(&mut self, tid: Tid, class: ClassId) {
        self.pending_class_moves.push((tid, class));
    }

    fn send_ipi(&mut self, cpu: CpuId, at: Nanos) {
        self.stats.ipis += 1;
        let now = self.clock.now();
        self.trace.emit(now, cpu.0, || TraceEvent::IpiSent {
            from_cpu: u16::MAX,
            to_cpu: cpu.0,
        });
        // Queueing honours the fault plan first; `apply_resched` then
        // re-arms a timer when the (possibly stretched) `at` is still in
        // the future (the slot's arm gate would refuse an early pick).
        match self.faults.ipi_fate(now) {
            IpiFate::Normal => self.pending_resched.push((cpu, at)),
            IpiFate::Delayed(extra) => {
                self.stats.ipis_delayed += 1;
                self.pending_resched.push((cpu, at.saturating_add(extra)));
            }
            IpiFate::Lost => self.stats.ipis_lost += 1,
        }
    }

    fn arm_driver_timer(&mut self, at: Nanos, key: u64) {
        self.arm_timer(at, TimerEntry::Driver(key));
    }

    fn schedule_agent_loop(&mut self, at: Nanos, tid: Tid) {
        if at <= self.clock.now() + IMMEDIATE_SLACK_NS {
            self.pending_wakes.push(tid);
        } else {
            self.arm_timer(at, TimerEntry::AgentLoop(tid));
        }
    }

    fn spawn_agent(&mut self, name: &str, cpu: CpuId) -> Tid {
        let tid = Tid(self.threads.len() as u32);
        let ctl = WorkerCtl::new();
        self.threads.push(LiveThread {
            name: name.to_string(),
            state: ThreadState::Blocked,
            kind: ThreadKind::Agent,
            class: ghost_sim::class::CLASS_AGENT,
            cpu: None,
            last_cpu: Some(cpu),
            affinity: CpuSet::from_iter([cpu]),
            nice: 0,
            cookie: 0,
            runnable_since: 0,
            total_work: 0,
            stint_start: 0,
            ctl,
            join: None,
        });
        self.pending_spawns.push((tid, cpu));
        tid
    }

    fn fault_queue_overflow_active(&self) -> bool {
        self.faults.queue_overflow_active(self.clock.now())
    }

    fn fault_agent_hang_until(&self, cpu: CpuId) -> Option<Nanos> {
        self.faults.agent_hang_until(cpu, self.clock.now())
    }

    fn fault_agent_slow_factor(&self, cpu: CpuId) -> u64 {
        self.faults.agent_slow_factor(cpu, self.clock.now())
    }
}
