//! The kernel surface `ghost-core` programs against.
//!
//! Everything the ghOSt runtime needs from the machine underneath it —
//! thread lifecycle, tick and timer delivery, IPI/preemption signaling,
//! context-switch commit, and the time source — is expressed as the
//! [`GhostBackend`] trait. The discrete-event kernel in `ghost-sim` is
//! one implementation (the deterministic one every digest is pinned
//! against); `ghost-live` implements the same trait over real OS
//! threads, a monotonic clock, and park/unpark signaling, so an
//! unmodified [`crate::policy::GhostPolicy`] schedules either world.
//!
//! The trait deliberately exposes *snapshots* ([`BackendThread`],
//! [`BackendCpu`]) rather than references into backend state: agents
//! never dereference kernel structures (§3.1 of the paper), and a live
//! backend cannot hand out references into state owned by other OS
//! threads anyway.

use ghost_sim::class::ClassId;
use ghost_sim::costs::CostModel;
use ghost_sim::cpuset::CpuSet;
use ghost_sim::kernel::{KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadKind, ThreadState, Tid};
use ghost_sim::time::Nanos;
use ghost_sim::topology::{CpuId, Topology};
use ghost_trace::TraceSink;
use rand::rngs::StdRng;

/// A point-in-time snapshot of one thread, as the runtime sees it.
#[derive(Debug, Clone, Copy)]
pub struct BackendThread {
    /// Run state.
    pub state: ThreadState,
    /// Workload or agent pthread.
    pub kind: ThreadKind,
    /// Scheduling class the thread currently belongs to.
    pub class: ClassId,
    /// CPU the thread occupies right now (`Running` only).
    pub cpu: Option<CpuId>,
    /// Last CPU the thread ran on.
    pub last_cpu: Option<CpuId>,
    /// Affinity mask.
    pub affinity: CpuSet,
    /// Nice value.
    pub nice: i8,
    /// Grouping cookie (e.g. VM id for core scheduling).
    pub cookie: u64,
    /// When the thread last became runnable (for starvation detection).
    pub runnable_since: Nanos,
    /// Total work completed, in backend time.
    pub total_work: Nanos,
}

/// A point-in-time snapshot of one CPU.
#[derive(Debug, Clone, Copy)]
pub struct BackendCpu {
    /// Thread currently on this CPU, if any.
    pub current: Option<Tid>,
    /// True when nothing is running or switching in.
    pub idle: bool,
    /// CFS threads queued (not running) behind this CPU — the
    /// hot-handoff pressure signal of §3.3.
    pub cfs_queued: u32,
}

impl BackendCpu {
    /// True if nothing is running or switching in.
    pub fn is_idle(&self) -> bool {
        self.idle
    }

    /// True if the CPU is occupied (busy or mid-switch).
    pub fn is_occupied(&self) -> bool {
        !self.idle
    }
}

/// The kernel surface the ghOSt runtime requires.
///
/// | hook | DES (`ghost-sim`) | live (`ghost-live`) |
/// |---|---|---|
/// | `now` | virtual event clock | monotonic wall clock |
/// | `wake`/`wake_at` | deferred-op buffer / event queue | unpark + timer heap |
/// | `send_ipi` | `Resched` event at `at` | preempt flag + unpark |
/// | `arm_driver_timer` | `DriverTimer` event | timer-thread heap |
/// | `spawn_agent` | agent `SimThread` | real `std::thread` |
/// | `kill` | deferred kill buffer | exit command + join |
/// | faults | `FaultPlan` over virtual time | `FaultPlan` over wall clock |
pub trait GhostBackend {
    /// Current time in nanoseconds (virtual or monotonic).
    fn now(&self) -> Nanos;

    /// Machine topology.
    fn topo(&self) -> &Topology;

    /// Operation cost model (used to charge agent busy time).
    fn costs(&self) -> &CostModel;

    /// Tracepoint sink.
    fn trace(&self) -> &TraceSink;

    /// Deterministic RNG for randomized policies.
    fn rng(&mut self) -> &mut StdRng;

    /// True if `tid` names a thread this backend has ever spawned. The
    /// enforcement hook for validating agent-supplied tids.
    fn valid_tid(&self, tid: Tid) -> bool;

    /// True if `cpu` names a CPU of this machine.
    fn valid_cpu(&self, cpu: CpuId) -> bool;

    /// Snapshot of a thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was never spawned; validate agent-supplied ids
    /// with [`GhostBackend::valid_tid`] or use
    /// [`GhostBackend::thread_checked`].
    fn thread(&self, tid: Tid) -> BackendThread;

    /// Bounds-checked snapshot of a thread (for agent-supplied tids).
    fn thread_checked(&self, tid: Tid) -> Option<BackendThread>;

    /// Snapshot of a CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    fn cpu(&self, cpu: CpuId) -> BackendCpu;

    /// Bounds-checked snapshot of a CPU (for agent-supplied ids).
    fn cpu_checked(&self, cpu: CpuId) -> Option<BackendCpu>;

    /// True if `cpu`'s SMT sibling is occupied.
    fn sibling_busy(&self, cpu: CpuId) -> bool;

    /// Folds any in-progress stint into the thread's `total_work` so a
    /// subsequent [`GhostBackend::thread`] snapshot is current.
    fn sync_runtime(&mut self, tid: Tid);

    /// Makes a blocked thread runnable (no-op if already active/dead).
    fn wake(&mut self, tid: Tid);

    /// Wakes `tid` at the future time `at`.
    fn wake_at(&mut self, at: Nanos, tid: Tid);

    /// Requests killing `tid`.
    fn kill(&mut self, tid: Tid);

    /// Requests moving `tid` into scheduling class `class`.
    fn move_to_class(&mut self, tid: Tid, class: ClassId);

    /// Delivers a reschedule interrupt to `cpu`, logically arriving at
    /// `at` (propagation delay already folded in by the caller).
    fn send_ipi(&mut self, cpu: CpuId, at: Nanos);

    /// Arms a timer delivered back to the runtime via its timer hook.
    fn arm_driver_timer(&mut self, at: Nanos, key: u64);

    /// Schedules a re-activation of a spinning agent thread at `at`; at
    /// most one loop stays live per agent (earlier requests supersede).
    fn schedule_agent_loop(&mut self, at: Nanos, tid: Tid);

    /// Spawns an agent pthread pinned to `cpu`, starting blocked.
    fn spawn_agent(&mut self, name: &str, cpu: CpuId) -> Tid;

    /// True while an injected queue-overflow fault window is active.
    fn fault_queue_overflow_active(&self) -> bool;

    /// End of an injected agent-hang window covering `now`, if any.
    fn fault_agent_hang_until(&self, cpu: CpuId) -> Option<Nanos>;

    /// Slowdown factor from an injected agent-slow window (1 = none).
    fn fault_agent_slow_factor(&self, cpu: CpuId) -> u64;
}

impl GhostBackend for KernelState {
    fn now(&self) -> Nanos {
        self.now
    }

    fn topo(&self) -> &Topology {
        &self.topo
    }

    fn costs(&self) -> &CostModel {
        &self.costs
    }

    fn trace(&self) -> &TraceSink {
        &self.cfg.trace
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn valid_tid(&self, tid: Tid) -> bool {
        KernelState::valid_tid(self, tid)
    }

    fn valid_cpu(&self, cpu: CpuId) -> bool {
        KernelState::valid_cpu(self, cpu)
    }

    fn thread(&self, tid: Tid) -> BackendThread {
        let t = &self.threads[tid.index()];
        BackendThread {
            state: t.state,
            kind: t.kind,
            class: t.class,
            cpu: t.cpu,
            last_cpu: t.last_cpu,
            affinity: t.affinity,
            nice: t.nice,
            cookie: t.cookie,
            runnable_since: t.runnable_since,
            total_work: t.total_work,
        }
    }

    fn thread_checked(&self, tid: Tid) -> Option<BackendThread> {
        if KernelState::valid_tid(self, tid) {
            Some(GhostBackend::thread(self, tid))
        } else {
            None
        }
    }

    fn cpu(&self, cpu: CpuId) -> BackendCpu {
        let c = &self.cpus[cpu.index()];
        BackendCpu {
            current: c.current,
            idle: c.is_idle(),
            cfs_queued: c.cfs_queued,
        }
    }

    fn cpu_checked(&self, cpu: CpuId) -> Option<BackendCpu> {
        if KernelState::valid_cpu(self, cpu) {
            Some(GhostBackend::cpu(self, cpu))
        } else {
            None
        }
    }

    fn sibling_busy(&self, cpu: CpuId) -> bool {
        KernelState::sibling_busy(self, cpu)
    }

    fn sync_runtime(&mut self, tid: Tid) {
        KernelState::sync_runtime(self, tid);
    }

    fn wake(&mut self, tid: Tid) {
        KernelState::wake(self, tid);
    }

    fn wake_at(&mut self, at: Nanos, tid: Tid) {
        KernelState::wake_at(self, at, tid);
    }

    fn kill(&mut self, tid: Tid) {
        KernelState::kill(self, tid);
    }

    fn move_to_class(&mut self, tid: Tid, class: ClassId) {
        KernelState::move_to_class(self, tid, class);
    }

    fn send_ipi(&mut self, cpu: CpuId, at: Nanos) {
        KernelState::send_ipi(self, cpu, at);
    }

    fn arm_driver_timer(&mut self, at: Nanos, key: u64) {
        KernelState::arm_driver_timer(self, at, key);
    }

    fn schedule_agent_loop(&mut self, at: Nanos, tid: Tid) {
        KernelState::schedule_agent_loop(self, at, tid);
    }

    fn spawn_agent(&mut self, name: &str, cpu: CpuId) -> Tid {
        self.spawn_agent_thread(
            ThreadSpec::workload(name, &self.topo)
                .affinity(CpuSet::from_iter([cpu]))
                .agent(),
        )
    }

    fn fault_queue_overflow_active(&self) -> bool {
        self.cfg.faults.queue_overflow_active(self.now)
    }

    fn fault_agent_hang_until(&self, cpu: CpuId) -> Option<Nanos> {
        self.cfg.faults.agent_hang_until(cpu, self.now)
    }

    fn fault_agent_slow_factor(&self, cpu: CpuId) -> u64 {
        self.cfg.faults.agent_slow_factor(cpu, self.now)
    }
}
