//! Kernel-style tracepoints for the ghOSt reproduction, modeled on Linux's
//! `sched:*` trace events.
//!
//! The simulator and the ghOSt runtime emit [`TraceEvent`]s through a
//! [`TraceSink`]. The default sink is [`TraceSink::Null`], which costs one
//! branch per tracepoint — the event-constructing closure is never run — so
//! benches pay nothing when tracing is off. [`TraceSink::recording`] attaches
//! a [`TraceRecorder`]: bounded per-CPU ring buffers that overwrite the
//! oldest record when full (lossy, like a real ftrace ring) and count drops.
//!
//! A recorded stream can be:
//! - exported as Chrome `trace_event` JSON ([`chrome::export`]), loadable in
//!   Perfetto or `chrome://tracing`;
//! - folded into derived metrics ([`derive::TraceMetrics`]): wakeup-to-run
//!   latency histograms, per-CPU class occupancy, queue-depth timelines,
//!   ESTALE rates;
//! - replayed through the invariant checker ([`check::check`]), which
//!   asserts cross-cutting correctness properties and gives every test a
//!   one-line end-to-end oracle.
//!
//! Events carry primitive ids (`u16` cpu, `u32` tid, `u64` seq) rather than
//! simulator types so this crate sits below `ghost-sim` in the dependency
//! graph.

use std::sync::{Arc, Mutex};

pub mod check;
pub mod chrome;
pub mod derive;
pub mod json;
pub mod recorder;

pub use recorder::TraceRecorder;

/// Virtual-time nanoseconds (mirrors `ghost_sim::time::Nanos`).
pub type Nanos = u64;

/// Sentinel tid meaning "no thread" (the idle context on a CPU).
pub const NO_TID: u32 = u32::MAX;

/// Scheduling-class ids, mirroring `ghost_sim::class` (this crate sits below
/// `ghost-sim`, so the values are duplicated and checked by a test there).
pub const CLASS_AGENT: u8 = 0;
pub const CLASS_RT: u8 = 1;
pub const CLASS_CFS: u8 = 2;
pub const CLASS_GHOST: u8 = 3;
pub const CLASS_IDLE: u8 = 4;

/// What the previous thread was doing when it was switched out, mirroring
/// the `prev_state` field of Linux's `sched:sched_switch`.
pub const PREV_RUNNABLE: u8 = 0; // preempted or yielded, still wants CPU
pub const PREV_BLOCKED: u8 = 1; // went to sleep
pub const PREV_DEAD: u8 = 2; // exited

/// One tracepoint firing. Field conventions: `cpu` is where the event
/// logically happened, `tid` is the subject thread, `seq` values are the
/// ABI sequence numbers (Tseq on messages, Aseq on activations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Context switch completed on `cpu` (mirrors `sched:sched_switch`).
    SchedSwitch {
        cpu: u16,
        prev_tid: u32,
        prev_class: u8,
        prev_state: u8,
        next_tid: u32,
        next_class: u8,
    },
    /// Thread became runnable (mirrors `sched:sched_wakeup`).
    SchedWakeup { cpu: u16, tid: u32 },
    /// Thread started running on a different CPU than its last one
    /// (mirrors `sched:sched_migrate_task`).
    SchedMigrate {
        tid: u32,
        from_cpu: u16,
        to_cpu: u16,
    },
    /// Timer tick delivered to `cpu`.
    TickDelivered { cpu: u16 },
    /// Resched IPI sent from `from_cpu` to `to_cpu`.
    IpiSent { from_cpu: u16, to_cpu: u16 },
    /// Resched IPI handled on `cpu`.
    IpiReceived { cpu: u16 },
    /// ABI message posted into queue `queue`; `seq` is the thread's Tseq.
    MsgEnqueued {
        queue: u32,
        ty: u8,
        tid: u32,
        seq: u64,
    },
    /// ABI message consumed by an agent; `seq` is the thread's Tseq.
    MsgDequeued {
        queue: u32,
        ty: u8,
        tid: u32,
        seq: u64,
    },
    /// Message dropped because queue `queue` was full; `dropped_total` is
    /// the queue's cumulative drop count after this event.
    QueueOverflow {
        queue: u32,
        ty: u8,
        tid: u32,
        dropped_total: u64,
    },
    /// Transaction armed: validation passed, effects about to apply.
    TxnArmed { cpu: u16, tid: u32 },
    /// Transaction committed successfully on `cpu` for `tid`.
    TxnCommitOk { cpu: u16, tid: u32 },
    /// Transaction failed its seqnum check (GHOST_TXN_TARGET_STALE).
    TxnCommitEstale { cpu: u16, tid: u32 },
    /// Transaction lost a commit race (target not runnable / CPU busy).
    TxnCommitRace { cpu: u16, tid: u32 },
    /// Agent activation started on `cpu`; `aseq` is the agent's Aseq.
    AgentActivationBegin { cpu: u16, agent_tid: u32, aseq: u64 },
    /// Agent activation finished; `msgs` is how many messages it drained.
    AgentActivationEnd { cpu: u16, agent_tid: u32, msgs: u32 },
    /// pick_next_task fast path produced a thread from the PNT rings.
    PntHit { cpu: u16, tid: u32 },
    /// pick_next_task fast path found the rings empty.
    PntMiss { cpu: u16 },
    /// Watchdog declared the enclave's agents unresponsive.
    WatchdogFired { enclave: u32 },
    /// Enclave torn down; its threads fall back to CFS.
    EnclaveDestroyed { enclave: u32 },
    /// Agent failover began: threads are transiently degraded to CFS while
    /// a standby agent respawns and rebuilds state (§3.4).
    RecoveryStart { enclave: u32 },
    /// A joining/upgraded agent finished its status-word scan; `threads` is
    /// how many status words it read.
    ReconstructDone {
        enclave: u32,
        threads: u32,
        agent_tid: u32,
    },
    /// A degraded thread was pulled back from CFS into ghOSt after recovery.
    ThreadReclaimed { enclave: u32, tid: u32 },
    /// An agent-facing ABI call was rejected with a typed error; `cpu` is
    /// the calling agent's CPU and `kind` the `AbiError` kind index.
    AbiReject { cpu: u16, kind: u8 },
    /// An enclave exhausted its byzantine strike budget and was
    /// quarantined (destroyed; threads fall back to CFS).
    EnclaveQuarantined { enclave: u32 },
}

impl TraceEvent {
    /// Event name as it appears in exported traces (ftrace-style).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SchedSwitch { .. } => "sched_switch",
            TraceEvent::SchedWakeup { .. } => "sched_wakeup",
            TraceEvent::SchedMigrate { .. } => "sched_migrate_task",
            TraceEvent::TickDelivered { .. } => "tick",
            TraceEvent::IpiSent { .. } => "ipi_send",
            TraceEvent::IpiReceived { .. } => "ipi_receive",
            TraceEvent::MsgEnqueued { .. } => "ghost_msg_enqueue",
            TraceEvent::MsgDequeued { .. } => "ghost_msg_dequeue",
            TraceEvent::QueueOverflow { .. } => "ghost_queue_overflow",
            TraceEvent::TxnArmed { .. } => "ghost_txn_arm",
            TraceEvent::TxnCommitOk { .. } => "ghost_txn_commit_ok",
            TraceEvent::TxnCommitEstale { .. } => "ghost_txn_commit_estale",
            TraceEvent::TxnCommitRace { .. } => "ghost_txn_commit_race",
            TraceEvent::AgentActivationBegin { .. } => "ghost_agent_activation_begin",
            TraceEvent::AgentActivationEnd { .. } => "ghost_agent_activation_end",
            TraceEvent::PntHit { .. } => "ghost_pnt_hit",
            TraceEvent::PntMiss { .. } => "ghost_pnt_miss",
            TraceEvent::WatchdogFired { .. } => "ghost_watchdog_fired",
            TraceEvent::EnclaveDestroyed { .. } => "ghost_enclave_destroyed",
            TraceEvent::RecoveryStart { .. } => "ghost_recovery_start",
            TraceEvent::ReconstructDone { .. } => "ghost_reconstruct_done",
            TraceEvent::ThreadReclaimed { .. } => "ghost_thread_reclaimed",
            TraceEvent::AbiReject { .. } => "ghost_abi_reject",
            TraceEvent::EnclaveQuarantined { .. } => "ghost_enclave_quarantined",
        }
    }

    /// Event payload as (key, value) pairs, in a fixed order so exports
    /// are byte-stable.
    pub fn args(&self) -> Vec<(&'static str, u64)> {
        match *self {
            TraceEvent::SchedSwitch {
                cpu,
                prev_tid,
                prev_class,
                prev_state,
                next_tid,
                next_class,
            } => vec![
                ("cpu", cpu as u64),
                ("prev_tid", prev_tid as u64),
                ("prev_class", prev_class as u64),
                ("prev_state", prev_state as u64),
                ("next_tid", next_tid as u64),
                ("next_class", next_class as u64),
            ],
            TraceEvent::SchedWakeup { cpu, tid } => {
                vec![("cpu", cpu as u64), ("tid", tid as u64)]
            }
            TraceEvent::SchedMigrate {
                tid,
                from_cpu,
                to_cpu,
            } => vec![
                ("tid", tid as u64),
                ("from_cpu", from_cpu as u64),
                ("to_cpu", to_cpu as u64),
            ],
            TraceEvent::TickDelivered { cpu } => vec![("cpu", cpu as u64)],
            TraceEvent::IpiSent { from_cpu, to_cpu } => {
                vec![("from_cpu", from_cpu as u64), ("to_cpu", to_cpu as u64)]
            }
            TraceEvent::IpiReceived { cpu } => vec![("cpu", cpu as u64)],
            TraceEvent::MsgEnqueued {
                queue,
                ty,
                tid,
                seq,
            }
            | TraceEvent::MsgDequeued {
                queue,
                ty,
                tid,
                seq,
            } => vec![
                ("queue", queue as u64),
                ("type", ty as u64),
                ("tid", tid as u64),
                ("seq", seq),
            ],
            TraceEvent::QueueOverflow {
                queue,
                ty,
                tid,
                dropped_total,
            } => vec![
                ("queue", queue as u64),
                ("type", ty as u64),
                ("tid", tid as u64),
                ("dropped_total", dropped_total),
            ],
            TraceEvent::TxnArmed { cpu, tid }
            | TraceEvent::TxnCommitOk { cpu, tid }
            | TraceEvent::TxnCommitEstale { cpu, tid }
            | TraceEvent::TxnCommitRace { cpu, tid } => {
                vec![("cpu", cpu as u64), ("tid", tid as u64)]
            }
            TraceEvent::AgentActivationBegin {
                cpu,
                agent_tid,
                aseq,
            } => vec![
                ("cpu", cpu as u64),
                ("agent_tid", agent_tid as u64),
                ("aseq", aseq),
            ],
            TraceEvent::AgentActivationEnd {
                cpu,
                agent_tid,
                msgs,
            } => vec![
                ("cpu", cpu as u64),
                ("agent_tid", agent_tid as u64),
                ("msgs", msgs as u64),
            ],
            TraceEvent::PntHit { cpu, tid } => {
                vec![("cpu", cpu as u64), ("tid", tid as u64)]
            }
            TraceEvent::PntMiss { cpu } => vec![("cpu", cpu as u64)],
            TraceEvent::WatchdogFired { enclave }
            | TraceEvent::EnclaveDestroyed { enclave }
            | TraceEvent::RecoveryStart { enclave } => {
                vec![("enclave", enclave as u64)]
            }
            TraceEvent::ReconstructDone {
                enclave,
                threads,
                agent_tid,
            } => vec![
                ("enclave", enclave as u64),
                ("threads", threads as u64),
                ("agent_tid", agent_tid as u64),
            ],
            TraceEvent::ThreadReclaimed { enclave, tid } => {
                vec![("enclave", enclave as u64), ("tid", tid as u64)]
            }
            TraceEvent::AbiReject { cpu, kind } => {
                vec![("cpu", cpu as u64), ("kind", kind as u64)]
            }
            TraceEvent::EnclaveQuarantined { enclave } => {
                vec![("enclave", enclave as u64)]
            }
        }
    }
}

/// One record in a ring: a [`TraceEvent`] stamped with the global record
/// sequence number, virtual time, and the CPU whose ring holds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Globally monotone record number, assigned at record time. Total
    /// order over the whole trace even though storage is per-CPU.
    pub seq: u64,
    /// Virtual time of the event, in nanoseconds.
    pub ts: Nanos,
    /// CPU whose ring buffer holds the record.
    pub cpu: u16,
    pub event: TraceEvent,
}

/// Where tracepoints go. The default, [`TraceSink::Null`], discards
/// everything without constructing the event.
#[derive(Debug, Clone, Default)]
pub enum TraceSink {
    /// Tracing off: `emit` is one branch, the closure never runs.
    #[default]
    Null,
    /// Tracing on: events land in a shared [`TraceRecorder`].
    ///
    /// The recorder is behind `Arc<Mutex<..>>` (not `Rc<RefCell<..>>`) so
    /// a whole simulation — kernel, runtime, and sink — is `Send` and can
    /// be executed on a `ghost-lab` worker thread. Each simulation is
    /// still single-threaded, so the lock is never contended.
    Recorder(Arc<Mutex<TraceRecorder>>),
}

impl TraceSink {
    /// A sink recording into per-CPU rings of `capacity` records each.
    pub fn recording(num_cpus: usize, capacity: usize) -> Self {
        TraceSink::Recorder(Arc::new(Mutex::new(TraceRecorder::new(num_cpus, capacity))))
    }

    /// True when events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, TraceSink::Recorder(_))
    }

    /// Records the event produced by `f`. With [`TraceSink::Null`], `f` is
    /// never called — keep the construction inside the closure so disabled
    /// tracepoints cost only this branch.
    #[inline]
    pub fn emit(&self, ts: Nanos, cpu: u16, f: impl FnOnce() -> TraceEvent) {
        if let TraceSink::Recorder(rec) = self {
            rec.lock().unwrap().record(ts, cpu, f());
        }
    }

    /// All surviving records, merged across rings in global `seq` order.
    /// Empty for [`TraceSink::Null`].
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        match self {
            TraceSink::Null => Vec::new(),
            TraceSink::Recorder(rec) => rec.lock().unwrap().snapshot(),
        }
    }

    /// Total records overwritten across all rings (0 for `Null`).
    pub fn dropped(&self) -> u64 {
        match self {
            TraceSink::Null => 0,
            TraceSink::Recorder(rec) => rec.lock().unwrap().dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_never_constructs_events() {
        let sink = TraceSink::Null;
        let mut constructed = false;
        sink.emit(0, 0, || {
            constructed = true;
            TraceEvent::TickDelivered { cpu: 0 }
        });
        assert!(!constructed);
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn recording_sink_captures_in_order() {
        let sink = TraceSink::recording(2, 16);
        sink.emit(10, 0, || TraceEvent::TickDelivered { cpu: 0 });
        sink.emit(20, 1, || TraceEvent::TickDelivered { cpu: 1 });
        sink.emit(30, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 7 });
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert_eq!(snap[2].seq, 2);
        assert_eq!(snap[2].event, TraceEvent::SchedWakeup { cpu: 0, tid: 7 });
        assert!(sink.is_enabled());
    }

    #[test]
    fn clones_share_the_recorder() {
        let sink = TraceSink::recording(1, 8);
        let clone = sink.clone();
        clone.emit(5, 0, || TraceEvent::TickDelivered { cpu: 0 });
        assert_eq!(sink.snapshot().len(), 1);
    }
}
