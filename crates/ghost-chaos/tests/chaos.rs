//! Integration tests for the chaos harness itself: the sweep is clean on
//! healthy code, replay is deterministic, shrinking is sound, and the
//! `for_seeds!` helper reports failing seeds.
//!
//! Gated off under `seeded-bug`: with the intentional teardown bug
//! compiled in, sweeps are *supposed* to fail (that's what
//! `tests/seeded_bug.rs` asserts), so the clean-run expectations here
//! only hold on healthy code.
#![cfg(not(feature = "seeded-bug"))]

use ghost_chaos::rand::rngs::StdRng;
use ghost_chaos::rand::Rng;
use ghost_chaos::{
    combo_from_json, combo_to_json, for_seeds, run_combo, shrink, Combo, PolicyKind,
};

/// A small sweep across every policy must pass all oracles — the
/// runtime is expected to survive every generated fault plan.
#[test]
fn small_sweep_is_clean_on_all_policies() {
    for policy in PolicyKind::ALL {
        for seed in 1..=4 {
            let combo = Combo::generated(policy, seed);
            let report = run_combo(&combo);
            assert!(
                report.failures.is_empty(),
                "policy={} seed={seed} faults={:?} failed: {:?}",
                policy.name(),
                combo.plan.events,
                report.failures
            );
            assert!(report.completions > 0, "run did no work");
        }
    }
}

/// The same combo always produces the same report: completions, stats,
/// and the full trace are bit-identical across runs.
#[test]
fn replay_is_deterministic() {
    let combo = Combo::generated(PolicyKind::Shinjuku, 7);
    let a = run_combo(&combo);
    let b = run_combo(&combo);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.stats.txns_committed, b.stats.txns_committed);
    assert_eq!(a.records.len(), b.records.len());
    assert!(a.records.iter().zip(&b.records).all(|(x, y)| x == y));
}

/// A combo that passes its oracles comes back from the shrinker
/// untouched — shrinking only applies to failures.
#[test]
fn shrink_returns_clean_combo_unchanged() {
    let combo = Combo::generated(PolicyKind::CentralizedFifo, 3);
    assert!(run_combo(&combo).failures.is_empty(), "pick a clean seed");
    assert_eq!(shrink(&combo), combo);
}

/// Repro round trip on a generated (not hand-built) combo.
#[test]
fn generated_combos_round_trip_through_repro_json() {
    for seed in 1..=10 {
        let combo = Combo::generated(PolicyKind::CoreSched, seed);
        let back = combo_from_json(&combo_to_json(&combo)).expect("parses");
        assert_eq!(back, combo);
    }
}

/// `for_seeds!` runs every case with a distinct derived seed.
#[test]
fn for_seeds_covers_every_case() {
    let mut seen = Vec::new();
    for_seeds!(0x100, 16, |rng: &mut StdRng| {
        seen.push(rng.gen_range(0..u64::MAX));
    });
    assert_eq!(seen.len(), 16);
    // Different seeds give different streams.
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 16, "per-case RNG streams collided");
}

/// A panicking case propagates (after reporting the failing seed).
#[test]
#[should_panic(expected = "case 11 boom")]
fn for_seeds_propagates_case_panics() {
    let mut case = 0;
    for_seeds!(0x200, 16, |_rng: &mut StdRng| {
        if case == 11 {
            panic!("case 11 boom");
        }
        case += 1;
    });
}
