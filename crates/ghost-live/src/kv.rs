//! An in-process key-value service scheduled by a ghOSt policy.
//!
//! The live smoke workload: a sharded hash map served by worker OS
//! threads, driven closed-loop (a fixed request budget kept in flight by
//! reinjecting on completion) or open-loop (a load-generator thread
//! pushing at a fixed rate and kicking blocked workers). Workers run only
//! when the live kernel dispatches them — an unmodified policy's
//! transaction commits are what unpark these threads — and every request
//! records an enqueue→completion latency into a log-scale histogram.

use crate::kernel::LiveShared;
use crate::worker::{WorkerCmd, WorkerCtl};
use ghost_core::GhostRuntime;
use ghost_metrics::LogHistogram;
use ghost_sim::class::OffCpuReason;
use ghost_sim::thread::Tid;
use ghost_sim::time::Nanos;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Requests a worker serves before voluntarily yielding its lane (the
/// live analogue of a timeslice; policies that preempt sooner do so via
/// the preempt flag).
const YIELD_BATCH: usize = 64;

/// One KV operation.
#[derive(Debug, Clone, Copy)]
pub struct KvRequest {
    /// Key to read or write.
    pub key: u64,
    /// True for PUT, false for GET.
    pub put: bool,
    /// Backend time the request entered the queue.
    pub enqueued_at: Nanos,
}

/// A sharded in-memory KV store with a shared request queue.
pub struct KvService {
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    queue: Mutex<VecDeque<KvRequest>>,
    /// Requests completed (all workers).
    pub completed: AtomicU64,
    /// Requests issued so far (closed loop).
    issued: AtomicU64,
    /// Closed-loop request budget; 0 means open loop (no reinjection).
    target: AtomicU64,
    /// Per-request service time floor, enforced by busy-spinning.
    service_ns: u64,
    /// Merged enqueue→completion latencies (workers fold their local
    /// histograms in when they exit).
    latencies: Mutex<LogHistogram>,
}

impl KvService {
    /// A service with `shards` hash-map shards and `service_ns` of
    /// busy-work per request.
    pub fn new(shards: usize, service_ns: u64) -> Arc<Self> {
        Arc::new(Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            queue: Mutex::new(VecDeque::new()),
            completed: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            target: AtomicU64::new(0),
            service_ns,
            latencies: Mutex::new(LogHistogram::new()),
        })
    }

    /// Enqueues one request.
    pub fn push(&self, key: u64, put: bool, now: Nanos) {
        self.queue.lock().unwrap().push_back(KvRequest {
            key,
            put,
            enqueued_at: now,
        });
    }

    /// Pops the oldest pending request.
    pub fn pop(&self) -> Option<KvRequest> {
        self.queue.lock().unwrap().pop_front()
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// Pending queue depth.
    pub fn depth(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Starts a closed loop: `concurrency` requests in flight, reinjected
    /// on completion until `total` have been issued. Returns how many were
    /// seeded (callers wake that many workers).
    pub fn start_closed_loop(&self, total: u64, concurrency: u64, now: Nanos) -> u64 {
        self.target.store(total, Ordering::Release);
        let seed = concurrency.min(total);
        for i in 0..seed {
            self.issued.fetch_add(1, Ordering::AcqRel);
            self.push(splitmix(i), i % 10 == 0, now);
        }
        seed
    }

    /// Total requests completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// Closed-loop budget (0 in open loop).
    pub fn target_count(&self) -> u64 {
        self.target.load(Ordering::Acquire)
    }

    /// Snapshot of the merged latency histogram.
    pub fn latency_histogram(&self) -> LogHistogram {
        self.latencies.lock().unwrap().clone()
    }

    /// Serves one request: shard lookup/update plus the configured
    /// busy-spin floor. Returns the completion time.
    fn serve(&self, req: &KvRequest) {
        let shard = &self.shards[(req.key as usize) % self.shards.len()];
        {
            let mut map = shard.lock().unwrap();
            if req.put {
                map.insert(req.key, req.key.wrapping_mul(31));
            } else {
                let _ = map.get(&req.key);
            }
        }
        if self.service_ns > 0 {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < self.service_ns {
                std::hint::spin_loop();
            }
        }
    }

    /// Closed-loop reinjection: after completing one request, issue the
    /// next if the budget allows.
    fn reinject(&self, now: Nanos) {
        let target = self.target.load(Ordering::Acquire);
        if target == 0 {
            return;
        }
        if self
            .issued
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < target).then_some(n + 1)
            })
            .is_ok()
        {
            let n = self.issued.load(Ordering::Acquire);
            self.push(splitmix(n), n.is_multiple_of(10), now);
        }
    }
}

/// SplitMix64: cheap deterministic key stream without an RNG dependency.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Main loop of a KV worker OS thread. The worker runs a scheduling stint
/// only when dispatched onto a lane, ends the stint at queue-empty
/// (block), preempt flag (preempt), or batch boundary (yield), and
/// reports the transition to the live kernel — which posts the matching
/// `THREAD_*` message to the policy, exactly as the DES would.
pub(crate) fn worker_main(
    shared: Arc<LiveShared>,
    _rt: GhostRuntime,
    kv: Arc<KvService>,
    tid: Tid,
    ctl: Arc<WorkerCtl>,
) {
    let mut local = LogHistogram::new();
    // `MonotonicClock` is `Copy`: workers timestamp requests without
    // touching the state lock on the serve path.
    let clock = { shared.state.lock().unwrap().clock };
    'outer: loop {
        match ctl.wait() {
            WorkerCmd::Exit => break 'outer,
            WorkerCmd::Park => continue,
            WorkerCmd::Free => {
                // Unmanaged (not attached, or shed to CFS): serve freely on
                // the host scheduler until the command changes.
                loop {
                    match ctl.peek().0 {
                        WorkerCmd::Free => {}
                        WorkerCmd::Exit => break 'outer,
                        _ => continue 'outer,
                    }
                    let now = clock.now();
                    if let Some(req) = kv.pop() {
                        kv.serve(&req);
                        local.record(now.saturating_sub(req.enqueued_at));
                        kv.completed.fetch_add(1, Ordering::AcqRel);
                        kv.reinject(now);
                    } else {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
            WorkerCmd::Run { cpu } => {
                let mut served = 0usize;
                let reason = loop {
                    if ctl.preempt_pending() {
                        break OffCpuReason::Preempt;
                    }
                    let Some(req) = kv.pop() else {
                        break OffCpuReason::Block;
                    };
                    kv.serve(&req);
                    let now = clock.now();
                    local.record(now.saturating_sub(req.enqueued_at));
                    kv.completed.fetch_add(1, Ordering::AcqRel);
                    kv.reinject(now);
                    served += 1;
                    if served >= YIELD_BATCH {
                        break OffCpuReason::Yield;
                    }
                };
                // End the stint under the state lock. The queue-empty
                // check is repeated here because a request pushed after
                // our last pop but before this lock would otherwise be
                // stranded: its wake saw us Running and no-opped.
                let mut st = shared.state.lock().unwrap();
                let reason = if reason == OffCpuReason::Block && !kv.is_empty() {
                    OffCpuReason::Yield
                } else {
                    reason
                };
                st.end_stint(tid, cpu, reason);
                drop(st);
            }
        }
    }
    kv.latencies.lock().unwrap().merge(&local);
}

/// Drives the service open-loop: pushes `batch` requests every `period`,
/// kicking one blocked worker per pushed request, for `duration`. Returns
/// the number of requests pushed. Runs on the caller's thread.
pub fn open_loop_drive(
    kernel: &crate::kernel::LiveKernel,
    kv: &KvService,
    workers: &[Tid],
    batch: u64,
    period: Duration,
    duration: Duration,
) -> u64 {
    let start = Instant::now();
    let mut pushed = 0u64;
    while start.elapsed() < duration {
        let now = kernel.now();
        for i in 0..batch {
            kv.push(
                splitmix(pushed.wrapping_add(i)),
                (pushed + i).is_multiple_of(10),
                now,
            );
        }
        pushed += batch;
        for _ in 0..batch {
            if !kernel.wake_one_blocked(workers) {
                break;
            }
        }
        std::thread::sleep(period);
    }
    pushed
}

/// Blocks until `kv` completes `count` requests or `timeout` passes;
/// returns true on completion.
pub fn await_completion(kv: &KvService, count: u64, timeout: Duration) -> bool {
    let start = Instant::now();
    while kv.completed_count() < count {
        if start.elapsed() > timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_spreads_keys() {
        let a = splitmix(1);
        let b = splitmix(2);
        assert_ne!(a, b);
    }

    #[test]
    fn closed_loop_reinjects_to_target() {
        let kv = KvService::new(4, 0);
        let seeded = kv.start_closed_loop(10, 4, 0);
        assert_eq!(seeded, 4);
        let mut done = 0;
        while let Some(req) = kv.pop() {
            kv.serve(&req);
            kv.completed.fetch_add(1, Ordering::AcqRel);
            kv.reinject(1);
            done += 1;
        }
        assert_eq!(done, 10);
        assert_eq!(kv.completed_count(), 10);
    }
}
