//! ghOSt messages (Table 1 of the paper).
//!
//! The kernel notifies agents of thread state changes asynchronously via
//! messages. Every thread-scoped message carries the thread's sequence
//! number `Tseq`, "incremented whenever that thread posts a new state
//! change message" (§3.1); agents echo the latest `Tseq` they have seen
//! when committing transactions so the kernel can reject stale decisions.

use ghost_sim::thread::Tid;
use ghost_sim::time::Nanos;
use ghost_sim::topology::CpuId;

/// Message types, exactly the set in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgType {
    /// A thread entered the ghOSt scheduling class.
    ThreadCreated,
    /// A running ghOSt thread blocked.
    ThreadBlocked,
    /// A running ghOSt thread was preempted (typically by a CFS thread —
    /// the ghOSt class sits below CFS, §3.4).
    ThreadPreempted,
    /// A running ghOSt thread called `sched_yield`.
    ThreadYield,
    /// A ghOSt thread exited or left the class.
    ThreadDead,
    /// A blocked ghOSt thread became runnable.
    ThreadWakeup,
    /// `sched_setaffinity` changed the thread's CPU mask.
    ThreadAffinity,
    /// Periodic timer tick on a CPU in the enclave.
    TimerTick,
}

impl MsgType {
    /// True for messages about a specific thread (everything except
    /// `TIMER_TICK`).
    pub fn is_thread_msg(self) -> bool {
        !matches!(self, MsgType::TimerTick)
    }

    /// The canonical uppercase name used in the paper.
    pub fn as_str(self) -> &'static str {
        match self {
            MsgType::ThreadCreated => "THREAD_CREATED",
            MsgType::ThreadBlocked => "THREAD_BLOCKED",
            MsgType::ThreadPreempted => "THREAD_PREEMPTED",
            MsgType::ThreadYield => "THREAD_YIELD",
            MsgType::ThreadDead => "THREAD_DEAD",
            MsgType::ThreadWakeup => "THREAD_WAKEUP",
            MsgType::ThreadAffinity => "THREAD_AFFINITY",
            MsgType::TimerTick => "TIMER_TICK",
        }
    }
}

/// A message as delivered to an agent: `(M_T, T_seq)` in the paper's
/// notation, plus the payload agents need to act without a kernel
/// round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Message type.
    pub ty: MsgType,
    /// Subject thread; `Tid(u32::MAX)` for CPU-scoped messages.
    pub tid: Tid,
    /// The thread's sequence number at posting time (0 for CPU messages).
    pub seq: u64,
    /// CPU the event happened on (preemption CPU, tick CPU, wakeup CPU).
    pub cpu: CpuId,
    /// Virtual time the message was produced.
    pub produced_at: Nanos,
}

/// Sentinel tid for CPU-scoped messages.
pub const NO_TID: Tid = Tid(u32::MAX);

impl Message {
    /// Creates a thread-scoped message.
    pub fn thread(ty: MsgType, tid: Tid, seq: u64, cpu: CpuId, now: Nanos) -> Self {
        debug_assert!(ty.is_thread_msg());
        Self {
            ty,
            tid,
            seq,
            cpu,
            produced_at: now,
        }
    }

    /// Creates a `TIMER_TICK` message for `cpu`.
    pub fn tick(cpu: CpuId, now: Nanos) -> Self {
        Self {
            ty: MsgType::TimerTick,
            tid: NO_TID,
            seq: 0,
            cpu,
            produced_at: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_msgs_are_thread_scoped() {
        for ty in [
            MsgType::ThreadCreated,
            MsgType::ThreadBlocked,
            MsgType::ThreadPreempted,
            MsgType::ThreadYield,
            MsgType::ThreadDead,
            MsgType::ThreadWakeup,
            MsgType::ThreadAffinity,
        ] {
            assert!(ty.is_thread_msg());
        }
        assert!(!MsgType::TimerTick.is_thread_msg());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(MsgType::ThreadWakeup.as_str(), "THREAD_WAKEUP");
        assert_eq!(MsgType::TimerTick.as_str(), "TIMER_TICK");
    }

    #[test]
    fn constructors_fill_fields() {
        let m = Message::thread(MsgType::ThreadWakeup, Tid(7), 42, CpuId(3), 1000);
        assert_eq!(m.tid, Tid(7));
        assert_eq!(m.seq, 42);
        let t = Message::tick(CpuId(9), 5);
        assert_eq!(t.tid, NO_TID);
        assert_eq!(t.cpu, CpuId(9));
    }
}
