//! In-kernel secure core scheduling (§4.5 baseline, Table 4): a
//! cookie-aware fair class that enforces the same-VM-per-core invariant
//! inside the kernel, replacing CFS for VM threads.
//!
//! Implemented as per-core round-robin with cookie matching: when a CPU
//! picks, it may only choose a thread whose cookie matches whatever the
//! SMT sibling is running; if nothing matches, the CPU stays idle
//! (force-idle) — exactly the throughput cost Table 4 quantifies.

use ghost_sim::class::SchedClass;
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::topology::CpuId;
use std::collections::VecDeque;

/// The in-kernel core-scheduling class.
pub struct KernelCoreSched {
    /// Round-robin slice.
    pub slice: Nanos,
    /// Global runqueue (simple and fair at the VM granularity).
    rq: VecDeque<Tid>,
    /// Force-idle picks (sibling cookie mismatch), the security cost.
    pub force_idle: u64,
}

impl KernelCoreSched {
    /// Creates the class with a default 3 ms slice.
    pub fn new() -> Self {
        Self {
            slice: 3 * MILLIS,
            rq: VecDeque::new(),
            force_idle: 0,
        }
    }

    /// The cookie running on `cpu`'s sibling, if any core-sched thread
    /// is there.
    fn sibling_cookie(&self, cpu: CpuId, k: &KernelState) -> Option<u64> {
        let sib = k.topo.sibling(cpu)?;
        let cur = k.cpus[sib.index()].current?;
        let t = &k.threads[cur.index()];
        (t.class == ghost_sim::CLASS_CFS).then_some(t.cookie)
    }
}

impl Default for KernelCoreSched {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedClass for KernelCoreSched {
    fn name(&self) -> &'static str {
        "kernel-core-sched"
    }

    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId> {
        self.rq.push_back(tid);
        // Wake placement: an idle CPU whose sibling runs a matching
        // cookie (or is idle).
        let cookie = k.threads[tid.index()].cookie;
        let affinity = k.threads[tid.index()].affinity;
        for c in affinity.iter() {
            if !k.cpus[c.index()].is_idle() {
                continue;
            }
            match self.sibling_cookie(c, k) {
                Some(sc) if sc != cookie => continue,
                _ => return Some(c),
            }
        }
        affinity.first()
    }

    fn dequeue(&mut self, tid: Tid, _k: &mut KernelState) {
        self.rq.retain(|&t| t != tid);
    }

    fn pick_next(&mut self, cpu: CpuId, k: &mut KernelState) -> Option<Tid> {
        let constraint = self.sibling_cookie(cpu, k);
        let pos = self.rq.iter().position(|&t| {
            let th = &k.threads[t.index()];
            th.affinity.contains(cpu)
                && th.state == ThreadState::Runnable
                && constraint.is_none_or(|c| th.cookie == c)
        });
        match pos {
            Some(i) => self.rq.remove(i),
            None => {
                if !self.rq.is_empty() && constraint.is_some() {
                    // Runnable work exists but would violate the core
                    // invariant: force-idle.
                    self.force_idle += 1;
                }
                None
            }
        }
    }

    fn put_prev(&mut self, tid: Tid, _cpu: CpuId, still_runnable: bool, _k: &mut KernelState) {
        if still_runnable {
            self.rq.push_back(tid);
        }
    }

    fn on_tick(&mut self, _cpu: CpuId, current: Tid, k: &mut KernelState) -> bool {
        if self.rq.is_empty() {
            return false;
        }
        let ran = k.now.saturating_sub(k.threads[current.index()].stint_start);
        ran >= self.slice
    }

    fn on_tick_all(&mut self, cpu: CpuId, k: &mut KernelState) {
        // Idle CPUs re-check: sibling occupancy changes may have made a
        // queued thread eligible.
        if k.cpus[cpu.index()].is_idle() && !self.rq.is_empty() {
            k.request_resched(cpu);
        }
    }

    fn has_runnable(&self, cpu: CpuId, k: &KernelState) -> bool {
        self.rq
            .iter()
            .any(|&t| k.threads[t.index()].affinity.contains(cpu))
    }

    fn on_detach(&mut self, tid: Tid, k: &mut KernelState) {
        self.dequeue(tid, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::app::{App, Next};
    use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
    use ghost_sim::time::SECS;
    use ghost_sim::topology::Topology;
    use ghost_sim::CLASS_CFS;

    struct Spin;
    impl App for Spin {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn name(&self) -> &str {
            "spin"
        }
        fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}
        fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
            Next::Run { dur: 10 * MILLIS }
        }
    }

    /// Two VMs, one SMT core: threads of different VMs must never share
    /// the core; each VM gets ~half the wall time at full (non-SMT) rate.
    #[test]
    fn different_vms_never_share_a_core() {
        let mut kernel = Kernel::new(Topology::new("smt", 1, 1, 2, 1), KernelConfig::default());
        kernel.install_class(CLASS_CFS, Box::new(KernelCoreSched::new()));
        let app = kernel.state.next_app_id();
        let a = kernel.spawn(
            ThreadSpec::workload("vm-a", &kernel.state.topo)
                .app(app)
                .cookie(1),
        );
        let b = kernel.spawn(
            ThreadSpec::workload("vm-b", &kernel.state.topo)
                .app(app)
                .cookie(2),
        );
        kernel.add_app(Box::new(Spin));
        kernel.assign_and_wake(a, 10 * MILLIS);
        kernel.assign_and_wake(b, 10 * MILLIS);
        kernel.run_until(SECS);
        for t in [a, b] {
            let th = kernel.state.thread(t);
            // Never co-ran with the other VM → full-rate execution.
            let rate = th.total_work as f64 / th.total_oncpu.max(1) as f64;
            assert!(rate > 0.95, "{} ran SMT-degraded: rate {rate}", th.name);
            // Fair rotation: roughly half the second each.
            let share = th.total_oncpu as f64 / SECS as f64;
            assert!((0.35..=0.65).contains(&share), "share {share}");
        }
    }

    /// Same-VM threads *do* share the core (both siblings busy).
    #[test]
    fn same_vm_threads_share_the_core() {
        let mut kernel = Kernel::new(Topology::new("smt", 1, 1, 2, 1), KernelConfig::default());
        kernel.install_class(CLASS_CFS, Box::new(KernelCoreSched::new()));
        let app = kernel.state.next_app_id();
        let a = kernel.spawn(
            ThreadSpec::workload("vm-a0", &kernel.state.topo)
                .app(app)
                .cookie(1),
        );
        let b = kernel.spawn(
            ThreadSpec::workload("vm-a1", &kernel.state.topo)
                .app(app)
                .cookie(1),
        );
        kernel.add_app(Box::new(Spin));
        kernel.assign_and_wake(a, 10 * MILLIS);
        kernel.assign_and_wake(b, 10 * MILLIS);
        kernel.run_until(SECS);
        for t in [a, b] {
            let th = kernel.state.thread(t);
            let share = th.total_oncpu as f64 / SECS as f64;
            assert!(share > 0.9, "{} should run ~continuously: {share}", th.name);
            let rate = th.total_work as f64 / th.total_oncpu as f64;
            assert!(rate < 0.75, "{} should see SMT contention: {rate}", th.name);
        }
    }
}
