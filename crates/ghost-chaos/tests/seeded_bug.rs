#![cfg(feature = "seeded-bug")]
//! End-to-end validation that the harness actually catches bugs: with
//! the `seeded-bug` feature on, enclave teardown strands runnable
//! threads in the ghOSt class instead of moving them to CFS. The sweep
//! oracles must catch it, the shrinker must reduce the fault plan to a
//! minimal repro, and the written `repro.json` must replay the exact
//! failure deterministically.

use ghost_chaos::{combo_from_json, combo_to_json, run_combo, shrink, Combo, PolicyKind};
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::time::MILLIS;
use ghost_sim::topology::CpuId;

/// A hand-built ≤3-event plan whose agent hang trips the watchdog (and,
/// belt and braces, a later crash and a tick skew). The odd seed keeps
/// the run on the fallback path (no staged standby), so teardown runs —
/// and the seeded bug strands every runnable thread.
fn buggy_combo() -> Combo {
    Combo {
        policy: PolicyKind::CentralizedFifo,
        seed: 0xB19,
        plan: FaultPlan::from_events([
            (
                5 * MILLIS,
                FaultKind::AgentHang {
                    cpu: CpuId(1),
                    dur: 30 * MILLIS,
                },
            ),
            (40 * MILLIS, FaultKind::AgentCrash { cpu: CpuId(1) }),
            (
                60 * MILLIS,
                FaultKind::TickSkew {
                    dur: 5 * MILLIS,
                    extra: 500_000,
                },
            ),
        ]),
        horizon: 120 * MILLIS,
        threads: 5,
    }
}

#[test]
fn seeded_bug_is_caught_shrunk_and_replayed() {
    // 1. Caught: the oracles flag the stranded threads.
    let combo = buggy_combo();
    let report = run_combo(&combo);
    assert!(!report.failures.is_empty(), "seeded bug not caught");
    assert!(
        report
            .failures
            .iter()
            .any(|f| f.oracle == "fallback-to-cfs"),
        "expected the fallback oracle to fire, got: {:?}",
        report.failures
    );

    // 2. Shrunk: either the hang (watchdog reap) or the crash (fallback)
    // alone reproduces, so the minimal plan is a single event.
    let minimal = shrink(&combo);
    assert!(
        minimal.plan.events.len() <= 3,
        "shrunk plan too large: {:?}",
        minimal.plan.events
    );
    assert!(
        minimal.plan.events.len() < combo.plan.events.len(),
        "shrinker removed nothing"
    );
    let min_report = run_combo(&minimal);
    assert!(
        !min_report.failures.is_empty(),
        "shrunk combo stopped failing"
    );

    // 3. Replayed: through repro.json, byte-identical failure set.
    let parsed = combo_from_json(&combo_to_json(&minimal)).expect("repro parses");
    assert_eq!(parsed, minimal);
    let replayed = run_combo(&parsed);
    assert_eq!(replayed.failures, min_report.failures, "replay diverged");
    assert_eq!(replayed.completions, min_report.completions);
}
