//! The `BENCH_live_vs_sim.json` emitter (ROADMAP perf trajectory).
//!
//! Runs a matched pair of workloads per policy — a DES [`Scenario`] and
//! a live closed-loop KV run on [`ghost_live::LiveKernel`] — and writes
//! one JSON row per run:
//!
//! * **wall-clock** — how long the run really took;
//! * **simulated-seconds/sec** — for DES rows, how much virtual time
//!   the simulator chews through per wall-clock second (the DES's own
//!   "speed");
//! * **throughput** — work items (pulse completions / KV requests) per
//!   wall-clock second.
//!
//! The JSON is hand-rolled (no serde in the workspace); the schema is
//! one `rows` array of flat objects so any plotting script can consume
//! it. Wall-clock numbers are measured, not simulated — the file is a
//! perf *trajectory* across commits, not a determinism artifact, so it
//! carries no hash and is not cached.

use crate::scenario::{PolicyKind, Scenario, WorkloadSpec};
use ghost_core::enclave::EnclaveConfig;
use ghost_live::{KvService, LiveConfig, LiveKernel};
use ghost_sim::time::{Nanos, MICROS, MILLIS, SECS};
use ghost_sim::CpuSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured run (one backend × one policy).
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Policy label (`fifo`, `per-cpu`, ...).
    pub name: String,
    /// `"sim"` or `"live"`.
    pub backend: &'static str,
    /// Wall-clock duration of the run.
    pub wall_ns: u128,
    /// Virtual horizon simulated (DES rows only).
    pub sim_ns: Option<Nanos>,
    /// Work items finished: pulse completions (sim) or KV requests
    /// served (live).
    pub work_items: u64,
}

impl BenchRow {
    /// Virtual seconds simulated per wall-clock second (DES rows).
    pub fn sim_seconds_per_sec(&self) -> Option<f64> {
        self.sim_ns
            .map(|sim| sim as f64 / self.wall_ns.max(1) as f64)
    }

    /// Work items per wall-clock second.
    pub fn throughput_per_sec(&self) -> f64 {
        self.work_items as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

/// Knobs for one live-vs-sim comparison.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Lanes for both backends.
    pub cpus: usize,
    /// DES virtual horizon.
    pub sim_horizon: Nanos,
    /// KV requests per live run.
    pub live_requests: u64,
    /// Per-request service-time floor for the live KV workload.
    pub service_ns: u64,
    /// Hard wall-clock cap per live run (a stalled run stops here and
    /// reports whatever it served — the bench must not hang CI).
    pub live_deadline: Duration,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            cpus: 4,
            sim_horizon: 200 * MILLIS,
            live_requests: 50_000,
            service_ns: 2 * MICROS,
            live_deadline: Duration::from_secs(30),
        }
    }
}

/// Upper bound on horizon-sized chunks a sim row may run while chasing
/// work-item parity with the live rows, so a policy that stops
/// completing work cannot hang the bench.
const SIM_CHUNK_CAP: u64 = 1_000;

/// Runs one DES scenario and reports its row.
///
/// The live rows serve exactly `opts.live_requests` KV requests, so the
/// sim rows keep simulating — in `opts.sim_horizon`-sized chunks, the
/// pulse workload re-arms forever — until they have completed as many
/// pulse segments. `work_items` is then comparable across backends, and
/// `sim_ns` reports the virtual time that actually elapsed.
fn sim_row(policy: PolicyKind, opts: &BenchOpts) -> BenchRow {
    let scenario = Scenario::builder()
        .name(format!("bench/{}", policy.name()))
        .cpus(opts.cpus as u16)
        .policy(policy)
        .workload(WorkloadSpec::pulse(2 * opts.cpus))
        .seed(1)
        .horizon(opts.sim_horizon)
        .trace_capacity(0)
        .build();
    let mut run = scenario.launch();
    let started = Instant::now();
    let mut elapsed: Nanos = 0;
    for _ in 0..SIM_CHUNK_CAP {
        elapsed += opts.sim_horizon;
        run.sim.kernel.run_until(elapsed);
        if run.completions() >= opts.live_requests {
            break;
        }
    }
    BenchRow {
        name: policy.name().to_string(),
        backend: "sim",
        wall_ns: started.elapsed().as_nanos(),
        sim_ns: Some(elapsed),
        work_items: run.completions(),
    }
}

/// One fig5-style scale row: a centralized-FIFO global agent driving
/// `threads` yield-loop threads over all of `topo`'s CPUs but its own.
/// `work_items` counts committed transactions during the measure window;
/// `sim_seconds_per_sec` divides virtual time by the whole run's wall
/// clock (setup and warmup included — at a million threads, building the
/// machine is part of the cost being measured).
pub fn fig5_scale_row(
    name: &str,
    topo: ghost_sim::topology::Topology,
    threads: usize,
    work: Nanos,
    warmup: Nanos,
    measure: Nanos,
) -> BenchRow {
    let scheduled = topo.num_cpus() - 1;
    let started = Instant::now();
    let point = ghost_bench::fig5::run_point_with_threads(
        topo, scheduled, threads, work, warmup, measure, true,
    );
    let committed = (point.txns_per_sec * measure as f64 / 1e9).round() as u64;
    BenchRow {
        name: name.to_string(),
        backend: "sim",
        wall_ns: started.elapsed().as_nanos(),
        sim_ns: Some(warmup + measure),
        work_items: committed,
    }
}

/// The `bench-sim` row set: work-item-matched DES rows for the two
/// headline policies, plus fig5 scale rows on the paper's machines.
/// `full_scale` adds the 1024-CPU / 1M-thread point (expensive — not
/// run in CI, landed in the committed JSON from a workstation run).
pub fn bench_sim(opts: &BenchOpts, full_scale: bool) -> Vec<BenchRow> {
    use ghost_sim::topology::Topology;
    let mut rows = vec![
        sim_row(PolicyKind::CentralizedFifo, opts),
        sim_row(PolicyKind::PerCpu, opts),
        fig5_scale_row(
            "fig5-skylake-112",
            Topology::skylake_112(),
            112 + 4,
            ghost_bench::fig5::FIG5_WORK,
            20 * MILLIS,
            80 * MILLIS,
        ),
        fig5_scale_row(
            "fig5-rome-256",
            Topology::rome_256(),
            256 + 4,
            ghost_bench::fig5::FIG5_WORK,
            20 * MILLIS,
            80 * MILLIS,
        ),
    ];
    if full_scale {
        // At a million threads the global agent must drain ~2M startup
        // messages (ThreadCreated + wakeups) at ~265 ns each — over half
        // a second of virtual time — before its first commit can land.
        // The warmup covers that drain; the 1 ms work segment keeps the
        // event count (and wall time) bounded at 1024 CPUs.
        rows.push(fig5_scale_row(
            "fig5-zen-1024-1m",
            Topology::zen_1024(),
            1_000_000,
            MILLIS,
            800 * MILLIS,
            200 * MILLIS,
        ));
    }
    rows
}

/// Runs one live closed-loop KV workload under `policy` and reports its
/// row. The driver kicks a blocked worker whenever requests are queued
/// (same shape as `examples/live_smoke.rs`).
fn live_row(
    name: &str,
    config: EnclaveConfig,
    policy: Box<dyn ghost_core::GhostPolicy>,
    opts: &BenchOpts,
) -> BenchRow {
    let kernel = LiveKernel::new(LiveConfig {
        cpus: opts.cpus,
        ..LiveConfig::default()
    });
    let enclave = kernel.launch_enclave(CpuSet::first_n(opts.cpus), config, policy);
    let kv = KvService::new(16, opts.service_ns);
    let workers: Vec<_> = (0..opts.cpus)
        .map(|i| kernel.spawn_kv_worker(&format!("bench-kv-{i}"), Arc::clone(&kv)))
        .collect();
    for &tid in &workers {
        kernel.attach(&enclave, tid);
    }

    let started = Instant::now();
    kv.start_closed_loop(opts.live_requests, 2 * workers.len() as u64, kernel.now());
    for &tid in &workers {
        kernel.wake(tid);
    }
    let deadline = started + opts.live_deadline;
    while kv.completed_count() < opts.live_requests && Instant::now() < deadline {
        if kv.depth() > 0 {
            kernel.wake_one_blocked(&workers);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall_ns = started.elapsed().as_nanos();
    let served = kv.completed_count();
    kernel.shutdown();
    BenchRow {
        name: name.to_string(),
        backend: "live",
        wall_ns,
        sim_ns: None,
        work_items: served,
    }
}

/// The matched live-vs-sim comparison: FIFO-centralized and per-CPU,
/// each on both backends.
pub fn bench_live_vs_sim(opts: &BenchOpts) -> Vec<BenchRow> {
    vec![
        sim_row(PolicyKind::CentralizedFifo, opts),
        sim_row(PolicyKind::PerCpu, opts),
        live_row(
            PolicyKind::CentralizedFifo.name(),
            EnclaveConfig::centralized("bench-fifo").with_watchdog(5 * SECS),
            Box::new(ghost_policies::CentralizedFifo::new()),
            opts,
        ),
        live_row(
            PolicyKind::PerCpu.name(),
            EnclaveConfig::per_cpu("bench-percpu").with_watchdog(5 * SECS),
            Box::new(ghost_policies::PerCpuPolicy::new()),
            opts,
        ),
    ]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// One row serialized to the flat-object schema (no trailing comma).
fn row_json(row: &BenchRow) -> String {
    let sim_ms = row
        .sim_ns
        .map(|n| json_f64(n as f64 / 1e6))
        .unwrap_or_else(|| "null".into());
    let sim_rate = row
        .sim_seconds_per_sec()
        .map(json_f64)
        .unwrap_or_else(|| "null".into());
    format!(
        "{{\"name\": \"{}\", \"backend\": \"{}\", \"wall_ms\": {}, \"sim_ms\": {}, \
         \"sim_seconds_per_sec\": {}, \"work_items\": {}, \"throughput_per_sec\": {}}}",
        row.name,
        row.backend,
        json_f64(row.wall_ns as f64 / 1e6),
        sim_ms,
        sim_rate,
        row.work_items,
        json_f64(row.throughput_per_sec()),
    )
}

/// Serializes rows to the `BENCH_live_vs_sim.json` schema.
pub fn bench_json(rows: &[BenchRow]) -> String {
    merged_bench_json(None, rows)
}

/// Pulls the string value of `key` out of one serialized row line.
fn row_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split(&format!("\"{key}\": \""))
        .nth(1)?
        .split('"')
        .next()
}

/// Pulls the numeric (or null) value of `key` out of one row line.
fn row_number(line: &str, key: &str) -> Option<f64> {
    line.split(&format!("\"{key}\": "))
        .nth(1)?
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// A row as re-read from an existing `BENCH_live_vs_sim.json` — the
/// subset the CI perf gate compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRow {
    /// Policy / scale-point label.
    pub name: String,
    /// `"sim"` or `"live"`.
    pub backend: String,
    /// Simulated seconds per wall-clock second (None for live rows).
    pub sim_seconds_per_sec: Option<f64>,
    /// Work items recorded for the run.
    pub work_items: u64,
}

/// Parses rows back out of the emitter's own JSON (schema-bound: this is
/// not a general JSON parser, it reads exactly what [`bench_json`]
/// writes — one row object per line).
pub fn parse_rows(json: &str) -> Vec<ParsedRow> {
    json.lines()
        .map(str::trim)
        .filter(|l| l.starts_with('{') && l.contains("\"name\""))
        .filter_map(|l| {
            Some(ParsedRow {
                name: row_field(l, "name")?.to_string(),
                backend: row_field(l, "backend")?.to_string(),
                sim_seconds_per_sec: row_number(l, "sim_seconds_per_sec"),
                work_items: row_number(l, "work_items")? as u64,
            })
        })
        .collect()
}

/// Serializes `new_rows` merged over an existing file's rows: an old row
/// with the same `(name, backend)` is replaced in place, anything else
/// is preserved, new rows append at the end. Lets `bench-sim` refresh
/// its rows inside `BENCH_live_vs_sim.json` without re-running (or
/// discarding) the live rows.
pub fn merged_bench_json(existing: Option<&str>, new_rows: &[BenchRow]) -> String {
    let fresh: Vec<(String, String, String)> = new_rows
        .iter()
        .map(|r| (r.name.clone(), r.backend.to_string(), row_json(r)))
        .collect();
    let mut lines: Vec<String> = Vec::new();
    if let Some(text) = existing {
        for l in text.lines() {
            let t = l.trim();
            if !t.starts_with('{') || !t.contains("\"name\"") {
                continue;
            }
            let line = t.trim_end_matches(',').to_string();
            let key = (
                row_field(&line, "name").unwrap_or_default().to_string(),
                row_field(&line, "backend").unwrap_or_default().to_string(),
            );
            if !fresh.iter().any(|(n, b, _)| (n, b) == (&key.0, &key.1)) {
                lines.push(line);
            }
        }
    }
    lines.extend(fresh.into_iter().map(|(_, _, l)| l));
    let mut out = String::from("{\n  \"bench\": \"live_vs_sim\",\n  \"rows\": [\n");
    for (i, l) in lines.iter().enumerate() {
        out.push_str("    ");
        out.push_str(l);
        if i + 1 < lines.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the comparison and writes `path` (`BENCH_live_vs_sim.json`).
pub fn emit_live_vs_sim(path: &str, opts: &BenchOpts) -> std::io::Result<Vec<BenchRow>> {
    let rows = bench_live_vs_sim(opts);
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merged_bench_json(existing.as_deref(), &rows))?;
    Ok(rows)
}

/// Runs the `bench-sim` rows and merges them into `path`.
pub fn emit_bench_sim(
    path: &str,
    opts: &BenchOpts,
    full_scale: bool,
) -> std::io::Result<Vec<BenchRow>> {
    let rows = bench_sim(opts, full_scale);
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, merged_bench_json(existing.as_deref(), &rows))?;
    Ok(rows)
}
