//! Measurement infrastructure for the ghOSt reproduction.
//!
//! This crate provides the building blocks every benchmark harness in the
//! repository uses to report results in the same shape as the paper:
//!
//! * [`LogHistogram`] — an HDR-style log-bucketed latency histogram with
//!   bounded relative error, used for every tail-latency figure
//!   (Figs. 6 and 7 of the paper).
//! * [`TimeSeries`] — time-binned samples with per-bin percentile
//!   extraction, used for the Google Search time-series plots (Fig. 8).
//! * [`Counter`] / [`MeanTracker`] — cheap scalar aggregates.
//! * [`table`] — fixed-width text table rendering so each harness prints
//!   the same rows/series the paper reports.
//!
//! All types use plain integers for time (nanoseconds) to match the
//! simulator's virtual clock and avoid floating-point drift in hot paths.

pub mod hist;
pub mod series;
pub mod stats;
pub mod table;

pub use hist::{LogHistogram, Percentile, PERCENTILES_SNAP};
pub use series::TimeSeries;
pub use stats::{Counter, MeanTracker, MinMax};
pub use table::Table;
