//! Focused tests of ghOSt ABI semantics from §3 of the paper:
//! `ASSOCIATE_QUEUE` failing with pending messages, atomic group commits,
//! queue overflow accounting, commit-slot invalidation on affinity
//! changes, and the per-core agent mode.

use ghost_core::abi::AbiError;
use ghost_core::enclave::{EnclaveConfig, QueueId};
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_sim::app::{App, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use std::sync::{Arc, Mutex};

/// Scriptable policy: runs closures the test injects.
type Script = Arc<Mutex<Vec<Box<dyn FnMut(&mut PolicyCtx<'_>) + Send>>>>;

struct Scripted {
    script: Script,
    log: Arc<Mutex<Vec<Message>>>,
}

impl GhostPolicy for Scripted {
    fn name(&self) -> &str {
        "scripted"
    }

    fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
        self.log.lock().unwrap().push(*msg);
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        let mut steps = self.script.lock().unwrap();
        for step in steps.iter_mut() {
            step(ctx);
        }
        steps.clear();
    }
}

struct Sleeper;

impl App for Sleeper {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        "sleeper"
    }
    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        if k.threads[tid.index()].state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = 50 * MICROS;
            k.wake(tid);
        }
    }
    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Block
    }
}

struct Setup {
    kernel: Kernel,
    runtime: GhostRuntime,
    enclave: ghost_core::runtime::EnclaveHandle,
    tids: Vec<Tid>,
    script: Script,
    log: Arc<Mutex<Vec<Message>>>,
}

fn setup(n_threads: usize, config: EnclaveConfig) -> Setup {
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus: CpuSet = (1..8u16).map(CpuId).collect();
    let script: Script = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::new(Mutex::new(Vec::new()));
    let enclave = runtime.launch_enclave(
        &mut kernel,
        cpus,
        config,
        Box::new(Scripted {
            script: Arc::clone(&script),
            log: Arc::clone(&log),
        }),
    );
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..n_threads {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("t{i}"), &kernel.state.topo).app(app_id));
        tids.push(tid);
    }
    kernel.add_app(Box::new(Sleeper));
    for &tid in &tids {
        enclave.attach_thread(&mut kernel.state, tid);
    }
    Setup {
        kernel,
        runtime,
        enclave,
        tids,
        script,
        log,
    }
}

#[test]
fn associate_queue_fails_with_pending_messages() {
    let mut s = setup(2, EnclaveConfig::centralized("assoc"));
    let t = s.tids[0];
    let other = s.tids[1];
    // Step 1: create a queue and reroute the (message-free) thread: OK.
    let ok = Arc::new(Mutex::new(None));
    let new_q = Arc::new(Mutex::new(QueueId(0)));
    {
        let ok = Arc::clone(&ok);
        let new_q = Arc::clone(&new_q);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let q = ctx.create_queue();
            *new_q.lock().unwrap() = q;
            *ok.lock().unwrap() = Some(ctx.associate_queue(t, q));
        }));
    }
    s.kernel.run_until(5 * MILLIS);
    assert_eq!(
        *ok.lock().unwrap(),
        Some(true),
        "clean association must succeed"
    );

    // Step 2: make the thread post a message into its NEW queue; nobody
    // drains that queue, so a second association must fail (§3.1: "If a
    // thread has its association change from one queue to another while
    // there are pending messages in the original queue, the association
    // operation will fail").
    s.kernel
        .state
        .arm_app_timer(6 * MILLIS, ghost_sim::app::AppId(0), t.0 as u64);
    s.kernel.run_until(8 * MILLIS);
    let fail = Arc::new(Mutex::new(None));
    {
        let fail = Arc::clone(&fail);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            *fail.lock().unwrap() = Some(ctx.associate_queue(t, QueueId(0)));
        }));
    }
    // Trigger an activation via the OTHER thread (whose messages go to
    // the default queue); `t`'s pending WAKEUP stays in the new queue.
    s.kernel.assign_and_wake(other, 10 * MICROS);
    s.kernel.run_until(20 * MILLIS);
    assert_eq!(
        *fail.lock().unwrap(),
        Some(false),
        "association with pending messages must fail"
    );
}

#[test]
fn atomic_group_commit_is_all_or_nothing() {
    let mut s = setup(2, EnclaveConfig::centralized("atomic"));
    let (a, b) = (s.tids[0], s.tids[1]);
    // Wake only thread `a`; leave `b` blocked so its txn must fail.
    s.kernel.assign_and_wake(a, MILLIS);
    let statuses = Arc::new(Mutex::new(Vec::new()));
    {
        let statuses = Arc::clone(&statuses);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let mut txns = vec![
                Transaction::new(a, CpuId(2)),
                Transaction::new(b, CpuId(3)), // b is blocked: TargetNotRunnable.
            ];
            ctx.commit_atomic(&mut txns);
            statuses
                .lock()
                .unwrap()
                .extend(txns.iter().map(|t| t.status));
        }));
    }
    s.kernel.run_until(10 * MILLIS);
    let st = statuses.lock().unwrap();
    assert_eq!(st.len(), 2);
    // The would-have-succeeded txn for `a` must be rolled back.
    assert_eq!(st[0], TxnStatus::Aborted);
    assert_eq!(st[1], TxnStatus::TargetNotRunnable);
    // And thread `a` must not be running (its commit was unwound).
    let stats = s.runtime.stats();
    assert_eq!(stats.txns_committed, 0);
    assert!(stats.txns_aborted >= 1);
}

#[test]
fn affinity_change_invalidates_pending_commit() {
    let mut s = setup(1, EnclaveConfig::centralized("affinity"));
    let t = s.tids[0];
    s.kernel.assign_and_wake(t, MILLIS);
    let status = Arc::new(Mutex::new(None));
    {
        let status = Arc::clone(&status);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let mut txn = Transaction::new(t, CpuId(5));
            *status.lock().unwrap() = Some(ctx.commit_one(&mut txn));
        }));
    }
    // Let the commit land and the thread run.
    s.kernel.run_until(500 * MICROS);
    assert_eq!(*status.lock().unwrap(), Some(TxnStatus::Committed));
    // While it runs on CPU 5, forbid CPU 5: the kernel reschedules it off.
    s.kernel
        .state
        .set_affinity(t, CpuSet::from_iter([CpuId(2), CpuId(3)]));
    s.kernel.run_until(5 * MILLIS);
    let th = s.kernel.state.thread(t);
    assert_ne!(th.cpu, Some(CpuId(5)), "thread must vacate forbidden CPU");
    // The policy got the THREAD_AFFINITY message.
    assert!(s
        .log
        .lock()
        .unwrap()
        .iter()
        .any(|m| m.ty == MsgType::ThreadAffinity && m.tid == t));
}

#[test]
fn queue_overflow_is_counted_not_fatal() {
    let mut config = EnclaveConfig::centralized("overflow");
    config.queue_capacity = 4; // Tiny ring.
    let mut s = setup(16, config);
    // 16 attach messages (THREAD_CREATED) overflow a 4-slot queue; the
    // kernel counts drops and keeps running.
    s.kernel.run_until(2 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.msgs_dropped > 0, "expected drops on a 4-slot queue");
    assert!(s.enclave.alive());
}

#[test]
fn status_words_reflect_thread_lifecycle() {
    let mut s = setup(1, EnclaveConfig::centralized("sw"));
    let t = s.tids[0];
    // Blocked at attach: not runnable.
    s.kernel.run_until(MILLIS);
    // Wake: the WAKEUP message carries an increasing seq, and the policy
    // sees monotonically increasing seqs overall.
    s.kernel.assign_and_wake(t, 100 * MICROS);
    s.kernel.run_until(2 * MILLIS);
    let log = s.log.lock().unwrap();
    let seqs: Vec<u64> = log.iter().filter(|m| m.tid == t).map(|m| m.seq).collect();
    assert!(seqs.len() >= 2, "expected CREATED + WAKEUP at least");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "Tseq must increase per message: {seqs:?}"
    );
}

#[test]
fn per_core_mode_schedules_same_cookie_siblings() {
    // 4 cores / 8 CPUs; enclave over all; two VMs with 2 threads each.
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus = kernel.state.topo.all_cpus_set();
    let enclave = runtime.launch_enclave(
        &mut kernel,
        cpus,
        EnclaveConfig::per_core("percore").with_ticks(true),
        Box::new(ghost_policies_stub::CoreStub::default()),
    );
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for vm in 0..2u64 {
        for i in 0..2 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("vm{vm}-{i}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(vm + 1),
            );
            tids.push(tid);
        }
    }
    kernel.add_app(Box::new(Sleeper));
    for &tid in &tids {
        enclave.attach_thread(&mut kernel.state, tid);
        kernel.state.thread_mut(tid).remaining = 200 * MICROS;
    }
    for &tid in &tids {
        kernel.wake_now(tid);
    }
    kernel.run_until(20 * MILLIS);
    // The stub pairs same-cookie threads per core; all four must have run.
    for &tid in &tids {
        assert!(
            kernel.state.thread(tid).total_work > 0,
            "{tid} never ran under the per-core stub"
        );
    }
}

/// A minimal same-cookie per-core policy used by the per-core mode test
/// (kept local so the test exercises ghost-core without ghost-policies).
mod ghost_policies_stub {
    use super::*;
    use std::collections::VecDeque;

    #[derive(Default)]
    pub struct CoreStub {
        rq: VecDeque<(Tid, u64, u64)>, // (tid, cookie, seq)
    }

    impl GhostPolicy for CoreStub {
        fn name(&self) -> &str {
            "core-stub"
        }

        fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
            if msg.ty == MsgType::ThreadWakeup || msg.ty == MsgType::ThreadPreempted {
                let cookie = ctx.thread_view(msg.tid).map(|v| v.cookie).unwrap_or(0);
                if !self.rq.iter().any(|&(t, _, _)| t == msg.tid) {
                    self.rq.push_back((msg.tid, cookie, msg.seq));
                }
            }
        }

        fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
            let core = ctx.topo().core_cpus(ctx.local_cpu());
            let free: Vec<CpuId> = core
                .iter()
                .filter(|&c| {
                    !ctx.commit_pending(c)
                        && ctx.running_ghost(c).is_none()
                        && (c == ctx.local_cpu()
                            || ctx.agent_on_cpu(c)
                            || ctx.idle_cpus().contains(c))
                })
                .collect();
            if free.is_empty() {
                return;
            }
            // The core's claimed cookie, if any.
            let claimed = core.iter().find_map(|c| {
                ctx.running_ghost(c)
                    .or_else(|| ctx.pending_commit_tid(c))
                    .and_then(|t| ctx.thread_view(t).map(|v| v.cookie))
            });
            let Some(pos) = self
                .rq
                .iter()
                .position(|&(_, ck, _)| claimed.is_none_or(|c| c == ck))
            else {
                return;
            };
            let (tid, _, seq) = self.rq.remove(pos).expect("position valid");
            let mut txn = Transaction::new(tid, free[0]).with_thread_seq(seq);
            if !ctx.commit_one(&mut txn).committed() {
                self.rq.push_back((tid, claimed.unwrap_or(0), seq));
            }
        }
    }
}

#[test]
fn txns_recall_withdraws_pending_commit() {
    let mut s = setup(1, EnclaveConfig::centralized("recall"));
    let t = s.tids[0];
    s.kernel.assign_and_wake(t, 5 * MILLIS);
    let outcome = Arc::new(Mutex::new((None, None, None)));
    {
        let outcome = Arc::clone(&outcome);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let mut txn = Transaction::new(t, CpuId(4));
            let committed = ctx.commit_one(&mut txn);
            // Recall it before the target CPU acts on it.
            let recalled = ctx.recall(CpuId(4));
            // The thread is schedulable again: a second commit succeeds.
            let mut txn2 = Transaction::new(t, CpuId(5));
            let second = ctx.commit_one(&mut txn2);
            *outcome.lock().unwrap() = (Some(committed), recalled, Some(second));
        }));
    }
    s.kernel.run_until(10 * MILLIS);
    let (committed, recalled, second) = *outcome.lock().unwrap();
    assert_eq!(committed, Some(TxnStatus::Committed));
    assert_eq!(recalled, Some(t), "recall must return the withdrawn thread");
    assert_eq!(second, Some(TxnStatus::Committed));
    assert_eq!(s.runtime.stats().txns_recalled, 1);
    // The thread ultimately ran on CPU 5 (the second commit).
    s.kernel.run_until(20 * MILLIS);
    assert_eq!(s.kernel.state.thread(t).last_cpu, Some(CpuId(5)));
}

#[test]
fn destroy_queue_semantics() {
    let mut s = setup(1, EnclaveConfig::centralized("destroyq"));
    let t = s.tids[0];
    let results = Arc::new(Mutex::new(Vec::new()));
    {
        let results = Arc::clone(&results);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let q = ctx.create_queue();
            // Destroying the default queue must fail.
            results.lock().unwrap().push(ctx.destroy_queue(QueueId(0)));
            // Destroying an unused fresh queue succeeds.
            results.lock().unwrap().push(ctx.destroy_queue(q));
            // Destroying it twice fails.
            results.lock().unwrap().push(ctx.destroy_queue(q));
            // A queue with an associated thread cannot be destroyed.
            let q2 = ctx.create_queue();
            assert!(ctx.associate_queue(t, q2));
            results.lock().unwrap().push(ctx.destroy_queue(q2));
        }));
    }
    s.kernel.run_until(5 * MILLIS);
    assert_eq!(*results.lock().unwrap(), vec![false, true, false, false]);
}

/// A do-nothing policy for enclave-creation probes.
struct Null;

impl GhostPolicy for Null {
    fn name(&self) -> &str {
        "null"
    }
    fn on_msg(&mut self, _msg: &Message, _ctx: &mut PolicyCtx<'_>) {}
    fn schedule(&mut self, _ctx: &mut PolicyCtx<'_>) {}
}

/// Table-driven check of every commit-path rejection: each malformed
/// transaction must settle with the expected [`AbiError`], the status
/// that error maps to, and a bump of the per-error reject counter —
/// never a panic, never a silent drop.
#[test]
fn commit_rejections_are_typed_and_counted() {
    let mut s = setup(3, EnclaveConfig::centralized("reject-table"));
    let (a, b, c) = (s.tids[0], s.tids[1], s.tids[2]);
    // `a` and `b` wake and become committable; `c` stays blocked.
    s.kernel.assign_and_wake(a, MILLIS);
    s.kernel.assign_and_wake(b, MILLIS);
    let results = Arc::new(Mutex::new(Vec::new()));
    {
        let results = Arc::clone(&results);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let agent = ctx.agent_tid();
            let mut txns = vec![
                Transaction::new(a, CpuId(999)),                  // forged CPU id
                Transaction::new(a, CpuId(0)),                    // valid CPU, outside enclave
                Transaction::new(Tid(99_999), CpuId(2)),          // forged tid
                Transaction::new(agent, CpuId(2)),                // agent pthread as target
                Transaction::new(c, CpuId(2)),                    // blocked target
                Transaction::new(a, CpuId(2)).with_thread_seq(0), // stale Tseq
                Transaction::new(a, CpuId(2)),                    // clean: commits
                Transaction::new(b, CpuId(2)),                    // slot now taken
            ];
            for t in &mut txns {
                ctx.commit_one(t);
            }
            results
                .lock()
                .unwrap()
                .extend(txns.iter().map(|t| (t.status, t.error)));
        }));
    }
    s.kernel.run_until(10 * MILLIS);
    let expected = [
        Some(AbiError::InvalidCpu),
        Some(AbiError::CpuOutsideEnclave),
        Some(AbiError::NoSuchThread),
        Some(AbiError::AgentThread),
        Some(AbiError::TargetNotRunnable),
        Some(AbiError::StaleSeq),
        None, // committed
        Some(AbiError::CpuBusy),
    ];
    let results = results.lock().unwrap();
    assert_eq!(results.len(), expected.len());
    for (i, (&(status, error), &want)) in results.iter().zip(expected.iter()).enumerate() {
        match want {
            None => assert_eq!(status, TxnStatus::Committed, "row {i}"),
            Some(err) => {
                assert_eq!(error, Some(err), "row {i}: wrong error");
                assert_eq!(
                    status,
                    err.txn_status(),
                    "row {i}: status must map to error"
                );
            }
        }
    }
    // Every rejection is attributed on the right per-error counter.
    let stats = s.runtime.stats();
    for err in expected.iter().flatten() {
        assert!(stats.rejects(*err) >= 1, "no counter bump for {err}");
    }
    assert!(stats.abi_rejects_total() >= 7);
    assert_eq!(stats.txns_committed, 1);
}

/// Table-driven check of the runtime-layer entry points (enclave
/// create, attach, hint, status words, upgrade): forged arguments get a
/// specific typed error and a counter bump.
#[test]
fn runtime_entry_points_reject_forged_arguments() {
    let mut s = setup(1, EnclaveConfig::centralized("forged"));
    s.kernel.run_until(MILLIS);
    let t = s.tids[0];
    let k = &mut s.kernel.state;

    // Enclave creation: empty mask, a mask naming an id beyond MAX_CPUS
    // (which the mask cannot even represent, so it arrives empty), a CPU
    // the machine does not have, and a CPU another enclave owns.
    let create = |cpus: CpuSet| {
        s.runtime
            .try_create_enclave(cpus, EnclaveConfig::centralized("probe"), Box::new(Null))
            .unwrap_err()
    };
    assert_eq!(create(CpuSet::empty()), AbiError::EmptyCpuSet);
    assert_eq!(
        create(CpuSet::from_iter([CpuId(1300)])),
        AbiError::EmptyCpuSet
    );
    assert_eq!(
        create(CpuSet::from_iter([CpuId(100)])),
        AbiError::InvalidCpu
    );
    assert_eq!(create(CpuSet::from_iter([CpuId(1)])), AbiError::CpuConflict);

    // Attach: forged tid, double attach, and an agent pthread.
    assert_eq!(
        s.enclave.try_attach_thread(k, Tid(55_555)),
        Err(AbiError::NoSuchThread)
    );
    assert_eq!(
        s.enclave.try_attach_thread(k, t),
        Err(AbiError::AlreadyAttached)
    );
    let agent = s.enclave.agent_tids()[0];
    assert_eq!(
        s.enclave.try_attach_thread(k, agent),
        Err(AbiError::AgentThread)
    );

    // Hints and status words for tids the runtime does not manage.
    assert_eq!(
        s.runtime.try_set_hint(Tid(55_555), 7),
        Err(AbiError::ForeignThread)
    );
    assert_eq!(
        s.enclave.try_thread_status(Tid(55_555)),
        Err(AbiError::ForeignThread)
    );
    // Status words are kernel-owned: writes always reject, even for a
    // perfectly valid managed tid.
    assert_eq!(
        s.enclave.try_write_status(k, t, u64::MAX),
        Err(AbiError::StatusReadOnly)
    );
    // Upgrading with nothing staged.
    assert_eq!(s.enclave.try_upgrade_now(k), Err(AbiError::NothingStaged));

    let stats = s.runtime.stats();
    for err in [
        AbiError::EmptyCpuSet,
        AbiError::InvalidCpu,
        AbiError::CpuConflict,
        AbiError::NoSuchThread,
        AbiError::AlreadyAttached,
        AbiError::AgentThread,
        AbiError::ForeignThread,
        AbiError::StatusReadOnly,
        AbiError::NothingStaged,
    ] {
        assert!(stats.rejects(err) >= 1, "no counter bump for {err}");
    }
    // A clean read still works and no strike-less misuse quarantined us.
    assert!(s.enclave.try_thread_status(t).is_ok());
    assert!(s.enclave.alive());
    assert_eq!(stats.quarantines, 0);
}

/// The destroy→reclaim boundary: after an enclave dies, every entry
/// point that names it must return `EnclaveDestroyed` (not panic, not
/// corrupt the registry), and its threads must keep running under CFS.
#[test]
fn destroyed_enclave_is_inert_and_threads_fall_back_to_cfs() {
    let mut s = setup(2, EnclaveConfig::centralized("reclaim"));
    s.kernel.run_until(2 * MILLIS);
    let t = s.tids[0];
    assert!(s.enclave.alive());
    s.enclave.try_destroy(&mut s.kernel.state).unwrap();
    assert!(!s.enclave.alive());

    let fresh = s
        .kernel
        .spawn(ThreadSpec::workload("late", &s.kernel.state.topo));
    let k = &mut s.kernel.state;
    assert_eq!(
        s.enclave.try_attach_thread(k, fresh),
        Err(AbiError::EnclaveDestroyed)
    );
    assert_eq!(
        s.enclave.try_stage_upgrade(Box::new(Null)),
        Err(AbiError::EnclaveDestroyed)
    );
    assert_eq!(
        s.enclave.try_upgrade_now(k),
        Err(AbiError::EnclaveDestroyed)
    );
    assert_eq!(s.enclave.try_destroy(k), Err(AbiError::EnclaveDestroyed));
    assert_eq!(
        s.enclave.try_thread_status(t),
        Err(AbiError::EnclaveDestroyed)
    );
    assert_eq!(
        s.enclave.try_write_status(k, t, 0),
        Err(AbiError::StatusReadOnly)
    );
    assert!(s.runtime.try_set_hint(t, 1).is_err());
    assert!(s.runtime.stats().rejects(AbiError::EnclaveDestroyed) >= 5);

    // The reclaimed threads still run — under CFS now.
    let before = s.kernel.state.thread(t).total_work;
    s.kernel.assign_and_wake(t, 3 * MILLIS);
    s.kernel.run_until(10 * MILLIS);
    assert!(
        s.kernel.state.thread(t).total_work > before,
        "reclaimed thread must make progress under CFS"
    );
}

/// An enclave configured with a strike budget is quarantined (destroyed,
/// threads to CFS) once its agent burns through the budget with forged
/// ABI calls — the paper's worst-case containment for a byzantine agent.
#[test]
fn strike_budget_quarantines_a_byzantine_enclave() {
    let mut s = setup(1, EnclaveConfig::centralized("strikes").with_abi_strikes(3));
    let t = s.tids[0];
    s.kernel.assign_and_wake(t, MILLIS);
    s.script.lock().unwrap().push(Box::new(move |ctx| {
        for _ in 0..4 {
            let mut txn = Transaction::new(t, CpuId(999));
            ctx.commit_one(&mut txn);
        }
    }));
    s.kernel.run_until(10 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.rejects(AbiError::InvalidCpu) >= 4);
    assert!(stats.quarantines >= 1, "budget exhausted, no quarantine");
    assert!(!s.enclave.alive());
    // Containment, not collapse: the managed thread survives on CFS.
    let before = s.kernel.state.thread(t).total_work;
    s.kernel.assign_and_wake(t, 2 * MILLIS);
    s.kernel.run_until(20 * MILLIS);
    assert!(s.kernel.state.thread(t).total_work > before);
}

#[test]
fn scheduling_hints_reach_the_policy() {
    let mut s = setup(1, EnclaveConfig::centralized("hints"));
    let t = s.tids[0];
    s.kernel.run_until(MILLIS);
    // The workload publishes a hint (e.g. "my next request is 7 µs").
    s.runtime.set_hint(t, 7_000);
    let seen = Arc::new(Mutex::new(None));
    {
        let seen = Arc::clone(&seen);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            *seen.lock().unwrap() = ctx.hint(t);
        }));
    }
    s.kernel.assign_and_wake(t, 100 * MICROS);
    s.kernel.run_until(5 * MILLIS);
    assert_eq!(*seen.lock().unwrap(), Some(7_000));
}
