//! Message-driven thread-state tracking shared by all policies.
//!
//! Agents "operate on the system's state as observed via messages"
//! (§3.1): this tracker folds the message stream into a per-thread view
//! (runnable?, latest `Tseq`, last CPU) that policies consult instead of
//! kernel structures.

use ghost_core::msg::{Message, MsgType};
use ghost_core::slab::TidMap;
use ghost_sim::thread::Tid;
use ghost_sim::topology::CpuId;

/// Per-thread knowledge derived from messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackedThread {
    /// Latest sequence number seen in a message.
    pub seq: u64,
    /// True between WAKEUP/PREEMPTED/YIELD and BLOCKED/DEAD/(scheduled).
    pub runnable: bool,
    /// CPU of the last message about this thread.
    pub last_cpu: CpuId,
    /// True once THREAD_DEAD was seen.
    pub dead: bool,
}

/// Folds Table 1 messages into per-thread state. Backed by a dense
/// [`TidMap`] — the kernels allocate `Tid`s sequentially, so the direct
/// map beats hashing on every message apply.
#[derive(Debug, Default)]
pub struct ThreadTracker {
    threads: TidMap<TrackedThread>,
}

impl ThreadTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies one message; returns the updated view, or `None` if the
    /// message carried no thread state (a tick) or was stale.
    ///
    /// `THREAD_CREATED` inserts a non-runnable entry (the wakeup follows
    /// separately if the thread is runnable). A message whose `seq` is
    /// below the tracked sequence number is *discarded entirely*: it is an
    /// out-of-order or pre-reconstruction leftover describing state the
    /// tracker has already superseded, and applying its transition would
    /// regress the view (e.g. a stale WAKEUP resurrecting a thread the
    /// status-word scan saw as blocked).
    pub fn apply(&mut self, msg: &Message) -> Option<TrackedThread> {
        if !msg.ty.is_thread_msg() {
            return None;
        }
        let entry = self.threads.or_insert(
            msg.tid,
            TrackedThread {
                seq: 0,
                runnable: false,
                last_cpu: msg.cpu,
                dead: false,
            },
        );
        if msg.seq < entry.seq {
            return None;
        }
        entry.seq = msg.seq;
        entry.last_cpu = msg.cpu;
        match msg.ty {
            MsgType::ThreadWakeup | MsgType::ThreadPreempted | MsgType::ThreadYield => {
                entry.runnable = true;
            }
            MsgType::ThreadBlocked => entry.runnable = false,
            MsgType::ThreadDead => {
                entry.runnable = false;
                entry.dead = true;
            }
            MsgType::ThreadCreated | MsgType::ThreadAffinity => {}
            MsgType::TimerTick => unreachable!("filtered above"),
        }
        let view = *entry;
        if view.dead {
            self.threads.remove(msg.tid);
        }
        Some(view)
    }

    /// `MSG_QUEUE_OVERFLOW` recovery (§3.1): once the kernel reports that
    /// messages were dropped, the message-derived view can no longer be
    /// trusted, so the agent re-reads every thread's status word and
    /// rebuilds the tracker from that ground truth. `views` is the
    /// snapshot — `(tid, seq, runnable, last_cpu)` per live managed
    /// thread. Threads absent from the snapshot (they died while messages
    /// were being dropped) are forgotten; messages still in flight with
    /// older sequence numbers cannot regress the rebuilt state because
    /// [`ThreadTracker::apply`] discards them outright.
    pub fn resync(&mut self, views: impl IntoIterator<Item = (Tid, u64, bool, CpuId)>) {
        self.threads.clear();
        for (tid, seq, runnable, last_cpu) in views {
            self.threads.insert(
                tid,
                TrackedThread {
                    seq,
                    runnable,
                    last_cpu,
                    dead: false,
                },
            );
        }
    }

    /// Marks a thread as scheduled (no longer waiting): called after a
    /// successful commit so the policy does not double-schedule it.
    pub fn mark_scheduled(&mut self, tid: Tid) {
        if let Some(t) = self.threads.get_mut(tid) {
            t.runnable = false;
        }
    }

    /// Marks a thread runnable again (failed commit re-queue path).
    pub fn mark_runnable(&mut self, tid: Tid) {
        if let Some(t) = self.threads.get_mut(tid) {
            t.runnable = true;
        }
    }

    /// Latest view of a thread.
    pub fn get(&self, tid: Tid) -> Option<&TrackedThread> {
        self.threads.get(tid)
    }

    /// Latest sequence number for a thread (0 if unknown).
    pub fn seq(&self, tid: Tid) -> u64 {
        self.threads.get(tid).map_or(0, |t| t.seq)
    }

    /// Number of tracked (live) threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// True if no threads are tracked.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Iterates over tracked threads in ascending `Tid` order.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &TrackedThread)> {
        self.threads.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(ty: MsgType, tid: u32, seq: u64) -> Message {
        Message::thread(ty, Tid(tid), seq, CpuId(0), 0)
    }

    #[test]
    fn created_is_not_runnable() {
        let mut t = ThreadTracker::new();
        let v = t.apply(&m(MsgType::ThreadCreated, 1, 1)).unwrap();
        assert!(!v.runnable);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn wakeup_block_cycle() {
        let mut t = ThreadTracker::new();
        t.apply(&m(MsgType::ThreadCreated, 1, 1));
        assert!(t.apply(&m(MsgType::ThreadWakeup, 1, 2)).unwrap().runnable);
        assert!(!t.apply(&m(MsgType::ThreadBlocked, 1, 3)).unwrap().runnable);
        assert_eq!(t.seq(1.into_tid()), 3);
    }

    #[test]
    fn dead_removes_thread() {
        let mut t = ThreadTracker::new();
        t.apply(&m(MsgType::ThreadCreated, 1, 1));
        let v = t.apply(&m(MsgType::ThreadDead, 1, 2)).unwrap();
        assert!(v.dead);
        assert!(t.is_empty());
    }

    #[test]
    fn preempt_and_yield_are_runnable() {
        let mut t = ThreadTracker::new();
        t.apply(&m(MsgType::ThreadCreated, 1, 1));
        assert!(
            t.apply(&m(MsgType::ThreadPreempted, 1, 2))
                .unwrap()
                .runnable
        );
        t.mark_scheduled(Tid(1));
        assert!(!t.get(Tid(1)).unwrap().runnable);
        assert!(t.apply(&m(MsgType::ThreadYield, 1, 3)).unwrap().runnable);
    }

    #[test]
    fn ticks_are_ignored() {
        let mut t = ThreadTracker::new();
        assert!(t.apply(&Message::tick(CpuId(2), 0)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn seq_is_monotone() {
        let mut t = ThreadTracker::new();
        t.apply(&m(MsgType::ThreadCreated, 1, 5));
        t.apply(&m(MsgType::ThreadWakeup, 1, 3)); // Out-of-order delivery.
        assert_eq!(t.seq(Tid(1)), 5);
    }

    /// Regression: a stale message must not apply its state transition.
    /// Previously only the seq was clamped — the out-of-order WAKEUP below
    /// still flipped `runnable`, resurrecting a thread the tracker (or a
    /// status-word resync) already knew had moved on.
    #[test]
    fn stale_message_transition_is_discarded() {
        let mut t = ThreadTracker::new();
        t.resync([(Tid(1), 10, false, CpuId(3))]);
        assert!(t.apply(&m(MsgType::ThreadWakeup, 1, 4)).is_none());
        let v = *t.get(Tid(1)).unwrap();
        assert!(
            !v.runnable,
            "stale wakeup must not make the thread runnable"
        );
        assert_eq!(v.seq, 10);
        assert_eq!(v.last_cpu, CpuId(3), "stale message must not move last_cpu");

        // A genuinely newer message still applies.
        assert!(t.apply(&m(MsgType::ThreadWakeup, 1, 11)).unwrap().runnable);
    }

    trait IntoTid {
        fn into_tid(self) -> Tid;
    }
    impl IntoTid for u32 {
        fn into_tid(self) -> Tid {
            Tid(self)
        }
    }
}
