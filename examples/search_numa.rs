//! The §4.4 scenario in miniature: Google-Search-like queries on an AMD
//! Rome machine (256 CPUs, 4-core CCXs), CFS vs the NUMA/CCX-aware
//! least-runtime-first ghOSt policy.
//!
//! ```text
//! cargo run --release --example search_numa
//! ```

use ghost::core::enclave::EnclaveConfig;
use ghost::core::runtime::GhostRuntime;
use ghost::lab::{Scenario, TopologySpec};
use ghost::metrics::Table;
use ghost::policies::search::{SearchConfig, SearchPolicy};
use ghost::sim::kernel::ThreadSpec;
use ghost::sim::time::{MILLIS, SECS};
use ghost::workloads::search::{QueryType, SearchApp, SearchWorkloadConfig};

fn workload() -> SearchWorkloadConfig {
    // A lighter mix than the full Fig. 8 benchmark, sized for the
    // example's smaller worker pools.
    SearchWorkloadConfig {
        qps: [4_000.0, 6_000.0, 4_000.0],
        ..SearchWorkloadConfig::default()
    }
}

fn run(use_ghost: bool, duration: u64) -> ghost::workloads::search::SearchResults {
    let (mut kernel, _sink) = Scenario::builder()
        .name("search")
        .topology(TopologySpec::Rome256)
        .tick(4 * MILLIS)
        .build_kernel();
    let app_id = kernel.state.next_app_id();
    let mut app = SearchApp::new(workload(), app_id);
    let mut workers = Vec::new();
    // Type A is NUMA-affine: half its workers pinned per socket.
    for socket in 0..2u16 {
        let mask = kernel.state.topo.socket_cpus(socket);
        for i in 0..24 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("A{socket}-{i}"), &kernel.state.topo)
                    .app(app_id)
                    .affinity(mask),
            );
            app.add_worker(tid, QueryType::A);
            workers.push(tid);
        }
    }
    for (ty, n, tag) in [(QueryType::B, 48, "B"), (QueryType::C, 48, "C")] {
        for i in 0..n {
            let tid = kernel
                .spawn(ThreadSpec::workload(&format!("{tag}{i}"), &kernel.state.topo).app(app_id));
            app.add_worker(tid, ty);
            workers.push(tid);
        }
    }
    for i in 0..8 {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("srv{i}"), &kernel.state.topo).app(app_id));
        app.add_server(tid);
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));

    if use_ghost {
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus = kernel.state.topo.all_cpus_set();
        let enclave = runtime.launch_enclave(
            &mut kernel,
            cpus,
            EnclaveConfig::centralized("search"),
            Box::new(SearchPolicy::new(SearchConfig::default())),
        );
        for &w in &workers {
            enclave.attach_thread(&mut kernel.state, w);
        }
    }
    kernel.run_until(duration);
    let app = kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<SearchApp>()
        .expect("search app");
    std::mem::replace(app, SearchApp::new(SearchWorkloadConfig::default(), app_id)).results()
}

fn main() {
    let duration = 10 * SECS;
    println!("Serving Search queries A/B/C for 10 virtual seconds on 256 CPUs...");
    let cfs = run(false, duration);
    let gho = run(true, duration);
    let mut t = Table::new(vec![
        "query",
        "CFS p99 (ms)",
        "ghOSt p99 (ms)",
        "CFS QPS",
        "ghOSt QPS",
    ])
    .with_title("Search tail latency and throughput");
    for ty in [QueryType::A, QueryType::B, QueryType::C] {
        let span = (duration - 2 * SECS) as f64 / 1e9;
        t.row(vec![
            format!("{ty:?}"),
            format!("{:.2}", cfs.latency[&ty].percentile(99.0) as f64 / 1e6),
            format!("{:.2}", gho.latency[&ty].percentile(99.0) as f64 / 1e6),
            format!("{:.0}", cfs.latency[&ty].count() as f64 / span),
            format!("{:.0}", gho.latency[&ty].count() as f64 / span),
        ]);
    }
    t.print();
    println!(
        "\nThe ghOSt policy reacts in microseconds and keeps threads near\n\
         their warm L3 (CCX), where CFS rebalances at millisecond scale (§4.4)."
    );
}
