//! Cross-crate integration tests through the `ghost` facade: full
//! machine + runtime + policy + workload stacks, shrunk to run quickly in
//! debug builds. The full-scale paper reproductions live in
//! `crates/ghost-bench/benches/`.

use ghost::baselines::microquanta::{MicroQuanta, MicroQuantaConfig};
use ghost::core::enclave::EnclaveConfig;
use ghost::core::runtime::GhostRuntime;
use ghost::policies::shinjuku::{ShinjukuConfig, ShinjukuPolicy};
use ghost::policies::snap::SNAP_COOKIE;
use ghost::policies::{CentralizedFifo, PerCpuPolicy, SnapPolicy};
use ghost::sim::kernel::{Kernel, KernelConfig, ThreadSpec};
use ghost::sim::thread::ThreadState;
use ghost::sim::time::{MICROS, MILLIS, SECS};
use ghost::sim::topology::{CpuId, Topology};
use ghost::sim::{CpuSet, CLASS_RT};
use ghost::trace::TraceSink;
use ghost::workloads::rocksdb::{RocksDbApp, RocksDbConfig};
use ghost::workloads::snap::{SnapApp, SnapConfig};
use ghost::workloads::vm::{VmApp, VmConfig};

/// The preemptive Shinjuku policy must beat non-preemptive CFS serving
/// on p99 under a dispersive load near saturation — the heart of Fig. 6a
/// (the full sweep lives in benches/fig6_shinjuku.rs; CFS collapses
/// around 70% of capacity while ghOSt holds double-digit microseconds).
#[test]
fn shinjuku_policy_beats_cfs_on_dispersive_tail() {
    let horizon = 200 * MILLIS;
    let serve = |use_ghost: bool, trace: TraceSink| {
        let mut kernel = Kernel::new(
            Topology::e5_single_socket_24(),
            KernelConfig {
                trace,
                ..KernelConfig::default()
            },
        );
        let mut cfg = RocksDbConfig::dispersive(250_000.0, 5);
        cfg.warmup = 50 * MILLIS;
        let app_id = kernel.state.next_app_id();
        let mut app = RocksDbApp::new(cfg, app_id, horizon);
        let mut tids = Vec::new();
        for i in 0..200 {
            let tid = kernel
                .spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app_id));
            app.add_worker(tid);
            tids.push(tid);
        }
        app.start(&mut kernel.state);
        kernel.add_app(Box::new(app));
        let cpus: CpuSet = (2..=22u16).map(CpuId).collect();
        if use_ghost {
            let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
            let enclave = runtime.launch_enclave(
                &mut kernel,
                cpus,
                EnclaveConfig::centralized("sj"),
                Box::new(ShinjukuPolicy::new(ShinjukuConfig::default())),
            );
            for &tid in &tids {
                kernel.state.set_affinity(tid, cpus);
                enclave.attach_thread(&mut kernel.state, tid);
            }
        } else {
            for &tid in &tids {
                kernel.state.set_affinity(tid, cpus);
            }
        }
        kernel.run_until(horizon);
        kernel
            .app_mut(app_id)
            .as_any()
            .downcast_mut::<RocksDbApp>()
            .expect("app")
            .results()
    };
    // Record the ghOSt run and replay it through the invariant checker:
    // the Fig. 6 scenario must produce a clean trace end to end. One
    // merged ring (records keep their own cpu field): the centralized
    // agent's CPU dominates the event volume, so per-CPU rings would
    // need to be sized for the worst ring anyway.
    let sink = TraceSink::recording(1, 1 << 21);
    let ghost = serve(true, sink.clone());
    let cfs = serve(false, TraceSink::Null);
    let records = sink.snapshot();
    assert_eq!(
        sink.dropped(),
        0,
        "trace rings overflowed ({} of {} records lost); the checker needs a lossless stream",
        sink.dropped(),
        records.len()
    );
    ghost::trace::check::assert_clean(&records);
    assert!(ghost.latency.count() > 1_000);
    // At ~70% of capacity the non-preemptive CFS serving collapses into
    // hundreds of microseconds while the 30 µs Shinjuku slice keeps the
    // ghOSt tail double-digit (Fig. 6a's crossover).
    let g99 = ghost.latency.percentile(99.0);
    let c99 = cfs.latency.percentile(99.0);
    assert!(
        g99 * 3 < c99,
        "preemptive ghOSt should beat CFS clearly at p99 near saturation:          ghOSt {g99} vs CFS {c99}"
    );
}

/// Per-CPU model end to end: local agents with Aseq-guarded local
/// commits schedule threads on their own CPUs.
#[test]
fn per_cpu_policy_schedules_locally() {
    let ghost::lab::GhostSim {
        mut kernel,
        runtime,
        enclave,
        ..
    } = ghost::lab::Scenario::builder()
        .name("percpu")
        .cpus(4)
        .enclave_cpus(0..4)
        .build_with(
            EnclaveConfig::per_cpu("percpu"),
            Box::new(PerCpuPolicy::new()),
        );
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..4 {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app_id));
        tids.push(tid);
    }
    kernel.add_app(Box::new(PulseApp::new(200 * MICROS, 2 * MILLIS)));
    for (i, &tid) in tids.iter().enumerate() {
        enclave.attach_thread(&mut kernel.state, tid);
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 100 * MICROS, app_id, tid.0 as u64);
    }
    kernel.run_until(100 * MILLIS);
    let stats = runtime.stats();
    assert!(
        stats.txns_committed >= 150,
        "commits: {}",
        stats.txns_committed
    );
    for &tid in &tids {
        assert!(
            kernel.state.thread(tid).total_work >= 8 * MILLIS,
            "thread starved under the per-CPU policy"
        );
    }
}

/// Snap policy vs MicroQuanta: both keep workers responsive; the ghOSt
/// policy must not be grossly worse on the p99 while never starving CFS.
#[test]
fn snap_policy_and_microquanta_both_serve() {
    let horizon = 800 * MILLIS;
    let run = |use_ghost: bool, trace: TraceSink| {
        let mut kernel = Kernel::new(
            Topology::test_small(8),
            KernelConfig {
                trace,
                ..KernelConfig::default()
            },
        );
        if !use_ghost {
            let n = kernel.state.topo.num_cpus();
            kernel.install_class(
                CLASS_RT,
                Box::new(MicroQuanta::new(n, MicroQuantaConfig::default())),
            );
        }
        let app_id = kernel.state.next_app_id();
        let cfg = SnapConfig {
            warmup: 100 * MILLIS,
            ..SnapConfig::default()
        };
        let mut app = SnapApp::new(cfg, app_id);
        let mut workers = Vec::new();
        for i in 0..6 {
            let w = kernel.spawn(
                ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(SNAP_COOKIE),
            );
            let s = kernel
                .spawn(ThreadSpec::workload(&format!("s{i}"), &kernel.state.topo).app(app_id));
            app.add_stream(w, s);
            workers.push(w);
        }
        app.start(&mut kernel.state);
        kernel.add_app(Box::new(app));
        if use_ghost {
            let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
            let cpus = kernel.state.topo.all_cpus_set();
            let enclave = runtime.launch_enclave(
                &mut kernel,
                cpus,
                EnclaveConfig::centralized("snap"),
                Box::new(SnapPolicy::new()),
            );
            for &w in &workers {
                enclave.attach_thread(&mut kernel.state, w);
            }
        } else {
            for &w in &workers {
                kernel.state.move_to_class(w, CLASS_RT);
            }
        }
        kernel.run_until(horizon);
        kernel
            .app_mut(app_id)
            .as_any()
            .downcast_mut::<SnapApp>()
            .expect("app")
            .results()
    };
    // The Fig. 7 scenario must also replay cleanly through the checker
    // (one merged ring; see the Fig. 6 test for why).
    let sink = TraceSink::recording(1, 1 << 20);
    let gh = run(true, sink.clone());
    let mq = run(false, TraceSink::Null);
    let records = sink.snapshot();
    assert_eq!(
        sink.dropped(),
        0,
        "trace rings overflowed ({} of {} records lost); the checker needs a lossless stream",
        sink.dropped(),
        records.len()
    );
    ghost::trace::check::assert_clean(&records);
    assert!(gh.completed > 20_000 && mq.completed > 20_000);
    let g99 = gh.rtt_64kb.percentile(99.0);
    let m99 = mq.rtt_64kb.percentile(99.0);
    assert!(
        (g99 as f64) < (m99 as f64) * 2.0,
        "ghOSt snap p99 {g99} should be in MicroQuanta's league {m99}"
    );
}

/// Core scheduling isolation invariant on a live VM workload: under the
/// ghOSt per-core policy, sibling hyperthreads never run vCPUs of
/// different VMs.
#[test]
fn core_sched_isolation_holds_under_load() {
    use ghost::policies::core_sched::{CoreSchedConfig, CoreSchedPolicy};
    let mut kernel = Kernel::new(Topology::new("vm8", 1, 4, 2, 4), KernelConfig::default());
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus = kernel.state.topo.all_cpus_set();
    let enclave = runtime.launch_enclave(
        &mut kernel,
        cpus,
        EnclaveConfig::per_core("vm").with_ticks(true),
        Box::new(CoreSchedPolicy::new(CoreSchedConfig::default())),
    );
    let app_id = kernel.state.next_app_id();
    let cfg = VmConfig {
        vms: 2,
        vcpus_per_vm: 3,
        work_per_vcpu: 400 * MILLIS,
        ..VmConfig::default()
    };
    let mut app = VmApp::new(cfg, app_id);
    let mut vcpus = Vec::new();
    for vm in 0..2u64 {
        for v in 0..3 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("vm{vm}-{v}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(vm + 1),
            );
            app.add_vcpu(tid);
            vcpus.push(tid);
        }
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));
    for &v in &vcpus {
        enclave.attach_thread(&mut kernel.state, v);
    }
    // Audit at fine grain while the workload runs.
    let mut violations = 0;
    for _ in 0..600 {
        kernel.run_for(MILLIS);
        let k = &kernel.state;
        for cpu in k.topo.all_cpus() {
            let Some(sib) = k.topo.sibling(cpu) else {
                continue;
            };
            if sib < cpu {
                continue;
            }
            let cookie = |c: CpuId| -> Option<u64> {
                let cur = k.cpus[c.index()].current?;
                let t = &k.threads[cur.index()];
                (t.cookie != 0).then_some(t.cookie)
            };
            if let (Some(a), Some(b)) = (cookie(cpu), cookie(sib)) {
                if a != b {
                    violations += 1;
                }
            }
        }
    }
    assert_eq!(violations, 0, "cross-VM SMT co-residency detected");
    // And the workload made real progress under the secure policy.
    let done: u64 = vcpus
        .iter()
        .map(|&v| kernel.state.thread(v).total_work)
        .sum();
    assert!(done > 1_500 * MILLIS, "vCPUs starved: {done}");
}

/// The centralized FIFO keeps a machine of blocking threads busy and the
/// run is deterministic across repeats.
#[test]
fn centralized_fifo_is_deterministic() {
    let run = || {
        let ghost::lab::GhostSim {
            mut kernel,
            runtime,
            enclave,
            ..
        } = ghost::lab::Scenario::builder()
            .name("det")
            .cpus(8)
            .enclave_cpus(1..8)
            .build_with(
                EnclaveConfig::centralized("det"),
                Box::new(CentralizedFifo::new()),
            );
        let app_id = kernel.state.next_app_id();
        let mut tids = Vec::new();
        for i in 0..6 {
            let tid = kernel
                .spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app_id));
            tids.push(tid);
        }
        kernel.add_app(Box::new(PulseApp::new(150 * MICROS, MILLIS)));
        for (i, &tid) in tids.iter().enumerate() {
            enclave.attach_thread(&mut kernel.state, tid);
            kernel
                .state
                .arm_app_timer((i as u64 + 1) * 37 * MICROS, app_id, tid.0 as u64);
        }
        kernel.run_until(200 * MILLIS);
        (
            runtime.stats().txns_committed,
            kernel.state.stats.ctx_switches,
            kernel.state.stats.events,
        )
    };
    assert_eq!(run(), run());
}

/// Tracing end to end: identical seeds yield byte-identical Chrome
/// exports, the export parses as JSON with the expected structure, the
/// invariant checker is clean, and the derived-metrics pass agrees with
/// the runtime's own counters.
#[test]
fn trace_export_is_deterministic_valid_json() {
    let run = || {
        let ghost::lab::GhostSim {
            mut kernel,
            runtime,
            enclave,
            sink,
        } = ghost::lab::Scenario::builder()
            .name("trace")
            .cpus(8)
            .trace_capacity(1 << 18)
            .enclave_cpus(1..8)
            .build_with(
                EnclaveConfig::centralized("trace"),
                Box::new(CentralizedFifo::new()),
            );
        let app_id = kernel.state.next_app_id();
        let mut tids = Vec::new();
        for i in 0..5 {
            let tid = kernel
                .spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app_id));
            tids.push(tid);
        }
        kernel.add_app(Box::new(PulseApp::new(120 * MICROS, MILLIS)));
        for (i, &tid) in tids.iter().enumerate() {
            enclave.attach_thread(&mut kernel.state, tid);
            kernel
                .state
                .arm_app_timer((i as u64 + 1) * 53 * MICROS, app_id, tid.0 as u64);
        }
        kernel.run_until(40 * MILLIS);
        let records = sink.snapshot();
        assert_eq!(sink.dropped(), 0);
        (
            ghost::trace::chrome::export(&records),
            records,
            runtime.stats(),
        )
    };
    let (json_a, records, stats) = run();
    let (json_b, _, _) = run();
    // Identical RNG seeds and inputs => byte-identical traces.
    assert_eq!(json_a, json_b, "trace export must be deterministic");

    let parsed = ghost::trace::json::parse(&json_a).expect("export must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // The export contains both duration slices ("X") and instants ("i").
    let phase = |want: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(want))
            .count()
    };
    assert!(phase("X") > 0, "no duration slices in export");
    assert!(phase("i") > 0, "no instant events in export");

    ghost::trace::check::assert_clean(&records);

    // The derived-metrics pass must agree with the runtime's counters.
    let tm = ghost::trace::derive::TraceMetrics::from_records(&records);
    assert_eq!(tm.txns_ok, stats.txns_committed);
    assert_eq!(tm.txns_estale, stats.txns_stale);
    assert!(tm.wakeup_to_run.count() > 0);
}

/// Minimal pulse app shared by the integration tests.
struct PulseApp {
    work: u64,
    period: u64,
}

impl PulseApp {
    fn new(work: u64, period: u64) -> Self {
        Self { work, period }
    }
}

impl ghost::sim::App for PulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        "pulse"
    }
    fn on_timer(&mut self, key: u64, k: &mut ghost::sim::KernelState) {
        let tid = ghost::sim::Tid(key as u32);
        if k.threads[tid.index()].state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = self.work;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("app");
        k.arm_app_timer(k.now + self.period, app, key);
    }
    fn on_segment_end(
        &mut self,
        _tid: ghost::sim::Tid,
        _k: &mut ghost::sim::KernelState,
    ) -> ghost::sim::Next {
        ghost::sim::Next::Block
    }
}

// Re-export check: the facade exposes a coherent API surface.
#[test]
fn facade_exposes_workspace() {
    let _ = ghost::sim::CostModel::default();
    let _ = ghost::metrics::LogHistogram::new();
    let _ = SECS;
}
