//! Replayable repros: a failing [`Combo`] serialized to `repro.json` and
//! parsed back for bit-identical replay (the simulation is deterministic,
//! so the combo *is* the repro).
//!
//! The format is hand-rolled JSON (the offline build has no serde);
//! parsing reuses the `ghost-trace` JSON reader. The seed is encoded as a
//! decimal string because the reader parses numbers as `f64`, which would
//! silently round seeds above 2⁵³.

use crate::run::{Combo, PolicyKind};
use ghost_sim::faults::{FaultEvent, FaultKind, FaultPlan};
use ghost_sim::topology::CpuId;
use ghost_trace::json::{self, Json};

/// Serializes a combo as a self-contained `repro.json` document.
pub fn combo_to_json(combo: &Combo) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"policy\": \"{}\",\n",
        json::escape(combo.policy.name())
    ));
    out.push_str(&format!("  \"seed\": \"{}\",\n", combo.seed));
    out.push_str(&format!("  \"horizon\": {},\n", combo.horizon));
    out.push_str(&format!("  \"threads\": {},\n", combo.threads));
    out.push_str("  \"plan\": [");
    for (i, fe) in combo.plan.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&fault_to_json(fe));
    }
    if !combo.plan.events.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn fault_to_json(fe: &FaultEvent) -> String {
    let body = match &fe.kind {
        FaultKind::AgentCrash { cpu } => format!("\"kind\": \"agent-crash\", \"cpu\": {}", cpu.0),
        FaultKind::AgentHang { cpu, dur } => {
            format!(
                "\"kind\": \"agent-hang\", \"cpu\": {}, \"dur\": {dur}",
                cpu.0
            )
        }
        FaultKind::AgentSlow { cpu, dur, factor } => format!(
            "\"kind\": \"agent-slow\", \"cpu\": {}, \"dur\": {dur}, \"factor\": {factor}",
            cpu.0
        ),
        FaultKind::QueueOverflow { dur } => {
            format!("\"kind\": \"queue-overflow\", \"dur\": {dur}")
        }
        FaultKind::IpiDelay { dur, extra } => {
            format!("\"kind\": \"ipi-delay\", \"dur\": {dur}, \"extra\": {extra}")
        }
        FaultKind::IpiLoss { dur } => format!("\"kind\": \"ipi-loss\", \"dur\": {dur}"),
        FaultKind::SpuriousWakeup { nth } => {
            format!("\"kind\": \"spurious-wakeup\", \"nth\": {nth}")
        }
        FaultKind::TickSkew { dur, extra } => {
            format!("\"kind\": \"tick-skew\", \"dur\": {dur}, \"extra\": {extra}")
        }
        FaultKind::Upgrade => "\"kind\": \"upgrade\"".to_string(),
    };
    format!("{{\"at\": {}, {body}}}", fe.at)
}

/// Parses a `repro.json` document back into a combo.
pub fn combo_from_json(input: &str) -> Result<Combo, String> {
    let doc = json::parse(input)?;
    let policy_name = doc
        .get("policy")
        .and_then(Json::as_str)
        .ok_or("missing string field 'policy'")?;
    let policy = PolicyKind::from_name(policy_name)
        .ok_or_else(|| format!("unknown policy '{policy_name}'"))?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_str)
        .ok_or("missing string field 'seed'")?
        .parse::<u64>()
        .map_err(|e| format!("bad seed: {e}"))?;
    let horizon = field_u64(&doc, "horizon")?;
    let threads = field_u64(&doc, "threads")? as usize;
    let mut events = Vec::new();
    for item in doc
        .get("plan")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'plan'")?
    {
        events.push(fault_from_json(item)?);
    }
    Ok(Combo {
        policy,
        seed,
        plan: FaultPlan { events },
        horizon,
        threads,
    })
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_num)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn fault_from_json(v: &Json) -> Result<FaultEvent, String> {
    let at = field_u64(v, "at")?;
    let kind_name = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("fault without 'kind'")?;
    let cpu = || field_u64(v, "cpu").map(|c| CpuId(c as u16));
    let kind = match kind_name {
        "agent-crash" => FaultKind::AgentCrash { cpu: cpu()? },
        "agent-hang" => FaultKind::AgentHang {
            cpu: cpu()?,
            dur: field_u64(v, "dur")?,
        },
        "agent-slow" => FaultKind::AgentSlow {
            cpu: cpu()?,
            dur: field_u64(v, "dur")?,
            factor: field_u64(v, "factor")? as u32,
        },
        "queue-overflow" => FaultKind::QueueOverflow {
            dur: field_u64(v, "dur")?,
        },
        "ipi-delay" => FaultKind::IpiDelay {
            dur: field_u64(v, "dur")?,
            extra: field_u64(v, "extra")?,
        },
        "ipi-loss" => FaultKind::IpiLoss {
            dur: field_u64(v, "dur")?,
        },
        "spurious-wakeup" => FaultKind::SpuriousWakeup {
            nth: field_u64(v, "nth")? as u32,
        },
        "tick-skew" => FaultKind::TickSkew {
            dur: field_u64(v, "dur")?,
            extra: field_u64(v, "extra")?,
        },
        "upgrade" => FaultKind::Upgrade,
        other => return Err(format!("unknown fault kind '{other}'")),
    };
    Ok(FaultEvent { at, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::time::MILLIS;

    #[test]
    fn every_fault_kind_round_trips() {
        let combo = Combo {
            policy: PolicyKind::Shinjuku,
            seed: u64::MAX - 7, // would not survive an f64 round trip
            plan: FaultPlan::from_events([
                (MILLIS, FaultKind::AgentCrash { cpu: CpuId(1) }),
                (
                    2 * MILLIS,
                    FaultKind::AgentHang {
                        cpu: CpuId(2),
                        dur: MILLIS,
                    },
                ),
                (
                    3 * MILLIS,
                    FaultKind::AgentSlow {
                        cpu: CpuId(3),
                        dur: MILLIS,
                        factor: 4,
                    },
                ),
                (4 * MILLIS, FaultKind::QueueOverflow { dur: MILLIS }),
                (
                    5 * MILLIS,
                    FaultKind::IpiDelay {
                        dur: MILLIS,
                        extra: 100,
                    },
                ),
                (6 * MILLIS, FaultKind::IpiLoss { dur: MILLIS }),
                (7 * MILLIS, FaultKind::SpuriousWakeup { nth: 3 }),
                (
                    8 * MILLIS,
                    FaultKind::TickSkew {
                        dur: MILLIS,
                        extra: 50,
                    },
                ),
                (9 * MILLIS, FaultKind::Upgrade),
            ]),
            horizon: 120 * MILLIS,
            threads: 5,
        };
        let doc = combo_to_json(&combo);
        let back = combo_from_json(&doc).expect("parses");
        assert_eq!(back, combo);
    }

    #[test]
    fn empty_plan_round_trips() {
        let combo = Combo {
            policy: PolicyKind::PerCpu,
            seed: 0,
            plan: FaultPlan::none(),
            horizon: MILLIS,
            threads: 1,
        };
        assert_eq!(combo_from_json(&combo_to_json(&combo)).unwrap(), combo);
    }

    #[test]
    fn rejects_garbage() {
        assert!(combo_from_json("{}").is_err());
        assert!(combo_from_json("not json").is_err());
        assert!(combo_from_json(
            r#"{"policy": "nope", "seed": "1", "horizon": 1, "threads": 1, "plan": []}"#
        )
        .is_err());
    }
}
