//! Focused tests of ghOSt ABI semantics from §3 of the paper:
//! `ASSOCIATE_QUEUE` failing with pending messages, atomic group commits,
//! queue overflow accounting, commit-slot invalidation on affinity
//! changes, and the per-core agent mode.

use ghost_core::enclave::{EnclaveConfig, QueueId};
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_sim::app::{App, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use std::sync::{Arc, Mutex};

/// Scriptable policy: runs closures the test injects.
type Script = Arc<Mutex<Vec<Box<dyn FnMut(&mut PolicyCtx<'_>) + Send>>>>;

struct Scripted {
    script: Script,
    log: Arc<Mutex<Vec<Message>>>,
}

impl GhostPolicy for Scripted {
    fn name(&self) -> &str {
        "scripted"
    }

    fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
        self.log.lock().unwrap().push(*msg);
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        let mut steps = self.script.lock().unwrap();
        for step in steps.iter_mut() {
            step(ctx);
        }
        steps.clear();
    }
}

struct Sleeper;

impl App for Sleeper {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        "sleeper"
    }
    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        if k.threads[tid.index()].state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = 50 * MICROS;
            k.wake(tid);
        }
    }
    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Block
    }
}

struct Setup {
    kernel: Kernel,
    runtime: GhostRuntime,
    enclave: ghost_core::runtime::EnclaveHandle,
    tids: Vec<Tid>,
    script: Script,
    log: Arc<Mutex<Vec<Message>>>,
}

fn setup(n_threads: usize, config: EnclaveConfig) -> Setup {
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus: CpuSet = (1..8u16).map(CpuId).collect();
    let script: Script = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::new(Mutex::new(Vec::new()));
    let enclave = runtime.launch_enclave(
        &mut kernel,
        cpus,
        config,
        Box::new(Scripted {
            script: Arc::clone(&script),
            log: Arc::clone(&log),
        }),
    );
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..n_threads {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("t{i}"), &kernel.state.topo).app(app_id));
        tids.push(tid);
    }
    kernel.add_app(Box::new(Sleeper));
    for &tid in &tids {
        enclave.attach_thread(&mut kernel.state, tid);
    }
    Setup {
        kernel,
        runtime,
        enclave,
        tids,
        script,
        log,
    }
}

#[test]
fn associate_queue_fails_with_pending_messages() {
    let mut s = setup(2, EnclaveConfig::centralized("assoc"));
    let t = s.tids[0];
    let other = s.tids[1];
    // Step 1: create a queue and reroute the (message-free) thread: OK.
    let ok = Arc::new(Mutex::new(None));
    let new_q = Arc::new(Mutex::new(QueueId(0)));
    {
        let ok = Arc::clone(&ok);
        let new_q = Arc::clone(&new_q);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let q = ctx.create_queue();
            *new_q.lock().unwrap() = q;
            *ok.lock().unwrap() = Some(ctx.associate_queue(t, q));
        }));
    }
    s.kernel.run_until(5 * MILLIS);
    assert_eq!(
        *ok.lock().unwrap(),
        Some(true),
        "clean association must succeed"
    );

    // Step 2: make the thread post a message into its NEW queue; nobody
    // drains that queue, so a second association must fail (§3.1: "If a
    // thread has its association change from one queue to another while
    // there are pending messages in the original queue, the association
    // operation will fail").
    s.kernel
        .state
        .arm_app_timer(6 * MILLIS, ghost_sim::app::AppId(0), t.0 as u64);
    s.kernel.run_until(8 * MILLIS);
    let fail = Arc::new(Mutex::new(None));
    {
        let fail = Arc::clone(&fail);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            *fail.lock().unwrap() = Some(ctx.associate_queue(t, QueueId(0)));
        }));
    }
    // Trigger an activation via the OTHER thread (whose messages go to
    // the default queue); `t`'s pending WAKEUP stays in the new queue.
    s.kernel.assign_and_wake(other, 10 * MICROS);
    s.kernel.run_until(20 * MILLIS);
    assert_eq!(
        *fail.lock().unwrap(),
        Some(false),
        "association with pending messages must fail"
    );
}

#[test]
fn atomic_group_commit_is_all_or_nothing() {
    let mut s = setup(2, EnclaveConfig::centralized("atomic"));
    let (a, b) = (s.tids[0], s.tids[1]);
    // Wake only thread `a`; leave `b` blocked so its txn must fail.
    s.kernel.assign_and_wake(a, MILLIS);
    let statuses = Arc::new(Mutex::new(Vec::new()));
    {
        let statuses = Arc::clone(&statuses);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let mut txns = vec![
                Transaction::new(a, CpuId(2)),
                Transaction::new(b, CpuId(3)), // b is blocked: TargetNotRunnable.
            ];
            ctx.commit_atomic(&mut txns);
            statuses
                .lock()
                .unwrap()
                .extend(txns.iter().map(|t| t.status));
        }));
    }
    s.kernel.run_until(10 * MILLIS);
    let st = statuses.lock().unwrap();
    assert_eq!(st.len(), 2);
    // The would-have-succeeded txn for `a` must be rolled back.
    assert_eq!(st[0], TxnStatus::Aborted);
    assert_eq!(st[1], TxnStatus::TargetNotRunnable);
    // And thread `a` must not be running (its commit was unwound).
    let stats = s.runtime.stats();
    assert_eq!(stats.txns_committed, 0);
    assert!(stats.txns_aborted >= 1);
}

#[test]
fn affinity_change_invalidates_pending_commit() {
    let mut s = setup(1, EnclaveConfig::centralized("affinity"));
    let t = s.tids[0];
    s.kernel.assign_and_wake(t, MILLIS);
    let status = Arc::new(Mutex::new(None));
    {
        let status = Arc::clone(&status);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let mut txn = Transaction::new(t, CpuId(5));
            *status.lock().unwrap() = Some(ctx.commit_one(&mut txn));
        }));
    }
    // Let the commit land and the thread run.
    s.kernel.run_until(500 * MICROS);
    assert_eq!(*status.lock().unwrap(), Some(TxnStatus::Committed));
    // While it runs on CPU 5, forbid CPU 5: the kernel reschedules it off.
    s.kernel
        .state
        .set_affinity(t, CpuSet::from_iter([CpuId(2), CpuId(3)]));
    s.kernel.run_until(5 * MILLIS);
    let th = s.kernel.state.thread(t);
    assert_ne!(th.cpu, Some(CpuId(5)), "thread must vacate forbidden CPU");
    // The policy got the THREAD_AFFINITY message.
    assert!(s
        .log
        .lock()
        .unwrap()
        .iter()
        .any(|m| m.ty == MsgType::ThreadAffinity && m.tid == t));
}

#[test]
fn queue_overflow_is_counted_not_fatal() {
    let mut config = EnclaveConfig::centralized("overflow");
    config.queue_capacity = 4; // Tiny ring.
    let mut s = setup(16, config);
    // 16 attach messages (THREAD_CREATED) overflow a 4-slot queue; the
    // kernel counts drops and keeps running.
    s.kernel.run_until(2 * MILLIS);
    let stats = s.runtime.stats();
    assert!(stats.msgs_dropped > 0, "expected drops on a 4-slot queue");
    assert!(s.enclave.alive());
}

#[test]
fn status_words_reflect_thread_lifecycle() {
    let mut s = setup(1, EnclaveConfig::centralized("sw"));
    let t = s.tids[0];
    // Blocked at attach: not runnable.
    s.kernel.run_until(MILLIS);
    // Wake: the WAKEUP message carries an increasing seq, and the policy
    // sees monotonically increasing seqs overall.
    s.kernel.assign_and_wake(t, 100 * MICROS);
    s.kernel.run_until(2 * MILLIS);
    let log = s.log.lock().unwrap();
    let seqs: Vec<u64> = log.iter().filter(|m| m.tid == t).map(|m| m.seq).collect();
    assert!(seqs.len() >= 2, "expected CREATED + WAKEUP at least");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "Tseq must increase per message: {seqs:?}"
    );
}

#[test]
fn per_core_mode_schedules_same_cookie_siblings() {
    // 4 cores / 8 CPUs; enclave over all; two VMs with 2 threads each.
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus = kernel.state.topo.all_cpus_set();
    let enclave = runtime.launch_enclave(
        &mut kernel,
        cpus,
        EnclaveConfig::per_core("percore").with_ticks(true),
        Box::new(ghost_policies_stub::CoreStub::default()),
    );
    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for vm in 0..2u64 {
        for i in 0..2 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("vm{vm}-{i}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(vm + 1),
            );
            tids.push(tid);
        }
    }
    kernel.add_app(Box::new(Sleeper));
    for &tid in &tids {
        enclave.attach_thread(&mut kernel.state, tid);
        kernel.state.thread_mut(tid).remaining = 200 * MICROS;
    }
    for &tid in &tids {
        kernel.wake_now(tid);
    }
    kernel.run_until(20 * MILLIS);
    // The stub pairs same-cookie threads per core; all four must have run.
    for &tid in &tids {
        assert!(
            kernel.state.thread(tid).total_work > 0,
            "{tid} never ran under the per-core stub"
        );
    }
}

/// A minimal same-cookie per-core policy used by the per-core mode test
/// (kept local so the test exercises ghost-core without ghost-policies).
mod ghost_policies_stub {
    use super::*;
    use std::collections::VecDeque;

    #[derive(Default)]
    pub struct CoreStub {
        rq: VecDeque<(Tid, u64, u64)>, // (tid, cookie, seq)
    }

    impl GhostPolicy for CoreStub {
        fn name(&self) -> &str {
            "core-stub"
        }

        fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
            if msg.ty == MsgType::ThreadWakeup || msg.ty == MsgType::ThreadPreempted {
                let cookie = ctx.thread_view(msg.tid).map(|v| v.cookie).unwrap_or(0);
                if !self.rq.iter().any(|&(t, _, _)| t == msg.tid) {
                    self.rq.push_back((msg.tid, cookie, msg.seq));
                }
            }
        }

        fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
            let core = ctx.topo().core_cpus(ctx.local_cpu());
            let free: Vec<CpuId> = core
                .iter()
                .filter(|&c| {
                    !ctx.commit_pending(c)
                        && ctx.running_ghost(c).is_none()
                        && (c == ctx.local_cpu()
                            || ctx.agent_on_cpu(c)
                            || ctx.idle_cpus().contains(c))
                })
                .collect();
            if free.is_empty() {
                return;
            }
            // The core's claimed cookie, if any.
            let claimed = core.iter().find_map(|c| {
                ctx.running_ghost(c)
                    .or_else(|| ctx.pending_commit_tid(c))
                    .and_then(|t| ctx.thread_view(t).map(|v| v.cookie))
            });
            let Some(pos) = self
                .rq
                .iter()
                .position(|&(_, ck, _)| claimed.is_none_or(|c| c == ck))
            else {
                return;
            };
            let (tid, _, seq) = self.rq.remove(pos).expect("position valid");
            let mut txn = Transaction::new(tid, free[0]).with_thread_seq(seq);
            if !ctx.commit_one(&mut txn).committed() {
                self.rq.push_back((tid, claimed.unwrap_or(0), seq));
            }
        }
    }
}

#[test]
fn txns_recall_withdraws_pending_commit() {
    let mut s = setup(1, EnclaveConfig::centralized("recall"));
    let t = s.tids[0];
    s.kernel.assign_and_wake(t, 5 * MILLIS);
    let outcome = Arc::new(Mutex::new((None, None, None)));
    {
        let outcome = Arc::clone(&outcome);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let mut txn = Transaction::new(t, CpuId(4));
            let committed = ctx.commit_one(&mut txn);
            // Recall it before the target CPU acts on it.
            let recalled = ctx.recall(CpuId(4));
            // The thread is schedulable again: a second commit succeeds.
            let mut txn2 = Transaction::new(t, CpuId(5));
            let second = ctx.commit_one(&mut txn2);
            *outcome.lock().unwrap() = (Some(committed), recalled, Some(second));
        }));
    }
    s.kernel.run_until(10 * MILLIS);
    let (committed, recalled, second) = *outcome.lock().unwrap();
    assert_eq!(committed, Some(TxnStatus::Committed));
    assert_eq!(recalled, Some(t), "recall must return the withdrawn thread");
    assert_eq!(second, Some(TxnStatus::Committed));
    assert_eq!(s.runtime.stats().txns_recalled, 1);
    // The thread ultimately ran on CPU 5 (the second commit).
    s.kernel.run_until(20 * MILLIS);
    assert_eq!(s.kernel.state.thread(t).last_cpu, Some(CpuId(5)));
}

#[test]
fn destroy_queue_semantics() {
    let mut s = setup(1, EnclaveConfig::centralized("destroyq"));
    let t = s.tids[0];
    let results = Arc::new(Mutex::new(Vec::new()));
    {
        let results = Arc::clone(&results);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            let q = ctx.create_queue();
            // Destroying the default queue must fail.
            results.lock().unwrap().push(ctx.destroy_queue(QueueId(0)));
            // Destroying an unused fresh queue succeeds.
            results.lock().unwrap().push(ctx.destroy_queue(q));
            // Destroying it twice fails.
            results.lock().unwrap().push(ctx.destroy_queue(q));
            // A queue with an associated thread cannot be destroyed.
            let q2 = ctx.create_queue();
            assert!(ctx.associate_queue(t, q2));
            results.lock().unwrap().push(ctx.destroy_queue(q2));
        }));
    }
    s.kernel.run_until(5 * MILLIS);
    assert_eq!(*results.lock().unwrap(), vec![false, true, false, false]);
}

#[test]
fn scheduling_hints_reach_the_policy() {
    let mut s = setup(1, EnclaveConfig::centralized("hints"));
    let t = s.tids[0];
    s.kernel.run_until(MILLIS);
    // The workload publishes a hint (e.g. "my next request is 7 µs").
    s.runtime.set_hint(t, 7_000);
    let seen = Arc::new(Mutex::new(None));
    {
        let seen = Arc::clone(&seen);
        s.script.lock().unwrap().push(Box::new(move |ctx| {
            *seen.lock().unwrap() = ctx.hint(t);
        }));
    }
    s.kernel.assign_and_wake(t, 100 * MICROS);
    s.kernel.run_until(5 * MILLIS);
    assert_eq!(*seen.lock().unwrap(), Some(7_000));
}
