//! A small in-memory key-value store standing in for RocksDB (§4.2).
//!
//! The evaluation only depends on GET service times, but the store is
//! real: the request-serving app executes actual lookups so the data
//! path is exercised, and the per-GET cost model (~6 µs in the paper's
//! setup) feeds the simulated service time.

use ghost_sim::time::Nanos;
use std::collections::HashMap;

/// An in-memory KV store with a modelled per-operation cost.
pub struct KvStore {
    map: HashMap<u64, u64>,
    /// Simulated cost of one GET (paper: "about 6 µs").
    pub get_cost: Nanos,
}

impl KvStore {
    /// Builds a store with `n` keys (key `i` → value `i * 2654435761`).
    pub fn with_keys(n: u64, get_cost: Nanos) -> Self {
        let mut map = HashMap::with_capacity(n as usize);
        for i in 0..n {
            map.insert(i, i.wrapping_mul(2_654_435_761));
        }
        Self { map, get_cost }
    }

    /// Executes a GET; returns `(value, simulated_cost)`.
    pub fn get(&self, key: u64) -> (Option<u64>, Nanos) {
        (self.map.get(&key).copied(), self.get_cost)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the store has no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gets_return_stored_values() {
        let kv = KvStore::with_keys(1000, 6_000);
        let (v, cost) = kv.get(7);
        assert_eq!(v, Some(7u64.wrapping_mul(2_654_435_761)));
        assert_eq!(cost, 6_000);
        let (missing, _) = kv.get(99_999);
        assert_eq!(missing, None);
        assert_eq!(kv.len(), 1000);
        assert!(!kv.is_empty());
    }
}
