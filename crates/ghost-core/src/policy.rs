//! The userspace policy interface: what scheduling policies program
//! against. This is the analogue of the paper's userspace support library
//! (3,115 LOC of C++ in Table 2).

use crate::abi::AbiError;
use crate::backend::GhostBackend;
use crate::enclave::{Enclave, QueueId, WakeMode};
use crate::msg::Message;
use ghost_sim::cpuset::CpuSet;
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::Nanos;
use ghost_sim::topology::{CpuId, Topology};
use ghost_trace::TraceEvent;

/// A snapshot of a ghOSt thread's state as an agent sees it (messages +
/// status words; agents never dereference kernel structures, §3.1).
#[derive(Debug, Clone, Copy)]
pub struct ThreadView {
    /// Thread id.
    pub tid: Tid,
    /// True if runnable and waiting for an agent decision.
    pub runnable: bool,
    /// CPU the thread is running on right now, if any.
    pub on_cpu: Option<CpuId>,
    /// Latest thread sequence number `Tseq`.
    pub tseq: u64,
    /// Last CPU the thread ran on (for locality placement).
    pub last_cpu: Option<CpuId>,
    /// Total work completed (the Search policy's min-heap key).
    pub total_runtime: Nanos,
    /// Affinity mask (delivered with `THREAD_CREATED`/`THREAD_AFFINITY`).
    pub affinity: CpuSet,
    /// Nice value.
    pub nice: i8,
    /// Grouping cookie (e.g. VM id for core scheduling).
    pub cookie: u64,
}

/// The API surface an activation exposes to the policy.
///
/// All time charged through this context ([`PolicyCtx::charge`] and the
/// implicit costs of commits) extends the agent's busy period in the
/// simulation, so expensive policies really do schedule more slowly.
pub struct PolicyCtx<'a> {
    pub(crate) k: &'a mut dyn GhostBackend,
    pub(crate) enclave: &'a mut Enclave,
    pub(crate) stats: &'a mut crate::runtime::GhostStats,
    pub(crate) agent_cpu: CpuId,
    pub(crate) agent_tid: Tid,
    pub(crate) busy: Nanos,
    pub(crate) smt_scale: bool,
    pub(crate) wakeup_request: Option<Nanos>,
    pub(crate) scratch: &'a mut crate::runtime::CommitScratch,
}

impl<'a> PolicyCtx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.k.now()
    }

    /// Machine topology.
    pub fn topo(&self) -> &Topology {
        self.k.topo()
    }

    /// The CPU this agent runs on.
    pub fn local_cpu(&self) -> CpuId {
        self.agent_cpu
    }

    /// The agent thread's id.
    pub fn agent_tid(&self) -> Tid {
        self.agent_tid
    }

    /// The enclave's CPU set.
    pub fn enclave_cpus(&self) -> CpuSet {
        self.enclave.cpus
    }

    /// CPUs in the enclave that are idle *and* have no committed
    /// transaction pending — the `GetIdleCPUs()` of the paper's Fig. 4.
    /// The global agent's own CPU is excluded.
    pub fn idle_cpus(&self) -> CpuSet {
        self.enclave
            .cpus
            .iter()
            .filter(|&c| {
                c != self.agent_cpu
                    && self.k.cpu(c).is_idle()
                    && !self.enclave.committed.contains(c)
            })
            .collect()
    }

    /// The ghOSt thread currently running on `cpu`, if any (candidates
    /// for preemptive policies such as Shinjuku). Total: a forged CPU id
    /// runs nothing.
    pub fn running_ghost(&self, cpu: CpuId) -> Option<Tid> {
        let cur = self.k.cpu_checked(cpu)?.current?;
        self.enclave.threads.contains(cur).then_some(cur)
    }

    /// True if `cpu` has a committed transaction not yet acted on.
    pub fn commit_pending(&self, cpu: CpuId) -> bool {
        self.enclave.committed.contains(cpu)
    }

    /// The thread a pending (committed, not yet picked) transaction will
    /// run on `cpu`, if any.
    pub fn pending_commit_tid(&self, cpu: CpuId) -> Option<Tid> {
        self.enclave.committed.get(cpu).map(|s| s.tid)
    }

    /// True if `cpu` is currently occupied by an agent thread (which will
    /// vacate when its activation ends — such CPUs accept commits).
    /// Total: false for a forged CPU id.
    pub fn agent_on_cpu(&self, cpu: CpuId) -> bool {
        self.k
            .cpu_checked(cpu)
            .and_then(|cs| cs.current)
            .is_some_and(|t| self.k.thread(t).kind == ghost_sim::thread::ThreadKind::Agent)
    }

    /// Number of CFS threads queued behind `cpu` (the hot-handoff
    /// pressure signal, §3.3). Total: zero for a forged CPU id.
    pub fn cfs_pressure(&self, cpu: CpuId) -> u32 {
        self.k.cpu_checked(cpu).map_or(0, |cs| cs.cfs_queued)
    }

    /// This agent's current sequence number `Aseq`, read from its status
    /// word. Committing with an `Aseq` older than the value at commit
    /// time fails with `ESTALE` (§3.2).
    pub fn agent_seq(&self) -> u64 {
        self.enclave
            .agents
            .get(self.agent_cpu)
            .map_or(0, |a| a.status.seq())
    }

    /// Snapshot of a managed thread, or `None` if it is not (or no
    /// longer) in this enclave.
    pub fn thread_view(&mut self, tid: Tid) -> Option<ThreadView> {
        let info = self.enclave.threads.get(tid)?;
        // Sync runtime so `total_runtime` reflects in-progress stints.
        let tseq = info.tseq;
        self.k.sync_runtime(tid);
        let t = &self.k.thread(tid);
        Some(ThreadView {
            tid,
            runnable: t.state == ThreadState::Runnable,
            on_cpu: if t.state == ThreadState::Running {
                t.cpu
            } else {
                None
            },
            tseq,
            last_cpu: t.last_cpu,
            total_runtime: t.total_work,
            affinity: t.affinity,
            nice: t.nice,
            cookie: t.cookie,
        })
    }

    /// Virtual time this activation has charged so far (dequeues, policy
    /// compute, commits). The activation logically occupies the agent
    /// until `now() + busy_so_far()`.
    pub fn busy_so_far(&self) -> Nanos {
        self.busy
    }

    /// Charges `ns` of policy compute time to this activation.
    pub fn charge(&mut self, ns: Nanos) {
        self.busy += if self.smt_scale {
            self.k.costs().smt_scaled(ns)
        } else {
            ns
        };
    }

    // `commit` / `commit_one` (`TXNS_COMMIT()`) are implemented in
    // `runtime.rs`, next to the kernel-side validation logic they invoke.

    /// The activation-side funnel for rejected context operations: counts
    /// the rejection by kind, fires the `ghost_abi_reject` tracepoint on
    /// the agent's CPU, and — for errors no benign race can produce —
    /// charges a byzantine strike (the driver checks the budget when this
    /// activation ends). No rejected call is dropped silently.
    fn reject(&mut self, err: AbiError) -> AbiError {
        self.stats.abi_rejects[err.kind()] += 1;
        let acpu = self.agent_cpu.0;
        self.k
            .trace()
            .emit(self.k.now(), acpu, || TraceEvent::AbiReject {
                cpu: acpu,
                kind: err.kind() as u8,
            });
        if err.byzantine() {
            self.enclave.abi_strikes += 1;
        }
        err
    }

    /// Why `tid` is not a schedulable thread of this enclave: forged id,
    /// dead, an agent pthread, or another enclave's thread.
    fn classify_unknown_tid(&self, tid: Tid) -> AbiError {
        match self.k.thread_checked(tid) {
            None => AbiError::NoSuchThread,
            Some(t) if t.state == ThreadState::Dead => AbiError::DeadThread,
            Some(t) if t.kind == ghost_sim::thread::ThreadKind::Agent => AbiError::AgentThread,
            Some(_) => AbiError::ForeignThread,
        }
    }

    /// `ASSOCIATE_QUEUE()`: reroutes a thread's messages to `queue`.
    /// Fails (returning `false`) if the thread has pending messages in
    /// its current queue, per §3.1.
    pub fn associate_queue(&mut self, tid: Tid, queue: QueueId) -> bool {
        self.try_associate_queue(tid, queue).is_ok()
    }

    /// Validated `ASSOCIATE_QUEUE()`: rejects destroyed or nonexistent
    /// queues, unmanaged tids, and threads with pending messages with a
    /// typed [`AbiError`].
    pub fn try_associate_queue(&mut self, tid: Tid, queue: QueueId) -> Result<(), AbiError> {
        if self
            .enclave
            .queues
            .get(queue.0 as usize)
            .is_none_or(Option::is_none)
        {
            return Err(self.reject(AbiError::NoSuchQueue));
        }
        let err = match self.enclave.threads.get(tid) {
            Some(info) if info.pending_msgs > 0 => Some(AbiError::PendingMessages),
            Some(_) => None,
            None => Some(self.classify_unknown_tid(tid)),
        };
        if let Some(err) = err {
            return Err(self.reject(err));
        }
        if let Some(info) = self.enclave.threads.get_mut(tid) {
            info.queue = queue;
        }
        Ok(())
    }

    /// `TXNS_RECALL()`: withdraws a committed-but-not-yet-acted-on
    /// transaction from `cpu`, returning the thread it would have run.
    /// The thread becomes schedulable again immediately. Returns `None`
    /// if no transaction was pending (it may already have been picked).
    pub fn recall(&mut self, cpu: CpuId) -> Option<Tid> {
        self.try_recall(cpu).ok()
    }

    /// Validated `TXNS_RECALL()`: rejects forged or out-of-enclave CPU
    /// ids and CPUs with nothing pending with a typed [`AbiError`].
    pub fn try_recall(&mut self, cpu: CpuId) -> Result<Tid, AbiError> {
        if !self.k.valid_cpu(cpu) {
            return Err(self.reject(AbiError::InvalidCpu));
        }
        if !self.enclave.cpus.contains(cpu) {
            return Err(self.reject(AbiError::CpuOutsideEnclave));
        }
        let Some(slot) = self.enclave.committed.remove(cpu) else {
            return Err(self.reject(AbiError::NoCommitPending));
        };
        if let Some(info) = self.enclave.threads.get_mut(slot.tid) {
            info.picked = false;
        }
        self.charge(self.k.costs().syscall + self.k.costs().txn_validate);
        self.stats.txns_recalled += 1;
        Ok(slot.tid)
    }

    /// `DESTROY_QUEUE()`: removes a queue. Fails if it is the default
    /// queue, still has messages, or any thread is associated with it.
    pub fn destroy_queue(&mut self, queue: QueueId) -> bool {
        self.try_destroy_queue(queue).is_ok()
    }

    /// Validated `DESTROY_QUEUE()`: each failure mode gets its own typed
    /// [`AbiError`].
    pub fn try_destroy_queue(&mut self, queue: QueueId) -> Result<(), AbiError> {
        if queue == self.enclave.default_queue {
            return Err(self.reject(AbiError::DefaultQueueProtected));
        }
        if self
            .enclave
            .queues
            .get(queue.0 as usize)
            .is_none_or(Option::is_none)
        {
            return Err(self.reject(AbiError::NoSuchQueue));
        }
        if self.enclave.threads.values().any(|i| i.queue == queue) {
            return Err(self.reject(AbiError::QueueInUse));
        }
        if self
            .enclave
            .queues
            .get(queue.0 as usize)
            .and_then(|s| s.as_ref())
            .is_some_and(|qs| !qs.queue.is_empty())
        {
            return Err(self.reject(AbiError::PendingMessages));
        }
        if let Some(slot) = self.enclave.queues.get_mut(queue.0 as usize) {
            *slot = None;
        }
        Ok(())
    }

    /// Reads the latest scheduling hint a workload published for `tid`
    /// (Fig. 1's "optional scheduling hints" channel), if any.
    pub fn hint(&self, tid: Tid) -> Option<u64> {
        self.enclave.hints.get(tid).copied()
    }

    /// `CREATE_QUEUE()`: creates a new queue, polled by default.
    pub fn create_queue(&mut self) -> QueueId {
        let cap = self.enclave.config.queue_capacity;
        let id = QueueId(self.enclave.queues.len() as u32);
        self.enclave.queues.push(Some(crate::enclave::QueueState {
            queue: crate::queue::MessageQueue::new(cap),
            wake: WakeMode::Polled,
        }));
        id
    }

    /// `CONFIG_QUEUE_WAKEUP()`: sets the wakeup behaviour of a queue.
    pub fn config_queue_wakeup(&mut self, queue: QueueId, wake: WakeMode) -> bool {
        self.try_config_queue_wakeup(queue, wake).is_ok()
    }

    /// Validated `CONFIG_QUEUE_WAKEUP()`: rejects destroyed/nonexistent
    /// queues and `WakeAgent` targets that are not this enclave's agents
    /// with a typed [`AbiError`]. The target check matters for safety: a
    /// forged wake target would otherwise be dereferenced by the kernel
    /// on every message posted to the queue.
    pub fn try_config_queue_wakeup(
        &mut self,
        queue: QueueId,
        wake: WakeMode,
    ) -> Result<(), AbiError> {
        if let WakeMode::WakeAgent(tid) = wake {
            if !self.k.valid_tid(tid) {
                return Err(self.reject(AbiError::NoSuchThread));
            }
            if !self.enclave.agents.values().any(|a| a.tid == tid) {
                // A dead or foreign wake target is a benign race (agents
                // respawn), not a forgery — rejected, but no strike.
                return Err(self.reject(AbiError::ForeignThread));
            }
        }
        match self.enclave.queues.get_mut(queue.0 as usize) {
            Some(Some(qs)) => {
                qs.wake = wake;
                Ok(())
            }
            _ => Err(self.reject(AbiError::NoSuchQueue)),
        }
    }

    /// Offers a runnable thread to the BPF PNT fast path on `node`'s
    /// ring (the ring index wraps, so any `node` is safe). Returns false
    /// if PNT is disabled, the ring is full, or — counted as a typed
    /// rejection — the tid is not a thread of this enclave.
    pub fn pnt_push(&mut self, node: usize, tid: Tid) -> bool {
        if !self.enclave.threads.contains(tid) {
            let err = self.classify_unknown_tid(tid);
            self.reject(err);
            return false;
        }
        match &mut self.enclave.pnt {
            Some(rings) => rings.push(node, tid),
            None => false,
        }
    }

    /// Revokes a thread from the PNT rings (the agent scheduled it
    /// itself).
    pub fn pnt_revoke(&mut self, tid: Tid) -> bool {
        match &mut self.enclave.pnt {
            Some(rings) => rings.revoke(tid),
            None => false,
        }
    }

    /// Wakes the agent pinned to `cpu` and makes it the active agent of
    /// its core (per-core mode): lets one core's activation hand work to
    /// an idle peer core instead of waiting for the peer's next message
    /// or tick ("when a physical core goes idle and looks for a new
    /// thread to run", §4.5).
    pub fn ping_core_agent(&mut self, cpu: CpuId) -> bool {
        // A forged CPU id has no agent slot and must not reach the
        // topology lookup below.
        if !self.k.valid_cpu(cpu) {
            self.reject(AbiError::InvalidCpu);
            return false;
        }
        let Some(slot) = self.enclave.agents.get(cpu) else {
            return false;
        };
        let agent = slot.tid;
        let key = self
            .k
            .topo()
            .core_cpus(cpu)
            .first()
            .expect("core has a CPU");
        self.enclave.core_active.insert(key, agent);
        if self.k.thread(agent).state == ghost_sim::ThreadState::Blocked {
            self.k.wake(agent);
        }
        true
    }

    /// Requests the next spontaneous activation of the (global) agent at
    /// virtual time `at`, e.g. for time-slice preemption checks.
    pub fn request_wakeup_at(&mut self, at: Nanos) {
        let at = at.max(self.k.now());
        self.wakeup_request = Some(match self.wakeup_request {
            Some(cur) => cur.min(at),
            None => at,
        });
    }

    /// Deterministic RNG for randomized policies.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.k.rng()
    }

    /// Sheds a thread out of ghOSt back to CFS. The escape hatch of the
    /// bounded-retry path ([`crate::recovery::CommitGovernor`]): a thread
    /// whose commits persistently fail `ESTALE` is handed to the default
    /// scheduler instead of livelocking the agent. The detach is organic —
    /// the kernel posts `THREAD_DEAD` so every consumer of the message
    /// stream forgets the thread. Returns `false` if the thread is not
    /// managed by this enclave.
    pub fn shed_to_cfs(&mut self, tid: Tid) -> bool {
        if !self.enclave.threads.contains(tid) {
            return false;
        }
        self.charge(self.k.costs().syscall);
        self.stats.estale_sheds += 1;
        self.k.move_to_class(tid, ghost_sim::class::CLASS_CFS);
        true
    }
}

/// A userspace scheduling policy.
///
/// One activation = drain the agent's queue (the harness calls
/// [`GhostPolicy::on_msg`] per message, charging dequeue costs), then
/// [`GhostPolicy::schedule`] to make decisions.
pub trait GhostPolicy: Send {
    /// Debug name.
    fn name(&self) -> &str;

    /// A message drained from the agent's queue.
    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>);

    /// Make scheduling decisions (inspect idle CPUs, commit transactions).
    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>);

    /// State reconstruction (§3.4): called once, before any message of the
    /// activation, when this policy takes over an enclave that already has
    /// threads — after an in-place upgrade, or when a respawned standby
    /// agent reclaims degraded threads. `snapshot` is the status-word scan
    /// (one entry per managed thread, sorted by tid); the policy must
    /// rebuild its runqueues/trackers from it and treat later messages
    /// with sequence numbers below the scanned `seq` as stale. The default
    /// ignores the scan, which is only correct for stateless policies.
    fn on_reconstruct(
        &mut self,
        snapshot: &[crate::recovery::ThreadSnapshot],
        ctx: &mut PolicyCtx<'_>,
    ) {
        let _ = (snapshot, ctx);
    }
}
