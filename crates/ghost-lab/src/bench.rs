//! The `BENCH_live_vs_sim.json` emitter (ROADMAP perf trajectory).
//!
//! Runs a matched pair of workloads per policy — a DES [`Scenario`] and
//! a live closed-loop KV run on [`ghost_live::LiveKernel`] — and writes
//! one JSON row per run:
//!
//! * **wall-clock** — how long the run really took;
//! * **simulated-seconds/sec** — for DES rows, how much virtual time
//!   the simulator chews through per wall-clock second (the DES's own
//!   "speed");
//! * **throughput** — work items (pulse completions / KV requests) per
//!   wall-clock second.
//!
//! The JSON is hand-rolled (no serde in the workspace); the schema is
//! one `rows` array of flat objects so any plotting script can consume
//! it. Wall-clock numbers are measured, not simulated — the file is a
//! perf *trajectory* across commits, not a determinism artifact, so it
//! carries no hash and is not cached.

use crate::scenario::{PolicyKind, Scenario, WorkloadSpec};
use ghost_core::enclave::EnclaveConfig;
use ghost_live::{KvService, LiveConfig, LiveKernel};
use ghost_sim::time::{Nanos, MICROS, MILLIS, SECS};
use ghost_sim::CpuSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured run (one backend × one policy).
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Policy label (`fifo`, `per-cpu`, ...).
    pub name: String,
    /// `"sim"` or `"live"`.
    pub backend: &'static str,
    /// Wall-clock duration of the run.
    pub wall_ns: u128,
    /// Virtual horizon simulated (DES rows only).
    pub sim_ns: Option<Nanos>,
    /// Work items finished: pulse completions (sim) or KV requests
    /// served (live).
    pub work_items: u64,
}

impl BenchRow {
    /// Virtual seconds simulated per wall-clock second (DES rows).
    pub fn sim_seconds_per_sec(&self) -> Option<f64> {
        self.sim_ns
            .map(|sim| sim as f64 / self.wall_ns.max(1) as f64)
    }

    /// Work items per wall-clock second.
    pub fn throughput_per_sec(&self) -> f64 {
        self.work_items as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

/// Knobs for one live-vs-sim comparison.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Lanes for both backends.
    pub cpus: usize,
    /// DES virtual horizon.
    pub sim_horizon: Nanos,
    /// KV requests per live run.
    pub live_requests: u64,
    /// Per-request service-time floor for the live KV workload.
    pub service_ns: u64,
    /// Hard wall-clock cap per live run (a stalled run stops here and
    /// reports whatever it served — the bench must not hang CI).
    pub live_deadline: Duration,
}

impl Default for BenchOpts {
    fn default() -> Self {
        Self {
            cpus: 4,
            sim_horizon: 200 * MILLIS,
            live_requests: 50_000,
            service_ns: 2 * MICROS,
            live_deadline: Duration::from_secs(30),
        }
    }
}

/// Runs one DES scenario and reports its row.
fn sim_row(policy: PolicyKind, opts: &BenchOpts) -> BenchRow {
    let scenario = Scenario::builder()
        .name(format!("bench/{}", policy.name()))
        .cpus(opts.cpus as u16)
        .policy(policy)
        .workload(WorkloadSpec::pulse(2 * opts.cpus))
        .seed(1)
        .horizon(opts.sim_horizon)
        .trace_capacity(0)
        .build();
    let mut run = scenario.launch();
    let started = Instant::now();
    run.run_to_horizon();
    BenchRow {
        name: policy.name().to_string(),
        backend: "sim",
        wall_ns: started.elapsed().as_nanos(),
        sim_ns: Some(opts.sim_horizon),
        work_items: run.completions(),
    }
}

/// Runs one live closed-loop KV workload under `policy` and reports its
/// row. The driver kicks a blocked worker whenever requests are queued
/// (same shape as `examples/live_smoke.rs`).
fn live_row(
    name: &str,
    config: EnclaveConfig,
    policy: Box<dyn ghost_core::GhostPolicy>,
    opts: &BenchOpts,
) -> BenchRow {
    let kernel = LiveKernel::new(LiveConfig {
        cpus: opts.cpus,
        ..LiveConfig::default()
    });
    let enclave = kernel.launch_enclave(CpuSet::first_n(opts.cpus), config, policy);
    let kv = KvService::new(16, opts.service_ns);
    let workers: Vec<_> = (0..opts.cpus)
        .map(|i| kernel.spawn_kv_worker(&format!("bench-kv-{i}"), Arc::clone(&kv)))
        .collect();
    for &tid in &workers {
        kernel.attach(&enclave, tid);
    }

    let started = Instant::now();
    kv.start_closed_loop(opts.live_requests, 2 * workers.len() as u64, kernel.now());
    for &tid in &workers {
        kernel.wake(tid);
    }
    let deadline = started + opts.live_deadline;
    while kv.completed_count() < opts.live_requests && Instant::now() < deadline {
        if kv.depth() > 0 {
            kernel.wake_one_blocked(&workers);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let wall_ns = started.elapsed().as_nanos();
    let served = kv.completed_count();
    kernel.shutdown();
    BenchRow {
        name: name.to_string(),
        backend: "live",
        wall_ns,
        sim_ns: None,
        work_items: served,
    }
}

/// The matched live-vs-sim comparison: FIFO-centralized and per-CPU,
/// each on both backends.
pub fn bench_live_vs_sim(opts: &BenchOpts) -> Vec<BenchRow> {
    vec![
        sim_row(PolicyKind::CentralizedFifo, opts),
        sim_row(PolicyKind::PerCpu, opts),
        live_row(
            PolicyKind::CentralizedFifo.name(),
            EnclaveConfig::centralized("bench-fifo").with_watchdog(5 * SECS),
            Box::new(ghost_policies::CentralizedFifo::new()),
            opts,
        ),
        live_row(
            PolicyKind::PerCpu.name(),
            EnclaveConfig::per_cpu("bench-percpu").with_watchdog(5 * SECS),
            Box::new(ghost_policies::PerCpuPolicy::new()),
            opts,
        ),
    ]
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// Serializes rows to the `BENCH_live_vs_sim.json` schema.
pub fn bench_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"live_vs_sim\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let sim_ms = row
            .sim_ns
            .map(|n| json_f64(n as f64 / 1e6))
            .unwrap_or_else(|| "null".into());
        let sim_rate = row
            .sim_seconds_per_sec()
            .map(json_f64)
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"backend\": \"{}\", \"wall_ms\": {}, \"sim_ms\": {}, \
             \"sim_seconds_per_sec\": {}, \"work_items\": {}, \"throughput_per_sec\": {}}}{}\n",
            row.name,
            row.backend,
            json_f64(row.wall_ns as f64 / 1e6),
            sim_ms,
            sim_rate,
            row.work_items,
            json_f64(row.throughput_per_sec()),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the comparison and writes `path` (`BENCH_live_vs_sim.json`).
pub fn emit_live_vs_sim(path: &str, opts: &BenchOpts) -> std::io::Result<Vec<BenchRow>> {
    let rows = bench_live_vs_sim(opts);
    std::fs::write(path, bench_json(&rows))?;
    Ok(rows)
}
