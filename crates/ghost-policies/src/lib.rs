//! # ghost-policies — the scheduling policies from the paper's evaluation
//!
//! Each policy implements [`ghost_core::GhostPolicy`] over the
//! [`ghost_core::PolicyCtx`] API, mirroring the userspace policies of the
//! paper:
//!
//! | module | paper | LOC in paper |
//! |---|---|---|
//! | [`per_cpu`] | the per-CPU example of §3.2 / Fig. 3 | — |
//! | [`fifo`] | the round-robin global policy of Fig. 5 | — |
//! | [`shinjuku`] | the Shinjuku policy, §4.2 | 710 |
//! | [`shinjuku_shenango`] | Shinjuku + Shenango, §4.2 | 727 |
//! | [`snap`] | the Google Snap policy, §4.3 | 855 |
//! | [`search`] | the Google Search policy, §4.4 | 929 |
//! | [`core_sched`] | secure VM core scheduling, §4.5 | 4,702 |
//!
//! [`tracker`] is the shared message-driven thread-state bookkeeping all
//! policies build on (part of the "userspace support library" role).

pub mod core_sched;
pub mod fifo;
pub mod per_cpu;
pub mod search;
pub mod shinjuku;
pub mod shinjuku_shenango;
pub mod snap;
pub mod tracker;

pub use core_sched::CoreSchedPolicy;
pub use fifo::CentralizedFifo;
pub use per_cpu::PerCpuPolicy;
pub use search::{SearchConfig, SearchPolicy};
pub use shinjuku::{ShinjukuConfig, ShinjukuPolicy};
pub use shinjuku_shenango::ShinjukuShenangoPolicy;
pub use snap::SnapPolicy;
pub use tracker::ThreadTracker;
