//! Shinjuku + Shenango (§4.2): "We extended our ghOSt-Shinjuku policy to
//! implement Shenango-style scheduling with merely 17 more lines of code
//! ... The policy monitors the load to RocksDB and gives spare cycles to
//! the batch app."
//!
//! Latency-critical (LC) workers behave exactly as in
//! [`crate::shinjuku`]; batch threads (marked with [`BATCH_COOKIE`]) run
//! only on CPUs the LC FIFO leaves idle and are preempted the moment LC
//! work needs the CPU.

use crate::shinjuku::{ShinjukuConfig, ShinjukuPolicy};
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::txn::Transaction;
use ghost_sim::thread::Tid;
use std::collections::{HashSet, VecDeque};

/// Cookie value marking batch (best-effort) threads.
pub const BATCH_COOKIE: u64 = 0xBA7C4;

/// Shinjuku for LC work + Shenango-style batch filling.
pub struct ShinjukuShenangoPolicy {
    lc: ShinjukuPolicy,
    batch_rq: VecDeque<Tid>,
    batch_queued: HashSet<Tid>,
    batch_threads: HashSet<Tid>,
    /// Batch commits (for CPU-share accounting assertions).
    pub batch_commits: u64,
}

impl ShinjukuShenangoPolicy {
    /// Creates the policy.
    pub fn new(config: ShinjukuConfig) -> Self {
        Self {
            lc: ShinjukuPolicy::new(config),
            batch_rq: VecDeque::new(),
            batch_queued: HashSet::new(),
            batch_threads: HashSet::new(),
            batch_commits: 0,
        }
    }
}

impl GhostPolicy for ShinjukuShenangoPolicy {
    fn name(&self) -> &str {
        "shinjuku+shenango"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        // Classify new threads by cookie.
        if msg.ty == MsgType::ThreadCreated {
            if let Some(view) = ctx.thread_view(msg.tid) {
                if view.cookie == BATCH_COOKIE {
                    self.batch_threads.insert(msg.tid);
                }
            }
        }
        if self.batch_threads.contains(&msg.tid) {
            // Batch bookkeeping mirrors the LC tracker, one queue.
            let Some(view) = self.lc.tracker.apply(msg) else {
                return;
            };
            if view.dead {
                self.batch_queued.remove(&msg.tid);
                self.batch_rq.retain(|&t| t != msg.tid);
                self.batch_threads.remove(&msg.tid);
            } else if view.runnable {
                if self.batch_queued.insert(msg.tid) {
                    self.batch_rq.push_back(msg.tid);
                }
            } else {
                self.batch_queued.remove(&msg.tid);
                self.batch_rq.retain(|&t| t != msg.tid);
            }
            return;
        }
        self.lc.track(msg);
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        // LC first: fill idle CPUs and preempt expired slices. If LC work
        // is waiting, evict batch threads to make room — one group commit
        // for all evictions (the batch IPI amortization matters exactly
        // here, at high load).
        if !self.lc.rq.is_empty() {
            let victims: Vec<_> = ctx
                .enclave_cpus()
                .iter()
                .filter_map(|cpu| {
                    let t = ctx.running_ghost(cpu)?;
                    (self.batch_threads.contains(&t) && !ctx.commit_pending(cpu)).then_some(cpu)
                })
                .collect();
            let mut txns = Vec::new();
            for cpu in victims {
                let Some(next) = self.lc.rq.pop_front() else {
                    break;
                };
                txns.push(
                    ghost_core::Transaction::new(next, cpu)
                        .with_thread_seq(self.lc.tracker.seq(next)),
                );
            }
            if !txns.is_empty() {
                ctx.commit(&mut txns);
                for txn in &txns {
                    if txn.status.committed() {
                        self.lc.note_commit(txn.tid, ctx.now());
                    } else {
                        self.lc.note_failure(txn.tid);
                    }
                }
            }
        }
        self.lc.fill_idle(ctx);
        self.lc.preempt_expired(ctx);
        self.lc.arm_slice_timer(ctx);
        // Spare cycles go to the batch app — but keep a couple of CPUs
        // in reserve so bursts of LC arrivals land on truly idle CPUs
        // instead of waiting out a batch eviction (the "monitors the
        // load" part of the paper's Shenango-style extension).
        const RESERVE: usize = 2;
        while self.lc.rq.is_empty() && ctx.idle_cpus().count() > RESERVE {
            let Some(cpu) = ctx.idle_cpus().first() else {
                break;
            };
            let Some(tid) = self.batch_rq.pop_front() else {
                break;
            };
            self.batch_queued.remove(&tid);
            let mut txn = Transaction::new(tid, cpu).with_thread_seq(self.lc.tracker.seq(tid));
            if ctx.commit_one(&mut txn).committed() {
                self.batch_commits += 1;
                self.lc.tracker.mark_scheduled(tid);
            } else if self.batch_queued.insert(tid) {
                self.batch_rq.push_back(tid);
                break;
            }
        }
    }

    fn on_reconstruct(&mut self, snapshot: &[ghost_core::ThreadSnapshot], ctx: &mut PolicyCtx<'_>) {
        // Tier membership is the cookie, so the scan rebuilds both the
        // LC and batch halves without message history.
        self.batch_threads = snapshot
            .iter()
            .filter(|s| s.cookie == BATCH_COOKIE)
            .map(|s| s.tid)
            .collect();
        self.batch_rq.clear();
        self.batch_queued.clear();
        let now = ctx.now();
        self.lc
            .reseed_from(snapshot, now, |s| s.cookie != BATCH_COOKIE);
        for s in snapshot.iter().filter(|s| s.cookie == BATCH_COOKIE) {
            if s.runnable && !s.on_cpu && self.batch_queued.insert(s.tid) {
                self.batch_rq.push_back(s.tid);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_with_no_batch_threads() {
        let p = ShinjukuShenangoPolicy::new(ShinjukuConfig::default());
        assert!(p.batch_threads.is_empty());
        assert_eq!(p.batch_commits, 0);
    }
}
