//! Table 2: lines of code of ghOSt components and compared systems.
//!
//! Prints the paper's numbers (C/C++) beside this reproduction's (Rust).
//! LOC across languages are not directly comparable; the point of the
//! table — policies are 1-2 orders of magnitude smaller than the systems
//! they replace — must hold in both columns.

use ghost_metrics::Table;
use std::path::Path;

fn main() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();

    let mut t = Table::new(vec!["component (paper)", "paper LOC"])
        .with_title("Table 2 (reference): lines of code in the paper");
    for (name, loc) in ghost_bench::loc::paper_table2() {
        t.row(vec![name.to_string(), loc.to_string()]);
    }
    t.print();
    println!();

    let ours = ghost_bench::loc::repo_components(&repo);
    let mut t = Table::new(vec!["component (this reproduction)", "Rust LOC"])
        .with_title("Table 2 (measured): lines of code in this repository");
    for e in &ours {
        t.row(vec![e.name.clone(), e.loc.to_string()]);
    }
    t.print();

    // The table's headline property: every policy is dramatically smaller
    // than the infrastructure (and than the dataplane it replaces).
    let infra: usize = ours
        .iter()
        .filter(|e| e.name.starts_with("ghost-sim") || e.name.starts_with("ghost-core"))
        .map(|e| e.loc)
        .sum();
    let policies: Vec<&ghost_bench::loc::LocEntry> = ours
        .iter()
        .filter(|e| e.name.contains("policy") || e.name.contains("Policy"))
        .collect();
    assert!(!policies.is_empty(), "policy rows missing");
    for p in &policies {
        assert!(
            p.loc * 4 < infra,
            "policy '{}' ({} LOC) should be far smaller than the infrastructure ({} LOC)",
            p.name,
            p.loc,
            infra
        );
    }
    println!("\nOK: every policy is <25% of the infrastructure LOC (paper's Table 2 property).");
}
