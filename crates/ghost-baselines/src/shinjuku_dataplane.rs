//! The original Shinjuku system (§4.2 baseline): "It uses 20 spinning
//! worker threads pinned to 20 different hyperthreads and a spinning
//! dispatcher thread, running on a dedicated physical core. The spinning
//! threads prevent any other thread from running on their CPUs. The
//! dispatcher manages arriving requests in a FIFO and assigns them to
//! worker threads. Each request runs up to a limited runtime, before it
//! is preempted and added to the back of the FIFO."
//!
//! Because Shinjuku is a dataplane OS with its own closed world (Dune,
//! posted interrupts), it is modelled as a standalone discrete-event
//! system rather than on the kernel simulator: its CPUs are simply not
//! available to anyone else — which is exactly what Fig. 6c shows (the
//! batch app gets zero CPU share under Shinjuku).

use ghost_metrics::LogHistogram;
use ghost_sim::time::{Nanos, MICROS};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Dataplane configuration.
#[derive(Debug, Clone)]
pub struct DataplaneConfig {
    /// Number of spinning worker hyperthreads.
    pub workers: usize,
    /// Preemption timeslice (30 µs in the paper's experiments).
    pub timeslice: Nanos,
    /// Dispatcher→worker handoff cost (shared-memory descriptor pass).
    pub dispatch_cost: Nanos,
    /// Preemption cost (posted interrupt + context save).
    pub preempt_cost: Nanos,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        Self {
            workers: 20,
            timeslice: 30 * MICROS,
            dispatch_cost: 150,
            preempt_cost: 250,
        }
    }
}

/// Results of a dataplane run.
#[derive(Debug)]
pub struct DataplaneResult {
    /// Request latency (arrival → completion), ns.
    pub latency: LogHistogram,
    /// Completed requests.
    pub completed: u64,
    /// Preemptions performed.
    pub preemptions: u64,
    /// Requests still in flight when the run ended.
    pub in_flight: usize,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    arrival: Nanos,
    remaining: Nanos,
}

/// The Shinjuku dataplane simulator.
pub struct ShinjukuDataplane {
    config: DataplaneConfig,
}

impl ShinjukuDataplane {
    /// Creates the system.
    pub fn new(config: DataplaneConfig) -> Self {
        Self { config }
    }

    /// Runs the dataplane over a pre-sorted arrival stream of
    /// `(arrival_time, service_time)` pairs until `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not sorted by time.
    pub fn run(
        &self,
        arrivals: impl IntoIterator<Item = (Nanos, Nanos)>,
        horizon: Nanos,
    ) -> DataplaneResult {
        let cfg = &self.config;
        let mut fifo: VecDeque<Req> = VecDeque::new();
        // (completion-or-preemption time, worker, request) — earliest first.
        let mut running: BinaryHeap<Reverse<(Nanos, Req, Nanos)>> = BinaryHeap::new();
        let mut free_workers = cfg.workers;
        let mut latency = LogHistogram::new();
        let mut completed = 0u64;
        let mut preemptions = 0u64;
        let mut last_arrival = 0;

        let mut arrivals = arrivals.into_iter().peekable();
        let mut now: Nanos;
        loop {
            // Next event: arrival or running-slice end.
            let next_arrival = arrivals.peek().map(|&(t, _)| t);
            let next_slice = running.peek().map(|Reverse((t, _, _))| *t);
            let t = match (next_arrival, next_slice) {
                (None, None) => break,
                (Some(a), None) => a,
                (None, Some(s)) => s,
                (Some(a), Some(s)) => a.min(s),
            };
            if t > horizon {
                break;
            }
            now = t;
            if Some(t) == next_arrival {
                let (at, service) = arrivals.next().expect("peeked");
                assert!(at >= last_arrival, "arrivals must be sorted");
                last_arrival = at;
                fifo.push_back(Req {
                    arrival: at,
                    remaining: service,
                });
            } else {
                let Reverse((_, req, ran)) = running.pop().expect("peeked");
                free_workers += 1;
                if ran >= req.remaining {
                    // Completed.
                    latency.record(now - req.arrival);
                    completed += 1;
                } else {
                    // Preempted: back of the FIFO with reduced remaining.
                    preemptions += 1;
                    fifo.push_back(Req {
                        arrival: req.arrival,
                        remaining: req.remaining - ran + cfg.preempt_cost,
                    });
                }
            }
            // Dispatcher: fill free workers from the FIFO.
            while free_workers > 0 {
                let Some(req) = fifo.pop_front() else {
                    break;
                };
                free_workers -= 1;
                let ran = req.remaining.min(cfg.timeslice);
                let end = now + cfg.dispatch_cost + ran;
                running.push(Reverse((end, req, ran)));
            }
        }
        DataplaneResult {
            latency,
            completed,
            preemptions,
            in_flight: fifo.len() + running.len(),
        }
    }
}

// `Req` ordering for the heap: only the time matters; derive lexicographic
// compare over tuple requires Ord on Req.
impl PartialEq for Req {
    fn eq(&self, other: &Self) -> bool {
        (self.arrival, self.remaining) == (other.arrival, other.remaining)
    }
}
impl Eq for Req {}
impl PartialOrd for Req {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Req {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.arrival, self.remaining).cmp(&(other.arrival, other.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::time::{MILLIS, SECS};

    #[test]
    fn single_request_latency_is_service_plus_dispatch() {
        let dp = ShinjukuDataplane::new(DataplaneConfig::default());
        let r = dp.run([(0, 4 * MICROS)], SECS);
        assert_eq!(r.completed, 1);
        assert_eq!(r.latency.max(), 4 * MICROS + 150);
        assert_eq!(r.preemptions, 0);
    }

    #[test]
    fn long_requests_are_preempted_at_the_slice() {
        let dp = ShinjukuDataplane::new(DataplaneConfig::default());
        let r = dp.run([(0, 100 * MICROS)], SECS);
        assert_eq!(r.completed, 1);
        // 100 µs at a 30 µs slice → 3 preemptions.
        assert_eq!(r.preemptions, 3);
    }

    #[test]
    fn short_requests_are_not_blocked_by_long_ones() {
        // 20 workers busy with long requests + 1 short one: preemption
        // bounds the short request's latency near one timeslice.
        let dp = ShinjukuDataplane::new(DataplaneConfig::default());
        let mut arrivals: Vec<(Nanos, Nanos)> = (0..21).map(|_| (0, 10 * MILLIS)).collect();
        arrivals.push((1, 4 * MICROS));
        arrivals.sort();
        let r = dp.run(arrivals, 2 * SECS);
        // The short request completes long before the 10 ms hogs would
        // drain without preemption.
        assert!(r.latency.min() < 100 * MICROS, "min {}", r.latency.min());
    }

    #[test]
    fn saturation_leaves_requests_in_flight() {
        let dp = ShinjukuDataplane::new(DataplaneConfig {
            workers: 1,
            ..DataplaneConfig::default()
        });
        // 1 worker, offered 2x capacity.
        let arrivals: Vec<(Nanos, Nanos)> = (0..1000u64)
            .map(|i| (i * 5 * MICROS, 10 * MICROS))
            .collect();
        let r = dp.run(arrivals, 5 * MILLIS + 1);
        assert!(r.in_flight > 100, "in flight {}", r.in_flight);
    }

    #[test]
    fn throughput_matches_capacity_below_saturation() {
        let dp = ShinjukuDataplane::new(DataplaneConfig::default());
        // 20 workers, 10 µs requests, offered at 1M req/s (half capacity).
        let arrivals: Vec<(Nanos, Nanos)> =
            (0..100_000u64).map(|i| (i * MICROS, 10 * MICROS)).collect();
        let r = dp.run(arrivals, 2 * SECS);
        assert_eq!(r.completed, 100_000);
        // p99 stays near service time.
        assert!(r.latency.percentile(99.0) < 40 * MICROS);
    }
}
