//! The BPF `pick_next_task` fast path (§3.2, §5 of the paper).
//!
//! "When a CPU becomes idle and the agent has not already issued a
//! transaction, the BPF program issues its own transaction, picking a
//! thread to run on that CPU. The BPF program communicates with the agent
//! via a shared-memory window ... with several multi-producer,
//! multi-consumer ring buffers. The agent inserts runnable threads into
//! the buffers and BPF tries to run them. The agent may revoke a thread
//! before BPF can schedule the thread."
//!
//! We model the shared-memory window as per-NUMA-node rings of candidate
//! threads. The (simulated) kernel consults the ring for the idling CPU's
//! node inside `pick_next`, closing the scheduling gap between agent loop
//! iterations.

use ghost_sim::thread::Tid;
use std::collections::VecDeque;

/// Per-NUMA-node rings of runnable candidates for idle CPUs.
#[derive(Debug)]
pub struct PntRings {
    rings: Vec<VecDeque<Tid>>,
    capacity: usize,
    /// Threads pushed by the agent and consumed by the kernel.
    pub picks: u64,
    /// Push attempts rejected because the ring was full.
    pub overflows: u64,
    /// Kernel-side pops that found every ring empty (the fast path had
    /// nothing to offer an idling CPU — the `ghost_pnt_miss` tracepoint).
    pub misses: u64,
}

impl PntRings {
    /// Creates `nodes` rings with the given per-ring capacity.
    pub fn new(nodes: usize, capacity: usize) -> Self {
        Self {
            rings: (0..nodes.max(1)).map(|_| VecDeque::new()).collect(),
            capacity: capacity.max(1),
            picks: 0,
            overflows: 0,
            misses: 0,
        }
    }

    /// Number of rings (NUMA nodes).
    pub fn nodes(&self) -> usize {
        self.rings.len()
    }

    /// Agent side: offers `tid` to idle CPUs of `node`. Returns false if
    /// the ring is full.
    pub fn push(&mut self, node: usize, tid: Tid) -> bool {
        let n = self.rings.len();
        let ring = &mut self.rings[node % n];
        if ring.len() >= self.capacity {
            self.overflows += 1;
            return false;
        }
        ring.push_back(tid);
        true
    }

    /// Agent side: revokes a previously offered thread (e.g. the agent
    /// scheduled it itself). Returns true if it was still in a ring.
    pub fn revoke(&mut self, tid: Tid) -> bool {
        for ring in &mut self.rings {
            if let Some(i) = ring.iter().position(|&t| t == tid) {
                ring.remove(i);
                return true;
            }
        }
        false
    }

    /// Kernel side ("BPF program"): pops a candidate for an idling CPU on
    /// `node`, falling back to other nodes' rings if the local one is
    /// empty (work conservation beats locality for an otherwise-idle CPU).
    pub fn pop_for(&mut self, node: usize) -> Option<Tid> {
        let n = self.rings.len();
        for off in 0..n {
            let idx = (node + off) % n;
            if let Some(tid) = self.rings[idx].pop_front() {
                self.picks += 1;
                return Some(tid);
            }
        }
        self.misses += 1;
        None
    }

    /// Total queued candidates across rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(VecDeque::len).sum()
    }

    /// True if all rings are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_local_node() {
        let mut r = PntRings::new(2, 4);
        assert!(r.push(0, Tid(1)));
        assert!(r.push(1, Tid(2)));
        assert_eq!(r.pop_for(0), Some(Tid(1)));
        assert_eq!(r.pop_for(1), Some(Tid(2)));
        assert_eq!(r.pop_for(0), None);
        assert_eq!(r.picks, 2);
        assert_eq!(r.misses, 1);
    }

    #[test]
    fn pop_falls_back_to_remote_node() {
        let mut r = PntRings::new(2, 4);
        r.push(1, Tid(9));
        assert_eq!(r.pop_for(0), Some(Tid(9)));
    }

    #[test]
    fn capacity_limits_and_counts_overflow() {
        let mut r = PntRings::new(1, 2);
        assert!(r.push(0, Tid(1)));
        assert!(r.push(0, Tid(2)));
        assert!(!r.push(0, Tid(3)));
        assert_eq!(r.overflows, 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn revoke_removes_candidate() {
        let mut r = PntRings::new(2, 4);
        r.push(0, Tid(1));
        r.push(1, Tid(2));
        assert!(r.revoke(Tid(2)));
        assert!(!r.revoke(Tid(2)));
        assert_eq!(r.pop_for(1), Some(Tid(1)));
        assert!(r.is_empty());
    }

    #[test]
    fn zero_nodes_clamps_to_one() {
        let mut r = PntRings::new(0, 1);
        assert_eq!(r.nodes(), 1);
        assert!(r.push(5, Tid(1)));
        assert_eq!(r.pop_for(3), Some(Tid(1)));
    }
}
