//! The `BENCH_live_vs_sim.json` emitter: a small end-to-end run of both
//! backends, checking the rows and the hand-rolled JSON schema.

use ghost_lab::{bench_live_vs_sim, BenchOpts};
use ghost_sim::time::{MICROS, MILLIS};
use std::time::Duration;

fn small_opts() -> BenchOpts {
    BenchOpts {
        // 4 lanes: a 2-CPU machine leaves the centralized DES enclave a
        // single lane, which cannot make progress (agent + worker).
        cpus: 4,
        sim_horizon: 20 * MILLIS,
        live_requests: 2_000,
        service_ns: 2 * MICROS,
        live_deadline: Duration::from_secs(30),
    }
}

#[test]
fn bench_rows_cover_both_backends_and_make_progress() {
    let rows = bench_live_vs_sim(&small_opts());
    assert_eq!(rows.len(), 4, "two policies x two backends");
    for row in &rows {
        assert!(
            row.wall_ns > 0,
            "{}/{}: no wall time",
            row.name,
            row.backend
        );
        assert!(
            row.work_items > 0,
            "{}/{}: no work done",
            row.name,
            row.backend
        );
        assert!(row.throughput_per_sec() > 0.0);
        match row.backend {
            "sim" => assert!(row.sim_seconds_per_sec().unwrap() > 0.0),
            "live" => {
                assert!(row.sim_ns.is_none());
                // The closed loop must actually finish, not time out.
                assert_eq!(row.work_items, 2_000, "{}: live run stalled", row.name);
            }
            other => panic!("unknown backend {other}"),
        }
    }
}

#[test]
fn bench_json_schema_is_stable() {
    let rows = bench_live_vs_sim(&BenchOpts {
        live_requests: 500,
        sim_horizon: 5 * MILLIS,
        ..small_opts()
    });
    let json = ghost_lab::bench::bench_json(&rows);
    assert!(json.starts_with("{\n  \"bench\": \"live_vs_sim\""));
    for key in [
        "\"name\"",
        "\"backend\"",
        "\"wall_ms\"",
        "\"sim_ms\"",
        "\"sim_seconds_per_sec\"",
        "\"work_items\"",
        "\"throughput_per_sec\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(json.matches("\"backend\": \"sim\"").count(), 2);
    assert_eq!(json.matches("\"backend\": \"live\"").count(), 2);
}
