//! The scheduling-class hierarchy.
//!
//! Linux orders scheduling classes by priority; a runnable thread in a
//! higher class always preempts a thread of a lower class (§2 of the
//! paper). The simulator uses a fixed five-slot hierarchy:
//!
//! | slot | class | used for |
//! |---|---|---|
//! | 0 | Agent | ghOSt agents ("no other thread ... can preempt agent-threads", §3.3) |
//! | 1 | RT | real-time / MicroQuanta (§4.3) |
//! | 2 | CFS | the default class and fallback when enclaves are destroyed |
//! | 3 | ghOSt | threads delegated to userspace agents — *below* CFS (§3.4) |
//! | 4 | Idle | the idle task |
//!
//! Slots are pluggable: `ghost-core` installs the real ghOSt class at slot
//! 3, `ghost-baselines` installs MicroQuanta at slot 1 or a core-scheduling
//! CFS variant at slot 2.

use crate::kernel::KernelState;
use crate::thread::Tid;
use crate::topology::CpuId;

/// Index of a class slot; lower is higher priority.
pub type ClassId = u8;

/// Agent class: highest priority (paper §3.3).
pub const CLASS_AGENT: ClassId = 0;
/// Real-time class (SCHED_FIFO-like; MicroQuanta installs here).
pub const CLASS_RT: ClassId = 1;
/// The default fair class.
pub const CLASS_CFS: ClassId = 2;
/// The ghOSt class, deliberately below CFS (paper §3.4).
pub const CLASS_GHOST: ClassId = 3;
/// The idle class.
pub const CLASS_IDLE: ClassId = 4;
/// Number of class slots.
pub const NUM_CLASSES: usize = 5;

/// A pluggable scheduling class.
///
/// All methods receive the shared [`KernelState`]; classes keep their own
/// runqueues internally, keyed by [`Tid`]. Cross-class side effects (waking
/// a thread, moving a thread to another class, requesting a resched) are
/// expressed through the deferred-operation buffers on `KernelState` and
/// applied by the kernel after the call returns, which keeps classes free
/// of re-entrant borrows.
///
/// `Send` so a fully wired kernel can run on a `ghost-lab` worker thread.
pub trait SchedClass: Send {
    /// Short class name for debugging and stats.
    fn name(&self) -> &'static str;

    /// A thread of this class became runnable. The class enqueues it and
    /// returns the CPU where it was placed (for preemption checks), or
    /// `None` if the class has no kernel runqueue for it (the ghOSt class
    /// returns `None`: agents, not the kernel, place ghOSt threads).
    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId>;

    /// Removes a runnable (not running) thread from this class's
    /// runqueues, e.g. on class change or death.
    fn dequeue(&mut self, tid: Tid, k: &mut KernelState);

    /// Picks the next thread to run on `cpu`, removing it from the
    /// runqueue. Returning `None` lets lower classes run.
    fn pick_next(&mut self, cpu: CpuId, k: &mut KernelState) -> Option<Tid>;

    /// The running thread `tid` is coming off `cpu`. If `still_runnable`,
    /// the class must requeue it (involuntary preemption or yield);
    /// otherwise the thread blocked or died.
    fn put_prev(&mut self, tid: Tid, cpu: CpuId, still_runnable: bool, k: &mut KernelState);

    /// Timer tick on `cpu` while `current` — a thread of this class — is
    /// running. Returns `true` to request a resched.
    fn on_tick(&mut self, cpu: CpuId, current: Tid, k: &mut KernelState) -> bool;

    /// Timer tick on every CPU regardless of which class is running,
    /// delivered after the current-class [`Self::on_tick`]. The ghOSt class
    /// uses this to post `TIMER_TICK` messages.
    fn on_tick_all(&mut self, _cpu: CpuId, _k: &mut KernelState) {}

    /// Should `waking` preempt `running`, both of this class?
    fn should_preempt(&self, _waking: Tid, _running: Tid, _k: &KernelState) -> bool {
        false
    }

    /// True if the class has at least one runnable thread eligible for
    /// `cpu` (used by the idle path and the watchdog).
    fn has_runnable(&self, cpu: CpuId, k: &KernelState) -> bool;

    /// A thread joined this class (spawn or class change).
    fn on_attach(&mut self, _tid: Tid, _k: &mut KernelState) {}

    /// A thread left this class (death or class change). The thread is
    /// guaranteed not to be on a runqueue of this class when called.
    fn on_detach(&mut self, _tid: Tid, _k: &mut KernelState) {}

    /// `sched_setaffinity` changed the thread's CPU mask. The class must
    /// requeue the thread if its current placement became illegal.
    fn on_affinity_changed(&mut self, _tid: Tid, _k: &mut KernelState) {}

    /// The thread's nice value changed.
    fn on_nice_changed(&mut self, _tid: Tid, _k: &mut KernelState) {}
}

/// Why a thread is coming off a CPU; exposed to classes through
/// [`KernelState::offcpu_reason`] during `put_prev` so the ghOSt class can
/// emit the right message (`THREAD_PREEMPTED` / `THREAD_YIELD` /
/// `THREAD_BLOCKED` / `THREAD_DEAD`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffCpuReason {
    /// Involuntarily preempted; still runnable.
    Preempt,
    /// Voluntarily yielded; still runnable.
    Yield,
    /// Blocked waiting for a wakeup.
    Block,
    /// Exited.
    Exit,
}

/// A class slot with no threads — the default content of pluggable slots.
pub struct NullClass(pub &'static str);

impl SchedClass for NullClass {
    fn name(&self) -> &'static str {
        self.0
    }

    fn enqueue(&mut self, _tid: Tid, _k: &mut KernelState) -> Option<CpuId> {
        None
    }

    fn dequeue(&mut self, _tid: Tid, _k: &mut KernelState) {}

    fn pick_next(&mut self, _cpu: CpuId, _k: &mut KernelState) -> Option<Tid> {
        None
    }

    fn put_prev(&mut self, _tid: Tid, _cpu: CpuId, _still_runnable: bool, _k: &mut KernelState) {}

    fn on_tick(&mut self, _cpu: CpuId, _current: Tid, _k: &mut KernelState) -> bool {
        false
    }

    fn has_runnable(&self, _cpu: CpuId, _k: &KernelState) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ghost-trace` sits below this crate in the dependency graph and
    /// duplicates the class-id constants; keep the two tables in lockstep.
    #[test]
    fn trace_class_ids_match() {
        assert_eq!(CLASS_AGENT, ghost_trace::CLASS_AGENT);
        assert_eq!(CLASS_RT, ghost_trace::CLASS_RT);
        assert_eq!(CLASS_CFS, ghost_trace::CLASS_CFS);
        assert_eq!(CLASS_GHOST, ghost_trace::CLASS_GHOST);
        assert_eq!(CLASS_IDLE, ghost_trace::CLASS_IDLE);
    }
}
