//! Integration tests for the chaos harness itself: the sweep is clean on
//! healthy code, replay is deterministic, shrinking is sound, and the
//! `for_seeds!` helper reports failing seeds.
//!
//! Gated off under `seeded-bug`: with the intentional teardown bug
//! compiled in, sweeps are *supposed* to fail (that's what
//! `tests/seeded_bug.rs` asserts), so the clean-run expectations here
//! only hold on healthy code.
#![cfg(not(feature = "seeded-bug"))]

use ghost_chaos::lab::run_sweep;
use ghost_chaos::rand::rngs::StdRng;
use ghost_chaos::rand::Rng;
use ghost_chaos::{
    combo_from_json, combo_to_json, for_seeds, run_combo, shrink, Combo, ComboExperiment,
    PolicyKind,
};

/// A small sweep across every policy must pass all oracles — the
/// runtime is expected to survive every generated fault plan. Runs
/// through the ghost-lab engine with two workers, the same path the
/// `ghost-chaos` binary takes with `--jobs`.
#[test]
fn small_sweep_is_clean_on_all_policies() {
    let exps: Vec<ComboExperiment> = PolicyKind::ALL
        .into_iter()
        .flat_map(|policy| (1..=4).map(move |seed| ComboExperiment(Combo::generated(policy, seed))))
        .collect();
    let report = run_sweep(&exps, 2, None);
    for item in &report.items {
        assert!(
            item.result.pass,
            "{} failed: {:?}",
            item.label, item.result.lines
        );
        let completions: u64 = item
            .result
            .lines
            .iter()
            .find_map(|l| l.strip_prefix("completions "))
            .expect("summary has a completions line")
            .parse()
            .expect("completions is a count");
        assert!(completions > 0, "{} did no work", item.label);
    }
}

/// The same combo always produces the same report: completions, stats,
/// and the full trace are bit-identical across runs.
#[test]
fn replay_is_deterministic() {
    let combo = Combo::generated(PolicyKind::Shinjuku, 7);
    let a = run_combo(&combo);
    let b = run_combo(&combo);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.stats.txns_committed, b.stats.txns_committed);
    assert_eq!(a.records.len(), b.records.len());
    assert!(a.records.iter().zip(&b.records).all(|(x, y)| x == y));
}

/// A combo that passes its oracles comes back from the shrinker
/// untouched — shrinking only applies to failures.
#[test]
fn shrink_returns_clean_combo_unchanged() {
    let combo = Combo::generated(PolicyKind::CentralizedFifo, 3);
    assert!(run_combo(&combo).failures.is_empty(), "pick a clean seed");
    assert_eq!(shrink(&combo), combo);
}

/// Repro round trip on a generated (not hand-built) combo.
#[test]
fn generated_combos_round_trip_through_repro_json() {
    for seed in 1..=10 {
        let combo = Combo::generated(PolicyKind::CoreSched, seed);
        let back = combo_from_json(&combo_to_json(&combo)).expect("parses");
        assert_eq!(back, combo);
    }
}

/// `for_seeds!` runs every case with a distinct derived seed.
#[test]
fn for_seeds_covers_every_case() {
    let mut seen = Vec::new();
    for_seeds!(0x100, 16, |rng: &mut StdRng| {
        seen.push(rng.gen_range(0..u64::MAX));
    });
    assert_eq!(seen.len(), 16);
    // Different seeds give different streams.
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 16, "per-case RNG streams collided");
}

/// A panicking case propagates (after reporting the failing seed).
#[test]
#[should_panic(expected = "case 11 boom")]
fn for_seeds_propagates_case_panics() {
    let mut case = 0;
    for_seeds!(0x200, 16, |_rng: &mut StdRng| {
        if case == 11 {
            panic!("case 11 boom");
        }
        case += 1;
    });
}

/// The recovery sweep actually exercises the standby machinery: across
/// a modest seed range, some combos respawn a standby agent and complete
/// a bounded-time recovery — and every one of them passes the recovery
/// oracles.
#[test]
fn recovery_sweep_exercises_standby_failover() {
    let mut standby_runs = 0u64;
    let mut respawns = 0u64;
    let mut recoveries = 0u64;
    let mut reconstructions = 0u64;
    for policy in PolicyKind::ALL {
        for seed in 1..=8 {
            let combo = Combo::generated_recovery(policy, seed);
            let report = run_combo(&combo);
            assert!(
                report.failures.is_empty(),
                "policy={} seed={seed} faults={:?} failed: {:?}",
                policy.name(),
                combo.plan.events,
                report.failures
            );
            if combo.plans_standby() {
                standby_runs += 1;
            }
            respawns += report.stats.respawns;
            recoveries += report.stats.recoveries;
            reconstructions += report.stats.reconstructions;
        }
    }
    assert!(
        standby_runs > 0,
        "no seed armed a standby — sweep is vacuous"
    );
    assert!(respawns > 0, "no standby agent ever respawned");
    assert!(recoveries > 0, "no degraded-mode recovery ever completed");
    assert!(reconstructions > 0, "no status-word scan ever ran");
}

/// A standby-armed combo replays bit-identically, including through the
/// repro.json round trip (the standby setup is derived from the seed and
/// plan, never stored — the combo alone must reproduce it).
#[test]
fn standby_combo_replays_deterministically() {
    // Not every standby-armed combo respawns (a crash aimed at an
    // inactive satellite agent is non-fatal), so hunt for one that does.
    let (combo, a) = (1..64)
        .flat_map(|seed| {
            PolicyKind::ALL
                .into_iter()
                .map(move |p| Combo::generated_recovery(p, seed))
        })
        .filter(|c| c.plans_standby())
        .map(|c| {
            let report = run_combo(&c);
            (c, report)
        })
        .find(|(_, r)| r.stats.respawns > 0)
        .expect("some recovery combo respawns a standby");
    let parsed = combo_from_json(&combo_to_json(&combo)).expect("repro round trip");
    assert!(parsed.plans_standby(), "standby derivation survives replay");
    let b = run_combo(&parsed);
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.stats.respawns, b.stats.respawns);
    assert_eq!(a.stats.recoveries, b.stats.recoveries);
    assert_eq!(a.records.len(), b.records.len());
    assert!(a.records.iter().zip(&b.records).all(|(x, y)| x == y));
}
