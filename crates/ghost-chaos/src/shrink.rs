//! Greedy fault-plan shrinking: reduce a failing combo to a 1-minimal
//! repro (removing any single remaining fault makes the failure vanish).

use crate::run::{run_combo, Combo};

/// Shrinks `combo`'s fault plan while it keeps failing. Each round tries
/// deleting one event at a time and keeps the first deletion that still
/// fails, until no single deletion preserves the failure. Runs
/// `O(events²)` simulations in the worst case — plans are ≤ 3 events in
/// the sweep, so this is cheap.
///
/// A combo that does not fail is returned unchanged.
pub fn shrink(combo: &Combo) -> Combo {
    let mut best = combo.clone();
    if run_combo(&best).failures.is_empty() {
        return best;
    }
    loop {
        let mut improved = false;
        for i in 0..best.plan.events.len() {
            let mut cand = best.clone();
            cand.plan.events.remove(i);
            if !run_combo(&cand).failures.is_empty() {
                best = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}
