//! CPU affinity masks, the simulator's analogue of the kernel `cpumask`.

use crate::topology::CpuId;

/// Maximum number of CPUs a [`CpuSet`] can describe. The largest machine in
/// the paper's evaluation (AMD Rome) has 256 logical CPUs; headroom up
/// to 1024 covers the scale sweeps (`ghost-lab bench-sim`) that push the
/// simulator beyond the paper's hardware.
pub const MAX_CPUS: usize = 1024;
const WORDS: usize = MAX_CPUS / 64;

/// A fixed-size bitmask over CPU ids.
///
/// # Examples
///
/// ```
/// use ghost_sim::cpuset::CpuSet;
/// use ghost_sim::topology::CpuId;
///
/// let mut s = CpuSet::empty();
/// s.add(CpuId(3));
/// s.add(CpuId(200));
/// assert!(s.contains(CpuId(3)));
/// assert!(!s.contains(CpuId(4)));
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: [u64; WORDS],
}

impl CpuSet {
    /// The empty set.
    pub const fn empty() -> Self {
        Self { words: [0; WORDS] }
    }

    /// A set containing CPUs `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_CPUS`.
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_CPUS, "CpuSet supports at most {MAX_CPUS} CPUs");
        let mut s = Self::empty();
        for i in 0..n {
            s.add(CpuId(i as u16));
        }
        s
    }

    /// Adds a CPU to the set, total over all of `u16`: an id beyond
    /// [`MAX_CPUS`] cannot be represented and is silently not inserted.
    /// Agent-supplied masks reach this (e.g. enclave creation), so a
    /// forged id must not panic; the resulting set then fails enclave
    /// validation with a typed error (`EmptyCpuSet` / `InvalidCpu`)
    /// because the forged CPU was never a member.
    pub fn add(&mut self, cpu: CpuId) {
        let i = cpu.0 as usize;
        if i < MAX_CPUS {
            self.words[i / 64] |= 1 << (i % 64);
        }
    }

    /// Removes a CPU from the set. A CPU id beyond [`MAX_CPUS`] was never
    /// a member; removing it is a no-op.
    pub fn remove(&mut self, cpu: CpuId) {
        let i = cpu.0 as usize;
        if i < MAX_CPUS {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Membership test, total over all of `u16`: ids beyond [`MAX_CPUS`]
    /// are simply not members. Agent-supplied CPU ids reach this, so an
    /// out-of-range id must reject, not panic.
    pub fn contains(&self, cpu: CpuId) -> bool {
        let i = cpu.0 as usize;
        i < MAX_CPUS && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of CPUs in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set intersection.
    pub fn and(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
        out
    }

    /// Set union.
    pub fn or(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// Set difference (`self` minus `other`).
    pub fn minus(&self, other: &CpuSet) -> CpuSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// Iterates over member CPU ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(CpuId((wi * 64 + b as usize) as u16))
                }
            })
        })
    }

    /// Smallest CPU id in the set, if any.
    pub fn first(&self) -> Option<CpuId> {
        self.iter().next()
    }
}

impl std::fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CpuSet{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.0)?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CpuId> for CpuSet {
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> Self {
        let mut s = Self::empty();
        for c in iter {
            s.add(c);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CpuId {
        CpuId(i)
    }

    #[test]
    fn add_remove_contains() {
        let mut s = CpuSet::empty();
        assert!(s.is_empty());
        s.add(c(0));
        s.add(c(63));
        s.add(c(64));
        s.add(c(255));
        assert_eq!(s.count(), 4);
        assert!(s.contains(c(63)));
        assert!(s.contains(c(64)));
        s.remove(c(63));
        assert!(!s.contains(c(63)));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn out_of_range_ids_are_total() {
        let mut s = CpuSet::from_iter([c(7)]);
        // A forged CPU id (e.g. from a byzantine agent) must never panic
        // the mask: it is simply not a member, insertion cannot represent
        // it, and removal is a no-op.
        assert!(!s.contains(c(2000)));
        assert!(!s.contains(c(u16::MAX)));
        s.add(c(2000));
        s.add(c(u16::MAX));
        assert!(!s.contains(c(2000)));
        s.remove(c(2000));
        assert_eq!(s.count(), 1);
        assert!(CpuSet::from_iter([c(1500)]).is_empty());
    }

    #[test]
    fn first_n_covers_prefix() {
        let s = CpuSet::first_n(10);
        assert_eq!(s.count(), 10);
        assert!(s.contains(c(9)));
        assert!(!s.contains(c(10)));
        assert_eq!(s.first(), Some(c(0)));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn first_n_too_large_panics() {
        let _ = CpuSet::first_n(1025);
    }

    #[test]
    fn set_algebra() {
        let a = CpuSet::from_iter([c(1), c(2), c(3)]);
        let b = CpuSet::from_iter([c(2), c(3), c(4)]);
        assert_eq!(a.and(&b).count(), 2);
        assert_eq!(a.or(&b).count(), 4);
        assert_eq!(a.minus(&b).count(), 1);
        assert!(a.minus(&b).contains(c(1)));
    }

    #[test]
    fn iter_is_ordered() {
        let s = CpuSet::from_iter([c(200), c(5), c(77)]);
        let v: Vec<u16> = s.iter().map(|c| c.0).collect();
        assert_eq!(v, vec![5, 77, 200]);
    }

    #[test]
    fn empty_set_iter_and_first() {
        let s = CpuSet::empty();
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.first(), None);
    }
}
