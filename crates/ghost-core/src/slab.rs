//! Dense, index-addressed storage for the runtime hot path.
//!
//! The post/activate/commit/PNT paths used to hash `Tid`s and `CpuId`s
//! into `HashMap`s on every message and transaction. Both id spaces are
//! small and dense — the kernels allocate `Tid`s sequentially and CPU
//! ids are bounded by the topology — so every map on the hot path is
//! replaced by one of three flat structures:
//!
//! * [`TidSlab`] — slab storage with `u32` index handles and a free
//!   list, plus a direct-mapped `tid -> handle` lookup vector. Handles
//!   are recycled on remove; the lookup vector guarantees a recycled
//!   handle can never alias a stale `Tid` (the old tid's lookup entry is
//!   cleared before the handle returns to the free list, and every slot
//!   stores its owning tid for cross-checking).
//! * [`TidMap`] — a direct-mapped `tid -> T` vector for sparse
//!   per-thread attributes (enclave membership, hints, strike counts).
//! * [`CpuMap`] — a direct-mapped `cpu -> T` vector; iteration is in
//!   `CpuId` order, which is deterministic by construction (no
//!   sort-before-iterate needed, unlike the `HashMap`s it replaces).
//!
//! Forged ids from byzantine agents stay safe: lookups are bounds-checked
//! (an out-of-range id simply misses, as it did with `HashMap`), and the
//! runtime validates ids against the backend before any insert, so a
//! hostile agent cannot force the lookup vectors to balloon.

use ghost_sim::thread::Tid;
use ghost_sim::topology::CpuId;

/// Sentinel in the `TidSlab` lookup vector: no handle.
const NONE: u32 = u32::MAX;

/// Slab storage keyed by [`Tid`]: `u32` index handles, `Vec`-backed
/// slots, and a free list for recycling.
///
/// # Examples
///
/// ```
/// use ghost_core::slab::TidSlab;
/// use ghost_sim::thread::Tid;
///
/// let mut slab: TidSlab<&'static str> = TidSlab::new();
/// slab.insert(Tid(7), "a");
/// assert_eq!(slab.get(Tid(7)), Some(&"a"));
/// assert_eq!(slab.remove(Tid(7)), Some("a"));
/// // The recycled handle cannot alias the dead tid.
/// slab.insert(Tid(9), "b");
/// assert_eq!(slab.get(Tid(7)), None);
/// ```
#[derive(Debug, Clone)]
pub struct TidSlab<T> {
    /// `tid.index() -> handle`, `NONE` when absent.
    lookup: Vec<u32>,
    /// Dense slot storage; `None` slots are on the free list.
    slots: Vec<Option<(Tid, T)>>,
    /// Recycled handles, popped LIFO on insert.
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for TidSlab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TidSlab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Self {
            lookup: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot handle for `tid`, if present. Exposed so tests can
    /// observe free-list recycling.
    pub fn handle_of(&self, tid: Tid) -> Option<u32> {
        match self.lookup.get(tid.index()) {
            Some(&h) if h != NONE => Some(h),
            _ => None,
        }
    }

    /// True if `tid` has an entry. Total over all of `u32` (forged ids
    /// miss without allocating).
    pub fn contains(&self, tid: Tid) -> bool {
        self.handle_of(tid).is_some()
    }

    /// Shared access by tid.
    #[inline]
    pub fn get(&self, tid: Tid) -> Option<&T> {
        let h = self.handle_of(tid)?;
        self.slots[h as usize].as_ref().map(|(_, v)| v)
    }

    /// Mutable access by tid.
    #[inline]
    pub fn get_mut(&mut self, tid: Tid) -> Option<&mut T> {
        let h = self.handle_of(tid)?;
        self.slots[h as usize].as_mut().map(|(_, v)| v)
    }

    /// Inserts (or replaces) the entry for `tid`, returning the previous
    /// value. Replacement keeps the existing handle.
    pub fn insert(&mut self, tid: Tid, value: T) -> Option<T> {
        if let Some(h) = self.handle_of(tid) {
            let slot = self.slots[h as usize].as_mut().expect("live handle");
            return Some(std::mem::replace(&mut slot.1, value));
        }
        let h = match self.free.pop() {
            Some(h) => {
                debug_assert!(self.slots[h as usize].is_none());
                self.slots[h as usize] = Some((tid, value));
                h
            }
            None => {
                self.slots.push(Some((tid, value)));
                (self.slots.len() - 1) as u32
            }
        };
        if self.lookup.len() <= tid.index() {
            self.lookup.resize(tid.index() + 1, NONE);
        }
        self.lookup[tid.index()] = h;
        self.len += 1;
        None
    }

    /// Removes the entry for `tid`, recycling its handle.
    pub fn remove(&mut self, tid: Tid) -> Option<T> {
        let h = self.handle_of(tid)?;
        // Clear the lookup entry *before* freeing the handle so a future
        // reuse of the slot can never be reached through the dead tid.
        self.lookup[tid.index()] = NONE;
        let (slot_tid, value) = self.slots[h as usize].take().expect("live handle");
        debug_assert_eq!(slot_tid, tid, "slot/lookup aliasing");
        self.free.push(h);
        self.len -= 1;
        Some(value)
    }

    /// Removes every entry (handles are recycled wholesale).
    pub fn clear(&mut self) {
        self.lookup.clear();
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }

    /// Iterates `(tid, &value)` in slot-handle order. NOT tid order:
    /// callers that need a deterministic tid order must sort (use
    /// [`TidSlab::sorted_tids`]).
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &T)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(t, v)| (*t, v)))
    }

    /// Live tids in slot-handle order (see [`TidSlab::iter`]).
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.iter().map(|(t, _)| t)
    }

    /// Live values in slot-handle order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Live tids, ascending — the deterministic iteration order every
    /// digest-affecting walk uses.
    pub fn sorted_tids(&self) -> Vec<Tid> {
        let mut v: Vec<Tid> = self.tids().collect();
        v.sort_by_key(|t| t.0);
        v
    }
}

/// Direct-mapped per-thread attribute: `tid.index()` indexes a `Vec`.
/// For sparse, kernel-validated id spaces only (the vector grows to the
/// largest inserted tid).
#[derive(Debug, Clone)]
pub struct TidMap<T> {
    v: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for TidMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TidMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            v: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `tid` has a value (bounds-checked; forged ids miss).
    pub fn contains(&self, tid: Tid) -> bool {
        self.get(tid).is_some()
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, tid: Tid) -> Option<&T> {
        self.v.get(tid.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, tid: Tid) -> Option<&mut T> {
        self.v.get_mut(tid.index()).and_then(|s| s.as_mut())
    }

    /// Inserts, returning the previous value.
    pub fn insert(&mut self, tid: Tid, value: T) -> Option<T> {
        if self.v.len() <= tid.index() {
            self.v.resize_with(tid.index() + 1, || None);
        }
        let old = self.v[tid.index()].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value.
    pub fn remove(&mut self, tid: Tid) -> Option<T> {
        let old = self.v.get_mut(tid.index()).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Returns the value for `tid`, inserting `default` first if absent.
    pub fn or_insert(&mut self, tid: Tid, default: T) -> &mut T {
        if !self.contains(tid) {
            self.insert(tid, default);
        }
        self.get_mut(tid).expect("just inserted")
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.v.clear();
        self.len = 0;
    }

    /// Iterates `(tid, &value)` in ascending `Tid` order — deterministic
    /// by construction, unlike the `HashMap`s this type replaces.
    pub fn iter(&self) -> impl Iterator<Item = (Tid, &T)> {
        self.v
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (Tid(i as u32), v)))
    }

    /// Live tids in ascending order.
    pub fn tids(&self) -> impl Iterator<Item = Tid> + '_ {
        self.iter().map(|(t, _)| t)
    }
}

/// Direct-mapped per-CPU state: `cpu.index()` indexes a `Vec` bounded by
/// the topology size. Iteration is in `CpuId` order — deterministic by
/// construction.
#[derive(Debug, Clone)]
pub struct CpuMap<T> {
    v: Vec<Option<T>>,
    len: usize,
}

impl<T> Default for CpuMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CpuMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self {
            v: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if `cpu` has a value.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.get(cpu).is_some()
    }

    /// Shared access.
    #[inline]
    pub fn get(&self, cpu: CpuId) -> Option<&T> {
        self.v.get(cpu.index()).and_then(|s| s.as_ref())
    }

    /// Mutable access.
    #[inline]
    pub fn get_mut(&mut self, cpu: CpuId) -> Option<&mut T> {
        self.v.get_mut(cpu.index()).and_then(|s| s.as_mut())
    }

    /// Inserts, returning the previous value.
    pub fn insert(&mut self, cpu: CpuId, value: T) -> Option<T> {
        if self.v.len() <= cpu.index() {
            self.v.resize_with(cpu.index() + 1, || None);
        }
        let old = self.v[cpu.index()].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns the value for `cpu`, inserting `default` first if absent.
    pub fn or_insert(&mut self, cpu: CpuId, default: T) -> &mut T {
        if !self.contains(cpu) {
            self.insert(cpu, default);
        }
        self.get_mut(cpu).expect("just inserted")
    }

    /// Removes and returns the value.
    pub fn remove(&mut self, cpu: CpuId) -> Option<T> {
        let old = self.v.get_mut(cpu.index()).and_then(|s| s.take());
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.v.clear();
        self.len = 0;
    }

    /// Keeps only entries for which `keep` returns true. Visits in
    /// `CpuId` order; skipped entirely when the map is empty.
    pub fn retain(&mut self, mut keep: impl FnMut(CpuId, &mut T) -> bool) {
        if self.len == 0 {
            return;
        }
        for (i, slot) in self.v.iter_mut().enumerate() {
            if let Some(v) = slot {
                if !keep(CpuId(i as u16), v) {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
    }

    /// Iterates `(cpu, &value)` in `CpuId` order.
    pub fn iter(&self) -> impl Iterator<Item = (CpuId, &T)> {
        self.v
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (CpuId(i as u16), v)))
    }

    /// Live values in `CpuId` order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.iter().map(|(_, v)| v)
    }

    /// Live CPU ids in ascending order.
    pub fn cpus(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.iter().map(|(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_get_remove() {
        let mut s: TidSlab<u64> = TidSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(Tid(3), 30), None);
        assert_eq!(s.insert(Tid(1), 10), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(Tid(3)), Some(&30));
        assert_eq!(s.insert(Tid(3), 33), Some(30));
        assert_eq!(s.len(), 2);
        *s.get_mut(Tid(1)).unwrap() += 1;
        assert_eq!(s.remove(Tid(1)), Some(11));
        assert_eq!(s.remove(Tid(1)), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slab_recycles_handles_without_aliasing() {
        let mut s: TidSlab<u32> = TidSlab::new();
        s.insert(Tid(10), 1);
        let h10 = s.handle_of(Tid(10)).unwrap();
        s.remove(Tid(10));
        // The next insert reuses the freed handle...
        s.insert(Tid(20), 2);
        assert_eq!(s.handle_of(Tid(20)), Some(h10));
        // ...but the dead tid cannot reach the recycled slot.
        assert_eq!(s.get(Tid(10)), None);
        assert!(!s.contains(Tid(10)));
        assert_eq!(s.get(Tid(20)), Some(&2));
    }

    #[test]
    fn slab_iteration_and_sorted_tids() {
        let mut s: TidSlab<u32> = TidSlab::new();
        for t in [5u32, 1, 9, 3] {
            s.insert(Tid(t), t * 10);
        }
        s.remove(Tid(1));
        s.insert(Tid(7), 70); // reuses tid 1's handle: handle order != tid order
        let sorted: Vec<u32> = s.sorted_tids().iter().map(|t| t.0).collect();
        assert_eq!(sorted, vec![3, 5, 7, 9]);
        assert_eq!(s.values().count(), 4);
        let set: std::collections::BTreeSet<u32> = s.tids().map(|t| t.0).collect();
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![3, 5, 7, 9]);
    }

    #[test]
    fn slab_forged_tids_miss_without_allocating() {
        let mut s: TidSlab<u32> = TidSlab::new();
        s.insert(Tid(2), 20);
        assert_eq!(s.get(Tid(u32::MAX)), None);
        assert!(!s.contains(Tid(u32::MAX)));
        assert_eq!(s.remove(Tid(u32::MAX)), None);
        // The lookup vector only ever grew to cover tid 2.
        assert!(s.lookup.len() <= 3);
    }

    #[test]
    fn tidmap_basics() {
        let mut m: TidMap<u64> = TidMap::new();
        assert_eq!(m.insert(Tid(4), 40), None);
        assert_eq!(m.insert(Tid(4), 44), Some(40));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(Tid(4)), Some(&44));
        assert!(!m.contains(Tid(5)));
        assert_eq!(m.remove(Tid(4)), Some(44));
        assert!(m.is_empty());
        assert_eq!(m.get(Tid(u32::MAX)), None);
    }

    #[test]
    fn cpumap_iterates_in_cpu_order_and_retains() {
        let mut m: CpuMap<u32> = CpuMap::new();
        m.insert(CpuId(9), 90);
        m.insert(CpuId(2), 20);
        m.insert(CpuId(5), 50);
        let order: Vec<u16> = m.cpus().map(|c| c.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
        m.retain(|_, &mut v| v != 50);
        assert_eq!(m.len(), 2);
        assert!(!m.contains(CpuId(5)));
        assert_eq!(*m.or_insert(CpuId(5), 55), 55);
        assert_eq!(*m.or_insert(CpuId(5), 99), 55);
    }
}
