//! Secure VM core scheduling (§4.5): protect VMs from cross-hyperthread
//! L1TF/MDS attacks by ensuring "every physical core only runs virtual
//! CPUs (vCPUs) from the same VM".
//!
//! The enclave runs in per-core mode (one queue and one active agent per
//! physical core, Fig. 9). Each activation schedules *both* siblings of
//! its core with an atomic group commit — "issuing commits for both CPUs
//! of a core which must either all succeed or all fail" — so the
//! same-VM-per-core invariant can never be violated by a half-applied
//! decision.
//!
//! VM selection is a partitioned EDF-like scheme: every VM is guaranteed
//! a quantum per period (bounding tail latency); spare capacity goes to
//! whichever runnable VM has the earliest deadline (improving average
//! latency). Runqueues prefer NUMA-local vCPUs but spill across nodes
//! under load, matching the paper's description.

use crate::tracker::ThreadTracker;
use ghost_core::msg::Message;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::txn::Transaction;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::topology::CpuId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Core-scheduling tunables.
#[derive(Debug, Clone)]
pub struct CoreSchedConfig {
    /// Guaranteed slice per VM per period.
    pub quantum: Nanos,
    /// EDF period.
    pub period: Nanos,
}

impl Default for CoreSchedConfig {
    fn default() -> Self {
        Self {
            quantum: 3 * MILLIS,
            period: 12 * MILLIS,
        }
    }
}

/// Per-VM scheduling state.
#[derive(Debug, Default)]
struct VmState {
    /// Runnable vCPU threads of this VM.
    rq: VecDeque<Tid>,
    /// EDF deadline: earlier = more starved.
    deadline: Nanos,
}

/// The secure VM core-scheduling policy.
pub struct CoreSchedPolicy {
    /// Tunables.
    pub config: CoreSchedConfig,
    tracker: ThreadTracker,
    vms: HashMap<u64, VmState>,
    queued: HashSet<Tid>,
    cookie_of: HashMap<Tid, u64>,
    /// Which VM each core is currently dedicated to, and since when.
    core_vm: HashMap<CpuId, (u64, Nanos)>,
    /// Atomic group commits issued.
    pub group_commits: u64,
    /// Commits.
    pub commits: u64,
    /// Failed commits.
    pub failures: u64,
}

impl CoreSchedPolicy {
    /// Creates the policy.
    pub fn new(config: CoreSchedConfig) -> Self {
        Self {
            config,
            tracker: ThreadTracker::new(),
            vms: HashMap::new(),
            queued: HashSet::new(),
            cookie_of: HashMap::new(),
            core_vm: HashMap::new(),
            group_commits: 0,
            commits: 0,
            failures: 0,
        }
    }

    fn enqueue(&mut self, tid: Tid, cookie: u64, now: Nanos, period: Nanos) {
        if self.queued.insert(tid) {
            let vm = self.vms.entry(cookie).or_insert_with(|| VmState {
                rq: VecDeque::new(),
                deadline: now + period,
            });
            vm.rq.push_back(tid);
        }
    }

    fn dequeue(&mut self, tid: Tid) {
        if self.queued.remove(&tid) {
            for vm in self.vms.values_mut() {
                vm.rq.retain(|&t| t != tid);
            }
        }
    }

    /// The runnable VM with the earliest deadline, preferring VMs with a
    /// NUMA-local thread for `core_cpu`.
    fn pick_vm(&self, ctx: &PolicyCtx<'_>, core_cpu: CpuId) -> Option<u64> {
        let socket = ctx.topo().info(core_cpu).socket;
        self.vms
            .iter()
            .filter(|(_, vm)| !vm.rq.is_empty())
            .min_by_key(|(&cookie, vm)| {
                let local = vm.rq.iter().any(|&t| {
                    self.tracker
                        .get(t)
                        .is_some_and(|v| ctx.topo().info(v.last_cpu).socket == socket)
                });
                // Cookie tiebreak: ties must not be settled by the VM
                // map's iteration order, or replays diverge.
                (vm.deadline, !local, cookie)
            })
            .map(|(&cookie, _)| cookie)
    }

    /// Pops up to `n` runnable threads of VM `cookie`, NUMA-local first.
    fn take_threads(
        &mut self,
        cookie: u64,
        n: usize,
        ctx: &PolicyCtx<'_>,
        near: CpuId,
    ) -> Vec<Tid> {
        let socket = ctx.topo().info(near).socket;
        let Some(vm) = self.vms.get_mut(&cookie) else {
            return Vec::new();
        };
        let mut picked = Vec::new();
        // Two passes: NUMA-local threads first, then any.
        for local_pass in [true, false] {
            let mut i = 0;
            while i < vm.rq.len() && picked.len() < n {
                let tid = vm.rq[i];
                let local = self
                    .tracker
                    .get(tid)
                    .is_some_and(|v| ctx.topo().info(v.last_cpu).socket == socket);
                if local == local_pass {
                    vm.rq.remove(i);
                    picked.push(tid);
                } else {
                    i += 1;
                }
            }
        }
        for &t in &picked {
            self.queued.remove(&t);
        }
        picked
    }

    /// Number of enclave cores with no ghOSt thread running or pending —
    /// capacity that spreading should use before SMT-pairing (CFS and the
    /// in-kernel core scheduler both prefer idle cores; pairing when
    /// cores are spare costs the 0.65x SMT rate for nothing).
    fn spare_cores(&self, ctx: &PolicyCtx<'_>) -> usize {
        let mut seen: Vec<CpuId> = Vec::new();
        let mut spare = 0;
        for c in ctx.enclave_cpus().iter() {
            let core = ctx.topo().core_cpus(c);
            let key = core.first().expect("core has a CPU");
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let free = core.iter().all(|cc| {
                !ctx.commit_pending(cc)
                    && ctx.running_ghost(cc).is_none()
                    && (ctx.agent_on_cpu(cc)
                        || ctx.idle_cpus().contains(cc)
                        || cc == ctx.local_cpu())
            });
            if free {
                spare += 1;
            }
        }
        spare
    }

    /// True when demand exceeds the spread capacity, so filling SMT
    /// siblings is worth the 0.65x rate.
    fn should_pair(&self, ctx: &PolicyCtx<'_>) -> bool {
        let waiting: usize = self.vms.values().map(|v| v.rq.len()).sum();
        waiting > self.spare_cores(ctx)
    }

    fn requeue(&mut self, tid: Tid, ctx: &mut PolicyCtx<'_>) {
        let cookie = self.cookie_of.get(&tid).copied().unwrap_or(0);
        let now = ctx.now();
        let period = self.config.period;
        self.enqueue(tid, cookie, now, period);
    }

    /// Schedules the activation core: both sibling CPUs of
    /// `ctx.local_cpu()`, and nothing else (per-core model).
    fn schedule_core(&mut self, ctx: &mut PolicyCtx<'_>) {
        if std::env::var_os("GHOST_CS_DEBUG").is_some() {
            let waiting: usize = self.vms.values().map(|v| v.rq.len()).sum();
            if waiting > 0 {
                eprintln!(
                    "CSDBG t={} agent_cpu={} waiting={} idle={:?} queued={}",
                    ctx.now(),
                    ctx.local_cpu(),
                    waiting,
                    ctx.idle_cpus(),
                    self.queued.len(),
                );
            }
        }
        let now = ctx.now();
        let core = ctx.topo().core_cpus(ctx.local_cpu());
        let cpus: Vec<CpuId> = core.iter().collect();
        let key = cpus[0];
        // What VM has the core claimed right now? Both running threads
        // AND pending (committed, not yet picked) transactions count — a
        // pending sibling commit already dedicates the core.
        let running: Vec<(CpuId, Tid)> = cpus
            .iter()
            .filter_map(|&c| {
                ctx.running_ghost(c)
                    .or_else(|| ctx.pending_commit_tid(c))
                    .map(|t| (c, t))
            })
            .collect();
        let current_vm = running
            .first()
            .and_then(|(_, t)| self.cookie_of.get(t).copied());
        // A core CPU accepts a commit when it has no pending slot and no
        // ghOSt thread: truly idle, the agent's own CPU (local commit),
        // or a CPU an agent occupies transiently.
        let idle: Vec<CpuId> = cpus
            .iter()
            .copied()
            .filter(|&c| {
                !ctx.commit_pending(c)
                    && ctx.running_ghost(c).is_none()
                    && (c == ctx.local_cpu() || ctx.agent_on_cpu(c) || ctx.idle_cpus().contains(c))
            })
            .collect();
        match current_vm {
            Some(vm) => {
                // Fill the idle sibling with another vCPU of the SAME VM
                // only — never mix cookies on a core.
                let quantum_expired = self.core_vm.get(&key).is_some_and(|&(v, since)| {
                    v == vm && now.saturating_sub(since) >= self.config.quantum
                });
                let other_waiting = self.vms.iter().any(|(&c, s)| c != vm && !s.rq.is_empty());
                if quantum_expired && other_waiting {
                    // Rotate the whole core to the next VM atomically.
                    if let Some(next_vm) = self.pick_vm(ctx, key) {
                        if next_vm != vm {
                            self.rotate_core(ctx, &cpus, next_vm);
                            return;
                        }
                    }
                }
                if self.should_pair(ctx) {
                    for &c in &idle {
                        let Some(tid) = self.take_threads(vm, 1, ctx, key).pop() else {
                            break;
                        };
                        let mut txn =
                            Transaction::new(tid, c).with_thread_seq(self.tracker.seq(tid));
                        if ctx.commit_one(&mut txn).committed() {
                            self.commits += 1;
                            self.tracker.mark_scheduled(tid);
                        } else {
                            self.failures += 1;
                            self.requeue(tid, ctx);
                        }
                    }
                }
            }
            None => {
                // Core fully idle (as far as ghOSt is concerned): pick
                // the earliest-deadline VM and dedicate the core to it.
                if idle.is_empty() {
                    return; // CFS or another class owns the core.
                }
                let Some(vm) = self.pick_vm(ctx, key) else {
                    return;
                };
                let want = if self.should_pair(ctx) { idle.len() } else { 1 };
                let threads = self.take_threads(vm, want, ctx, key);
                if threads.is_empty() {
                    return;
                }
                self.core_vm.insert(key, (vm, now));
                if let Some(s) = self.vms.get_mut(&vm) {
                    s.deadline = now + self.config.period;
                }
                let mut txns: Vec<Transaction> = threads
                    .iter()
                    .zip(idle.iter())
                    .map(|(&t, &c)| Transaction::new(t, c).with_thread_seq(self.tracker.seq(t)))
                    .collect();
                if txns.len() > 1 {
                    self.group_commits += 1;
                    ctx.commit_atomic(&mut txns);
                } else {
                    ctx.commit(&mut txns);
                }
                for txn in &txns {
                    if txn.status.committed() {
                        self.commits += 1;
                        self.tracker.mark_scheduled(txn.tid);
                    } else {
                        self.failures += 1;
                        self.requeue(txn.tid, ctx);
                    }
                }
            }
        }
    }

    /// Preempts both siblings and installs vCPUs of `next_vm` atomically.
    fn rotate_core(&mut self, ctx: &mut PolicyCtx<'_>, cpus: &[CpuId], next_vm: u64) {
        let now = ctx.now();
        let key = cpus[0];
        let avail: Vec<CpuId> = cpus
            .iter()
            .copied()
            .filter(|&c| !ctx.commit_pending(c))
            .collect();
        // Every sibling currently running the old VM must be replaced in
        // the same atomic group — a partial rotation would mix VMs on the
        // core. If the next VM cannot man all of them, skip this round
        // (it gets the core at the next natural idle point).
        let must_replace = cpus
            .iter()
            .filter(|&&c| ctx.running_ghost(c).is_some())
            .count();
        let threads = self.take_threads(next_vm, avail.len(), ctx, key);
        if threads.is_empty() || threads.len() < must_replace {
            for t in threads {
                self.requeue(t, ctx);
            }
            return;
        }
        let mut txns: Vec<Transaction> = threads
            .iter()
            .zip(avail.iter())
            .map(|(&t, &c)| Transaction::new(t, c).with_thread_seq(self.tracker.seq(t)))
            .collect();
        if txns.len() > 1 {
            self.group_commits += 1;
            ctx.commit_atomic(&mut txns);
        } else {
            ctx.commit(&mut txns);
        }
        let mut any = false;
        for txn in &txns {
            if txn.status.committed() {
                self.commits += 1;
                any = true;
                self.tracker.mark_scheduled(txn.tid);
            } else {
                self.failures += 1;
                self.requeue(txn.tid, ctx);
            }
        }
        if any {
            self.core_vm.insert(key, (next_vm, now));
            if let Some(s) = self.vms.get_mut(&next_vm) {
                s.deadline = now + self.config.period;
            }
        }
    }
}

impl GhostPolicy for CoreSchedPolicy {
    fn name(&self) -> &str {
        "secure-vm-core-sched"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        let Some(view) = self.tracker.apply(msg) else {
            return;
        };
        let cookie = match self.cookie_of.get(&msg.tid) {
            Some(&c) => c,
            None => {
                let c = ctx.thread_view(msg.tid).map(|v| v.cookie).unwrap_or(0);
                self.cookie_of.insert(msg.tid, c);
                c
            }
        };
        if view.dead {
            self.dequeue(msg.tid);
            self.cookie_of.remove(&msg.tid);
        } else if view.runnable {
            let now = ctx.now();
            let period = self.config.period;
            self.enqueue(msg.tid, cookie, now, period);
        } else {
            self.dequeue(msg.tid);
        }
    }

    fn on_reconstruct(&mut self, snapshot: &[ghost_core::ThreadSnapshot], ctx: &mut PolicyCtx<'_>) {
        self.tracker.resync(
            snapshot
                .iter()
                .map(|s| (s.tid, s.seq, s.runnable, s.last_cpu)),
        );
        self.vms.clear();
        self.queued.clear();
        self.cookie_of.clear();
        self.core_vm.clear();
        // VM membership is the cookie, so the scan rebuilds the runqueues
        // and deadlines completely; every VM restarts its period at `now`.
        let now = ctx.now();
        let period = self.config.period;
        for s in snapshot {
            self.cookie_of.insert(s.tid, s.cookie);
            if s.runnable && !s.on_cpu {
                self.enqueue(s.tid, s.cookie, now, period);
            }
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        self.schedule_core(ctx);
        // Work remains but this core cannot take it: hand it to peer
        // cores by waking their agents (shared runqueues, §4.5). Eligible
        // peers have spare capacity AND a compatible claim: fully idle,
        // or already dedicated to a VM that has waiting threads.
        if !self.vms.values().any(|v| !v.rq.is_empty()) {
            return;
        }
        let local_core = ctx.topo().core_cpus(ctx.local_cpu());
        let mut pinged = 0;
        let mut seen_cores: Vec<CpuId> = Vec::new();
        for c in ctx.enclave_cpus().iter() {
            if pinged >= 4 {
                break;
            }
            let core = ctx.topo().core_cpus(c);
            let key = core.first().expect("core has a CPU");
            if local_core.contains(c) || seen_cores.contains(&key) {
                continue;
            }
            seen_cores.push(key);
            let spare = core.iter().any(|cc| {
                !ctx.commit_pending(cc)
                    && ctx.running_ghost(cc).is_none()
                    && (ctx.agent_on_cpu(cc) || ctx.idle_cpus().contains(cc))
            });
            if !spare {
                continue;
            }
            let claimed = core.iter().find_map(|cc| {
                ctx.running_ghost(cc)
                    .or_else(|| ctx.pending_commit_tid(cc))
                    .and_then(|t| self.cookie_of.get(&t).copied())
            });
            let compatible = match claimed {
                None => true,
                Some(vm) => self.vms.get(&vm).is_some_and(|s| !s.rq.is_empty()),
            };
            if compatible {
                ctx.charge(120);
                ctx.ping_core_agent(c);
                pinged += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vms_queue_separately() {
        let mut p = CoreSchedPolicy::new(CoreSchedConfig::default());
        p.enqueue(Tid(1), 100, 0, p.config.period);
        p.enqueue(Tid(2), 200, 0, p.config.period);
        p.enqueue(Tid(3), 100, 0, p.config.period);
        assert_eq!(p.vms[&100].rq.len(), 2);
        assert_eq!(p.vms[&200].rq.len(), 1);
        p.dequeue(Tid(1));
        assert_eq!(p.vms[&100].rq.len(), 1);
    }

    #[test]
    fn default_config_bounds_quantum_by_period() {
        let c = CoreSchedConfig::default();
        assert!(c.quantum < c.period);
    }
}
