//! The §4.3 Snap packet-processing workload: "six client threads,
//! sending 10k messages/second to six server threads on the other
//! machine and receiving a symmetrically sized reply. ... One client
//! thread sends 64-byte messages ... Each of the other five client
//! threads sends 64kB messages."
//!
//! We model the server machine's scheduling problem: per-stream polling
//! *worker* threads (Snap engines) process arriving messages — 64 B
//! messages need little compute, 64 kB messages pay for copying — then
//! hand replies to per-stream *server* threads running under CFS (which
//! is what preempts ghOSt workers in quiet mode). Round-trip latency is
//! wire time plus every scheduling and processing delay on the server.

use ghost_metrics::LogHistogram;
use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Snap workload configuration.
#[derive(Debug, Clone)]
pub struct SnapConfig {
    /// Message streams (paper: 6 — one 64 B, five 64 kB).
    pub streams: usize,
    /// Messages per second per stream.
    pub rate_per_stream: f64,
    /// Worker processing time for a 64 B message.
    pub proc_64b: Nanos,
    /// Worker processing time for a 64 kB message (data copying).
    pub proc_64kb: Nanos,
    /// Server-thread (CFS) reply handling time.
    pub server_time: Nanos,
    /// Fixed wire + NIC time added to every recorded RTT.
    pub wire_time: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Messages arriving before this are not recorded.
    pub warmup: Nanos,
    /// Mean interval between traffic bursts per stream (`None` disables
    /// bursts). "As bursts of networking load arrive, Snap may wake up
    /// ... additional worker threads" — bursts are what push a worker
    /// past its MicroQuanta quanta into a blackout.
    pub burst_every: Option<Nanos>,
    /// Messages per burst.
    pub burst_len: usize,
}

impl Default for SnapConfig {
    fn default() -> Self {
        Self {
            streams: 6,
            rate_per_stream: 10_000.0,
            proc_64b: MICROS,
            proc_64kb: 15 * MICROS,
            server_time: 3 * MICROS,
            wire_time: 20 * MICROS,
            seed: 1,
            warmup: 100_000_000,
            burst_every: Some(40 * 1_000_000),
            burst_len: 170,
        }
    }
}

/// Per-size RTT results.
#[derive(Debug)]
pub struct SnapResults {
    /// RTTs of 64 B messages (stream 0).
    pub rtt_64b: LogHistogram,
    /// RTTs of 64 kB messages (streams 1+).
    pub rtt_64kb: LogHistogram,
    /// Messages completed.
    pub completed: u64,
}

struct Stream {
    worker: Tid,
    server: Tid,
    /// Pending message arrival timestamps.
    queue: VecDeque<Nanos>,
    /// Message the worker is processing.
    processing: Option<Nanos>,
    /// Replies waiting on the server thread: (arrival of original msg).
    replies: VecDeque<Nanos>,
    is_64b: bool,
}

const BURST_KEY_BASE: u64 = 1_000;

/// The Snap packet-processing app.
pub struct SnapApp {
    cfg: SnapConfig,
    app_id: AppId,
    streams: Vec<Stream>,
    worker_of: HashMap<Tid, usize>,
    server_of: HashMap<Tid, usize>,
    rng: StdRng,
    rtt_64b: LogHistogram,
    rtt_64kb: LogHistogram,
    completed: u64,
}

impl SnapApp {
    /// Creates the app. Workers and servers are registered afterwards
    /// with [`SnapApp::add_stream`].
    pub fn new(cfg: SnapConfig, app_id: AppId) -> Self {
        let seed = cfg.seed;
        Self {
            cfg,
            app_id,
            streams: Vec::new(),
            worker_of: HashMap::new(),
            server_of: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            rtt_64b: LogHistogram::new(),
            rtt_64kb: LogHistogram::new(),
            completed: 0,
        }
    }

    /// Registers stream `i`'s worker (Snap engine, scheduled by the class
    /// under test) and server thread (CFS). Stream 0 carries 64 B
    /// messages; the rest 64 kB.
    pub fn add_stream(&mut self, worker: Tid, server: Tid) {
        let idx = self.streams.len();
        self.worker_of.insert(worker, idx);
        self.server_of.insert(server, idx);
        self.streams.push(Stream {
            worker,
            server,
            queue: VecDeque::new(),
            processing: None,
            replies: VecDeque::new(),
            is_64b: idx == 0,
        });
    }

    /// Arms the first arrival (and burst) timer for every stream.
    pub fn start(&mut self, k: &mut KernelState) {
        for i in 0..self.streams.len() {
            let gap = self.next_gap();
            k.arm_app_timer(k.now + gap, self.app_id, i as u64);
            if self.cfg.burst_every.is_some() {
                let gap = self.next_burst_gap();
                k.arm_app_timer(k.now + gap, self.app_id, BURST_KEY_BASE + i as u64);
            }
        }
    }

    fn next_burst_gap(&mut self) -> Nanos {
        let mean = self.cfg.burst_every.expect("bursts enabled") as f64;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln()) * mean).max(1.0) as Nanos
    }

    fn next_gap(&mut self) -> Nanos {
        let mean = 1e9 / self.cfg.rate_per_stream;
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln()) * mean).max(1.0) as Nanos
    }

    fn proc_time(&self, is_64b: bool) -> Nanos {
        if is_64b {
            self.cfg.proc_64b
        } else {
            self.cfg.proc_64kb
        }
    }

    /// Extracts results.
    pub fn results(&self) -> SnapResults {
        SnapResults {
            rtt_64b: self.rtt_64b.clone(),
            rtt_64kb: self.rtt_64kb.clone(),
            completed: self.completed,
        }
    }

    fn feed_worker(&mut self, idx: usize, k: &mut KernelState) {
        let proc = self.proc_time(self.streams[idx].is_64b);
        let s = &mut self.streams[idx];
        if s.processing.is_some() {
            return;
        }
        let Some(arrival) = s.queue.pop_front() else {
            return;
        };
        s.processing = Some(arrival);
        if k.threads[s.worker.index()].state == ThreadState::Blocked {
            k.thread_mut(s.worker).remaining = proc;
            k.wake(s.worker);
        }
    }
}

impl App for SnapApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "snap"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        if key >= BURST_KEY_BASE {
            // A traffic burst lands on stream `key - BURST_KEY_BASE`.
            let idx = (key - BURST_KEY_BASE) as usize;
            for _ in 0..self.cfg.burst_len {
                self.streams[idx].queue.push_back(k.now);
            }
            self.feed_worker(idx, k);
            let gap = self.next_burst_gap();
            k.arm_app_timer(k.now + gap, self.app_id, key);
            return;
        }
        // Steady message arrival on stream `key`.
        let idx = key as usize;
        self.streams[idx].queue.push_back(k.now);
        self.feed_worker(idx, k);
        let gap = self.next_gap();
        k.arm_app_timer(k.now + gap, self.app_id, key);
    }

    fn on_segment_end(&mut self, tid: Tid, k: &mut KernelState) -> Next {
        if let Some(&idx) = self.worker_of.get(&tid) {
            // Worker finished processing one message → hand to server.
            let proc = self.proc_time(self.streams[idx].is_64b);
            let s = &mut self.streams[idx];
            if let Some(arrival) = s.processing.take() {
                s.replies.push_back(arrival);
                let server = s.server;
                if k.threads[server.index()].state == ThreadState::Blocked {
                    k.thread_mut(server).remaining = self.cfg.server_time;
                    k.wake(server);
                }
            }
            // Keep draining the stream queue without blocking.
            let s = &mut self.streams[idx];
            if let Some(arrival) = s.queue.pop_front() {
                s.processing = Some(arrival);
                return Next::Run { dur: proc };
            }
            return Next::Block;
        }
        if let Some(&idx) = self.server_of.get(&tid) {
            // Server finished a reply → record RTT.
            let warmup = self.cfg.warmup;
            let wire = self.cfg.wire_time;
            let server_time = self.cfg.server_time;
            let s = &mut self.streams[idx];
            if let Some(arrival) = s.replies.pop_front() {
                self.completed += 1;
                if arrival >= warmup {
                    let rtt = k.now - arrival + wire;
                    if s.is_64b {
                        self.rtt_64b.record(rtt);
                    } else {
                        self.rtt_64kb.record(rtt);
                    }
                }
            }
            let s = &mut self.streams[idx];
            if !s.replies.is_empty() {
                return Next::Run { dur: server_time };
            }
            return Next::Block;
        }
        Next::Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_shape() {
        let c = SnapConfig::default();
        assert_eq!(c.streams, 6);
        assert_eq!(c.rate_per_stream, 10_000.0);
        assert!(c.proc_64kb > c.proc_64b);
    }
}

#[cfg(test)]
mod burst_tests {
    use super::*;
    use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
    use ghost_sim::time::SECS;
    use ghost_sim::topology::Topology;

    /// With bursts enabled, message counts exceed the steady rate and the
    /// worker sees queue depths greater than one.
    #[test]
    fn bursts_add_traffic_on_top_of_steady_rate() {
        let run = |burst: bool| -> u64 {
            let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
            let app_id = kernel.state.next_app_id();
            let mut cfg = SnapConfig {
                streams: 1,
                warmup: 0,
                ..SnapConfig::default()
            };
            if !burst {
                cfg.burst_every = None;
            }
            let mut app = SnapApp::new(cfg, app_id);
            let w = kernel.spawn(ThreadSpec::workload("w", &kernel.state.topo).app(app_id));
            let s = kernel.spawn(ThreadSpec::workload("s", &kernel.state.topo).app(app_id));
            app.add_stream(w, s);
            app.start(&mut kernel.state);
            kernel.add_app(Box::new(app));
            kernel.run_until(SECS);
            kernel
                .app_mut(app_id)
                .as_any()
                .downcast_mut::<SnapApp>()
                .expect("snap app")
                .results()
                .completed
        };
        let steady = run(false);
        let bursty = run(true);
        // Steady: ~10k msgs; bursts add ~80 * (1s / 25ms) = ~3.2k more.
        assert!((9_000..11_500).contains(&steady), "steady {steady}");
        assert!(
            bursty > steady + 1_500,
            "bursts should add traffic: {bursty} vs {steady}"
        );
    }
}
