//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the real `rand` cannot be fetched. This crate provides the exact API
//! surface the workspace uses — `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] — backed by xoshiro256++ seeded
//! through SplitMix64. It is deterministic: the same seed always yields the
//! same stream, which the simulator's replay guarantees depend on.
//!
//! The stream does **not** match upstream `rand`'s `StdRng` (ChaCha12);
//! nothing in this workspace depends on the specific stream, only on
//! determinism and reasonable statistical quality.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform u64 source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Converts 64 random bits into a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                if span == 0 {
                    // Full-width u128 wrap can only happen for a range
                    // covering every value of a 128-bit type; unreachable
                    // for the types we implement, but keep modulo safe.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (self.start as f64..self.end as f64).sample_from(rng) as f32
    }
}

/// The user-facing sampling API, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s StdRng).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden state of xoshiro.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.gen_bool(0.25)).count() as f64;
        let frac = hits / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(0u64..=u64::MAX);
    }
}
