//! Runs one `(policy × workload × fault plan × seed)` combo on the
//! simulated kernel and judges it with the oracles.

use crate::oracle::{self, Failure};
use crate::plan::{generate_plan, generate_recovery_plan};
use ghost_core::enclave::EnclaveConfig;
use ghost_core::policy::GhostPolicy;
use ghost_core::runtime::{GhostRuntime, GhostStats};
use ghost_core::StandbyConfig;
use ghost_policies::core_sched::{CoreSchedConfig, CoreSchedPolicy};
use ghost_policies::shinjuku::{ShinjukuConfig, ShinjukuPolicy};
use ghost_policies::snap::SNAP_COOKIE;
use ghost_policies::{CentralizedFifo, PerCpuPolicy, SnapPolicy};
use ghost_sim::app::{App, Next};
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_trace::{TraceRecord, TraceSink};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Watchdog timeout used for every chaos enclave: short enough that
/// recovery from a wedged agent fits inside the run horizon.
pub const WATCHDOG: Nanos = 20 * MILLIS;

/// The five evaluation policies the sweep must keep alive (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The round-robin centralized FIFO of Fig. 5.
    CentralizedFifo,
    /// The per-CPU example policy of §3.2 / Fig. 3.
    PerCpu,
    /// The Shinjuku preemptive microsecond-scale policy, §4.2.
    Shinjuku,
    /// The Google Snap packet-processing policy, §4.3.
    Snap,
    /// Secure VM core scheduling with synchronized siblings, §4.5.
    CoreSched,
}

impl PolicyKind {
    /// All policies, in sweep round-robin order.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::CentralizedFifo,
        PolicyKind::PerCpu,
        PolicyKind::Shinjuku,
        PolicyKind::Snap,
        PolicyKind::CoreSched,
    ];

    /// Stable name used in repro files and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::CentralizedFifo => "centralized-fifo",
            PolicyKind::PerCpu => "per-cpu",
            PolicyKind::Shinjuku => "shinjuku",
            PolicyKind::Snap => "snap",
            PolicyKind::CoreSched => "core-sched",
        }
    }

    /// Inverse of [`PolicyKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// A fresh policy instance (also used for the staged upgrade copy).
    fn build(self) -> Box<dyn GhostPolicy> {
        match self {
            PolicyKind::CentralizedFifo => Box::new(CentralizedFifo::new()),
            PolicyKind::PerCpu => Box::new(PerCpuPolicy::new()),
            PolicyKind::Shinjuku => Box::new(ShinjukuPolicy::new(ShinjukuConfig::default())),
            PolicyKind::Snap => Box::new(SnapPolicy::new()),
            PolicyKind::CoreSched => Box::new(CoreSchedPolicy::new(CoreSchedConfig::default())),
        }
    }

    fn enclave_config(self) -> EnclaveConfig {
        match self {
            PolicyKind::CentralizedFifo => EnclaveConfig::centralized("chaos"),
            PolicyKind::PerCpu => EnclaveConfig::per_cpu("chaos"),
            PolicyKind::Shinjuku => EnclaveConfig::centralized("chaos"),
            PolicyKind::Snap => EnclaveConfig::centralized("chaos"),
            PolicyKind::CoreSched => EnclaveConfig::per_core("chaos").with_ticks(true),
        }
        .with_watchdog(WATCHDOG)
    }

    /// Enclave CPUs on the standard 8-CPU chaos machine. Core scheduling
    /// needs whole physical cores, so it takes the entire machine; every
    /// other policy leaves CPU 0 to CFS.
    fn enclave_cpus(self, topo: &Topology) -> CpuSet {
        match self {
            PolicyKind::CoreSched => topo.all_cpus_set(),
            _ => (1..topo.num_cpus() as u16).map(CpuId).collect(),
        }
    }

    /// Cookie for the `i`-th workload thread: Snap wants its worker
    /// marker, core scheduling wants two VM groups, the rest ignore it.
    fn cookie_for(self, i: usize) -> u64 {
        match self {
            PolicyKind::Snap => SNAP_COOKIE,
            PolicyKind::CoreSched => (i as u64 % 2) + 1,
            _ => 0,
        }
    }
}

/// One point of the sweep: everything needed to reproduce a run exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Combo {
    /// Policy under test.
    pub policy: PolicyKind,
    /// Seed for the kernel RNG, the workload shape, and the fault plan.
    pub seed: u64,
    /// Fault schedule injected into the kernel.
    pub plan: FaultPlan,
    /// Virtual run length.
    pub horizon: Nanos,
    /// Number of workload threads.
    pub threads: usize,
}

impl Combo {
    /// The sweep's combo for `(policy, seed)`: standard horizon and
    /// thread count, fault plan derived from the seed.
    pub fn generated(policy: PolicyKind, seed: u64) -> Self {
        let horizon = 120 * MILLIS;
        let topo = Topology::test_small(4);
        let cpus: Vec<CpuId> = policy.enclave_cpus(&topo).iter().collect();
        let plan = generate_plan(seed, horizon, &cpus);
        Self {
            policy,
            seed,
            plan,
            horizon,
            threads: 5,
        }
    }

    /// The recovery sweep's combo for `(policy, seed)`: like
    /// [`Combo::generated`] but every plan injects at least one agent
    /// crash or in-place upgrade, so reconstruction and failover run on
    /// every single combo instead of whenever the generic generator
    /// happens to roll one.
    pub fn generated_recovery(policy: PolicyKind, seed: u64) -> Self {
        let horizon = 120 * MILLIS;
        let topo = Topology::test_small(4);
        let cpus: Vec<CpuId> = policy.enclave_cpus(&topo).iter().collect();
        let plan = generate_recovery_plan(seed, horizon, &cpus);
        Self {
            policy,
            seed,
            plan,
            horizon,
            threads: 5,
        }
    }

    /// True if the run pre-stages a second policy version: always when
    /// the plan upgrades in place, and on even seeds when it crashes an
    /// agent (exercising both the fallback and hot-standby paths).
    pub fn stages_upgrade(&self) -> bool {
        let has = |f: fn(&FaultKind) -> bool| self.plan.events.iter().any(|fe| f(&fe.kind));
        has(|k| matches!(k, FaultKind::Upgrade))
            || (self.seed.is_multiple_of(2) && has(|k| matches!(k, FaultKind::AgentCrash { .. })))
    }

    /// True if the run arms a hot standby (degraded-mode failover): odd
    /// seeds whose plan crashes an agent. Even crash seeds stage an
    /// upgrade instead ([`Combo::stages_upgrade`]), so both §3.4 rescue
    /// paths stay covered. Derived from `(seed, plan)` alone — never
    /// stored — so replaying a `repro.json` rebuilds the same setup.
    pub fn plans_standby(&self) -> bool {
        !self.seed.is_multiple_of(2)
            && self
                .plan
                .events
                .iter()
                .any(|fe| matches!(fe.kind, FaultKind::AgentCrash { .. }))
    }
}

/// Everything a finished run exposes to oracles, the shrinker, and tests.
pub struct RunReport {
    /// Oracle verdicts; empty means the run was clean.
    pub failures: Vec<Failure>,
    /// Workload segments completed.
    pub completions: u64,
    /// Runtime counters.
    pub stats: GhostStats,
    /// The recorded trace (for Chrome export of failing runs).
    pub records: Vec<TraceRecord>,
}

/// Workload app for chaos runs: each thread repeatedly runs a segment
/// then blocks, re-armed by a periodic timer. Unlike a strict workload
/// it tolerates fault-induced weirdness (spurious wakeups may leave a
/// thread non-blocked when its timer fires; the timer just re-arms).
struct ChaosApp {
    conf: HashMap<Tid, (Nanos, Nanos)>, // (segment, period)
    completions: Rc<RefCell<u64>>,
}

impl App for ChaosApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "chaos-pulse"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        let Some(&(seg, period)) = self.conf.get(&tid) else {
            return;
        };
        if k.thread(tid).state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = seg;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("chaos threads have an app");
        k.arm_app_timer(k.now + period, app, key);
    }

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.borrow_mut() += 1;
        Next::Block
    }
}

/// Runs `combo` to its horizon and evaluates every oracle. Fully
/// deterministic: the same combo always returns the same report.
pub fn run_combo(combo: &Combo) -> RunReport {
    let sink = TraceSink::recording(1, 1 << 18);
    let mut kernel = Kernel::new(
        Topology::test_small(4),
        KernelConfig {
            seed: combo.seed,
            trace: sink.clone(),
            faults: combo.plan.clone(),
            ..KernelConfig::default()
        },
    );
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    runtime.install(&mut kernel);
    let cpus = combo.policy.enclave_cpus(&kernel.state.topo);
    let standby = combo.plans_standby().then(StandbyConfig::default);
    let mut config = combo.policy.enclave_config();
    if let Some(sb) = standby {
        config = config.with_standby(sb);
    }
    let enclave = runtime.create_enclave(cpus, config, combo.policy.build());
    runtime.spawn_agents(&mut kernel, enclave);
    if combo.stages_upgrade() {
        runtime.stage_upgrade(enclave, combo.policy.build());
    }
    if standby.is_some() {
        let policy = combo.policy;
        runtime.set_standby_policy(enclave, move || policy.build());
    }

    // Workload: `threads` pulse threads with seed-derived segment/period.
    // Total load stays well under capacity, so sustained starvation can
    // only come from injected faults, never from overload.
    let app = kernel.state.next_app_id();
    let completions = Rc::new(RefCell::new(0u64));
    let mut conf = HashMap::new();
    let mut threads = Vec::new();
    let mut rng = StdRng::seed_from_u64(combo.seed ^ 0x0C0F_FEE0);
    for i in 0..combo.threads {
        let tid = kernel.spawn(
            ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo)
                .app(app)
                .cookie(combo.policy.cookie_for(i)),
        );
        let seg = rng.gen_range(20 * MICROS..200 * MICROS);
        let period = rng.gen_range(500 * MICROS..2 * MILLIS);
        conf.insert(tid, (seg, period));
        threads.push(tid);
    }
    kernel.add_app(Box::new(ChaosApp {
        conf,
        completions: Rc::clone(&completions),
    }));
    for &tid in &threads {
        runtime.attach_thread(&mut kernel.state, enclave, tid);
    }
    for (i, &tid) in threads.iter().enumerate() {
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 10_000, app, tid.0 as u64);
    }

    kernel.run_until(combo.horizon);

    let completions = *completions.borrow();
    let stats = runtime.stats();
    let records = sink.snapshot();
    let failures = oracle::evaluate(
        &records,
        sink.dropped(),
        &kernel.state,
        &runtime,
        enclave,
        &threads,
        completions,
        standby.map(|sb| sb.recovery_slo),
    );
    RunReport {
        failures,
        completions,
        stats,
        records,
    }
}
