//! The kernel: the event loop tying CPUs, threads, classes, apps, and
//! agents together.
//!
//! [`Kernel`] owns everything; [`KernelState`] is the portion shared with
//! scheduling classes, apps, and the agent driver. Cross-cutting side
//! effects (wakeups, class changes, reschedules) are recorded in deferred
//! buffers on `KernelState` and applied by `Kernel::settle` after each
//! hook returns, which keeps plug-ins free of re-entrant borrows and makes
//! event handling a fixpoint: every event fully settles the machine before
//! the next event is popped.

use crate::agent::{AgentDriver, AgentOutcome, NullDriver};
use crate::app::{App, AppId, Next};
use crate::cfs::CfsClass;
use crate::class::{
    ClassId, NullClass, OffCpuReason, SchedClass, CLASS_AGENT, CLASS_CFS, NUM_CLASSES,
};
use crate::costs::CostModel;
use crate::cpu::{CpuRunState, CpuState};
use crate::cpuset::CpuSet;
use crate::event::{Ev, EventQueue};
use crate::faults::{FaultKind, FaultPlan, IpiFate};
use crate::rt::{AgentClass, RtFifoClass};
use crate::thread::{SimThread, ThreadKind, ThreadState, Tid};
use crate::time::{Nanos, MILLIS};
use crate::topology::{CpuId, Topology};
use ghost_trace::{TraceEvent, TraceSink, NO_TID, PREV_BLOCKED, PREV_DEAD, PREV_RUNNABLE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Timer-tick period; 0 disables ticks entirely (tickless, §5 of the
    /// paper).
    pub tick_ns: Nanos,
    /// Model SMT contention (siblings run at a reduced rate).
    pub smt_model: bool,
    /// RNG seed for deterministic replay.
    pub seed: u64,
    /// Tracepoint sink. Defaults to [`TraceSink::Null`] (off, zero cost);
    /// set to [`TraceSink::recording`] to capture a `sched:*`-style event
    /// stream for export, derived metrics, and invariant checking.
    pub trace: TraceSink,
    /// Deterministic fault schedule; empty by default (no perturbation).
    pub faults: FaultPlan,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            tick_ns: MILLIS,
            smt_model: true,
            seed: 1,
            trace: TraceSink::Null,
            faults: FaultPlan::default(),
        }
    }
}

/// Machine-wide counters.
#[derive(Debug, Default, Clone)]
pub struct SimStats {
    /// Context switches completed.
    pub ctx_switches: u64,
    /// IPIs sent (reschedule interrupts).
    pub ipis_sent: u64,
    /// Timer ticks processed.
    pub ticks: u64,
    /// Events processed.
    pub events: u64,
    /// Thread migrations across CPUs.
    pub migrations: u64,
}

/// The state shared with classes, apps, and the agent driver.
pub struct KernelState {
    /// Current virtual time (ns).
    pub now: Nanos,
    /// Machine topology.
    pub topo: Topology,
    /// Operation cost model.
    pub costs: CostModel,
    /// Configuration.
    pub cfg: KernelConfig,
    /// All threads ever spawned, indexed by [`Tid`].
    pub threads: Vec<SimThread>,
    /// Per-CPU state, indexed by [`CpuId`].
    pub cpus: Vec<CpuState>,
    /// Machine-wide counters.
    pub stats: SimStats,
    /// Why the thread passed to `put_prev` is coming off its CPU; valid
    /// only during that call.
    pub offcpu_reason: OffCpuReason,
    /// Deterministic RNG for plug-ins that need randomness.
    pub rng: StdRng,
    events: EventQueue,
    pending_wakes: VecDeque<Tid>,
    pending_class_moves: VecDeque<(Tid, ClassId)>,
    pending_affinity: VecDeque<Tid>,
    pending_nice: VecDeque<Tid>,
    pending_resched: VecDeque<CpuId>,
    pending_kills: VecDeque<Tid>,
    next_app: u32,
}

impl KernelState {
    /// Immutable access to a thread.
    ///
    /// # Panics
    ///
    /// Panics if `tid` was never spawned.
    pub fn thread(&self, tid: Tid) -> &SimThread {
        &self.threads[tid.index()]
    }

    /// Mutable access to a thread.
    pub fn thread_mut(&mut self, tid: Tid) -> &mut SimThread {
        &mut self.threads[tid.index()]
    }

    /// Immutable access to a CPU.
    pub fn cpu(&self, cpu: CpuId) -> &CpuState {
        &self.cpus[cpu.index()]
    }

    /// True if `tid` names a thread the kernel has ever spawned. The
    /// enforcement hook for validating agent-supplied tids: anything an
    /// agent hands the kernel must pass here before it is used as an
    /// index.
    pub fn valid_tid(&self, tid: Tid) -> bool {
        tid.index() < self.threads.len()
    }

    /// True if `cpu` names a CPU of this machine. The enforcement hook
    /// for validating agent-supplied CPU ids.
    pub fn valid_cpu(&self, cpu: CpuId) -> bool {
        cpu.index() < self.cpus.len()
    }

    /// Bounds-checked access to a thread (for agent-supplied tids).
    pub fn thread_checked(&self, tid: Tid) -> Option<&SimThread> {
        self.threads.get(tid.index())
    }

    /// Bounds-checked access to a CPU (for agent-supplied CPU ids).
    pub fn cpu_checked(&self, cpu: CpuId) -> Option<&CpuState> {
        self.cpus.get(cpu.index())
    }

    /// True if `cpu`'s SMT sibling is occupied.
    pub fn sibling_busy(&self, cpu: CpuId) -> bool {
        self.topo
            .sibling(cpu)
            .is_some_and(|s| self.cpus[s.index()].is_occupied())
    }

    /// Execution rate for a workload thread running on `cpu` right now.
    pub fn effective_rate(&self, cpu: CpuId) -> f64 {
        if !self.cfg.smt_model {
            return 1.0;
        }
        self.costs.work_rate(self.sibling_busy(cpu))
    }

    /// Requests that `tid` (currently blocked) become runnable. Applied
    /// when the current hook returns; waking an already-active or dead
    /// thread is a no-op.
    pub fn wake(&mut self, tid: Tid) {
        self.pending_wakes.push_back(tid);
    }

    /// Wakes `tid` at the future time `at`.
    pub fn wake_at(&mut self, at: Nanos, tid: Tid) {
        debug_assert!(at >= self.now);
        self.events.push(at, Ev::Wake { tid });
    }

    /// Requests moving `tid` into scheduling class `class`.
    pub fn move_to_class(&mut self, tid: Tid, class: ClassId) {
        self.pending_class_moves.push_back((tid, class));
    }

    /// Changes `tid`'s affinity mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty.
    pub fn set_affinity(&mut self, tid: Tid, mask: CpuSet) {
        assert!(!mask.is_empty(), "affinity mask must not be empty");
        self.threads[tid.index()].affinity = mask;
        self.pending_affinity.push_back(tid);
    }

    /// Requests killing `tid`; applied when the current hook returns.
    /// Usable from class/app/driver context (e.g. the ghOSt watchdog
    /// tearing down an enclave's agents).
    pub fn kill(&mut self, tid: Tid) {
        self.pending_kills.push_back(tid);
    }

    /// Changes `tid`'s nice value.
    pub fn set_nice(&mut self, tid: Tid, nice: i8) {
        self.threads[tid.index()].nice = nice.clamp(-20, 19);
        self.pending_nice.push_back(tid);
    }

    /// Requests a scheduler pass on `cpu` as soon as the current hook
    /// returns (local reschedule: no IPI cost).
    pub fn request_resched(&mut self, cpu: CpuId) {
        if !self.cpus[cpu.index()].resched_pending {
            self.cpus[cpu.index()].resched_pending = true;
            self.pending_resched.push_back(cpu);
        }
    }

    /// Schedules a scheduler pass on `cpu` at the future time `at`,
    /// modelling an IPI arrival. The traced `from_cpu` is `u16::MAX`
    /// (unknown): the sim has no notion of which CPU the sending code
    /// runs on at this point.
    pub fn send_ipi(&mut self, cpu: CpuId, at: Nanos) {
        debug_assert!(at >= self.now);
        self.stats.ipis_sent += 1;
        self.cpus[cpu.index()].ipis += 1;
        self.cfg
            .trace
            .emit(self.now, cpu.0, || TraceEvent::IpiSent {
                from_cpu: u16::MAX,
                to_cpu: cpu.0,
            });
        match self.cfg.faults.ipi_fate(self.now) {
            IpiFate::Normal => self.events.push(at, Ev::Resched { cpu }),
            IpiFate::Delayed(extra) => self
                .events
                .push(at.saturating_add(extra), Ev::Resched { cpu }),
            IpiFate::Lost => {}
        }
    }

    /// Arms a timer delivered to `app` via [`App::on_timer`].
    pub fn arm_app_timer(&mut self, at: Nanos, app: AppId, key: u64) {
        debug_assert!(at >= self.now);
        self.events.push(at, Ev::AppTimer { app, key });
    }

    /// Arms a timer delivered to the agent driver via
    /// [`AgentDriver::on_timer`].
    pub fn arm_driver_timer(&mut self, at: Nanos, key: u64) {
        debug_assert!(at >= self.now);
        self.events.push(at, Ev::DriverTimer { key });
    }

    /// Schedules a re-activation of a spinning agent thread at `at`. The
    /// activation is skipped automatically if the agent is no longer
    /// running by then. At most one loop event stays live per agent: a
    /// request at or after an already-armed time is dropped; an earlier
    /// request supersedes (the later event is ignored when it fires).
    pub fn schedule_agent_loop(&mut self, at: Nanos, tid: Tid) {
        debug_assert!(at >= self.now);
        let t = &mut self.threads[tid.index()];
        if let Some(cur) = t.agent_next_loop {
            if at >= cur {
                return;
            }
        }
        t.agent_next_loop = Some(at);
        let gen = t.stint;
        self.events.push(at, Ev::AgentLoop { tid, gen });
    }

    /// The AppId that will be assigned to the next registered app; lets
    /// callers spawn threads tagged with the app id before constructing
    /// the app itself.
    pub fn next_app_id(&self) -> AppId {
        AppId(self.next_app)
    }

    /// Spawns an agent thread from driver context, where the full
    /// [`Kernel`] is not reachable. The agent class has no `on_attach`
    /// hook, so pushing the thread directly is equivalent to
    /// [`Kernel::spawn`]; the ghOSt runtime uses this to respawn standby
    /// agents during crash recovery. The thread starts
    /// [`ThreadState::Blocked`]; wake it to run.
    ///
    /// # Panics
    ///
    /// Panics if the spec is not an agent: other classes may rely on
    /// their `on_attach` hook, which this path skips.
    pub fn spawn_agent_thread(&mut self, spec: ThreadSpec) -> Tid {
        assert_eq!(
            spec.kind,
            ThreadKind::Agent,
            "only agent threads can be spawned from driver context"
        );
        assert!(!spec.affinity.is_empty(), "affinity mask must not be empty");
        let tid = Tid(self.threads.len() as u32);
        let mut t = SimThread::new(tid, spec.name, spec.class, spec.affinity);
        t.nice = spec.nice;
        t.app = spec.app;
        t.kind = spec.kind;
        t.cookie = spec.cookie;
        self.threads.push(t);
        tid
    }

    /// Accrues the in-progress stint of a running thread up to `now`,
    /// without taking the thread off CPU. Lets observers (agents) read
    /// up-to-date `total_work`.
    pub fn sync_runtime(&mut self, tid: Tid) {
        if self.threads[tid.index()].state != ThreadState::Running {
            return;
        }
        let now = self.now;
        let t = &mut self.threads[tid.index()];
        let wall = now - t.stint_start;
        if wall == 0 {
            return;
        }
        let work = (wall as f64 * t.rate) as Nanos;
        t.total_oncpu += wall;
        let done = work.min(t.remaining);
        t.total_work += work;
        t.remaining -= done;
        t.stint_start = now;
    }

    /// Sum of busy time across CPUs in `set`, including in-progress busy
    /// periods.
    pub fn busy_time_in(&self, set: &CpuSet) -> Nanos {
        set.iter()
            .map(|c| {
                let cs = &self.cpus[c.index()];
                cs.busy_ns
                    + if cs.is_occupied() {
                        self.now - cs.busy_since
                    } else {
                        0
                    }
            })
            .sum()
    }
}

/// The simulator.
pub struct Kernel {
    /// Shared state.
    pub state: KernelState,
    classes: Vec<Box<dyn SchedClass>>,
    apps: Vec<Box<dyn App>>,
    driver: Box<dyn AgentDriver>,
}

/// Specification for spawning a thread.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Debug name.
    pub name: String,
    /// Initial scheduling class.
    pub class: ClassId,
    /// Nice value.
    pub nice: i8,
    /// Affinity mask.
    pub affinity: CpuSet,
    /// Owning app, if any.
    pub app: Option<AppId>,
    /// Workload or agent.
    pub kind: ThreadKind,
    /// Grouping cookie (e.g. VM id).
    pub cookie: u64,
}

impl ThreadSpec {
    /// A workload thread in CFS with full affinity over `topo`.
    pub fn workload(name: &str, topo: &Topology) -> Self {
        Self {
            name: name.to_string(),
            class: CLASS_CFS,
            nice: 0,
            affinity: topo.all_cpus_set(),
            app: None,
            kind: ThreadKind::Workload,
            cookie: 0,
        }
    }

    /// Sets the class.
    pub fn class(mut self, class: ClassId) -> Self {
        self.class = class;
        self
    }

    /// Sets the nice value.
    pub fn nice(mut self, nice: i8) -> Self {
        self.nice = nice;
        self
    }

    /// Sets the affinity mask.
    pub fn affinity(mut self, mask: CpuSet) -> Self {
        self.affinity = mask;
        self
    }

    /// Sets the owning app.
    pub fn app(mut self, app: AppId) -> Self {
        self.app = Some(app);
        self
    }

    /// Marks the thread as an agent.
    pub fn agent(mut self) -> Self {
        self.kind = ThreadKind::Agent;
        self.class = CLASS_AGENT;
        self
    }

    /// Sets the cookie.
    pub fn cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }
}

impl Kernel {
    /// Boots a machine with the default class hierarchy: Agent, RT-FIFO,
    /// CFS, a null ghOSt slot (install the real one via
    /// [`Kernel::install_class`]), and Idle.
    pub fn new(topo: Topology, cfg: KernelConfig) -> Self {
        let n = topo.num_cpus();
        let mut events = EventQueue::new();
        if cfg.tick_ns > 0 {
            for c in 0..n {
                events.push(
                    cfg.tick_ns,
                    Ev::Tick {
                        cpu: CpuId(c as u16),
                    },
                );
            }
        }
        for (idx, fe) in cfg.faults.events.iter().enumerate() {
            if fe.kind.is_one_shot() {
                events.push(fe.at, Ev::Fault { idx });
            }
        }
        let state = KernelState {
            now: 0,
            topo,
            costs: CostModel::default(),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            threads: Vec::new(),
            cpus: vec![CpuState::default(); n],
            stats: SimStats::default(),
            offcpu_reason: OffCpuReason::Block,
            events,
            pending_wakes: VecDeque::new(),
            pending_class_moves: VecDeque::new(),
            pending_affinity: VecDeque::new(),
            pending_nice: VecDeque::new(),
            pending_resched: VecDeque::new(),
            pending_kills: VecDeque::new(),
            next_app: 0,
        };
        let classes: Vec<Box<dyn SchedClass>> = vec![
            Box::new(AgentClass::new(n)),
            Box::new(RtFifoClass::new(n)),
            Box::new(CfsClass::new(n)),
            Box::new(NullClass("ghost-null")),
            Box::new(NullClass("idle")),
        ];
        Self {
            state,
            classes,
            apps: Vec::new(),
            driver: Box::new(NullDriver),
        }
    }

    /// Replaces the class at `slot` (e.g. install the real ghOSt class at
    /// [`crate::class::CLASS_GHOST`], MicroQuanta at
    /// [`crate::class::CLASS_RT`], or a core-scheduling variant at
    /// [`CLASS_CFS`]).
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range or any thread already uses it.
    pub fn install_class(&mut self, slot: ClassId, class: Box<dyn SchedClass>) {
        assert!((slot as usize) < NUM_CLASSES, "bad class slot");
        assert!(
            self.state.threads.iter().all(|t| t.class != slot),
            "cannot replace a class slot with attached threads"
        );
        self.classes[slot as usize] = class;
    }

    /// Installs the agent driver (the userspace-scheduler runtime).
    pub fn set_driver(&mut self, driver: Box<dyn AgentDriver>) {
        self.driver = driver;
    }

    /// Registers an app and returns its id.
    pub fn add_app(&mut self, app: Box<dyn App>) -> AppId {
        let id = AppId(self.state.next_app);
        self.state.next_app += 1;
        self.apps.push(app);
        id
    }

    /// Mutable access to a registered app (for harnesses to extract
    /// results after a run).
    pub fn app_mut(&mut self, id: AppId) -> &mut dyn App {
        self.apps[id.index()].as_mut()
    }

    /// Spawns a thread. It starts [`ThreadState::Blocked`]; wake it to run.
    pub fn spawn(&mut self, spec: ThreadSpec) -> Tid {
        let tid = Tid(self.state.threads.len() as u32);
        assert!(!spec.affinity.is_empty(), "affinity mask must not be empty");
        let mut t = SimThread::new(tid, spec.name, spec.class, spec.affinity);
        t.nice = spec.nice;
        t.app = spec.app;
        t.kind = spec.kind;
        t.cookie = spec.cookie;
        self.state.threads.push(t);
        self.classes[spec.class as usize].on_attach(tid, &mut self.state);
        tid
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.state.now
    }

    /// Runs the event loop until virtual time `until` (inclusive of events
    /// at exactly `until`).
    pub fn run_until(&mut self, until: Nanos) {
        self.settle();
        while let Some(at) = self.state.events.peek_time() {
            if at > until {
                break;
            }
            let (at, ev) = self.state.events.pop().expect("peeked event exists");
            debug_assert!(at >= self.state.now, "time went backwards");
            self.state.now = at;
            self.state.stats.events += 1;
            self.handle(ev);
            self.settle();
        }
        self.state.now = self.state.now.max(until);
    }

    /// Runs for `dur` more nanoseconds of virtual time.
    pub fn run_for(&mut self, dur: Nanos) {
        self.run_until(self.state.now + dur);
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Wake { tid } => self.state.pending_wakes.push_back(tid),
            Ev::Resched { cpu } => {
                self.state
                    .cfg
                    .trace
                    .emit(self.state.now, cpu.0, || TraceEvent::IpiReceived {
                        cpu: cpu.0,
                    });
                self.state.request_resched(cpu)
            }
            Ev::Tick { cpu } => self.handle_tick(cpu),
            Ev::CtxSwitchDone { cpu, seq } => self.handle_switch_done(cpu, seq),
            Ev::SegmentEnd { tid, stint } => self.handle_segment_end(tid, stint),
            Ev::AgentLoop { tid, gen } => self.handle_agent_loop(tid, gen),
            Ev::AgentPark { tid, gen, block } => self.handle_agent_park(tid, gen, block),
            Ev::AppTimer { app, key } => {
                let mut a = std::mem::replace(&mut self.apps[app.index()], Box::new(NoApp));
                a.on_timer(key, &mut self.state);
                self.apps[app.index()] = a;
            }
            Ev::DriverTimer { key } => {
                self.driver.on_timer(key, &mut self.state);
            }
            Ev::Fault { idx } => self.handle_fault(idx),
        }
    }

    /// Dispatches a one-shot fault from the configured plan: applies its
    /// kernel-level effect, then forwards it to the agent driver so the
    /// userspace runtime can react (e.g. [`FaultKind::Upgrade`]).
    fn handle_fault(&mut self, idx: usize) {
        let kind = self.state.cfg.faults.events[idx].kind.clone();
        match kind {
            FaultKind::AgentCrash { cpu } => {
                let victim = self
                    .state
                    .threads
                    .iter()
                    .find(|t| {
                        t.kind == ThreadKind::Agent
                            && t.state != ThreadState::Dead
                            && t.affinity.contains(cpu)
                    })
                    .map(|t| t.tid);
                if let Some(tid) = victim {
                    self.kill_now(tid);
                }
            }
            FaultKind::SpuriousWakeup { nth } => {
                let live: Vec<Tid> = self
                    .state
                    .threads
                    .iter()
                    .filter(|t| t.kind == ThreadKind::Workload && t.state != ThreadState::Dead)
                    .map(|t| t.tid)
                    .collect();
                if !live.is_empty() {
                    // `wake` is a no-op unless the thread is blocked, so a
                    // spurious wakeup of an active thread dissolves — just
                    // like a stray `try_to_wake_up` in the real kernel.
                    let tid = live[nth as usize % live.len()];
                    self.state.wake(tid);
                }
            }
            _ => {}
        }
        self.driver.on_fault(&kind, &mut self.state);
    }

    /// Applies deferred operations until the machine is quiescent.
    fn settle(&mut self) {
        // Livelock guard, scaled to the work already queued: a mass wake
        // of N threads legitimately takes N iterations (the bench-sim
        // scale sweep wakes a million at once), while a genuine livelock
        // — operations endlessly re-deferring each other — still trips
        // the bound because it never drains the backlog.
        let queued = self.state.pending_class_moves.len()
            + self.state.pending_wakes.len()
            + self.state.pending_affinity.len()
            + self.state.pending_nice.len()
            + self.state.pending_kills.len()
            + self.state.pending_resched.len();
        let budget = 100_000.max(4 * queued);
        for _ in 0..budget {
            if let Some((tid, class)) = self.state.pending_class_moves.pop_front() {
                self.apply_class_move(tid, class);
            } else if let Some(tid) = self.state.pending_wakes.pop_front() {
                self.apply_wake(tid);
            } else if let Some(tid) = self.state.pending_affinity.pop_front() {
                let class = self.state.threads[tid.index()].class;
                self.classes[class as usize].on_affinity_changed(tid, &mut self.state);
                // A running thread on a now-forbidden CPU must move.
                let t = &self.state.threads[tid.index()];
                if t.state == ThreadState::Running {
                    if let Some(cpu) = t.cpu {
                        if !t.affinity.contains(cpu) {
                            self.state.request_resched(cpu);
                        }
                    }
                }
            } else if let Some(tid) = self.state.pending_nice.pop_front() {
                let class = self.state.threads[tid.index()].class;
                self.classes[class as usize].on_nice_changed(tid, &mut self.state);
            } else if let Some(tid) = self.state.pending_kills.pop_front() {
                self.kill_now(tid);
            } else if let Some(cpu) = self.state.pending_resched.pop_front() {
                self.state.cpus[cpu.index()].resched_pending = false;
                self.do_resched(cpu);
            } else {
                return;
            }
        }
        panic!("settle() did not converge: livelock in deferred operations");
    }

    fn apply_wake(&mut self, tid: Tid) {
        let t = &mut self.state.threads[tid.index()];
        if t.state != ThreadState::Blocked {
            return;
        }
        t.state = ThreadState::Runnable;
        t.runnable_since = self.state.now;
        let class = t.class;
        let last_cpu = t.last_cpu;
        let placed = self.classes[class as usize].enqueue(tid, &mut self.state);
        // `cpu` is the placement target when the class picked one, else the
        // thread's previous CPU (mirrors sched:sched_wakeup's target_cpu).
        let wake_cpu = placed.or(last_cpu).map(|c| c.0).unwrap_or(0);
        self.state
            .cfg
            .trace
            .emit(self.state.now, wake_cpu, || TraceEvent::SchedWakeup {
                cpu: wake_cpu,
                tid: tid.0,
            });
        if let Some(cpu) = placed {
            self.check_preempt(cpu, tid, class);
        }
    }

    /// CPU that has picked `tid` and is mid-context-switch to it. In this
    /// window the thread sits on no runqueue yet is still `Runnable` with
    /// `t.cpu` unset, so its state alone cannot distinguish it from a
    /// queued thread. Linux closes the same window with `p->on_cpu` and
    /// the rq lock; callers that would requeue the thread must defer
    /// until the switch lands or they create a second queued presence.
    fn switching_to(&self, tid: Tid) -> Option<CpuId> {
        self.state
            .cpus
            .iter()
            .position(|c| c.current == Some(tid) && c.run_state == CpuRunState::Switching)
            .map(|i| CpuId(i as u16))
    }

    fn apply_class_move(&mut self, tid: Tid, new_class: ClassId) {
        let old = self.state.threads[tid.index()].class;
        if old == new_class {
            return;
        }
        let st = self.state.threads[tid.index()].state;
        let in_flight = self.switching_to(tid);
        if st == ThreadState::Runnable && in_flight.is_none() {
            self.classes[old as usize].dequeue(tid, &mut self.state);
        }
        self.classes[old as usize].on_detach(tid, &mut self.state);
        self.state.threads[tid.index()].class = new_class;
        self.classes[new_class as usize].on_attach(tid, &mut self.state);
        match st {
            ThreadState::Runnable => {
                if let Some(cpu) = in_flight {
                    // The thread is in-flight to `cpu` (picked, mid-switch,
                    // on no runqueue). Enqueueing it now would give it a
                    // second queued presence that another CPU could steal
                    // while it runs. Let the switch land, then re-evaluate
                    // under the new class.
                    self.state.cpus[cpu.index()].resched_after_switch = true;
                } else {
                    let placed = self.classes[new_class as usize].enqueue(tid, &mut self.state);
                    if let Some(cpu) = placed {
                        self.check_preempt(cpu, tid, new_class);
                    }
                }
            }
            ThreadState::Running => {
                // Re-evaluate: the thread may no longer be the right choice.
                if let Some(cpu) = self.state.threads[tid.index()].cpu {
                    self.state.request_resched(cpu);
                }
            }
            _ => {}
        }
    }

    fn check_preempt(&mut self, cpu: CpuId, waking: Tid, class: ClassId) {
        let cs = &self.state.cpus[cpu.index()];
        match cs.run_state {
            CpuRunState::Idle => self.state.request_resched(cpu),
            CpuRunState::Switching => {
                self.state.cpus[cpu.index()].resched_after_switch = true;
            }
            CpuRunState::Busy => {
                let cur = cs.current.expect("busy CPU has a current thread");
                let cur_class = self.state.threads[cur.index()].class;
                if class < cur_class
                    || (class == cur_class
                        && self.classes[class as usize].should_preempt(waking, cur, &self.state))
                {
                    self.state.request_resched(cpu);
                }
            }
        }
    }

    /// One full scheduler pass on `cpu`: put the current thread back (if
    /// it is still runnable), pick the best thread across classes, and
    /// switch if it differs.
    fn do_resched(&mut self, cpu: CpuId) {
        let ci = cpu.index();
        if self.state.cpus[ci].run_state == CpuRunState::Switching {
            self.state.cpus[ci].resched_after_switch = true;
            return;
        }
        // Put the current thread (if any, still running) back on its
        // runqueue so it competes in pick_next.
        let prev = self.state.cpus[ci].current;
        if let Some(cur) = prev {
            if self.state.threads[cur.index()].state == ThreadState::Running {
                self.accrue_stint(cur);
                let t = &mut self.state.threads[cur.index()];
                t.state = ThreadState::Runnable;
                t.runnable_since = self.state.now;
                t.cpu = None;
                let class = t.class;
                self.state.offcpu_reason = OffCpuReason::Preempt;
                self.classes[class as usize].put_prev(cur, cpu, true, &mut self.state);
            }
        }
        // Pick across classes in priority order.
        let mut picked = None;
        for class in &mut self.classes {
            if let Some(tid) = class.pick_next(cpu, &mut self.state) {
                picked = Some(tid);
                break;
            }
        }
        match picked {
            Some(next) if Some(next) == prev => {
                // Same thread: cancel the would-be switch, keep running.
                let t = &mut self.state.threads[next.index()];
                t.state = ThreadState::Running;
                self.begin_stint(next, cpu);
            }
            Some(next) => {
                if let Some(cur) = prev {
                    if self.state.threads[cur.index()].state == ThreadState::Runnable {
                        self.state.threads[cur.index()].preemptions += 1;
                        self.record_switch_out(cpu, cur, PREV_RUNNABLE);
                        self.notify_agent_descheduled(cur);
                    }
                }
                self.start_switch(cpu, next);
            }
            None => {
                if let Some(cur) = prev {
                    if self.state.threads[cur.index()].state == ThreadState::Runnable {
                        // Nothing better, but current was requeued; this
                        // can only happen if its class declined to return
                        // it (e.g. throttled). Leave the CPU idle.
                        self.record_switch_out(cpu, cur, PREV_RUNNABLE);
                        self.notify_agent_descheduled(cur);
                    }
                }
                self.go_idle(cpu);
            }
        }
    }

    /// Remembers the outgoing thread for the `sched_switch` tracepoint,
    /// emitted when the incoming side lands (`start_running` / `go_idle`).
    fn record_switch_out(&mut self, cpu: CpuId, tid: Tid, prev_state: u8) {
        if self.state.cfg.trace.is_enabled() {
            let class = self.state.threads[tid.index()].class;
            self.state.cpus[cpu.index()].trace_prev = Some((tid.0, class, prev_state));
        }
    }

    /// Resolves the `prev_state` for a deferred `sched_switch` record. A
    /// wakeup can land inside the context-switch window — the thread
    /// blocked (so `trace_prev` recorded [`PREV_BLOCKED`]) and a wake
    /// arrived before the paired record is emitted. Linux's ttwu resets
    /// `prev->state` to `TASK_RUNNING` in exactly this race, so the
    /// tracepoint reports the thread runnable; mirror that here, or the
    /// trace shows a blocked switch-out *after* the wakeup and the
    /// invariant checker sees a non-runnable switch-in.
    fn resolve_prev_state(&self, prev_tid: u32, stored: u8) -> u8 {
        if stored == PREV_BLOCKED {
            let st = self.state.threads[Tid(prev_tid).index()].state;
            if matches!(st, ThreadState::Runnable | ThreadState::Running) {
                return PREV_RUNNABLE;
            }
        }
        stored
    }

    fn notify_agent_descheduled(&mut self, tid: Tid) {
        if self.state.threads[tid.index()].kind == ThreadKind::Agent {
            self.driver.on_agent_descheduled(tid, &mut self.state);
        }
    }

    fn set_occupied(&mut self, cpu: CpuId) {
        let cs = &mut self.state.cpus[cpu.index()];
        if cs.run_state == CpuRunState::Idle {
            cs.busy_since = self.state.now;
        }
    }

    fn go_idle(&mut self, cpu: CpuId) {
        let ci = cpu.index();
        let was_occupied = self.state.cpus[ci].is_occupied();
        if was_occupied {
            let since = self.state.cpus[ci].busy_since;
            self.state.cpus[ci].busy_ns += self.state.now - since;
        }
        self.state.cpus[ci].current = None;
        self.state.cpus[ci].run_state = CpuRunState::Idle;
        self.state.cpus[ci].idle_since = self.state.now;
        if let Some((prev_tid, prev_class, prev_state)) = self.state.cpus[ci].trace_prev.take() {
            let prev_state = self.resolve_prev_state(prev_tid, prev_state);
            self.state
                .cfg
                .trace
                .emit(self.state.now, cpu.0, || TraceEvent::SchedSwitch {
                    cpu: cpu.0,
                    prev_tid,
                    prev_class,
                    prev_state,
                    next_tid: NO_TID,
                    next_class: crate::class::CLASS_IDLE,
                });
        }
        if was_occupied {
            self.sibling_rate_changed(cpu);
        }
    }

    fn start_switch(&mut self, cpu: CpuId, next: Tid) {
        let ci = cpu.index();
        self.set_occupied(cpu);
        let cs = &mut self.state.cpus[ci];
        cs.current = Some(next);
        let was_idle = cs.run_state == CpuRunState::Idle;
        cs.run_state = CpuRunState::Switching;
        cs.switch_seq += 1;
        let seq = cs.switch_seq;
        let cost = if self.state.threads[next.index()].kind == ThreadKind::Agent {
            self.state.costs.agent_wakeup
        } else {
            self.state.costs.ctx_switch_cfs
        };
        self.state
            .events
            .push(self.state.now + cost, Ev::CtxSwitchDone { cpu, seq });
        if was_idle {
            self.sibling_rate_changed(cpu);
        }
    }

    fn handle_switch_done(&mut self, cpu: CpuId, seq: u64) {
        let ci = cpu.index();
        if self.state.cpus[ci].switch_seq != seq
            || self.state.cpus[ci].run_state != CpuRunState::Switching
        {
            return; // Superseded.
        }
        self.state.cpus[ci].run_state = CpuRunState::Busy;
        self.state.cpus[ci].switches += 1;
        self.state.stats.ctx_switches += 1;
        let tid = self.state.cpus[ci]
            .current
            .expect("switching CPU has target");
        self.start_running(tid, cpu);
        if std::mem::take(&mut self.state.cpus[ci].resched_after_switch) {
            self.state.request_resched(cpu);
        }
    }

    fn start_running(&mut self, tid: Tid, cpu: CpuId) {
        let now = self.state.now;
        let (migrated, from_cpu) = {
            let t = &self.state.threads[tid.index()];
            (t.last_cpu.is_some() && t.last_cpu != Some(cpu), t.last_cpu)
        };
        if migrated {
            self.state.threads[tid.index()].migrations += 1;
            self.state.stats.migrations += 1;
            let from = from_cpu.map(|c| c.0).unwrap_or(u16::MAX);
            self.state
                .cfg
                .trace
                .emit(now, cpu.0, || TraceEvent::SchedMigrate {
                    tid: tid.0,
                    from_cpu: from,
                    to_cpu: cpu.0,
                });
        }
        let next_class = {
            let t = &mut self.state.threads[tid.index()];
            debug_assert_ne!(t.state, ThreadState::Dead);
            t.state = ThreadState::Running;
            t.total_wait += now - t.runnable_since;
            t.class
        };
        if self.state.cfg.trace.is_enabled() {
            // No recorded switch-out means the CPU was idle before.
            let (prev_tid, prev_class, prev_state) = self.state.cpus[cpu.index()]
                .trace_prev
                .take()
                .unwrap_or((NO_TID, crate::class::CLASS_IDLE, PREV_RUNNABLE));
            let prev_state = if prev_tid != NO_TID {
                self.resolve_prev_state(prev_tid, prev_state)
            } else {
                prev_state
            };
            self.state
                .cfg
                .trace
                .emit(now, cpu.0, || TraceEvent::SchedSwitch {
                    cpu: cpu.0,
                    prev_tid,
                    prev_class,
                    prev_state,
                    next_tid: tid.0,
                    next_class,
                });
        }
        self.begin_stint(tid, cpu);
    }

    /// (Re)starts an on-CPU stint for a thread already chosen to run on
    /// `cpu`: resets the stint clock and rate, schedules the segment-end
    /// event (workload) or invokes the driver (agent).
    fn begin_stint(&mut self, tid: Tid, cpu: CpuId) {
        let now = self.state.now;
        let rate = self.state.effective_rate(cpu);
        let kind = {
            let t = &mut self.state.threads[tid.index()];
            t.cpu = Some(cpu);
            t.last_cpu = Some(cpu);
            t.stint += 1;
            t.stint_start = now;
            t.rate = rate;
            t.kind
        };
        match kind {
            ThreadKind::Workload => {
                let t = &self.state.threads[tid.index()];
                let stint = t.stint;
                let dur = (t.remaining as f64 / rate).ceil() as Nanos;
                self.state
                    .events
                    .push(now + dur, Ev::SegmentEnd { tid, stint });
            }
            ThreadKind::Agent => {
                self.invoke_driver(tid, cpu);
            }
        }
    }

    /// Re-times the sibling's running workload thread after this CPU's
    /// occupancy changed (the SMT contention model).
    fn sibling_rate_changed(&mut self, cpu: CpuId) {
        if !self.state.cfg.smt_model {
            return;
        }
        let Some(sib) = self.state.topo.sibling(cpu) else {
            return;
        };
        let Some(tid) = self.state.cpus[sib.index()].current else {
            return;
        };
        if self.state.cpus[sib.index()].run_state != CpuRunState::Busy {
            return;
        }
        let t = &self.state.threads[tid.index()];
        if t.kind != ThreadKind::Workload || t.state != ThreadState::Running {
            return;
        }
        self.accrue_stint(tid);
        let rate = self.state.effective_rate(sib);
        let now = self.state.now;
        let t = &mut self.state.threads[tid.index()];
        t.rate = rate;
        t.stint += 1;
        let stint = t.stint;
        let dur = (t.remaining as f64 / rate).ceil() as Nanos;
        self.state
            .events
            .push(now + dur, Ev::SegmentEnd { tid, stint });
    }

    /// Folds the elapsed part of the current stint into the thread's
    /// accounting and restarts the stint clock at `now`.
    fn accrue_stint(&mut self, tid: Tid) {
        let now = self.state.now;
        let t = &mut self.state.threads[tid.index()];
        let wall = now - t.stint_start;
        let work = (wall as f64 * t.rate) as Nanos;
        t.total_oncpu += wall;
        t.total_work += work;
        t.remaining -= work.min(t.remaining);
        t.last_stint_wall = wall;
        t.stint_start = now;
    }

    fn handle_segment_end(&mut self, tid: Tid, stint: u64) {
        {
            let t = &self.state.threads[tid.index()];
            if t.stint != stint || t.state != ThreadState::Running {
                return; // Stale.
            }
        }
        self.accrue_stint(tid);
        // Rounding in rate scaling can leave a sliver; finish it.
        if self.state.threads[tid.index()].remaining > 0 {
            let t = &mut self.state.threads[tid.index()];
            t.stint += 1;
            let stint = t.stint;
            let dur = (t.remaining as f64 / t.rate).ceil() as Nanos;
            let at = self.state.now + dur;
            self.state.events.push(at, Ev::SegmentEnd { tid, stint });
            return;
        }
        let Some(app) = self.state.threads[tid.index()].app else {
            // No app: park the thread.
            self.take_off_cpu(tid, OffCpuReason::Block);
            return;
        };
        let mut a = std::mem::replace(&mut self.apps[app.index()], Box::new(NoApp));
        let next = a.on_segment_end(tid, &mut self.state);
        self.apps[app.index()] = a;
        match next {
            Next::Run { dur } => {
                let t = &mut self.state.threads[tid.index()];
                t.remaining = dur;
                t.stint += 1;
                let stint = t.stint;
                let d = (dur as f64 / t.rate).ceil() as Nanos;
                let at = self.state.now + d;
                self.state.events.push(at, Ev::SegmentEnd { tid, stint });
            }
            Next::Block => self.take_off_cpu(tid, OffCpuReason::Block),
            Next::Yield { dur } => {
                self.state.threads[tid.index()].remaining = dur;
                self.take_off_cpu(tid, OffCpuReason::Yield);
            }
            Next::Exit => {
                self.take_off_cpu(tid, OffCpuReason::Exit);
                let class = self.state.threads[tid.index()].class;
                self.classes[class as usize].on_detach(tid, &mut self.state);
                let mut a = std::mem::replace(&mut self.apps[app.index()], Box::new(NoApp));
                a.on_thread_exit(tid, &mut self.state);
                self.apps[app.index()] = a;
            }
        }
    }

    /// Removes a running thread from its CPU for `reason` and rescheds.
    fn take_off_cpu(&mut self, tid: Tid, reason: OffCpuReason) {
        let cpu = self.state.threads[tid.index()].cpu.expect("thread on CPU");
        self.accrue_stint(tid);
        let t = &mut self.state.threads[tid.index()];
        t.cpu = None;
        t.stint += 1; // Invalidate in-flight SegmentEnd events.
        let still_runnable = matches!(reason, OffCpuReason::Preempt | OffCpuReason::Yield);
        t.state = match reason {
            OffCpuReason::Preempt | OffCpuReason::Yield => ThreadState::Runnable,
            OffCpuReason::Block => ThreadState::Blocked,
            OffCpuReason::Exit => ThreadState::Dead,
        };
        if still_runnable {
            t.runnable_since = self.state.now;
        }
        let class = t.class;
        self.state.cpus[cpu.index()].current = None;
        self.record_switch_out(
            cpu,
            tid,
            match reason {
                OffCpuReason::Preempt | OffCpuReason::Yield => PREV_RUNNABLE,
                OffCpuReason::Block => PREV_BLOCKED,
                OffCpuReason::Exit => PREV_DEAD,
            },
        );
        self.state.offcpu_reason = reason;
        self.classes[class as usize].put_prev(tid, cpu, still_runnable, &mut self.state);
        // The CPU is logically still occupied until the next pick; resched
        // immediately.
        self.do_resched(cpu);
    }

    fn handle_tick(&mut self, cpu: CpuId) {
        self.state.stats.ticks += 1;
        self.state
            .cfg
            .trace
            .emit(self.state.now, cpu.0, || TraceEvent::TickDelivered {
                cpu: cpu.0,
            });
        // Re-arm first so classes can rely on periodic ticks. A tick-skew
        // fault window stretches the period (clock drift between CPUs).
        if self.state.cfg.tick_ns > 0 {
            let skew = self.state.cfg.faults.tick_extra(self.state.now);
            self.state.events.push(
                self.state.now + self.state.cfg.tick_ns + skew,
                Ev::Tick { cpu },
            );
        }
        let current = self.state.cpus[cpu.index()].current;
        let mut resched = false;
        if self.state.cpus[cpu.index()].run_state == CpuRunState::Busy {
            if let Some(cur) = current {
                let class = self.state.threads[cur.index()].class;
                resched = self.classes[class as usize].on_tick(cpu, cur, &mut self.state);
            }
        }
        for class in &mut self.classes {
            class.on_tick_all(cpu, &mut self.state);
        }
        if resched {
            self.state.request_resched(cpu);
        }
    }

    fn invoke_driver(&mut self, tid: Tid, cpu: CpuId) {
        // Serialize agent work: if the previous activation's charged time
        // has not elapsed yet, defer this activation until it has.
        let busy_until = self.state.threads[tid.index()].agent_busy_until;
        if self.state.now < busy_until {
            self.state.threads[tid.index()].agent_next_loop = None;
            self.state.schedule_agent_loop(busy_until, tid);
            return;
        }
        // This activation consumes any armed loop; the outcome below (or
        // message notifications) re-arm as needed.
        self.state.threads[tid.index()].agent_next_loop = None;
        let outcome = self.driver.run_agent(tid, cpu, &mut self.state);
        let now = self.state.now;
        let gen = self.state.threads[tid.index()].stint;
        let busy = match outcome {
            AgentOutcome::Spin { busy, .. }
            | AgentOutcome::Block { busy }
            | AgentOutcome::Yield { busy } => busy,
        };
        self.state.threads[tid.index()].agent_busy_until = now + busy;
        match outcome {
            AgentOutcome::Spin { busy, next } => {
                if let Some(at) = next {
                    // Clamp self-wakeups into the future: a spin iteration
                    // always advances virtual time, so a policy that asks
                    // to be re-run "now" cannot wedge the simulation.
                    let at = at.max(now + busy).max(now + 100);
                    self.state.schedule_agent_loop(at, tid);
                }
                let _ = gen;
            }
            AgentOutcome::Block { busy } => {
                self.state.events.push(
                    now + busy,
                    Ev::AgentPark {
                        tid,
                        gen,
                        block: true,
                    },
                );
            }
            AgentOutcome::Yield { busy } => {
                self.state.events.push(
                    now + busy,
                    Ev::AgentPark {
                        tid,
                        gen,
                        block: false,
                    },
                );
            }
        }
    }

    fn handle_agent_loop(&mut self, tid: Tid, gen: u64) {
        let t = &self.state.threads[tid.index()];
        if t.stint != gen || t.state != ThreadState::Running {
            return; // Stale: the agent moved or parked meanwhile.
        }
        // Superseded duplicate: only the event matching the armed time is
        // live (see `schedule_agent_loop`).
        if t.agent_next_loop != Some(self.state.now) {
            return;
        }
        let cpu = t.cpu.expect("running agent has a CPU");
        self.invoke_driver(tid, cpu);
    }

    fn handle_agent_park(&mut self, tid: Tid, gen: u64, block: bool) {
        let t = &self.state.threads[tid.index()];
        if t.stint != gen || t.state != ThreadState::Running {
            return; // Stale.
        }
        let reason = if block {
            OffCpuReason::Block
        } else {
            OffCpuReason::Yield
        };
        self.take_off_cpu(tid, reason);
    }

    /// Fault injection / teardown: kills a thread outright. A running
    /// thread is taken off its CPU first.
    pub fn kill(&mut self, tid: Tid) {
        self.kill_now(tid);
        self.settle();
    }

    fn kill_now(&mut self, tid: Tid) {
        let st = self.state.threads[tid.index()].state;
        match st {
            ThreadState::Dead => return,
            ThreadState::Running => {
                self.take_off_cpu(tid, OffCpuReason::Exit);
            }
            ThreadState::Runnable => {
                let class = self.state.threads[tid.index()].class;
                self.classes[class as usize].dequeue(tid, &mut self.state);
                self.state.threads[tid.index()].state = ThreadState::Dead;
            }
            ThreadState::Blocked => {
                self.state.threads[tid.index()].state = ThreadState::Dead;
            }
        }
        let class = self.state.threads[tid.index()].class;
        self.classes[class as usize].on_detach(tid, &mut self.state);
        if self.state.threads[tid.index()].kind == ThreadKind::Agent {
            self.driver.on_agent_killed(tid, &mut self.state);
        }
    }

    /// Wakes a thread immediately (convenience for tests and setup code).
    pub fn wake_now(&mut self, tid: Tid) {
        self.state.wake(tid);
        self.settle();
    }

    /// Assigns `dur` of work to a blocked thread and wakes it.
    pub fn assign_and_wake(&mut self, tid: Tid, dur: Nanos) {
        self.state.threads[tid.index()].remaining = dur;
        self.wake_now(tid);
    }
}

/// Placeholder app swapped in while an app hook runs (guards against
/// re-entrant app access).
struct NoApp;

impl App for NoApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "none"
    }

    fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {
        panic!("re-entrant app invocation");
    }

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        panic!("re-entrant app invocation");
    }
}
