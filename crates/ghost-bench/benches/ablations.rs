//! Ablations of the design choices the paper calls out:
//!
//! 1. **Group commit** (§3.2): batched vs one-syscall-one-IPI commits at
//!    a fixed CPU count (paper: 1.5 M → 2.52 M theoretical txns/s).
//! 2. **BPF PNT fast path** (§3.2/§5): scheduling delay for short tasks
//!    with and without the idle-time fast path.
//! 3. **Search placement** (§4.4): NUMA/CCX awareness and the 100 µs
//!    CCX-pending wait (paper: +27% NUMA, +10% CCX; here the effect
//!    shows as tail latency at fixed offered load).
//! 4. **Tick-less centralized mode** (§5): disabling timer ticks removes
//!    tick processing without changing scheduling behaviour.

use ghost_bench::{fig5, fig8};
use ghost_core::enclave::EnclaveConfig;
use ghost_core::msg::MsgType;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_metrics::Table;
use ghost_policies::search::SearchConfig;
use ghost_policies::CentralizedFifo;
use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MICROS, MILLIS, SECS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_workloads::search::{QueryType, SearchWorkloadConfig};

fn main() {
    group_commit_ablation();
    pnt_ablation();
    search_placement_ablation();
    tickless_ablation();
    println!("\nOK: all ablations show the expected direction.");
}

/// 1. Group commit on/off.
fn group_commit_ablation() {
    let n = 54; // Fully saturated: amortization is what capacity buys.
    let on = fig5::run_point(
        Topology::skylake_112(),
        n,
        fig5::FIG5_WORK,
        20 * MILLIS,
        80 * MILLIS,
        true,
    );
    let off = fig5::run_point(
        Topology::skylake_112(),
        n,
        fig5::FIG5_WORK,
        20 * MILLIS,
        80 * MILLIS,
        false,
    );
    let mut t = Table::new(vec!["commit strategy", "M txns/s @54 CPUs"])
        .with_title("Ablation 1: group commit (§3.2)");
    t.row(vec![
        "group (batched IPIs)".into(),
        format!("{:.3}", on.txns_per_sec / 1e6),
    ]);
    t.row(vec![
        "one txn per syscall".into(),
        format!("{:.3}", off.txns_per_sec / 1e6),
    ]);
    t.print();
    assert!(
        on.txns_per_sec > 1.1 * off.txns_per_sec,
        "group commit should clearly beat per-txn commits: {} vs {}",
        on.txns_per_sec,
        off.txns_per_sec
    );
    println!();
}

/// The §3.2/§5 acceleration: the normal centralized FIFO, plus the agent
/// pre-publishes its surplus backlog into the PNT rings so a CPU that
/// idles *between* agent activations picks its next thread synchronously
/// in the kernel instead of waiting out a commit round-trip.
struct PntFifo(CentralizedFifo);

impl GhostPolicy for PntFifo {
    fn name(&self) -> &str {
        "fifo+pnt"
    }
    fn on_msg(&mut self, msg: &ghost_core::Message, ctx: &mut PolicyCtx<'_>) {
        // Keep the rings clean: a thread that blocked or died must not
        // linger as a stale candidate ("The agent may revoke a thread
        // before BPF can schedule the thread").
        if matches!(msg.ty, MsgType::ThreadBlocked | MsgType::ThreadDead) {
            ctx.pnt_revoke(msg.tid);
        }
        self.0.on_msg(msg, ctx);
    }
    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        // Normal commits first (fill currently-idle CPUs)...
        self.0.schedule(ctx);
        // ...then hand the surplus backlog to the fast path. Pushing
        // transfers ownership: the ring either runs the thread when a
        // CPU idles, or the thread re-enters the policy via its next
        // message — double-tracking it here would let failed commits for
        // already-ring-run threads steal idle CPUs from real waiters.
        let node = ctx.topo().info(ctx.local_cpu()).socket as usize;
        let backlog: Vec<_> = (0..self.0.backlog())
            .filter_map(|_| self.0.pop_next())
            .collect();
        for tid in backlog {
            ctx.pnt_revoke(tid);
            if !ctx.pnt_push(node, tid) {
                self.0.requeue(tid); // Ring full: keep agent ownership.
                break;
            }
        }
    }
}

/// Pulse app for the PNT ablation: run briefly, block, re-woken by timer.
struct PulseApp {
    work: Nanos,
    period: Nanos,
    app_id: AppId,
    completions: u64,
}

impl App for PulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        "pulse"
    }
    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        if k.threads[tid.index()].state == ghost_sim::ThreadState::Blocked {
            k.thread_mut(tid).remaining = self.work;
            k.wake(tid);
        }
        k.arm_app_timer(k.now + self.period, self.app_id, key);
    }
    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        self.completions += 1;
        Next::Block
    }
}

/// 2. PNT fast path on/off: mean scheduling delay of short pulses.
fn pnt_ablation() {
    let run = |pnt: bool| -> (f64, u64) {
        let topo = Topology::skylake_112();
        let mut kernel = Kernel::new(topo, KernelConfig::default());
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus: CpuSet = (0..=8u16).map(CpuId).collect();
        let config = if pnt {
            EnclaveConfig::centralized("pnt").with_pnt(256)
        } else {
            EnclaveConfig::centralized("pnt")
        };
        let policy: Box<dyn GhostPolicy> = if pnt {
            Box::new(PntFifo(CentralizedFifo::new()))
        } else {
            Box::new(CentralizedFifo::new())
        };
        let enclave = runtime.launch_enclave(&mut kernel, cpus, config, policy);
        let app_id = kernel.state.next_app_id();
        // Exact saturation: 16 pulsing threads over 8 worker CPUs, so a
        // blocking thread almost always has a successor waiting — the
        // regime where the handoff path (agent round-trip vs synchronous
        // kernel pick) is the latency.
        let mut tids = Vec::new();
        for i in 0..16 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("p{i}"), &kernel.state.topo)
                    .app(app_id)
                    .affinity(cpus),
            );
            tids.push(tid);
        }
        kernel.add_app(Box::new(PulseApp {
            work: 20 * MICROS,
            period: 40 * MICROS,
            app_id,
            completions: 0,
        }));
        for (i, &tid) in tids.iter().enumerate() {
            enclave.attach_thread(&mut kernel.state, tid);
            kernel
                .state
                .arm_app_timer((i as u64 + 1) * 7 * MICROS, app_id, tid.0 as u64);
        }
        kernel.run_until(500 * MILLIS);
        let total_wait: Nanos = tids
            .iter()
            .map(|&t| kernel.state.thread(t).total_wait)
            .sum();
        let stats = runtime.stats();
        let scheds = stats.txns_committed + stats.pnt_picks;
        (total_wait as f64 / scheds.max(1) as f64, stats.pnt_picks)
    };
    let (wait_off, picks_off) = run(false);
    let (wait_on, picks_on) = run(true);
    let mut t = Table::new(vec!["config", "mean sched delay (ns)", "PNT picks"])
        .with_title("Ablation 2: BPF pick_next_task fast path (§3.2/§5)");
    t.row(vec![
        "agent commits only".into(),
        format!("{wait_off:.0}"),
        picks_off.to_string(),
    ]);
    t.row(vec![
        "PNT fast path".into(),
        format!("{wait_on:.0}"),
        picks_on.to_string(),
    ]);
    t.print();
    assert_eq!(picks_off, 0);
    assert!(picks_on > 0, "PNT fast path never used");
    assert!(
        wait_on < wait_off,
        "PNT should reduce scheduling delay: {wait_on:.0} vs {wait_off:.0}"
    );
    println!();
}

/// 3. Search placement ablation (10-second runs).
fn search_placement_ablation() {
    let duration = 12 * SECS;
    let wl = SearchWorkloadConfig::default();
    let configs = [
        ("full (NUMA+CCX+pending)", SearchConfig::default()),
        (
            "no CCX pending wait",
            SearchConfig {
                ccx_pending_wait: None,
                ..SearchConfig::default()
            },
        ),
        (
            "no CCX awareness",
            SearchConfig {
                ccx_aware: false,
                ccx_pending_wait: None,
                ..SearchConfig::default()
            },
        ),
        (
            "no NUMA, no CCX",
            SearchConfig {
                numa_aware: false,
                ccx_aware: false,
                ccx_pending_wait: None,
                ..SearchConfig::default()
            },
        ),
    ];
    let mut t = Table::new(vec!["policy variant", "A p99 (ms)", "A mean (ms)", "A QPS"])
        .with_title("Ablation 3: Search placement heuristics (§4.4), type-A queries");
    let mut p99s = Vec::new();
    for (name, cfg) in configs {
        let res = fig8::run(fig8::SearchSched::Ghost(cfg), wl.clone(), duration);
        let h = &res.latency[&QueryType::A];
        let span = (duration - 2 * SECS) as f64 / 1e9;
        t.row(vec![
            name.into(),
            format!("{:.2}", h.percentile(99.0) as f64 / 1e6),
            format!("{:.2}", h.mean() / 1e6),
            format!("{:.0}", h.count() as f64 / span),
        ]);
        p99s.push((name, h.percentile(99.0)));
    }
    t.print();
    // Full placement must beat the placement-blind variant on type-A
    // tails (the paper's NUMA effect).
    let full = p99s[0].1 as f64;
    let blind = p99s[3].1 as f64;
    assert!(
        full < blind,
        "NUMA/CCX awareness should improve type-A tails: {full:.0} vs {blind:.0}"
    );
    println!();
}

/// 4. Tick-less centralized mode (§5).
fn tickless_ablation() {
    let run = |tick_ns: Nanos, deliver: bool| -> (u64, u64, u64) {
        let topo = Topology::test_small(8);
        let cfg = KernelConfig {
            tick_ns,
            ..KernelConfig::default()
        };
        let mut kernel = Kernel::new(topo, cfg);
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus = kernel.state.topo.all_cpus_set();
        let enclave = runtime.launch_enclave(
            &mut kernel,
            cpus,
            EnclaveConfig::centralized("tickless").with_ticks(deliver),
            Box::new(CentralizedFifo::new()),
        );
        let app_id = kernel.state.next_app_id();
        let mut tids = Vec::new();
        for i in 0..8 {
            let tid = kernel
                .spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app_id));
            tids.push(tid);
        }
        kernel.add_app(Box::new(PulseApp {
            work: 200 * MICROS,
            period: MILLIS,
            app_id,
            completions: 0,
        }));
        for (i, &tid) in tids.iter().enumerate() {
            enclave.attach_thread(&mut kernel.state, tid);
            kernel
                .state
                .arm_app_timer((i as u64 + 1) * 50 * MICROS, app_id, tid.0 as u64);
        }
        kernel.run_until(2 * SECS);
        let stats = runtime.stats();
        (
            kernel.state.stats.ticks,
            stats.posted(MsgType::TimerTick),
            stats.txns_committed,
        )
    };
    let (ticks_on, msgs_on, txns_on) = run(MILLIS, true);
    let (ticks_off, msgs_off, txns_off) = run(0, false);
    let mut t = Table::new(vec![
        "mode",
        "kernel ticks",
        "TIMER_TICK msgs",
        "txns committed",
    ])
    .with_title("Ablation 4: tick-less centralized mode (§5)");
    t.row(vec![
        "1 ms ticks".into(),
        ticks_on.to_string(),
        msgs_on.to_string(),
        txns_on.to_string(),
    ]);
    t.row(vec![
        "tick-less".into(),
        ticks_off.to_string(),
        msgs_off.to_string(),
        txns_off.to_string(),
    ]);
    t.print();
    assert_eq!(ticks_off, 0);
    assert_eq!(msgs_off, 0);
    assert!(msgs_on > 0);
    // Scheduling behaviour is unchanged: the spinning agent never needed
    // the ticks.
    let ratio = txns_off as f64 / txns_on.max(1) as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "tick-less scheduling should be unchanged: {txns_on} vs {txns_off}"
    );
}
