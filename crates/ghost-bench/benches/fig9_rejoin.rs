//! Fig. 9: agent upgrade / rejoin latency — how long an incoming agent
//! takes to absorb an enclave's threads by scanning their status words
//! (§3.4: "the new agent can take over an enclave with 50,000 threads in
//! the matter of about 105 ms").
//!
//! An enclave over the 112-CPU Skylake machine holds N attached threads;
//! a staged policy version is promoted with `upgrade_now` and the rejoin
//! latency is read from the trace as `RecoveryStart`-free upgrade time:
//! promotion instant → `ReconstructDone`. The bench sweeps N = 1k / 10k
//! / 50k and checks the 50k point lands in the paper's ~105 ms regime.

use ghost_core::enclave::EnclaveConfig;
use ghost_core::runtime::GhostRuntime;
use ghost_metrics::Table;
use ghost_policies::CentralizedFifo;
use ghost_sim::costs::CostModel;
use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
use ghost_sim::time::MILLIS;
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_trace::{TraceEvent, TraceSink};

/// One rejoin measurement: promote a staged policy over an enclave of
/// `n` threads and return (measured ns, modeled scan-cost ns).
fn rejoin_latency(n: usize) -> (u64, u64) {
    let sink = TraceSink::recording(1, 1 << 20);
    let topo = Topology::skylake_112();
    let mut kernel = Kernel::new(
        topo,
        KernelConfig {
            trace: sink.clone(),
            ..KernelConfig::default()
        },
    );
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let cpus: CpuSet = (1..kernel.state.topo.num_cpus() as u16)
        .map(CpuId)
        .collect();
    let mut config = EnclaveConfig::centralized("fig9");
    config.queue_capacity = 1 << 17; // Room for n creation messages at once.
    let enclave =
        runtime.launch_enclave(&mut kernel, cpus, config, Box::new(CentralizedFifo::new()));

    // The thread pool the new agent must absorb. Threads spawn blocked —
    // the paper's rejoin experiment measures takeover of an existing
    // population, not a storm of runnable work.
    for i in 0..n {
        let tid = kernel.spawn(ThreadSpec::workload(&format!("t{i}"), &kernel.state.topo));
        enclave.attach_thread(&mut kernel.state, tid);
    }
    // Let the outgoing agent drain every creation message.
    kernel.run_until(50 * MILLIS);

    enclave.stage_upgrade(Box::new(CentralizedFifo::new()));
    let t0 = kernel.state.now;
    assert!(enclave.upgrade_now(&mut kernel.state));
    kernel.run_until(t0 + 300 * MILLIS);

    assert_eq!(sink.dropped(), 0, "trace ring too small for n={n}");
    let records = sink.snapshot();
    let done = records
        .iter()
        .find(|r| r.ts >= t0 && matches!(r.event, TraceEvent::ReconstructDone { .. }))
        .unwrap_or_else(|| panic!("no ReconstructDone after upgrade at n={n}"));
    if let TraceEvent::ReconstructDone { threads, .. } = done.event {
        assert_eq!(threads as usize, n, "scan covered every thread");
    }
    let stats = runtime.stats();
    assert_eq!(stats.upgrades, 1);
    assert_eq!(stats.reconstructions, 1);
    let model = CostModel::default().reconstruction_scan(n as u64);
    (done.ts - t0, model)
}

fn main() {
    let sizes = [1_000usize, 10_000, 50_000];
    let mut t = Table::new(vec!["threads", "rejoin (ms)", "scan model (ms)"])
        .with_title("Fig. 9: in-place upgrade rejoin latency (Skylake, 112 CPUs)");
    let mut measured = Vec::new();
    for &n in &sizes {
        let (ns, model) = rejoin_latency(n);
        t.row(vec![
            n.to_string(),
            format!("{:.2}", ns as f64 / 1e6),
            format!("{:.2}", model as f64 / 1e6),
        ]);
        measured.push((n, ns, model));
    }
    t.print();
    println!();

    // Latency grows with the population: the scan is O(n).
    for w in measured.windows(2) {
        assert!(
            w[1].1 > w[0].1,
            "rejoin latency not monotone: {} threads took {} ns, {} took {} ns",
            w[0].0,
            w[0].1,
            w[1].0,
            w[1].1
        );
    }
    // Each point sits on the modeled scan cost plus bounded activation
    // overhead (message-queue drain, syscalls) — never below the model.
    for &(n, ns, model) in &measured {
        assert!(
            ns >= model && ns < model + model / 2 + MILLIS,
            "n={n}: measured {ns} ns vs modeled scan {model} ns"
        );
    }
    // The headline number: ~105 ms to absorb 50k threads.
    let (_, ns_50k, _) = measured[2];
    let ms = ns_50k as f64 / 1e6;
    assert!(
        (90.0..130.0).contains(&ms),
        "50k-thread rejoin took {ms:.1} ms, expected the paper's ~105 ms regime"
    );
    println!("50k-thread rejoin: {ms:.1} ms (paper: ~105 ms)  -- shape OK");
}
