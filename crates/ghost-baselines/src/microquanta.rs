//! MicroQuanta (§4.3): "a custom, soft real-time scheduler that
//! guarantees that for any period, e.g., 1 ms, at most a quanta of time,
//! e.g., 0.9 ms, is given to each packet processing worker. This policy
//! ensures worker threads receive runtime while not starving other
//! threads. However, it also leads to networking blackouts of up to
//! 0.1 ms."
//!
//! Installed at the kernel's RT slot (above CFS, below agents). Each
//! managed thread accrues runtime within the current period; once the
//! quanta is spent the thread is throttled until the next period
//! boundary — the blackout the paper measures against.

use ghost_sim::class::SchedClass;
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::topology::CpuId;
use std::collections::{HashMap, VecDeque};

/// MicroQuanta tunables.
#[derive(Debug, Clone)]
pub struct MicroQuantaConfig {
    /// Accounting period.
    pub period: Nanos,
    /// CPU time each thread may use per period.
    pub quanta: Nanos,
}

impl Default for MicroQuantaConfig {
    fn default() -> Self {
        Self {
            period: MILLIS,
            quanta: 900_000,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Account {
    /// Index of the period the snapshot belongs to.
    period_idx: u64,
    /// The thread's cumulative on-CPU time at the start of that period;
    /// usage within the period is measured against this snapshot, so
    /// accounting is exact regardless of how the thread's on-CPU time is
    /// sliced into segments.
    oncpu_at_period_start: Nanos,
    /// Throttled until the period ends.
    throttled: bool,
}

/// The MicroQuanta scheduling class.
pub struct MicroQuanta {
    /// Tunables.
    pub config: MicroQuantaConfig,
    rq: Vec<VecDeque<Tid>>,
    accounts: HashMap<Tid, Account>,
    /// Throttle events (blackouts entered).
    pub throttles: u64,
}

impl MicroQuanta {
    /// Creates the class for `num_cpus` CPUs.
    pub fn new(num_cpus: usize, config: MicroQuantaConfig) -> Self {
        Self {
            config,
            rq: vec![VecDeque::new(); num_cpus],
            accounts: HashMap::new(),
            throttles: 0,
        }
    }

    /// Rolls the account into the period containing `now` (unthrottling
    /// at the boundary) and returns the runtime used in that period.
    fn used_in_period(&mut self, tid: Tid, now: Nanos, cumulative_oncpu: Nanos) -> Nanos {
        let idx = now / self.config.period;
        let acc = self.accounts.entry(tid).or_default();
        if acc.period_idx != idx {
            acc.period_idx = idx;
            acc.oncpu_at_period_start = cumulative_oncpu;
            acc.throttled = false;
        }
        cumulative_oncpu.saturating_sub(acc.oncpu_at_period_start)
    }

    /// Cumulative on-CPU time including the in-progress stint.
    fn cumulative_oncpu(k: &KernelState, tid: Tid) -> Nanos {
        let t = &k.threads[tid.index()];
        let running = t.state == ghost_sim::thread::ThreadState::Running;
        t.total_oncpu + if running { k.now - t.stint_start } else { 0 }
    }

    fn throttled(&self, tid: Tid) -> bool {
        self.accounts.get(&tid).is_some_and(|a| a.throttled)
    }

    fn select_cpu(&self, tid: Tid, k: &KernelState) -> CpuId {
        let t = &k.threads[tid.index()];
        if let Some(prev) = t.last_cpu {
            if t.affinity.contains(prev) && k.cpus[prev.index()].is_idle() {
                return prev;
            }
        }
        for c in t.affinity.iter() {
            if k.cpus[c.index()].is_idle() {
                return c;
            }
        }
        t.affinity
            .iter()
            .min_by_key(|c| self.rq[c.index()].len())
            .expect("non-empty affinity")
    }

    /// Next period boundary after `now`.
    fn next_boundary(&self, now: Nanos) -> Nanos {
        (now / self.config.period + 1) * self.config.period
    }
}

impl SchedClass for MicroQuanta {
    fn name(&self) -> &'static str {
        "microquanta"
    }

    fn enqueue(&mut self, tid: Tid, k: &mut KernelState) -> Option<CpuId> {
        let cum = Self::cumulative_oncpu(k, tid);
        self.used_in_period(tid, k.now, cum);
        if self.throttled(tid) {
            // Wakes during a blackout wait for the period boundary.
            let at = self.next_boundary(k.now);
            let cpu = self.select_cpu(tid, k);
            self.rq[cpu.index()].push_back(tid);
            k.send_ipi(cpu, at);
            return None; // Suppress immediate preemption checks.
        }
        let cpu = self.select_cpu(tid, k);
        self.rq[cpu.index()].push_back(tid);
        Some(cpu)
    }

    fn dequeue(&mut self, tid: Tid, _k: &mut KernelState) {
        for q in &mut self.rq {
            q.retain(|&t| t != tid);
        }
    }

    fn pick_next(&mut self, cpu: CpuId, k: &mut KernelState) -> Option<Tid> {
        let now = k.now;
        let len = self.rq[cpu.index()].len();
        for _ in 0..len {
            let tid = self.rq[cpu.index()].pop_front()?;
            let cum = Self::cumulative_oncpu(k, tid);
            let used = self.used_in_period(tid, now, cum);
            let quanta = self.config.quanta;
            if self.throttled(tid) || used >= quanta {
                self.rq[cpu.index()].push_back(tid);
                continue;
            }
            // Precise throttling (the real MicroQuanta uses an hrtimer):
            // force a scheduler pass when the quanta will be exhausted.
            let remaining = quanta - used;
            k.send_ipi(cpu, now + remaining + k.costs.ctx_switch_cfs);
            return Some(tid);
        }
        None
    }

    fn put_prev(&mut self, tid: Tid, cpu: CpuId, still_runnable: bool, k: &mut KernelState) {
        let now = k.now;
        let cum = Self::cumulative_oncpu(k, tid);
        let used = self.used_in_period(tid, now, cum);
        let quanta = self.config.quanta;
        let throttle = used >= quanta;
        if throttle {
            let acc = self.accounts.entry(tid).or_default();
            if !acc.throttled {
                acc.throttled = true;
                self.throttles += 1;
            }
        }
        if still_runnable {
            self.rq[cpu.index()].push_back(tid);
            if throttle {
                // Re-examine at the period boundary.
                let at = self.next_boundary(now);
                k.send_ipi(cpu, at);
            }
        }
    }

    fn on_tick(&mut self, _cpu: CpuId, current: Tid, k: &mut KernelState) -> bool {
        // Throttle the running thread once it exceeds its quanta;
        // measured against cumulative on-CPU time so the accounting is
        // exact however the work is sliced into segments.
        let cum = Self::cumulative_oncpu(k, current);
        let used = self.used_in_period(current, k.now, cum);
        used >= self.config.quanta
    }

    fn on_tick_all(&mut self, cpu: CpuId, k: &mut KernelState) {
        // Period boundaries unthrottle queued threads; if this CPU is
        // idle and has throttled-now-eligible work, reschedule.
        if !k.cpus[cpu.index()].is_idle() {
            return;
        }
        let idx = k.now / self.config.period;
        let any_eligible = self.rq[cpu.index()].iter().any(|&t| {
            self.accounts
                .get(&t)
                .is_none_or(|a| a.period_idx != idx || !a.throttled)
        });
        if any_eligible {
            k.request_resched(cpu);
        }
    }

    fn has_runnable(&self, cpu: CpuId, _k: &KernelState) -> bool {
        !self.rq[cpu.index()].is_empty()
    }

    fn on_detach(&mut self, tid: Tid, k: &mut KernelState) {
        self.dequeue(tid, k);
        self.accounts.remove(&tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::app::{App, Next};
    use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
    use ghost_sim::time::SECS;
    use ghost_sim::topology::Topology;
    use ghost_sim::CLASS_RT;

    struct Spin;
    impl App for Spin {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }

        fn name(&self) -> &str {
            "spin"
        }
        fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}
        fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
            Next::Run { dur: 10 * MILLIS }
        }
    }

    #[test]
    fn quanta_caps_cpu_share() {
        let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
        kernel.install_class(
            CLASS_RT,
            Box::new(MicroQuanta::new(1, MicroQuantaConfig::default())),
        );
        let app = kernel.state.next_app_id();
        let rt = kernel.spawn(
            ThreadSpec::workload("mq-spinner", &kernel.state.topo)
                .app(app)
                .class(CLASS_RT),
        );
        kernel.add_app(Box::new(Spin));
        kernel.assign_and_wake(rt, 10 * MILLIS);
        kernel.run_until(SECS);
        let share = kernel.state.thread(rt).total_oncpu as f64 / SECS as f64;
        // 0.9 ms per 1 ms period → ~90% cap (tick granularity smears it).
        assert!(
            (0.80..=0.97).contains(&share),
            "MicroQuanta share should be ~0.9, got {share}"
        );
    }

    #[test]
    fn cfs_threads_survive_next_to_microquanta() {
        let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
        kernel.install_class(
            CLASS_RT,
            Box::new(MicroQuanta::new(1, MicroQuantaConfig::default())),
        );
        let app = kernel.state.next_app_id();
        let rt = kernel.spawn(
            ThreadSpec::workload("mq", &kernel.state.topo)
                .app(app)
                .class(CLASS_RT),
        );
        let cfs = kernel.spawn(ThreadSpec::workload("cfs", &kernel.state.topo).app(app));
        kernel.add_app(Box::new(Spin));
        kernel.assign_and_wake(rt, 10 * MILLIS);
        kernel.assign_and_wake(cfs, 10 * MILLIS);
        kernel.run_until(SECS);
        let cfs_share = kernel.state.thread(cfs).total_oncpu as f64 / SECS as f64;
        // The blackout guarantees CFS ~10%: "ensures worker threads
        // receive runtime while not starving other threads".
        assert!(
            cfs_share > 0.05,
            "CFS thread starved next to MicroQuanta: share {cfs_share}"
        );
    }
}

#[cfg(test)]
mod burst_accounting_tests {
    use super::*;
    use ghost_sim::app::{App, Next};
    use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
    use ghost_sim::time::{MICROS, SECS};
    use ghost_sim::topology::Topology;
    use ghost_sim::CLASS_RT;

    /// A worker that processes in tiny segments (like a packet engine
    /// draining a burst) must still be throttled at the quanta even
    /// though it never leaves the CPU between segments.
    struct TinySegments;
    impl App for TinySegments {
        fn as_any(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn name(&self) -> &str {
            "tiny"
        }
        fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}
        fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
            Next::Run { dur: 15 * MICROS }
        }
    }

    #[test]
    fn segmented_runs_are_throttled_at_the_quanta() {
        let mut kernel = Kernel::new(Topology::new("uni", 1, 1, 1, 1), KernelConfig::default());
        kernel.install_class(
            CLASS_RT,
            Box::new(MicroQuanta::new(1, MicroQuantaConfig::default())),
        );
        let app = kernel.state.next_app_id();
        let t = kernel.spawn(
            ThreadSpec::workload("segmented", &kernel.state.topo)
                .app(app)
                .class(CLASS_RT),
        );
        kernel.add_app(Box::new(TinySegments));
        kernel.assign_and_wake(t, 15 * MICROS);
        kernel.run_until(SECS);
        let share = kernel.state.thread(t).total_oncpu as f64 / SECS as f64;
        assert!(
            (0.80..=0.95).contains(&share),
            "segmented worker must be capped at ~0.9: {share}"
        );
    }
}
