//! Heap-vs-wheel equivalence: the timer-wheel [`EventQueue`] must pop in
//! exactly the order of the original `BinaryHeap` implementation —
//! earliest `at` first, FIFO on same-deadline ties — for arbitrary
//! interleavings of pushes and pops.
//!
//! The pre-wheel `BinaryHeap` queue lives on here, test-only, as the
//! oracle ([`HeapQueue`]). Each case derives a random op sequence from a
//! `for_seeds!` RNG and applies it to both queues in lockstep; any
//! divergence in popped `(time, event)` pairs, peeked times, or lengths
//! is a wheel bug. Time distributions are chosen to cross slot and level
//! boundaries: dense same-microsecond ties, mid-range spreads, and
//! far-future outliers that exercise multi-level cascades.

use ghost_chaos::for_seeds;
use ghost_sim::event::{Ev, EventQueue};
use ghost_sim::thread::Tid;
use ghost_sim::time::Nanos;
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The original `BinaryHeap` event queue, kept verbatim as the oracle.
struct HeapQueue {
    heap: BinaryHeap<HeapEntry>,
    next_seq: u64,
}

struct HeapEntry {
    at: Nanos,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl HeapQueue {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn push(&mut self, at: Nanos, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, ev });
    }

    fn pop(&mut self) -> Option<(Nanos, Ev)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Draws a time from a mix of distributions that stress every wheel
/// regime: same-slot ties, level-0 neighbours, mid-level spreads, and
/// far-future cascade fodder.
fn draw_time(rng: &mut StdRng, now: Nanos) -> Nanos {
    match rng.gen_range(0u8..10) {
        // Dense ties inside one 1024 ns slot (FIFO order must hold).
        0..=2 => now + rng.gen_range(0u64..8) * 256,
        // Within a few level-0 slots.
        3..=5 => now + rng.gen_range(0u64..1 << 14),
        // Level 1-3 territory.
        6..=7 => now + rng.gen_range(0u64..1 << 28),
        // Far future: multi-level cascades on the way down.
        8 => now + rng.gen_range(0u64..1 << 45),
        // Behind the wheel's current position (handlers never do this,
        // but the queue must still order it correctly).
        _ => now.saturating_sub(rng.gen_range(0u64..1 << 12)),
    }
}

#[test]
fn wheel_matches_heap_oracle_on_random_sequences() {
    for_seeds!(0x1E41, 300, |rng: &mut StdRng| {
        let mut wheel = EventQueue::new();
        let mut oracle = HeapQueue::new();
        let mut now: Nanos = 0;
        let mut tid = 0u32;
        for _ in 0..rng.gen_range(1usize..500) {
            if rng.gen_bool(0.55) {
                let at = draw_time(rng, now);
                let ev = Ev::Wake { tid: Tid(tid) };
                tid += 1;
                wheel.push(at, ev);
                oracle.push(at, ev);
            } else {
                if rng.gen_bool(0.3) {
                    assert_eq!(wheel.peek_time(), oracle.peek_time(), "peek divergence");
                }
                let got = wheel.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "pop divergence");
                if let Some((t, _)) = got {
                    // The simulation clock only moves forward.
                    now = now.max(t);
                }
            }
            assert_eq!(wheel.len(), oracle.len());
        }
        // Drain both: full remaining order must agree.
        while let Some(want) = oracle.pop() {
            assert_eq!(wheel.pop(), Some(want), "drain divergence");
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
    });
}

/// Same-deadline events pushed across different wheel positions (some
/// direct to near, some cascaded down a level) must still pop in global
/// insertion order.
#[test]
fn cross_level_ties_preserve_global_fifo() {
    for_seeds!(0x71E5, 100, |rng: &mut StdRng| {
        let mut wheel = EventQueue::new();
        let mut oracle = HeapQueue::new();
        let deadline: Nanos = 1 << rng.gen_range(12u32..40);
        let mut tid = 0u32;
        // Interleave ties at `deadline` with earlier events that force
        // the wheel to advance between pushes.
        for round in 0..rng.gen_range(2usize..20) {
            let ev = Ev::Wake { tid: Tid(tid) };
            tid += 1;
            wheel.push(deadline, ev);
            oracle.push(deadline, ev);
            let early = (round as u64) * rng.gen_range(1u64..1 << 10);
            let ev = Ev::Wake { tid: Tid(tid) };
            tid += 1;
            wheel.push(early, ev);
            oracle.push(early, ev);
            if rng.gen_bool(0.5) {
                assert_eq!(wheel.pop(), oracle.pop());
            }
        }
        while let Some(want) = oracle.pop() {
            assert_eq!(wheel.pop(), Some(want));
        }
        assert!(wheel.is_empty());
    });
}
