//! Randomized model tests over the core data structures, via the `ghost`
//! facade: CPU sets against a reference set model, histogram percentiles
//! against exact order statistics, the message queue against a VecDeque
//! model, the event queue against a sorted reference, and the
//! message-driven thread tracker against a reference state machine.
//!
//! These were originally proptest suites; the offline build environment
//! cannot fetch proptest, so each property runs over a few hundred cases
//! through `ghost_chaos::for_seeds!`, which derives one RNG per case and
//! reports the failing seed on panic so any case reruns in isolation.

use ghost::core::msg::{Message, MsgType};
use ghost::core::queue::MessageQueue;
use ghost::metrics::LogHistogram;
use ghost::policies::ThreadTracker;
use ghost::sim::cpuset::CpuSet;
use ghost::sim::event::{Ev, EventQueue};
use ghost::sim::thread::Tid;
use ghost::sim::topology::CpuId;
use ghost_chaos::for_seeds;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeSet, VecDeque};

fn rand_vec(rng: &mut StdRng, len_max: usize, lo: u64, hi: u64) -> Vec<u64> {
    let len = rng.gen_range(1..=len_max);
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

/// CpuSet behaves exactly like a set of u16 < 256.
#[test]
fn cpuset_matches_btreeset() {
    for_seeds!(0xC9, 256, |rng: &mut StdRng| {
        let ids: Vec<u16> = (0..rng.gen_range(0usize..64))
            .map(|_| rng.gen_range(0u16..256))
            .collect();
        let other: Vec<u16> = (0..rng.gen_range(0usize..64))
            .map(|_| rng.gen_range(0u16..256))
            .collect();
        let a: CpuSet = ids.iter().map(|&i| CpuId(i)).collect();
        let b: CpuSet = other.iter().map(|&i| CpuId(i)).collect();
        let ra: BTreeSet<u16> = ids.iter().copied().collect();
        let rb: BTreeSet<u16> = other.iter().copied().collect();
        assert_eq!(a.count(), ra.len());
        let and: Vec<u16> = a.and(&b).iter().map(|c| c.0).collect();
        let r_and: Vec<u16> = ra.intersection(&rb).copied().collect();
        assert_eq!(and, r_and);
        let or: Vec<u16> = a.or(&b).iter().map(|c| c.0).collect();
        let ror: Vec<u16> = ra.union(&rb).copied().collect();
        assert_eq!(or, ror);
        let minus: Vec<u16> = a.minus(&b).iter().map(|c| c.0).collect();
        let rminus: Vec<u16> = ra.difference(&rb).copied().collect();
        assert_eq!(minus, rminus);
        assert_eq!(a.first().map(|c| c.0), ra.first().copied());
    });
}

/// Histogram percentiles stay within the documented ~1.6% relative
/// error of exact order statistics.
#[test]
fn histogram_percentiles_bound_error() {
    for_seeds!(0x4157, 200, |rng: &mut StdRng| {
        let mut values = rand_vec(rng, 500, 1, 10_000_000);
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * values.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = values[rank.min(values.len() - 1)] as f64;
            let approx = h.percentile(p) as f64;
            // Bucket lower bound: approx <= exact, within one bucket width.
            assert!(approx <= exact * 1.001 + 1.0, "p{p}: {approx} > {exact}");
            assert!(approx >= exact / 1.04 - 2.0, "p{p}: {approx} << {exact}");
        }
        assert_eq!(h.max(), *values.last().unwrap());
        assert_eq!(h.min(), *values.first().unwrap());
        assert_eq!(h.count(), values.len() as u64);
    });
}

/// The lock-free message queue is FIFO and loss-free under any
/// push/pop interleaving (single-threaded model check).
#[test]
fn message_queue_matches_vecdeque() {
    for_seeds!(0x9E5B, 200, |rng: &mut StdRng| {
        let q = MessageQueue::new(64);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for _ in 0..rng.gen_range(1usize..400) {
            if rng.gen_bool(0.5) {
                let m = Message::thread(MsgType::ThreadWakeup, Tid(next), 0, CpuId(0), 0);
                let ok = q.push(m).is_ok();
                let model_ok = model.len() < 64;
                assert_eq!(ok, model_ok, "capacity divergence");
                if ok {
                    model.push_back(next);
                }
                next += 1;
            } else {
                let got = q.pop().map(|m| m.tid.0);
                assert_eq!(got, model.pop_front());
            }
        }
        assert_eq!(q.len(), model.len());
    });
}

/// The event queue pops in (time, insertion) order.
#[test]
fn event_queue_is_stable_priority_queue() {
    for_seeds!(0xE7, 200, |rng: &mut StdRng| {
        let times = rand_vec(rng, 200, 0, 1000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, Ev::Wake { tid: Tid(i as u32) });
        }
        let mut expected: Vec<(u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        for (t, i) in expected {
            let (at, ev) = q.pop().unwrap();
            assert_eq!(at, t);
            match ev {
                Ev::Wake { tid } => assert_eq!(tid.0, i),
                _ => panic!("unexpected event"),
            }
        }
        assert!(q.is_empty());
    });
}

/// The thread tracker never reports a blocked/dead thread as
/// runnable, whatever the message order.
#[test]
fn tracker_state_machine() {
    for_seeds!(0x7A, 200, |rng: &mut StdRng| {
        let mut tracker = ThreadTracker::new();
        let mut seqs = [0u64; 4];
        for _ in 0..rng.gen_range(1usize..300) {
            let tid = rng.gen_range(0u32..4);
            let ty = match rng.gen_range(0u8..6) {
                0 => MsgType::ThreadCreated,
                1 => MsgType::ThreadWakeup,
                2 => MsgType::ThreadBlocked,
                3 => MsgType::ThreadPreempted,
                4 => MsgType::ThreadYield,
                _ => MsgType::ThreadDead,
            };
            seqs[tid as usize] += 1;
            let m = Message::thread(ty, Tid(tid), seqs[tid as usize], CpuId(0), 0);
            let view = tracker.apply(&m).unwrap();
            match ty {
                MsgType::ThreadWakeup | MsgType::ThreadPreempted | MsgType::ThreadYield => {
                    assert!(view.runnable)
                }
                MsgType::ThreadBlocked | MsgType::ThreadDead => assert!(!view.runnable),
                _ => {}
            }
            if ty == MsgType::ThreadDead {
                assert!(tracker.get(Tid(tid)).is_none());
                seqs[tid as usize] = 0;
            } else {
                assert_eq!(tracker.seq(Tid(tid)), seqs[tid as usize]);
            }
        }
    });
}

/// Topology invariants over arbitrary machine shapes: sibling is an
/// involution, cores partition into CCXs, CCXs partition into
/// sockets, and distance is symmetric with locality ordering.
#[test]
fn topology_invariants() {
    use ghost::sim::topology::Topology;
    for_seeds!(0x70B0, 24, |rng: &mut StdRng| {
        let sockets = rng.gen_range(1u16..3);
        let cores = rng.gen_range(1u16..9);
        let smt = rng.gen_range(1u8..3);
        let ccx = rng.gen_range(1u16..5).min(cores);
        let t = Topology::new("prop", sockets, cores, smt, ccx);
        for a in t.all_cpus() {
            // Sibling is a fixed-point-free involution under SMT2.
            if let Some(s) = t.sibling(a) {
                assert_ne!(a, s);
                assert_eq!(t.sibling(s), Some(a));
                assert!(t.same_core(a, s));
                assert!(t.same_ccx(a, s));
                assert!(t.same_socket(a, s));
            }
            for b in t.all_cpus() {
                assert_eq!(t.distance(a, b), t.distance(b, a));
                // Locality ordering: same core ⊆ same CCX ⊆ same socket.
                if t.same_core(a, b) {
                    assert!(t.same_ccx(a, b));
                }
                if t.same_ccx(a, b) {
                    assert!(t.same_socket(a, b));
                }
            }
        }
        // Socket CPU sets partition the machine.
        let mut total = 0;
        for s in 0..sockets {
            total += t.socket_cpus(s).count();
        }
        assert_eq!(total, t.num_cpus());
    });
}

/// Cost-model identities hold for any plausible constant perturbation:
/// group commits amortize (per-txn agent cost decreases with group
/// size) and every derived quantity stays positive.
#[test]
fn cost_model_amortization() {
    use ghost::sim::CostModel;
    for_seeds!(0xC057, 100, |rng: &mut StdRng| {
        let scale = rng.gen_range(1u64..5);
        let n = rng.gen_range(2u64..32);
        let mut c = CostModel::default();
        c.txn_validate *= scale;
        c.ipi_send *= scale;
        c.ipi_send_extra *= scale;
        let single = c.remote_schedule_agent() as f64;
        let group = c.group_schedule_agent(n) as f64 / n as f64;
        assert!(
            group < single,
            "group of {n} should amortize: {group} vs {single}"
        );
        // Larger groups amortize at least as well.
        let bigger = c.group_schedule_agent(n * 2) as f64 / (n * 2) as f64;
        assert!(bigger <= group + 1.0);
        assert!(c.local_schedule() > 0);
        assert!(c.group_schedule_e2e(n) >= c.group_schedule_agent(n));
    });
}

/// Histogram merge is commutative and order-insensitive for the
/// statistics we report.
#[test]
fn histogram_merge_is_commutative() {
    for_seeds!(0x33, 200, |rng: &mut StdRng| {
        let a = rand_vec(rng, 200, 1, 1_000_000);
        let b = rand_vec(rng, 200, 1, 1_000_000);
        let mk = |v: &[u64]| {
            let mut h = LogHistogram::new();
            for &x in v {
                h.record(x);
            }
            h
        };
        let mut ab = mk(&a);
        ab.merge(&mk(&b));
        let mut ba = mk(&b);
        ba.merge(&mk(&a));
        assert_eq!(ab.count(), ba.count());
        assert_eq!(ab.min(), ba.min());
        assert_eq!(ab.max(), ba.max());
        for p in [50.0, 90.0, 99.0, 99.9] {
            assert_eq!(ab.percentile(p), ba.percentile(p));
        }
    });
}

/// PNT rings preserve per-node FIFO order and never lose or duplicate
/// candidates under arbitrary push/pop/revoke interleavings.
#[test]
fn pnt_rings_are_lossless() {
    use ghost::core::pnt::PntRings;
    for_seeds!(0x917, 200, |rng: &mut StdRng| {
        let mut rings = PntRings::new(2, 8);
        let mut model: [VecDeque<u32>; 2] = [VecDeque::new(), VecDeque::new()];
        for _ in 0..rng.gen_range(1usize..300) {
            let op = rng.gen_range(0u8..3);
            let x = rng.gen_range(0u32..16);
            match op {
                0 => {
                    let node = (x % 2) as usize;
                    let in_model = model[node].len() < 8;
                    let ok = rings.push(node, Tid(x));
                    assert_eq!(ok, in_model);
                    if ok {
                        model[node].push_back(x);
                    }
                }
                1 => {
                    let node = (x % 2) as usize;
                    let got = rings.pop_for(node).map(|t| t.0);
                    let want = if !model[node].is_empty() {
                        model[node].pop_front()
                    } else {
                        model[1 - node].pop_front()
                    };
                    assert_eq!(got, want);
                }
                _ => {
                    let in_model = model.iter().any(|m| m.contains(&x));
                    let ok = rings.revoke(Tid(x));
                    assert_eq!(ok, in_model);
                    if ok {
                        // Remove the first occurrence, node 0 first (the
                        // implementation scans rings in order).
                        if let Some(i) = model[0].iter().position(|&v| v == x) {
                            model[0].remove(i);
                        } else if let Some(i) = model[1].iter().position(|&v| v == x) {
                            model[1].remove(i);
                        }
                    }
                }
            }
        }
        assert_eq!(rings.len(), model[0].len() + model[1].len());
    });
}
