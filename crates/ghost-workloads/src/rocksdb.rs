//! The §4.2 request-serving workload: "each request includes a GET query
//! to an in-memory RocksDB key-value store (about 6 µs) and performs a
//! small amount of processing. We assigned the following processing
//! times: 99.5% of requests - 4 µs, 0.5% of requests - 10 ms."
//!
//! The app owns a pool of worker threads (200 in the ghOSt-Shinjuku
//! setup). The load generator assigns each arriving request to a free
//! worker and wakes it; the scheduler under test (ghOSt policy or CFS)
//! decides when and where workers run. Request latency is measured from
//! arrival to completion.

use crate::arrivals::{Poisson, ServiceDist};
use crate::kv::KvStore;
use ghost_metrics::LogHistogram;
use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::Nanos;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct RocksDbConfig {
    /// Offered load, requests per second.
    pub rate: f64,
    /// Processing-time distribution (on top of the GET cost).
    pub processing: ServiceDist,
    /// GET cost (paper: ~6 µs).
    pub get_cost: Nanos,
    /// Keys in the store.
    pub keys: u64,
    /// RNG seed (arrivals and service times).
    pub seed: u64,
    /// Latencies of requests arriving before this time are discarded.
    pub warmup: Nanos,
}

impl RocksDbConfig {
    /// The paper's dispersive workload at the given offered load.
    pub fn dispersive(rate: f64, seed: u64) -> Self {
        Self {
            rate,
            processing: ServiceDist::Bimodal {
                short: 4_000,
                long: 10_000_000,
                p_long: 0.005,
            },
            get_cost: 2_000,
            keys: 10_000,
            seed,
            warmup: 50_000_000,
        }
    }

    /// Generates the full arrival trace `(arrival, total_service)` up to
    /// `horizon` — shared with the Shinjuku-dataplane baseline so every
    /// system serves the *identical* request stream.
    pub fn trace(&self, horizon: Nanos) -> Vec<(Nanos, Nanos)> {
        let mut poisson = Poisson::new(self.rate, self.seed);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(1));
        poisson
            .generate(horizon)
            .into_iter()
            .map(|t| (t, self.get_cost + self.processing.sample(&mut rng)))
            .collect()
    }
}

/// Measurements extracted after a run.
#[derive(Debug)]
pub struct RocksDbResults {
    /// Request latency (arrival → completion), warmup excluded.
    pub latency: LogHistogram,
    /// Completed requests (including warmup).
    pub completed: u64,
    /// Generated requests.
    pub generated: u64,
    /// Maximum backlog (requests waiting for a free worker).
    pub max_backlog: usize,
}

#[derive(Debug, Clone, Copy)]
struct Request {
    arrival: Nanos,
    service: Nanos,
}

/// The request-serving app.
pub struct RocksDbApp {
    cfg: RocksDbConfig,
    kv: KvStore,
    trace: Vec<(Nanos, Nanos)>,
    next_arrival: usize,
    free: Vec<Tid>,
    active: HashMap<Tid, Request>,
    backlog: VecDeque<Request>,
    latency: LogHistogram,
    completed: u64,
    max_backlog: usize,
    app_id: AppId,
}

impl RocksDbApp {
    /// Builds the app with a pregenerated trace up to `horizon`.
    pub fn new(cfg: RocksDbConfig, app_id: AppId, horizon: Nanos) -> Self {
        let trace = cfg.trace(horizon);
        let kv = KvStore::with_keys(cfg.keys, cfg.get_cost);
        Self {
            cfg,
            kv,
            trace,
            next_arrival: 0,
            free: Vec::new(),
            active: HashMap::new(),
            backlog: VecDeque::new(),
            latency: LogHistogram::new(),
            completed: 0,
            max_backlog: 0,
            app_id,
        }
    }

    /// Registers a worker thread (spawned by the harness, scheduled by
    /// whatever class the harness chose).
    pub fn add_worker(&mut self, tid: Tid) {
        self.free.push(tid);
    }

    /// Arms the first arrival timer.
    pub fn start(&self, k: &mut KernelState) {
        if let Some(&(t, _)) = self.trace.first() {
            k.arm_app_timer(t, self.app_id, 0);
        }
    }

    /// Extracts results.
    pub fn results(&self) -> RocksDbResults {
        RocksDbResults {
            latency: self.latency.clone(),
            completed: self.completed,
            generated: self.next_arrival as u64,
            max_backlog: self.max_backlog,
        }
    }

    fn assign(&mut self, tid: Tid, req: Request, k: &mut KernelState) {
        // Execute the actual GET against the store (real data path).
        let key = req.arrival % self.cfg.keys;
        let (_value, _) = self.kv.get(key);
        self.active.insert(tid, req);
        k.thread_mut(tid).remaining = req.service;
        k.wake(tid);
    }
}

impl App for RocksDbApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "rocksdb"
    }

    fn on_timer(&mut self, _key: u64, k: &mut KernelState) {
        // Consume every arrival due now (timers coalesce at high rates).
        while let Some(&(t, service)) = self.trace.get(self.next_arrival) {
            if t > k.now {
                k.arm_app_timer(t, self.app_id, 0);
                break;
            }
            self.next_arrival += 1;
            let req = Request {
                arrival: t,
                service,
            };
            match self.free.pop() {
                Some(w) if k.threads[w.index()].state == ThreadState::Blocked => {
                    self.assign(w, req, k)
                }
                Some(w) => {
                    // Worker still draining a previous stint; treat as busy.
                    self.free.push(w);
                    self.backlog.push_back(req);
                }
                None => self.backlog.push_back(req),
            }
            self.max_backlog = self.max_backlog.max(self.backlog.len());
        }
    }

    fn on_segment_end(&mut self, tid: Tid, k: &mut KernelState) -> Next {
        let Some(req) = self.active.remove(&tid) else {
            return Next::Block;
        };
        self.completed += 1;
        if req.arrival >= self.cfg.warmup {
            self.latency.record(k.now - req.arrival);
        }
        // Pull the next request directly if any are waiting.
        if let Some(next) = self.backlog.pop_front() {
            let key = next.arrival % self.cfg.keys;
            let (_value, _) = self.kv.get(key);
            self.active.insert(tid, next);
            return Next::Run { dur: next.service };
        }
        self.free.push(tid);
        Next::Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::time::{MILLIS, SECS};

    #[test]
    fn trace_is_sorted_and_deterministic() {
        let cfg = RocksDbConfig::dispersive(100_000.0, 11);
        let a = cfg.trace(100 * MILLIS);
        let b = cfg.trace(100 * MILLIS);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
        // ~10k arrivals in 100 ms at 100k/s.
        assert!((9_000..11_000).contains(&a.len()));
    }

    #[test]
    fn trace_services_are_bimodal() {
        let cfg = RocksDbConfig::dispersive(500_000.0, 3);
        let trace = cfg.trace(SECS);
        let long = trace.iter().filter(|&&(_, s)| s > 1_000_000).count() as f64;
        let frac = long / trace.len() as f64;
        assert!((0.003..0.007).contains(&frac), "long fraction {frac}");
        // Short requests are GET (2 µs) + 4 µs.
        assert!(trace.iter().any(|&(_, s)| s == 6_000));
    }
}
