//! Slab free-list reuse under thread churn, crossed with agent recovery.
//!
//! The enclave's thread table is a `TidSlab`: dead threads free their
//! slot handle, and later attaches recycle it. These tests drive enough
//! kill/respawn churn that handles demonstrably recycle, then run the
//! §3.4 reconstruction path on top, proving that
//!
//! * a dead tid can never reach a recycled slot (no stale-handle
//!   aliasing — the forged id misses, the ABI rejects it), and
//! * the status-word scan a respawned agent performs sees exactly the
//!   live thread population, never a ghost of the previous occupant of
//!   a recycled handle.

use ghost_core::enclave::EnclaveConfig;
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::Transaction;
use ghost_core::{AbiError, StandbyConfig, ThreadSnapshot};
use ghost_sim::app::{App, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::Tid;
use ghost_sim::time::{MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Threads run a short segment and yield, staying permanently runnable —
/// churn comes from explicit kills, not blocking.
struct YieldApp;

impl App for YieldApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "slab-yield"
    }

    fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Yield { dur: 50 * MICROS }
    }
}

/// Shared observers the respawned policy instance reports into.
#[derive(Default, Clone)]
struct Observers {
    /// Tid sets of every reconstruction snapshot, in order.
    snapshots: Arc<Mutex<Vec<BTreeSet<u32>>>>,
    /// Every tid the policy successfully committed.
    committed: Arc<Mutex<HashSet<u32>>>,
}

/// Minimal centralized FIFO that records reconstruction snapshots and
/// committed tids into [`Observers`].
#[derive(Default)]
struct RecordingFifo {
    rq: VecDeque<Tid>,
    queued: HashSet<Tid>,
    seqs: HashMap<Tid, u64>,
    obs: Observers,
}

impl RecordingFifo {
    fn new(obs: Observers) -> Self {
        Self {
            obs,
            ..Self::default()
        }
    }

    fn enqueue(&mut self, tid: Tid) {
        if self.queued.insert(tid) {
            self.rq.push_back(tid);
        }
    }

    fn remove(&mut self, tid: Tid) {
        if self.queued.remove(&tid) {
            self.rq.retain(|&t| t != tid);
        }
    }
}

impl GhostPolicy for RecordingFifo {
    fn name(&self) -> &str {
        "slab-reuse-fifo"
    }

    fn on_msg(&mut self, msg: &Message, _ctx: &mut PolicyCtx<'_>) {
        if msg.ty.is_thread_msg() {
            self.seqs.insert(msg.tid, msg.seq);
        }
        match msg.ty {
            MsgType::ThreadWakeup | MsgType::ThreadPreempted | MsgType::ThreadYield => {
                self.enqueue(msg.tid)
            }
            MsgType::ThreadBlocked | MsgType::ThreadDead => self.remove(msg.tid),
            _ => {}
        }
    }

    fn on_reconstruct(&mut self, snapshot: &[ThreadSnapshot], _ctx: &mut PolicyCtx<'_>) {
        self.obs
            .snapshots
            .lock()
            .unwrap()
            .push(snapshot.iter().map(|s| s.tid.0).collect());
        self.rq.clear();
        self.queued.clear();
        self.seqs.clear();
        for s in snapshot {
            self.seqs.insert(s.tid, s.seq);
            if s.runnable && !s.on_cpu {
                self.enqueue(s.tid);
            }
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        let mut txns = Vec::new();
        for cpu in ctx.idle_cpus().iter() {
            let Some(tid) = self.rq.pop_front() else {
                break;
            };
            self.queued.remove(&tid);
            let seq = self.seqs.get(&tid).copied().unwrap_or(0);
            txns.push(Transaction::new(tid, cpu).with_thread_seq(seq));
        }
        if txns.is_empty() {
            return;
        }
        ctx.commit(&mut txns);
        for txn in &txns {
            if txn.status.committed() {
                self.obs.committed.lock().unwrap().insert(txn.tid.0);
            } else {
                self.enqueue(txn.tid);
            }
        }
    }
}

struct Churn {
    kernel: Kernel,
    runtime: GhostRuntime,
    enclave: ghost_core::runtime::EnclaveHandle,
    app: ghost_sim::app::AppId,
    obs: Observers,
}

fn churn_setup() -> Churn {
    let mut kernel = Kernel::new(Topology::test_small(4), KernelConfig::default());
    let ncpus = kernel.state.topo.num_cpus();
    let runtime = GhostRuntime::new(ncpus);
    let cpus: CpuSet = (1..ncpus as u16).map(CpuId).collect();
    let obs = Observers::default();
    let enclave = runtime.launch_enclave(
        &mut kernel,
        cpus,
        EnclaveConfig::centralized("slab-reuse").with_standby(StandbyConfig::default()),
        Box::new(RecordingFifo::new(obs.clone())),
    );
    let factory_obs = obs.clone();
    enclave.set_standby_policy(move || Box::new(RecordingFifo::new(factory_obs.clone())));
    let app = kernel.state.next_app_id();
    kernel.add_app(Box::new(YieldApp));
    Churn {
        kernel,
        runtime,
        enclave,
        app,
        obs,
    }
}

impl Churn {
    /// Spawns `n` yield-loop threads, attaches them, and wakes them.
    fn spawn_wave(&mut self, label: &str, n: usize) -> Vec<Tid> {
        let mut wave = Vec::new();
        for i in 0..n {
            let tid = self.kernel.spawn(
                ThreadSpec::workload(&format!("{label}{i}"), &self.kernel.state.topo).app(self.app),
            );
            self.enclave.attach_thread(&mut self.kernel.state, tid);
            wave.push(tid);
        }
        for &tid in &wave {
            self.kernel.wake_now(tid);
        }
        wave
    }

    fn handle_of(&self, tid: Tid) -> Option<u32> {
        self.runtime.thread_handle(self.enclave.id(), tid)
    }
}

#[test]
fn thread_churn_recycles_handles_without_aliasing() {
    let mut c = churn_setup();
    let wave_a = c.spawn_wave("a", 6);
    c.kernel.run_until(5 * MILLIS);

    let a_handles: BTreeSet<u32> = wave_a
        .iter()
        .map(|&t| c.handle_of(t).expect("wave A managed"))
        .collect();
    assert_eq!(a_handles.len(), wave_a.len());

    // Kill wave A: every handle returns to the free list.
    for &tid in &wave_a {
        c.kernel.kill(tid);
    }
    c.kernel.run_until(8 * MILLIS);
    for &tid in &wave_a {
        assert_eq!(c.handle_of(tid), None, "dead tid still resolves a handle");
    }

    // Wave B recycles wave A's handles (LIFO free list, equal sizes →
    // the handle sets must be identical) under fresh, larger tids.
    let wave_b = c.spawn_wave("b", 6);
    c.kernel.run_until(12 * MILLIS);
    let b_handles: BTreeSet<u32> = wave_b
        .iter()
        .map(|&t| c.handle_of(t).expect("wave B managed"))
        .collect();
    assert_eq!(b_handles, a_handles, "wave B must recycle wave A's slots");

    // No stale-handle aliasing: the dead tids cannot reach the recycled
    // slots through any interface.
    for &tid in &wave_a {
        assert_eq!(c.handle_of(tid), None);
        assert!(matches!(
            c.runtime.try_thread_status(c.enclave.id(), tid),
            Err(AbiError::ForeignThread | AbiError::NoSuchThread)
        ));
    }
    // And the recycled slots still serve their new owners.
    for &tid in &wave_b {
        assert!(c.runtime.try_thread_status(c.enclave.id(), tid).is_ok());
    }
}

#[test]
fn reconstruction_after_churn_sees_only_live_threads() {
    let mut c = churn_setup();

    // Several kill/respawn rounds so handles recycle repeatedly and the
    // tid space drifts far from the handle space.
    let mut prev = c.spawn_wave("r0-", 5);
    let mut at = 4 * MILLIS;
    for round in 1..4 {
        c.kernel.run_until(at);
        for &tid in &prev {
            c.kernel.kill(tid);
        }
        prev = c.spawn_wave(&format!("r{round}-"), 5);
        at += 4 * MILLIS;
    }
    c.kernel.run_until(at);
    let live: BTreeSet<u32> = prev.iter().map(|t| t.0).collect();

    // Crash the agent; the standby respawns and reconstructs from the
    // status-word scan.
    let global = c.enclave.global_agent().expect("global agent");
    c.kernel.kill(global);
    c.kernel.run_until(at + 30 * MILLIS);
    let stats = c.runtime.stats();
    assert_eq!(stats.respawns, 1, "one standby respawn");
    assert_eq!(stats.reconstructions, 1);

    // The scan must contain exactly the live wave — a recycled handle
    // must never resurrect its previous occupant into the snapshot.
    let snapshots = c.obs.snapshots.lock().unwrap().clone();
    assert_eq!(snapshots.len(), 1, "exactly one reconstruction");
    assert_eq!(snapshots[0], live, "snapshot is exactly the live threads");

    // The respawned agent schedules the live wave — and only it.
    c.obs.committed.lock().unwrap().clear();
    c.kernel.run_until(at + 60 * MILLIS);
    let committed = c.obs.committed.lock().unwrap().clone();
    assert!(
        !committed.is_empty(),
        "respawned agent must make progress on recycled handles"
    );
    assert!(
        committed.iter().all(|t| live.contains(t)),
        "committed a dead tid: {committed:?} vs live {live:?}"
    );
}
