//! # ghost-baselines — the systems the paper compares ghOSt against
//!
//! * [`microquanta`] — Google's soft real-time kernel scheduler for Snap
//!   worker threads (§4.3): each thread gets a quanta of CPU per period
//!   at high priority, then is throttled — "networking blackouts of up to
//!   0.1 ms". Installed at the RT class slot of the simulated kernel.
//! * [`shinjuku_dataplane`] — the original Shinjuku system (§4.2): a
//!   dedicated spinning dispatcher plus spinning worker threads on pinned
//!   hyperthreads, preempting requests at a 30 µs timeslice via posted
//!   interrupts. Modelled as its own closed system: its CPUs are not
//!   sharable with anything else (the property Fig. 6c exposes).
//! * [`kernel_core_sched`] — in-kernel secure core scheduling (§4.5):
//!   a cookie-aware fair class that never co-schedules threads of
//!   different VMs on SMT siblings.

pub mod kernel_core_sched;
pub mod microquanta;
pub mod shinjuku_dataplane;

pub use kernel_core_sched::KernelCoreSched;
pub use microquanta::{MicroQuanta, MicroQuantaConfig};
pub use shinjuku_dataplane::{DataplaneConfig, DataplaneResult, ShinjukuDataplane};
