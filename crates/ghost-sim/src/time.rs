//! Virtual time. The whole simulation runs on integer nanoseconds.

/// Virtual time or duration in nanoseconds.
pub type Nanos = u64;

/// One microsecond in [`Nanos`].
pub const MICROS: Nanos = 1_000;
/// One millisecond in [`Nanos`].
pub const MILLIS: Nanos = 1_000_000;
/// One second in [`Nanos`].
pub const SECS: Nanos = 1_000_000_000;

/// Converts microseconds to [`Nanos`].
pub const fn us(n: u64) -> Nanos {
    n * MICROS
}

/// Converts milliseconds to [`Nanos`].
pub const fn ms(n: u64) -> Nanos {
    n * MILLIS
}

/// Converts seconds to [`Nanos`].
pub const fn secs(n: u64) -> Nanos {
    n * SECS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(us(3), 3_000);
        assert_eq!(ms(2), 2_000_000);
        assert_eq!(secs(1), 1_000_000_000);
    }
}
