//! Machine topology: sockets, physical cores, SMT siblings, CCXs, NUMA.
//!
//! The presets correspond to the machines used in the paper's evaluation:
//!
//! * [`Topology::skylake_112`] — 2-socket Intel Xeon Platinum 8173M, 28
//!   physical cores per socket, 2 hyperthreads each (microbenchmarks, Fig. 5,
//!   Snap §4.3, VM scheduling §4.5).
//! * [`Topology::haswell_72`] — 2-socket Haswell, 18 cores per socket
//!   (Fig. 5's second line).
//! * [`Topology::e5_single_socket_24`] — one socket of a 2-socket Xeon
//!   E5-2658, 12 physical cores, 24 logical CPUs (Shinjuku comparison §4.2).
//! * [`Topology::rome_256`] — 2-socket AMD Zen "Rome", 64 cores per socket,
//!   grouped in 4-core CCXs with a shared L3 (Google Search §4.4).

use crate::cpuset::CpuSet;

/// A logical CPU (hyperthread) identifier.
///
/// The paper: "We refer to logical execution units as CPUs."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpuId(pub u16);

impl CpuId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Static per-CPU placement information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuInfo {
    /// NUMA node / socket index.
    pub socket: u16,
    /// Physical core index (global, across sockets).
    pub core: u16,
    /// SMT thread index within the core (0 or 1).
    pub smt: u8,
    /// CCX (L3 complex) index; on Intel presets each socket is one "CCX".
    pub ccx: u16,
}

/// A machine topology.
///
/// CPU numbering follows the common Linux enumeration: all thread-0 siblings
/// of socket 0, then socket 1, ..., then all thread-1 siblings in the same
/// order. So on a 2-socket, 28-core/socket machine, CPU 0 and CPU 56 are
/// hyperthread siblings sharing physical core 0.
#[derive(Debug, Clone)]
pub struct Topology {
    name: String,
    cpus: Vec<CpuInfo>,
    sockets: u16,
    cores_per_socket: u16,
    threads_per_core: u8,
    cores_per_ccx: u16,
}

impl Topology {
    /// Builds a topology with the given shape.
    ///
    /// `cores_per_ccx` groups physical cores into L3 complexes; pass the
    /// core count per socket for monolithic-L3 (Intel-style) sockets.
    ///
    /// # Panics
    ///
    /// Panics if the total logical CPU count exceeds [`crate::cpuset::MAX_CPUS`]
    /// or any dimension is zero.
    pub fn new(
        name: &str,
        sockets: u16,
        cores_per_socket: u16,
        threads_per_core: u8,
        cores_per_ccx: u16,
    ) -> Self {
        assert!(sockets > 0 && cores_per_socket > 0 && threads_per_core > 0 && cores_per_ccx > 0);
        let total = sockets as usize * cores_per_socket as usize * threads_per_core as usize;
        assert!(
            total <= crate::cpuset::MAX_CPUS,
            "topology exceeds MAX_CPUS"
        );
        let mut cpus = Vec::with_capacity(total);
        let ccx_per_socket = cores_per_socket.div_ceil(cores_per_ccx);
        for smt in 0..threads_per_core {
            for socket in 0..sockets {
                for core_in_socket in 0..cores_per_socket {
                    let core = socket * cores_per_socket + core_in_socket;
                    let ccx = socket * ccx_per_socket + core_in_socket / cores_per_ccx;
                    cpus.push(CpuInfo {
                        socket,
                        core,
                        smt,
                        ccx,
                    });
                }
            }
        }
        Self {
            name: name.to_string(),
            cpus,
            sockets,
            cores_per_socket,
            threads_per_core,
            cores_per_ccx,
        }
    }

    /// 2-socket Intel Xeon Platinum 8173M: 28 cores/socket, SMT2 → 112 CPUs.
    pub fn skylake_112() -> Self {
        Self::new("skylake-112", 2, 28, 2, 28)
    }

    /// 2-socket Haswell: 18 cores/socket, SMT2 → 72 CPUs.
    pub fn haswell_72() -> Self {
        Self::new("haswell-72", 2, 18, 2, 18)
    }

    /// One socket of an Intel Xeon E5-2658: 12 cores, SMT2 → 24 CPUs.
    pub fn e5_single_socket_24() -> Self {
        Self::new("e5-24", 1, 12, 2, 12)
    }

    /// 2-socket AMD Zen Rome: 64 cores/socket in 4-core CCXs, SMT2 → 256 CPUs.
    pub fn rome_256() -> Self {
        Self::new("rome-256", 2, 64, 2, 4)
    }

    /// Hypothetical 8-socket Zen machine: 64 cores/socket in 4-core CCXs,
    /// SMT2 → 1024 CPUs. Beyond any machine in the paper — used by the
    /// scale sweeps to stress the simulator's dense runtime state.
    pub fn zen_1024() -> Self {
        Self::new("zen-1024", 8, 64, 2, 4)
    }

    /// A small single-socket machine for unit tests.
    pub fn test_small(cores: u16) -> Self {
        Self::new("test-small", 1, cores, 2, cores)
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of logical CPUs.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> u16 {
        self.sockets
    }

    /// Physical cores per socket.
    pub fn cores_per_socket(&self) -> u16 {
        self.cores_per_socket
    }

    /// SMT threads per core.
    pub fn threads_per_core(&self) -> u8 {
        self.threads_per_core
    }

    /// Placement info for one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn info(&self, cpu: CpuId) -> CpuInfo {
        self.cpus[cpu.index()]
    }

    /// All CPU ids.
    pub fn all_cpus(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..self.cpus.len()).map(|i| CpuId(i as u16))
    }

    /// A [`CpuSet`] of every CPU.
    pub fn all_cpus_set(&self) -> CpuSet {
        CpuSet::first_n(self.num_cpus())
    }

    /// The SMT sibling of `cpu`, if the machine has SMT2.
    pub fn sibling(&self, cpu: CpuId) -> Option<CpuId> {
        if self.threads_per_core < 2 {
            return None;
        }
        let per_thread = self.sockets as usize * self.cores_per_socket as usize;
        let i = cpu.index();
        Some(CpuId(if i < per_thread {
            (i + per_thread) as u16
        } else {
            (i - per_thread) as u16
        }))
    }

    /// All CPUs on the same socket as `cpu` (including itself).
    pub fn socket_cpus(&self, socket: u16) -> CpuSet {
        self.all_cpus()
            .filter(|&c| self.cpus[c.index()].socket == socket)
            .collect()
    }

    /// All CPUs in the same CCX as `cpu` (including itself).
    pub fn ccx_cpus(&self, ccx: u16) -> CpuSet {
        self.all_cpus()
            .filter(|&c| self.cpus[c.index()].ccx == ccx)
            .collect()
    }

    /// All CPUs sharing the physical core of `cpu` (itself + sibling).
    pub fn core_cpus(&self, cpu: CpuId) -> CpuSet {
        let mut s = CpuSet::empty();
        s.add(cpu);
        if let Some(sib) = self.sibling(cpu) {
            s.add(sib);
        }
        s
    }

    /// True if `a` and `b` are on the same socket.
    pub fn same_socket(&self, a: CpuId, b: CpuId) -> bool {
        self.cpus[a.index()].socket == self.cpus[b.index()].socket
    }

    /// True if `a` and `b` share a CCX (L3).
    pub fn same_ccx(&self, a: CpuId, b: CpuId) -> bool {
        self.cpus[a.index()].ccx == self.cpus[b.index()].ccx
    }

    /// True if `a` and `b` share a physical core.
    pub fn same_core(&self, a: CpuId, b: CpuId) -> bool {
        self.cpus[a.index()].core == self.cpus[b.index()].core
    }

    /// A coarse inter-CPU distance used for migration-cost heuristics:
    /// 0 = same CPU, 1 = SMT sibling, 2 = same CCX, 3 = same socket,
    /// 4 = cross socket.
    pub fn distance(&self, a: CpuId, b: CpuId) -> u8 {
        if a == b {
            0
        } else if self.same_core(a, b) {
            1
        } else if self.same_ccx(a, b) {
            2
        } else if self.same_socket(a, b) {
            3
        } else {
            4
        }
    }

    /// CCX ids adjacent to `ccx`, nearest first (same socket, then remote).
    pub fn ccx_neighbors(&self, ccx: u16) -> Vec<u16> {
        let ccx_per_socket = self.cores_per_socket.div_ceil(self.cores_per_ccx);
        let total_ccx = self.sockets * ccx_per_socket;
        let socket = ccx / ccx_per_socket;
        let mut out: Vec<u16> = (0..total_ccx).filter(|&c| c != ccx).collect();
        out.sort_by_key(|&c| {
            let same = (c / ccx_per_socket) == socket;
            let dist = c.abs_diff(ccx);
            (!same, dist)
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_shape() {
        let t = Topology::skylake_112();
        assert_eq!(t.num_cpus(), 112);
        assert_eq!(t.num_sockets(), 2);
        // Sibling pairing: CPU 0's sibling is CPU 56.
        assert_eq!(t.sibling(CpuId(0)), Some(CpuId(56)));
        assert_eq!(t.sibling(CpuId(56)), Some(CpuId(0)));
        assert!(t.same_core(CpuId(0), CpuId(56)));
        assert_eq!(t.info(CpuId(0)).socket, 0);
        assert_eq!(t.info(CpuId(28)).socket, 1);
    }

    #[test]
    fn rome_ccx_grouping() {
        let t = Topology::rome_256();
        assert_eq!(t.num_cpus(), 256);
        // Cores 0..3 share CCX 0; core 4 starts CCX 1.
        assert!(t.same_ccx(CpuId(0), CpuId(3)));
        assert!(!t.same_ccx(CpuId(0), CpuId(4)));
        // A core's SMT sibling is in the same CCX.
        let sib = t.sibling(CpuId(0)).unwrap();
        assert!(t.same_ccx(CpuId(0), sib));
        // 16 CCXs per socket, 32 total.
        let n0 = t.ccx_cpus(0);
        assert_eq!(n0.count(), 8);
    }

    #[test]
    fn distance_ordering() {
        let t = Topology::rome_256();
        let a = CpuId(0);
        assert_eq!(t.distance(a, a), 0);
        assert_eq!(t.distance(a, t.sibling(a).unwrap()), 1);
        assert_eq!(t.distance(a, CpuId(1)), 2); // same CCX, different core
        assert_eq!(t.distance(a, CpuId(10)), 3); // same socket, other CCX
        assert_eq!(t.distance(a, CpuId(64)), 4); // other socket
    }

    #[test]
    fn socket_cpus_partition_machine() {
        let t = Topology::haswell_72();
        let s0 = t.socket_cpus(0);
        let s1 = t.socket_cpus(1);
        assert_eq!(s0.count() + s1.count(), 72);
        assert!(s0.and(&s1).is_empty());
    }

    #[test]
    fn ccx_neighbors_prefer_same_socket() {
        let t = Topology::rome_256();
        let n = t.ccx_neighbors(0);
        // First neighbors are on socket 0 (ccx 1..15), remote socket last.
        assert_eq!(n[0], 1);
        assert!(n[..15].iter().all(|&c| c < 16));
        assert!(n[15..].iter().all(|&c| c >= 16));
    }

    #[test]
    fn no_smt_machine_has_no_siblings() {
        let t = Topology::new("uniproc", 1, 4, 1, 4);
        assert_eq!(t.sibling(CpuId(0)), None);
        assert_eq!(t.core_cpus(CpuId(0)).count(), 1);
    }

    #[test]
    fn e5_socket_is_single_numa() {
        let t = Topology::e5_single_socket_24();
        assert_eq!(t.num_cpus(), 24);
        assert!(t.same_socket(CpuId(0), CpuId(23)));
        assert_eq!(t.sibling(CpuId(0)), Some(CpuId(12)));
    }
}
