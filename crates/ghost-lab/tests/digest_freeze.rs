//! Digest freeze: the DES results of all seven policies, pinned.
//!
//! These hashes were captured on the DES backend immediately *before* the
//! `GhostBackend` trait refactor that generalized `ghost-core` over
//! sim/live backends. The refactor's contract is that the DES backend is
//! byte-identical before and after: every policy, at every seed below,
//! must keep producing exactly these result hashes.
//!
//! If a hash changes, the trait indirection altered simulation behavior —
//! that is a bug in the refactor, not an expected drift. Do not re-pin
//! without understanding exactly which event ordering changed and why.
//!
//! Regenerate (only for an intentional semantic change) with:
//! `cargo test -p ghost-lab --test digest_freeze -- --nocapture` after
//! setting `PRINT_DIGESTS=1` in the environment.

use ghost_lab::scenario::{PolicyKind, Scenario, WorkloadSpec};
use ghost_sim::time::MILLIS;

/// (policy, seed, frozen result hash).
const FROZEN: &[(&str, u64, u64)] = &[
    ("centralized-fifo", 1, 0x0ac452b232b10472),
    ("centralized-fifo", 2, 0xebc4dd03827a0c9c),
    ("centralized-fifo", 3, 0x54ed523bff637387),
    ("per-cpu", 1, 0x3270543848b48dad),
    ("per-cpu", 2, 0xae56052dae2377ec),
    ("per-cpu", 3, 0x512723b9d76ed921),
    ("shinjuku", 1, 0x525edb1e1fce31bb),
    ("shinjuku", 2, 0x573a21a15ac00641),
    ("shinjuku", 3, 0x394f24d8afda7148),
    ("snap", 1, 0x860fc9df7a2fb5dd),
    ("snap", 2, 0x8522150d5136c800),
    ("snap", 3, 0x811bf4542750fc6d),
    ("core-sched", 1, 0xdcfe5af1c0de90f4),
    ("core-sched", 2, 0x33aeb931abbf5011),
    ("core-sched", 3, 0x7138615264227c58),
    // Shinjuku+Shenango matches plain Shinjuku on the pulse workload: the
    // Shenango layer only diverges when core reallocation triggers, which
    // this workload never does. The rows are still pinned independently so
    // a refactor-induced divergence in either policy is caught.
    ("shinjuku-shenango", 1, 0x525edb1e1fce31bb),
    ("shinjuku-shenango", 2, 0x573a21a15ac00641),
    ("shinjuku-shenango", 3, 0x394f24d8afda7148),
    ("search", 1, 0x2982f5e47b365524),
    ("search", 2, 0x1b4e2b162d856d9d),
    ("search", 3, 0x77362c0343528335),
];

fn scenario(policy: PolicyKind, seed: u64) -> Scenario {
    Scenario::builder()
        .name(format!("freeze/{}/seed={seed}", policy.name()))
        .cpus(8)
        .policy(policy)
        .workload(WorkloadSpec::pulse(5))
        .seed(seed)
        .horizon(50 * MILLIS)
        .watchdog(20 * MILLIS)
        .trace_capacity(1 << 16)
        .build()
}

#[test]
fn all_seven_policies_des_digests_are_frozen() {
    let print = std::env::var("PRINT_DIGESTS").is_ok();
    let mut failures = Vec::new();
    for policy in PolicyKind::EVERY {
        for seed in 1..=3u64 {
            let summary = scenario(policy, seed).run();
            if print {
                println!(
                    "    (\"{}\", {seed}, {:#018x}),",
                    policy.name(),
                    summary.hash
                );
                continue;
            }
            let frozen = FROZEN
                .iter()
                .find(|(name, s, _)| *name == policy.name() && *s == seed)
                .unwrap_or_else(|| panic!("no frozen digest for {}/{seed}", policy.name()));
            if summary.hash != frozen.2 {
                failures.push(format!(
                    "{}/seed={seed}: got {:#018x}, frozen {:#018x}",
                    policy.name(),
                    summary.hash,
                    frozen.2
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "DES digests drifted from the pre-refactor freeze:\n{}",
        failures.join("\n")
    );
}
