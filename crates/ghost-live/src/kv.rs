//! An in-process key-value service scheduled by a ghOSt policy.
//!
//! The live smoke workload: a sharded hash map served by worker OS
//! threads, driven closed-loop (a fixed request budget kept in flight by
//! reinjecting on completion) or open-loop (a load-generator thread
//! pushing at a fixed rate and kicking blocked workers). Workers run only
//! when the live kernel dispatches them — an unmodified policy's
//! transaction commits are what unpark these threads — and every request
//! records an enqueue→completion latency into a log-scale histogram.

use crate::kernel::LiveShared;
use crate::worker::{WorkerCmd, WorkerCtl};
use ghost_core::GhostRuntime;
use ghost_metrics::LogHistogram;
use ghost_sim::class::OffCpuReason;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MILLIS};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Requests a worker serves before voluntarily yielding its lane (the
/// live analogue of a timeslice; policies that preempt sooner do so via
/// the preempt flag).
const YIELD_BATCH: usize = 64;

/// One KV operation.
#[derive(Debug, Clone, Copy)]
pub struct KvRequest {
    /// Key to read or write.
    pub key: u64,
    /// True for PUT, false for GET.
    pub put: bool,
    /// Backend time the request entered the queue.
    pub enqueued_at: Nanos,
    /// Backend time after which the request is expired off the queue;
    /// 0 means never (degraded-mode machinery disabled).
    pub deadline: Nanos,
    /// Times this request has been re-queued after expiring.
    pub retries: u32,
}

/// Graceful-degradation limits for a [`KvService`] whose scheduler can go
/// away (§3.4 degraded mode: agent dead, enclave threads shed to CFS).
/// With `request_timeout == 0` (the default) none of the machinery runs
/// and the service behaves exactly as before.
#[derive(Debug, Clone, Copy)]
pub struct DegradedLimits {
    /// A queued request older than this is expired at pop time; 0
    /// disables timeouts, retries, and shedding entirely.
    pub request_timeout: Nanos,
    /// An expired request is re-queued at most this many times before it
    /// counts as failed.
    pub max_retries: u32,
    /// Delay before an expired request becomes eligible again, doubled
    /// per retry.
    pub retry_backoff: Nanos,
    /// While the service is marked degraded, new requests are shed at
    /// admission once the queue is this deep.
    pub shed_depth: usize,
}

impl Default for DegradedLimits {
    fn default() -> Self {
        Self {
            request_timeout: 0,
            max_retries: 3,
            retry_backoff: MILLIS,
            shed_depth: 1024,
        }
    }
}

/// Degraded-mode counters (see [`KvService::degraded_stats`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct DegradedStats {
    /// Requests rejected at admission while degraded (load shedding).
    pub shed: u64,
    /// Requests expired off the queue past their deadline.
    pub timeouts: u64,
    /// Expired requests re-queued for another attempt.
    pub retries: u64,
    /// Requests that exhausted their retry budget.
    pub failed: u64,
}

/// A sharded in-memory KV store with a shared request queue.
pub struct KvService {
    shards: Vec<Mutex<HashMap<u64, u64>>>,
    queue: Mutex<VecDeque<KvRequest>>,
    /// Requests completed (all workers).
    pub completed: AtomicU64,
    /// Requests issued so far (closed loop).
    issued: AtomicU64,
    /// Closed-loop request budget; 0 means open loop (no reinjection).
    target: AtomicU64,
    /// Per-request service time floor, enforced by busy-spinning.
    service_ns: u64,
    /// Merged enqueue→completion latencies (workers fold their local
    /// histograms in when they exit).
    latencies: Mutex<LogHistogram>,
    /// Degraded-mode limits (inert unless `request_timeout > 0`).
    limits: DegradedLimits,
    /// True while the embedding marks the enclave degraded (agent dead,
    /// recovery in flight); gates admission-time load shedding.
    degraded: AtomicBool,
    /// Expired requests awaiting their retry backoff: `(eligible_at,
    /// request)`, pumped back into the queue by [`KvService::pump_delayed`].
    delayed: Mutex<Vec<(Nanos, KvRequest)>>,
    shed: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    failed: AtomicU64,
}

impl KvService {
    /// A service with `shards` hash-map shards and `service_ns` of
    /// busy-work per request, without degraded-mode machinery.
    pub fn new(shards: usize, service_ns: u64) -> Arc<Self> {
        Self::with_limits(shards, service_ns, DegradedLimits::default())
    }

    /// A service with graceful-degradation limits (timeouts, bounded
    /// retry with backoff, load shedding while degraded).
    pub fn with_limits(shards: usize, service_ns: u64, limits: DegradedLimits) -> Arc<Self> {
        Arc::new(Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            queue: Mutex::new(VecDeque::new()),
            completed: AtomicU64::new(0),
            issued: AtomicU64::new(0),
            target: AtomicU64::new(0),
            service_ns,
            latencies: Mutex::new(LogHistogram::new()),
            limits,
            degraded: AtomicBool::new(false),
            delayed: Mutex::new(Vec::new()),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        })
    }

    /// Marks the service (un)degraded. The embedding polls
    /// `GhostRuntime::enclave_degraded` and mirrors it here; while set,
    /// admission sheds load past `shed_depth`.
    pub fn set_degraded(&self, on: bool) {
        self.degraded.store(on, Ordering::Release);
    }

    /// True while load shedding is armed.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Snapshot of the degraded-mode counters.
    pub fn degraded_stats(&self) -> DegradedStats {
        DegradedStats {
            shed: self.shed.load(Ordering::Acquire),
            timeouts: self.timeouts.load(Ordering::Acquire),
            retries: self.retries.load(Ordering::Acquire),
            failed: self.failed.load(Ordering::Acquire),
        }
    }

    /// Requests that reached a terminal state: served, shed at
    /// admission, or failed after exhausting retries. A degraded-mode
    /// closed loop is done when this reaches the target.
    pub fn accounted_count(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
            + self.shed.load(Ordering::Acquire)
            + self.failed.load(Ordering::Acquire)
    }

    /// Enqueues one request. Returns false if it was shed by
    /// degraded-mode admission control (the client's fast-fail).
    pub fn push(&self, key: u64, put: bool, now: Nanos) -> bool {
        if self.limits.request_timeout > 0
            && self.degraded.load(Ordering::Acquire)
            && self.queue.lock().unwrap().len() >= self.limits.shed_depth
        {
            self.shed.fetch_add(1, Ordering::AcqRel);
            return false;
        }
        let deadline = if self.limits.request_timeout > 0 {
            now.saturating_add(self.limits.request_timeout)
        } else {
            0
        };
        self.queue.lock().unwrap().push_back(KvRequest {
            key,
            put,
            enqueued_at: now,
            deadline,
            retries: 0,
        });
        true
    }

    /// Pops the oldest pending request.
    pub fn pop(&self) -> Option<KvRequest> {
        self.queue.lock().unwrap().pop_front()
    }

    /// Pops the oldest pending request that has not expired. Expired
    /// requests are re-queued after a backoff (up to `max_retries`) or
    /// counted failed — the worker never serves stale work.
    pub fn pop_ready(&self, now: Nanos) -> Option<KvRequest> {
        self.pump_delayed(now);
        loop {
            let req = self.queue.lock().unwrap().pop_front()?;
            if req.deadline == 0 || now < req.deadline {
                return Some(req);
            }
            self.timeouts.fetch_add(1, Ordering::AcqRel);
            if req.retries < self.limits.max_retries {
                self.retries.fetch_add(1, Ordering::AcqRel);
                let backoff = self
                    .limits
                    .retry_backoff
                    .saturating_mul(1 << req.retries.min(16));
                let mut r = req;
                r.retries += 1;
                r.deadline = now
                    .saturating_add(backoff)
                    .saturating_add(self.limits.request_timeout);
                self.delayed.lock().unwrap().push((now + backoff, r));
            } else {
                self.failed.fetch_add(1, Ordering::AcqRel);
                // The slot fast-failed; keep the closed loop loaded.
                self.reinject(now);
            }
        }
    }

    /// Moves delayed (backing-off) retries whose eligibility time has
    /// passed back into the queue. Called on every `pop_ready`; drive
    /// loops should also call it periodically in case all workers are
    /// parked when a backoff expires.
    pub fn pump_delayed(&self, now: Nanos) {
        let mut delayed = self.delayed.lock().unwrap();
        if delayed.is_empty() {
            return;
        }
        let mut i = 0;
        while i < delayed.len() {
            if delayed[i].0 <= now {
                let (_, req) = delayed.swap_remove(i);
                self.queue.lock().unwrap().push_back(req);
            } else {
                i += 1;
            }
        }
    }

    /// True when no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().unwrap().is_empty()
    }

    /// Pending queue depth.
    pub fn depth(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Starts a closed loop: `concurrency` requests in flight, reinjected
    /// on completion until `total` have been issued. Returns how many were
    /// seeded (callers wake that many workers).
    pub fn start_closed_loop(&self, total: u64, concurrency: u64, now: Nanos) -> u64 {
        self.target.store(total, Ordering::Release);
        let seed = concurrency.min(total);
        for i in 0..seed {
            self.issued.fetch_add(1, Ordering::AcqRel);
            self.push(splitmix(i), i % 10 == 0, now);
        }
        seed
    }

    /// Total requests completed so far.
    pub fn completed_count(&self) -> u64 {
        self.completed.load(Ordering::Acquire)
    }

    /// Closed-loop budget (0 in open loop).
    pub fn target_count(&self) -> u64 {
        self.target.load(Ordering::Acquire)
    }

    /// Snapshot of the merged latency histogram.
    pub fn latency_histogram(&self) -> LogHistogram {
        self.latencies.lock().unwrap().clone()
    }

    /// Serves one request: shard lookup/update plus the configured
    /// busy-spin floor. Returns the completion time.
    fn serve(&self, req: &KvRequest) {
        let shard = &self.shards[(req.key as usize) % self.shards.len()];
        {
            let mut map = shard.lock().unwrap();
            if req.put {
                map.insert(req.key, req.key.wrapping_mul(31));
            } else {
                let _ = map.get(&req.key);
            }
        }
        if self.service_ns > 0 {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < self.service_ns {
                std::hint::spin_loop();
            }
        }
    }

    /// Closed-loop reinjection: after a slot reaches a terminal state,
    /// issue the next request if the budget allows. An admission shed
    /// fast-fails that slot (already counted) and the loop issues the
    /// next one, so shedding never strands the closed loop's in-flight
    /// concurrency.
    fn reinject(&self, now: Nanos) {
        let target = self.target.load(Ordering::Acquire);
        if target == 0 {
            return;
        }
        while self
            .issued
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < target).then_some(n + 1)
            })
            .is_ok()
        {
            let n = self.issued.load(Ordering::Acquire);
            if self.push(splitmix(n), n.is_multiple_of(10), now) {
                return;
            }
        }
    }
}

/// SplitMix64: cheap deterministic key stream without an RNG dependency.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e9b5);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Main loop of a KV worker OS thread. The worker runs a scheduling stint
/// only when dispatched onto a lane, ends the stint at queue-empty
/// (block), preempt flag (preempt), or batch boundary (yield), and
/// reports the transition to the live kernel — which posts the matching
/// `THREAD_*` message to the policy, exactly as the DES would.
pub(crate) fn worker_main(
    shared: Arc<LiveShared>,
    _rt: GhostRuntime,
    kv: Arc<KvService>,
    tid: Tid,
    ctl: Arc<WorkerCtl>,
) {
    let mut local = LogHistogram::new();
    // `MonotonicClock` is `Copy`: workers timestamp requests without
    // touching the state lock on the serve path.
    let clock = { shared.state.lock().unwrap().clock };
    'outer: loop {
        match ctl.wait() {
            WorkerCmd::Exit => break 'outer,
            WorkerCmd::Park => continue,
            WorkerCmd::Free => {
                // Unmanaged (not attached, or shed to CFS): serve freely on
                // the host scheduler until the command changes.
                loop {
                    match ctl.peek().0 {
                        WorkerCmd::Free => {}
                        WorkerCmd::Exit => break 'outer,
                        _ => continue 'outer,
                    }
                    let now = clock.now();
                    if let Some(req) = kv.pop_ready(now) {
                        kv.serve(&req);
                        local.record(now.saturating_sub(req.enqueued_at));
                        kv.completed.fetch_add(1, Ordering::AcqRel);
                        kv.reinject(now);
                    } else {
                        std::thread::sleep(Duration::from_micros(100));
                    }
                }
            }
            WorkerCmd::Run { cpu } => {
                let mut served = 0usize;
                let reason = loop {
                    if ctl.preempt_pending() {
                        break OffCpuReason::Preempt;
                    }
                    let Some(req) = kv.pop_ready(clock.now()) else {
                        break OffCpuReason::Block;
                    };
                    kv.serve(&req);
                    let now = clock.now();
                    local.record(now.saturating_sub(req.enqueued_at));
                    kv.completed.fetch_add(1, Ordering::AcqRel);
                    kv.reinject(now);
                    served += 1;
                    if served >= YIELD_BATCH {
                        break OffCpuReason::Yield;
                    }
                };
                // End the stint under the state lock. The queue-empty
                // check is repeated here because a request pushed after
                // our last pop but before this lock would otherwise be
                // stranded: its wake saw us Running and no-opped.
                let mut st = shared.state.lock().unwrap();
                let reason = if reason == OffCpuReason::Block && !kv.is_empty() {
                    OffCpuReason::Yield
                } else {
                    reason
                };
                st.end_stint(tid, cpu, reason);
                drop(st);
            }
        }
    }
    kv.latencies.lock().unwrap().merge(&local);
}

/// Drives the service open-loop: pushes `batch` requests every `period`,
/// kicking one blocked worker per pushed request, for `duration`. Returns
/// the number of requests pushed. Runs on the caller's thread.
pub fn open_loop_drive(
    kernel: &crate::kernel::LiveKernel,
    kv: &KvService,
    workers: &[Tid],
    batch: u64,
    period: Duration,
    duration: Duration,
) -> u64 {
    let start = Instant::now();
    let mut pushed = 0u64;
    while start.elapsed() < duration {
        let now = kernel.now();
        for i in 0..batch {
            kv.push(
                splitmix(pushed.wrapping_add(i)),
                (pushed + i).is_multiple_of(10),
                now,
            );
        }
        pushed += batch;
        for _ in 0..batch {
            if !kernel.wake_one_blocked(workers) {
                break;
            }
        }
        std::thread::sleep(period);
    }
    pushed
}

/// Blocks until `kv` completes `count` requests or `timeout` passes;
/// returns true on completion.
pub fn await_completion(kv: &KvService, count: u64, timeout: Duration) -> bool {
    let start = Instant::now();
    while kv.completed_count() < count {
        if start.elapsed() > timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_spreads_keys() {
        let a = splitmix(1);
        let b = splitmix(2);
        assert_ne!(a, b);
    }

    #[test]
    fn closed_loop_reinjects_to_target() {
        let kv = KvService::new(4, 0);
        let seeded = kv.start_closed_loop(10, 4, 0);
        assert_eq!(seeded, 4);
        let mut done = 0;
        while let Some(req) = kv.pop() {
            kv.serve(&req);
            kv.completed.fetch_add(1, Ordering::AcqRel);
            kv.reinject(1);
            done += 1;
        }
        assert_eq!(done, 10);
        assert_eq!(kv.completed_count(), 10);
    }

    #[test]
    fn degraded_admission_sheds_past_depth() {
        let limits = DegradedLimits {
            request_timeout: MILLIS,
            shed_depth: 2,
            ..DegradedLimits::default()
        };
        let kv = KvService::with_limits(1, 0, limits);
        assert!(kv.push(1, false, 0));
        assert!(kv.push(2, false, 0));
        // Not degraded: depth is irrelevant, admission stays open.
        assert!(kv.push(3, false, 0));
        kv.set_degraded(true);
        assert!(!kv.push(4, false, 0));
        assert_eq!(kv.degraded_stats().shed, 1);
        assert_eq!(kv.accounted_count(), 1);
        // Recovery re-opens admission.
        kv.set_degraded(false);
        assert!(kv.push(5, false, 0));
        assert_eq!(kv.depth(), 4);
    }

    #[test]
    fn expired_requests_retry_with_backoff_then_fail() {
        let limits = DegradedLimits {
            request_timeout: 10,
            max_retries: 1,
            retry_backoff: 5,
            shed_depth: usize::MAX,
        };
        let kv = KvService::with_limits(1, 0, limits);
        assert!(kv.push(7, false, 0)); // deadline 10
                                       // Not yet expired: served normally.
        assert!(kv.pop_ready(9).is_some());
        assert!(kv.push(8, false, 0)); // deadline 10
                                       // Expired at pop: requeued with backoff, nothing to serve now.
        assert!(kv.pop_ready(20).is_none());
        let s = kv.degraded_stats();
        assert_eq!((s.timeouts, s.retries, s.failed), (1, 1, 0));
        // Before the backoff elapses the retry stays delayed.
        assert!(kv.pop_ready(24).is_none());
        // After the backoff it is eligible again (fresh deadline)...
        let req = kv.pop_ready(26).expect("retry became eligible");
        assert_eq!(req.key, 8);
        assert_eq!(req.retries, 1);
        // ...and a retry that expires again exhausts the budget.
        assert!(kv.push(9, false, 100)); // deadline 110
        assert!(kv.pop_ready(200).is_none()); // retry 1, eligible 205
        assert!(kv.pop_ready(400).is_none()); // expired again: failed
        let s = kv.degraded_stats();
        assert_eq!((s.timeouts, s.failed), (3, 1));
        assert_eq!(kv.accounted_count(), 1);
    }

    #[test]
    fn shedding_never_strands_the_closed_loop() {
        // Every shed slot fast-fails and the reinjection loop issues the
        // next, so completed + shed always converges to the target even
        // if the service degrades mid-run with a zero shed depth.
        let limits = DegradedLimits {
            request_timeout: MILLIS,
            shed_depth: 0,
            ..DegradedLimits::default()
        };
        let kv = KvService::with_limits(4, 0, limits);
        let seeded = kv.start_closed_loop(10, 4, 0);
        assert_eq!(seeded, 4);
        kv.set_degraded(true);
        while let Some(req) = kv.pop_ready(1) {
            kv.serve(&req);
            kv.completed.fetch_add(1, Ordering::AcqRel);
            kv.reinject(1);
        }
        let s = kv.degraded_stats();
        assert_eq!(kv.completed_count(), 4);
        assert_eq!(s.shed, 6);
        assert_eq!(kv.accounted_count(), 10);
    }
}
