//! The §4.3 scenario in miniature: Snap packet-processing workers
//! scheduled by MicroQuanta (the production soft-realtime baseline) vs a
//! ghOSt centralized FIFO policy, quiet mode.
//!
//! ```text
//! cargo run --release --example snap_latency
//! ```

use ghost::baselines::microquanta::{MicroQuanta, MicroQuantaConfig};
use ghost::core::enclave::EnclaveConfig;
use ghost::core::runtime::GhostRuntime;
use ghost::lab::Scenario;
use ghost::metrics::Table;
use ghost::policies::snap::{SnapPolicy, SNAP_COOKIE};
use ghost::sim::kernel::ThreadSpec;
use ghost::sim::time::SECS;
use ghost::sim::CLASS_RT;
use ghost::workloads::snap::{SnapApp, SnapConfig, SnapResults};

fn run(use_ghost: bool) -> SnapResults {
    // One 28-core SMT socket, 56 logical CPUs.
    let (mut kernel, _sink) = Scenario::builder().name("snap").cpus(56).build_kernel();
    if !use_ghost {
        let n = kernel.state.topo.num_cpus();
        kernel.install_class(
            CLASS_RT,
            Box::new(MicroQuanta::new(n, MicroQuantaConfig::default())),
        );
    }
    let app_id = kernel.state.next_app_id();
    let mut app = SnapApp::new(SnapConfig::default(), app_id);
    let mut workers = Vec::new();
    for i in 0..6 {
        let w = kernel.spawn(
            ThreadSpec::workload(&format!("engine{i}"), &kernel.state.topo)
                .app(app_id)
                .cookie(SNAP_COOKIE),
        );
        let s = kernel
            .spawn(ThreadSpec::workload(&format!("server{i}"), &kernel.state.topo).app(app_id));
        app.add_stream(w, s);
        workers.push(w);
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));
    if use_ghost {
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus = kernel.state.topo.all_cpus_set();
        let enclave = runtime.launch_enclave(
            &mut kernel,
            cpus,
            EnclaveConfig::centralized("snap"),
            Box::new(SnapPolicy::new()),
        );
        for &w in &workers {
            enclave.attach_thread(&mut kernel.state, w);
        }
    } else {
        for &w in &workers {
            kernel.state.move_to_class(w, CLASS_RT);
        }
    }
    kernel.run_until(3 * SECS);
    kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<SnapApp>()
        .expect("snap app")
        .results()
}

fn main() {
    println!("6 streams x 10k msg/s on one 56-CPU socket, quiet mode...");
    let mq = run(false);
    let gh = run(true);
    let mut t = Table::new(vec![
        "percentile",
        "MicroQ 64B",
        "ghOSt 64B",
        "MicroQ 64kB",
        "ghOSt 64kB",
    ])
    .with_title("Snap round-trip latency (us)");
    for p in [50.0, 90.0, 99.0, 99.9] {
        t.row(vec![
            format!("{p}%"),
            format!("{:.0}", mq.rtt_64b.percentile(p) as f64 / 1e3),
            format!("{:.0}", gh.rtt_64b.percentile(p) as f64 / 1e3),
            format!("{:.0}", mq.rtt_64kb.percentile(p) as f64 / 1e3),
            format!("{:.0}", gh.rtt_64kb.percentile(p) as f64 / 1e3),
        ]);
    }
    t.print();
    println!(
        "\nMicroQuanta throttles workers to 0.9 ms per 1 ms period (blackouts\n\
         up to 0.1 ms); the ghOSt policy relocates workers instead (§4.3)."
    );
}
