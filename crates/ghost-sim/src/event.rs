//! The discrete-event queue driving the simulation.

use crate::app::AppId;
use crate::thread::Tid;
use crate::time::Nanos;
use crate::topology::CpuId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
///
/// Events that can become stale (because the thing they refer to changed
/// state in the meantime) carry a generation counter checked at dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ev {
    /// A running thread's current work segment completes.
    SegmentEnd { tid: Tid, stint: u64 },
    /// Periodic timer tick on a CPU.
    Tick { cpu: CpuId },
    /// A context switch on `cpu` finishes.
    CtxSwitchDone { cpu: CpuId, seq: u64 },
    /// Re-run the scheduler on `cpu` (e.g., IPI arrival).
    Resched { cpu: CpuId },
    /// Re-activate a spinning agent thread.
    AgentLoop { tid: Tid, gen: u64 },
    /// An agent finishes its work and leaves the CPU: blocking
    /// (`block = true`) or yielding while staying runnable.
    AgentPark { tid: Tid, gen: u64, block: bool },
    /// Wake a thread at a future time.
    Wake { tid: Tid },
    /// A timer armed by an [`crate::app::App`].
    AppTimer { app: AppId, key: u64 },
    /// A timer armed by the [`crate::agent::AgentDriver`].
    DriverTimer { key: u64 },
    /// A one-shot fault from the configured [`crate::faults::FaultPlan`]
    /// fires; `idx` indexes into the plan's events.
    Fault { idx: usize },
}

#[derive(Debug)]
struct Entry {
    at: Nanos,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, with the
        // insertion sequence as a deterministic tiebreak.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use ghost_sim::event::{Ev, EventQueue};
/// use ghost_sim::topology::CpuId;
///
/// let mut q = EventQueue::new();
/// q.push(20, Ev::Resched { cpu: CpuId(1) });
/// q.push(10, Ev::Resched { cpu: CpuId(0) });
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!(t, 10);
/// assert_eq!(ev, Ev::Resched { cpu: CpuId(0) });
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `ev` at absolute time `at`.
    pub fn push(&mut self, at: Nanos, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, Ev)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Ev::Wake { tid: Tid(3) });
        q.push(10, Ev::Wake { tid: Tid(1) });
        q.push(20, Ev::Wake { tid: Tid(2) });
        let order: Vec<Nanos> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, Ev::Wake { tid: Tid(1) });
        q.push(5, Ev::Wake { tid: Tid(2) });
        q.push(5, Ev::Wake { tid: Tid(3) });
        let order: Vec<Tid> = std::iter::from_fn(|| {
            q.pop().map(|(_, ev)| match ev {
                Ev::Wake { tid } => tid,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(order, vec![Tid(1), Tid(2), Tid(3)]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(7, Ev::Tick { cpu: CpuId(0) });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 1);
    }
}
