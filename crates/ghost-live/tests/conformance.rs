//! Backend-conformance suite: the same ghOSt ABI contracts checked
//! against BOTH backends — the discrete-event simulator (`ghost-sim`)
//! and the live real-thread kernel (`ghost-live`).
//!
//! Three contracts, each verified per backend:
//!
//! 1. **Scheduling invariants** — an unmodified policy drives a workload
//!    and the recorded trace passes `ghost-trace`'s invariant checker:
//!    wake-before-block ordering (a wakeup for an unblocked thread, or a
//!    dispatch of a never-woken one, is a violation), exclusive lane
//!    occupancy, and commit pairing (every `TxnCommitOk` consumes a
//!    matching `TxnArmed`).
//! 2. **`ESTALE` on a stale seqnum** — a commit carrying an out-of-date
//!    `Tseq` must be rejected with `TxnStatus::Stale` (§3.2), counted in
//!    `GhostStats::txns_stale`, and scheduling must recover.
//! 3. **Reconstruction after an agent crash** — with a standby
//!    configured, killing the global agent must respawn a fresh agent
//!    that reconstructs the enclave from status words (§3.4) and
//!    resumes scheduling, with zero CFS fallbacks.
//! 4. **Agent hang** — an `AgentHang` fault window freezes scheduling
//!    (activations spin uselessly) but the enclave survives and the
//!    workload completes once the window closes.
//! 5. **Agent slow** — an `AgentSlow` window genuinely stretches agent
//!    execution (virtual busy charge on the DES, wall-clock stall on
//!    the live loop) without breaking any invariant.
//! 6. **Queue overflow** — a `QueueOverflow` window drops messages
//!    (counted and traced); the §3.4 watchdog detects the resulting
//!    starvation and promotes a staged policy, whose status-word
//!    resync rescues the stranded threads.
//!
//! The DES side uses virtual time (`Kernel::run_until`); the live side
//! uses wall-clock deadlines and the checker's grace window sized for
//! host-scheduler jitter. The policies are shared verbatim between the
//! two — that is the point of the `GhostBackend` trait. So are the
//! fault plans: the same `FaultPlan` type drives both backends, with
//! `at`/`dur` read against the virtual clock or the wall clock.

use ghost_core::enclave::EnclaveConfig;
use ghost_core::msg::Message;
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::{Transaction, TxnStatus};
use ghost_core::StandbyConfig;
use ghost_live::{await_completion, KvService, LiveConfig, LiveKernel};
use ghost_policies::CentralizedFifo;
use ghost_sim::app::{App, Next};
use ghost_sim::faults::{FaultKind, FaultPlan};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MICROS, MILLIS, SECS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_trace::check::LIVE_GRACE_NS;
use ghost_trace::{check, TraceEvent, TraceRecord, TraceSink};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-request service-time floor for the live KV workload.
const SERVICE_NS: u64 = 2 * MICROS;

fn count(records: &[TraceRecord], f: impl Fn(&TraceEvent) -> bool) -> usize {
    records.iter().filter(|r| f(&r.event)).count()
}

// ---------------------------------------------------------------------
// Shared probe policy: provoke exactly one ESTALE, then schedule FIFO.
// ---------------------------------------------------------------------

/// Wraps [`CentralizedFifo`]: before the first successful probe, each
/// activation picks a runnable thread and commits it with `Tseq - 1` —
/// an out-of-date view by construction — and records the kernel's
/// verdict. The thread is requeued and scheduled normally afterwards,
/// so the workload still completes. Identical code runs on both
/// backends.
struct StaleProbe {
    inner: CentralizedFifo,
    stale_seen: Arc<AtomicBool>,
    /// Set when a probe commit returned something other than `Stale`
    /// (a conformance failure the test asserts on).
    wrong_verdict: Arc<AtomicBool>,
}

impl StaleProbe {
    fn new(stale_seen: Arc<AtomicBool>, wrong_verdict: Arc<AtomicBool>) -> Self {
        Self {
            inner: CentralizedFifo::new(),
            stale_seen,
            wrong_verdict,
        }
    }
}

impl GhostPolicy for StaleProbe {
    fn name(&self) -> &str {
        "stale-probe"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        self.inner.on_msg(msg, ctx);
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        if !self.stale_seen.load(Ordering::SeqCst) {
            if let Some(tid) = self.inner.pop_next() {
                let probe_cpu = ctx.idle_cpus().iter().next();
                let view = ctx.thread_view(tid);
                if let (Some(cpu), Some(view)) = (probe_cpu, view) {
                    // `Tseq` starts at 0 and a wakeup bumps it, so a
                    // queued-runnable thread has `tseq >= 1`; `tseq - 1`
                    // is a view the kernel must reject as stale.
                    if view.runnable && view.tseq >= 1 {
                        let mut txn = Transaction::new(tid, cpu).with_thread_seq(view.tseq - 1);
                        match ctx.commit_one(&mut txn) {
                            TxnStatus::Stale => self.stale_seen.store(true, Ordering::SeqCst),
                            TxnStatus::Committed => {
                                self.wrong_verdict.store(true, Ordering::SeqCst)
                            }
                            // Transient refusals (not-runnable race, busy
                            // CPU) are not verdicts on the seq contract;
                            // retry at the next activation.
                            _ => {}
                        }
                    }
                }
                self.inner.requeue(tid);
            }
        }
        self.inner.schedule(ctx);
    }
}

// ---------------------------------------------------------------------
// DES harness (the txn_races.rs pulse-workload idiom).
// ---------------------------------------------------------------------

/// Workload app: each thread runs a fixed segment then blocks; a
/// per-thread periodic timer re-arms the work.
struct PulseApp {
    conf: HashMap<Tid, (Nanos, Nanos)>, // (segment, period)
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
}

impl App for PulseApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "pulse"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        let (seg, period) = self.conf[&tid];
        if k.threads[tid.index()].state == ThreadState::Blocked {
            k.thread_mut(tid).remaining = seg;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("pulse thread has app");
        k.arm_app_timer(k.now + period, app, key);
    }

    fn on_segment_end(&mut self, tid: Tid, _k: &mut KernelState) -> Next {
        *self.completions.lock().unwrap().entry(tid).or_insert(0) += 1;
        Next::Block
    }
}

struct DesSetup {
    kernel: Kernel,
    runtime: GhostRuntime,
    enclave: ghost_core::runtime::EnclaveHandle,
    threads: Vec<Tid>,
    completions: Arc<Mutex<HashMap<Tid, u64>>>,
    sink: TraceSink,
}

fn des_setup(
    config: EnclaveConfig,
    policy: Box<dyn GhostPolicy>,
    n: usize,
    faults: FaultPlan,
) -> DesSetup {
    let sink = TraceSink::recording(1, 1 << 17);
    let mut kernel = Kernel::new(
        Topology::test_small(2), // 4 CPUs.
        KernelConfig {
            trace: sink.clone(),
            faults,
            ..KernelConfig::default()
        },
    );
    let ncpus = kernel.state.topo.num_cpus();
    let runtime = GhostRuntime::new(ncpus);
    let cpus: CpuSet = (1..ncpus as u16).map(CpuId).collect();
    let enclave = runtime.launch_enclave(&mut kernel, cpus, config, policy);

    let app = kernel.state.next_app_id();
    let completions = Arc::new(Mutex::new(HashMap::new()));
    let mut conf = HashMap::new();
    let mut threads = Vec::new();
    for i in 0..n {
        let tid = kernel.spawn(ThreadSpec::workload(&format!("w{i}"), &kernel.state.topo).app(app));
        conf.insert(tid, (100 * MICROS, MILLIS));
        threads.push(tid);
    }
    kernel.add_app(Box::new(PulseApp {
        conf,
        completions: Arc::clone(&completions),
    }));
    for &tid in &threads {
        enclave.attach_thread(&mut kernel.state, tid);
    }
    for (i, &tid) in threads.iter().enumerate() {
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 10_000, app, tid.0 as u64);
    }
    DesSetup {
        kernel,
        runtime,
        enclave,
        threads,
        completions,
        sink,
    }
}

fn des_total_completions(s: &DesSetup) -> u64 {
    s.completions.lock().unwrap().values().sum()
}

// ---------------------------------------------------------------------
// Live harness: a small closed-loop KV run under a given policy.
// ---------------------------------------------------------------------

struct LiveSetup {
    kernel: LiveKernel,
    enclave: ghost_core::runtime::EnclaveHandle,
    workers: Vec<Tid>,
    kv: Arc<KvService>,
    total: u64,
}

fn live_setup(
    config: EnclaveConfig,
    policy: Box<dyn GhostPolicy>,
    total: u64,
    faults: FaultPlan,
) -> LiveSetup {
    let cpus = 2;
    let kernel = LiveKernel::new(LiveConfig {
        cpus,
        trace: TraceSink::recording(cpus, 1 << 20),
        faults,
        ..LiveConfig::default()
    });
    let enclave = kernel.launch_enclave(CpuSet::first_n(cpus), config, policy);
    let kv = KvService::new(16, SERVICE_NS);
    let workers: Vec<_> = (0..cpus)
        .map(|i| kernel.spawn_kv_worker(&format!("conf-kv-{i}"), Arc::clone(&kv)))
        .collect();
    for &tid in &workers {
        kernel.attach(&enclave, tid);
    }
    kv.start_closed_loop(total, 2 * workers.len() as u64, kernel.now());
    for &tid in &workers {
        kernel.wake(tid);
    }
    LiveSetup {
        kernel,
        enclave,
        workers,
        kv,
        total,
    }
}

/// Drives the closed loop until `target` completions (kicking blocked
/// workers, like the smoke harness) or the deadline passes.
fn live_drive_until(s: &LiveSetup, target: u64, deadline: Duration) -> bool {
    let end = Instant::now() + deadline;
    while s.kv.completed_count() < target {
        if Instant::now() > end {
            return false;
        }
        if s.kv.depth() > 0 {
            s.kernel.wake_one_blocked(&s.workers);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

// ---------------------------------------------------------------------
// 1. Scheduling invariants (wake-before-block, occupancy, pairing).
// ---------------------------------------------------------------------

#[test]
fn des_invariants_and_commit_pairing_hold() {
    let mut s = des_setup(
        EnclaveConfig::centralized("conf-des"),
        Box::new(CentralizedFifo::new()),
        3,
        FaultPlan::none(),
    );
    s.kernel.run_until(200 * MILLIS);

    assert!(des_total_completions(&s) >= 100, "workload barely ran");
    assert_eq!(s.sink.dropped(), 0);
    let records = s.sink.snapshot();
    let switches = count(&records, |e| matches!(e, TraceEvent::SchedSwitch { .. }));
    let armed = count(&records, |e| matches!(e, TraceEvent::TxnArmed { .. }));
    let ok = count(&records, |e| matches!(e, TraceEvent::TxnCommitOk { .. }));
    assert!(switches > 0 && ok > 0, "no scheduling traced");
    assert_eq!(armed, ok, "unpaired transaction arm/commit");
    check::assert_clean(&records);
}

#[test]
fn live_invariants_and_commit_pairing_hold() {
    let s = live_setup(
        EnclaveConfig::centralized("conf-live").with_watchdog(5 * SECS),
        Box::new(CentralizedFifo::new()),
        5_000,
        FaultPlan::none(),
    );
    assert!(
        live_drive_until(&s, s.total, Duration::from_secs(30)),
        "closed loop stalled at {}/{}",
        s.kv.completed_count(),
        s.total
    );
    assert!(await_completion(&s.kv, s.total, Duration::from_secs(1)));

    let records = s.kernel.trace_snapshot();
    let ok = count(&records, |e| matches!(e, TraceEvent::TxnCommitOk { .. }));
    assert!(ok > 0, "no commits traced: the policy never scheduled");
    // Same rules as the DES run: wake-before-block ordering, exclusive
    // lane occupancy, commit pairing — with a wall-clock grace window.
    let violations = check::check_with_grace(&records, LIVE_GRACE_NS);
    assert!(violations.is_empty(), "live violations: {violations:?}");
    assert!(s.enclave.alive());
    s.kernel.shutdown();
}

// ---------------------------------------------------------------------
// 2. ESTALE on a stale seqnum.
// ---------------------------------------------------------------------

#[test]
fn des_stale_seqnum_gets_estale() {
    let stale_seen = Arc::new(AtomicBool::new(false));
    let wrong = Arc::new(AtomicBool::new(false));
    let mut s = des_setup(
        EnclaveConfig::centralized("conf-des-stale"),
        Box::new(StaleProbe::new(Arc::clone(&stale_seen), Arc::clone(&wrong))),
        2,
        FaultPlan::none(),
    );
    s.kernel.run_until(100 * MILLIS);

    assert!(stale_seen.load(Ordering::SeqCst), "probe never got ESTALE");
    assert!(
        !wrong.load(Ordering::SeqCst),
        "a stale-seq commit was accepted"
    );
    let stats = s.runtime.stats();
    assert!(stats.txns_stale >= 1, "stale commits: {}", stats.txns_stale);
    // Scheduling recovered after the rejection.
    assert!(des_total_completions(&s) >= 50, "no progress after ESTALE");
    assert!(s.enclave.alive());
    // The rejected commit armed nothing: pairing still holds.
    let records = s.sink.snapshot();
    assert!(
        count(&records, |e| matches!(
            e,
            TraceEvent::TxnCommitEstale { .. }
        )) >= 1
    );
    let armed = count(&records, |e| matches!(e, TraceEvent::TxnArmed { .. }));
    let ok = count(&records, |e| matches!(e, TraceEvent::TxnCommitOk { .. }));
    assert_eq!(armed, ok, "unpaired transaction arm/commit");
    check::assert_clean(&records);
}

#[test]
fn live_stale_seqnum_gets_estale() {
    let stale_seen = Arc::new(AtomicBool::new(false));
    let wrong = Arc::new(AtomicBool::new(false));
    let s = live_setup(
        EnclaveConfig::centralized("conf-live-stale").with_watchdog(5 * SECS),
        Box::new(StaleProbe::new(Arc::clone(&stale_seen), Arc::clone(&wrong))),
        2_000,
        FaultPlan::none(),
    );
    assert!(
        live_drive_until(&s, s.total, Duration::from_secs(30)),
        "closed loop stalled at {}/{}",
        s.kv.completed_count(),
        s.total
    );

    assert!(stale_seen.load(Ordering::SeqCst), "probe never got ESTALE");
    assert!(
        !wrong.load(Ordering::SeqCst),
        "a stale-seq commit was accepted"
    );
    let stats = s.kernel.runtime().stats();
    assert!(stats.txns_stale >= 1, "stale commits: {}", stats.txns_stale);
    assert!(s.enclave.alive());
    let records = s.kernel.trace_snapshot();
    assert!(
        count(&records, |e| matches!(
            e,
            TraceEvent::TxnCommitEstale { .. }
        )) >= 1
    );
    let violations = check::check_with_grace(&records, LIVE_GRACE_NS);
    assert!(violations.is_empty(), "live violations: {violations:?}");
    s.kernel.shutdown();
}

// ---------------------------------------------------------------------
// 3. Reconstruction after an agent crash (§3.4).
// ---------------------------------------------------------------------

#[test]
fn des_agent_crash_reconstructs_and_recovers() {
    let mut s = des_setup(
        EnclaveConfig::centralized("conf-des-crash").with_standby(StandbyConfig::default()),
        Box::new(CentralizedFifo::new()),
        3,
        FaultPlan::none(),
    );
    s.enclave
        .set_standby_policy(|| Box::new(CentralizedFifo::new()));
    s.kernel.run_until(20 * MILLIS);

    let old = s.enclave.global_agent().expect("global agent");
    s.kernel.kill(old);
    s.kernel.run_until(60 * MILLIS);

    let stats = s.runtime.stats();
    assert!(s.enclave.alive(), "enclave survives the crash");
    assert_eq!(stats.respawns, 1, "one standby respawn");
    assert_eq!(stats.recoveries, 1, "recovery completed");
    assert!(stats.reconstructions >= 1, "status words reconstructed");
    assert_eq!(stats.fallbacks, 0, "no CFS fallback");
    let new = s.enclave.global_agent().expect("respawned agent");
    assert_ne!(new, old, "a fresh agent took over");
    // Progress continues under the respawned agent.
    let before = des_total_completions(&s);
    s.kernel.run_until(160 * MILLIS);
    assert!(
        des_total_completions(&s) > before + 50,
        "respawned agent is not scheduling"
    );
    let _ = &s.threads;
}

#[test]
fn live_agent_crash_reconstructs_and_recovers() {
    let s = live_setup(
        EnclaveConfig::centralized("conf-live-crash").with_standby(StandbyConfig::default()),
        Box::new(CentralizedFifo::new()),
        20_000,
        FaultPlan::none(),
    );
    s.enclave
        .set_standby_policy(|| Box::new(CentralizedFifo::new()));

    // Let the first agent demonstrably schedule...
    assert!(
        live_drive_until(&s, 2_000, Duration::from_secs(30)),
        "no progress before the crash"
    );
    // ...then crash it mid-flight.
    let old = s.enclave.global_agent().expect("global agent");
    s.kernel.kill(old);

    // The standby respawns on a driver timer (100 us backoff) fired by
    // the live timer thread; the fresh agent reconstructs from status
    // words and finishes the workload.
    assert!(
        live_drive_until(&s, s.total, Duration::from_secs(30)),
        "stalled after agent crash at {}/{}",
        s.kv.completed_count(),
        s.total
    );
    assert!(await_completion(&s.kv, s.total, Duration::from_secs(1)));

    let stats = s.kernel.runtime().stats();
    assert!(s.enclave.alive(), "enclave survives the crash");
    assert!(stats.respawns >= 1, "standby respawned");
    assert!(stats.reconstructions >= 1, "status words reconstructed");
    assert_eq!(stats.fallbacks, 0, "no CFS fallback");
    let new = s.enclave.global_agent().expect("respawned agent");
    assert_ne!(new, old, "a fresh agent took over");
    s.kernel.shutdown();
}

// ---------------------------------------------------------------------
// 4. Agent hang: scheduling freezes for the window, then resumes.
// ---------------------------------------------------------------------

#[test]
fn des_agent_hang_freezes_scheduling_then_recovers() {
    // Cover every enclave CPU so the plan pins the agent wherever the
    // config placed it. The 30 ms window stays inside the checker's
    // 50 ms default grace, so the stranded wakeups are not violations.
    let hang = FaultPlan::from_events((1..4).map(|c| {
        (
            10 * MILLIS,
            FaultKind::AgentHang {
                cpu: CpuId(c),
                dur: 30 * MILLIS,
            },
        )
    }));
    let mut s = des_setup(
        EnclaveConfig::centralized("conf-des-hang"),
        Box::new(CentralizedFifo::new()),
        3,
        hang,
    );
    s.kernel.run_until(10 * MILLIS);
    let before = des_total_completions(&s);
    assert!(before >= 10, "no progress before the hang");
    s.kernel.run_until(40 * MILLIS);
    let during = des_total_completions(&s);
    // In-flight segments may finish, but the hung agent dispatches
    // nothing new: at most one completion per enclave CPU.
    assert!(
        during - before <= 3,
        "agent scheduled while hung: {before} -> {during}"
    );
    s.kernel.run_until(200 * MILLIS);
    let after = des_total_completions(&s);
    assert!(
        after > during + 100,
        "scheduling never resumed after the hang: {during} -> {after}"
    );
    assert!(s.enclave.alive());
    check::assert_clean(&s.sink.snapshot());
}

#[test]
fn live_agent_hang_stalls_wall_clock_then_completes() {
    let hang = FaultPlan::from_events((0..2).map(|c| {
        (
            5 * MILLIS,
            FaultKind::AgentHang {
                cpu: CpuId(c),
                dur: 300 * MILLIS,
            },
        )
    }));
    let s = live_setup(
        EnclaveConfig::centralized("conf-live-hang").with_watchdog(5 * SECS),
        Box::new(CentralizedFifo::new()),
        5_000,
        hang,
    );
    assert!(
        live_drive_until(&s, s.total, Duration::from_secs(30)),
        "closed loop stalled at {}/{}",
        s.kv.completed_count(),
        s.total
    );
    assert!(await_completion(&s.kv, s.total, Duration::from_secs(1)));

    // The workload cannot finish inside the hang window: workers burn
    // through at most one dispatched stint each, then sit until the
    // agent thaws. Completion therefore proves both the stall and the
    // recovery.
    assert!(
        s.kernel.now() >= 300 * MILLIS,
        "run finished during the hang window: {} ns",
        s.kernel.now()
    );
    let violations = check::check_with_grace(&s.kernel.trace_snapshot(), LIVE_GRACE_NS);
    assert!(violations.is_empty(), "live violations: {violations:?}");
    assert!(s.enclave.alive());
    s.kernel.shutdown();
}

// ---------------------------------------------------------------------
// 5. Agent slow: execution genuinely stretches, invariants hold.
// ---------------------------------------------------------------------

#[test]
fn des_agent_slow_throttles_dispatch_rate() {
    let run = |faults: FaultPlan| {
        let mut s = des_setup(
            EnclaveConfig::centralized("conf-des-slow"),
            Box::new(CentralizedFifo::new()),
            3,
            faults,
        );
        s.kernel.run_until(200 * MILLIS);
        (des_total_completions(&s), s.sink.snapshot())
    };
    let (base_done, _) = run(FaultPlan::none());

    // The DES serializes agent work through `agent_busy_until`: a
    // stretched activation defers the next one, so a large factor turns
    // the agent itself into the bottleneck. Microsecond activations
    // stretched 5000x become ~10 ms stalls — still inside the checker's
    // 50 ms grace, but throughput visibly collapses.
    let slow = FaultPlan::from_events((1..4).map(|c| {
        (
            0,
            FaultKind::AgentSlow {
                cpu: CpuId(c),
                dur: 200 * MILLIS,
                factor: 5000,
            },
        )
    }));
    let (slow_done, records) = run(slow);
    assert!(slow_done > 0, "slowed agent scheduled nothing at all");
    assert!(
        slow_done * 5 <= base_done,
        "slow factor had no dispatch-rate effect: {slow_done} vs baseline {base_done}"
    );
    check::assert_clean(&records);
}

#[test]
fn live_agent_slow_stalls_the_agent_loop() {
    let slow = FaultPlan::from_events((0..2).map(|c| {
        (
            0,
            FaultKind::AgentSlow {
                cpu: CpuId(c),
                dur: 10 * SECS,
                factor: 20,
            },
        )
    }));
    let s = live_setup(
        EnclaveConfig::centralized("conf-live-slow").with_watchdog(5 * SECS),
        Box::new(CentralizedFifo::new()),
        3_000,
        slow,
    );
    assert!(
        live_drive_until(&s, s.total, Duration::from_secs(30)),
        "closed loop stalled at {}/{}",
        s.kv.completed_count(),
        s.total
    );
    assert!(await_completion(&s.kv, s.total, Duration::from_secs(1)));

    let stats = s.kernel.stats();
    assert!(
        stats.fault_stall_ns > 0,
        "slow window never stretched an activation"
    );
    let violations = check::check_with_grace(&s.kernel.trace_snapshot(), LIVE_GRACE_NS);
    assert!(violations.is_empty(), "live violations: {violations:?}");
    assert!(s.enclave.alive());
    s.kernel.shutdown();
}

// ---------------------------------------------------------------------
// 6. Queue overflow: dropped messages, watchdog-driven resync (§3.1).
// ---------------------------------------------------------------------

#[test]
fn des_queue_overflow_recovers_via_watchdog_upgrade() {
    // Message drops have no producer-side notification: threads whose
    // wakeups fell on the floor sit runnable-but-unqueued until the
    // watchdog notices starvation and promotes the staged policy, whose
    // status-word resync re-enqueues them.
    let plan =
        FaultPlan::from_events([(20 * MILLIS, FaultKind::QueueOverflow { dur: 10 * MILLIS })]);
    let mut s = des_setup(
        EnclaveConfig::centralized("conf-des-ovf").with_watchdog(15 * MILLIS),
        Box::new(CentralizedFifo::new()),
        3,
        plan,
    );
    s.enclave.stage_upgrade(Box::new(CentralizedFifo::new()));
    s.kernel.run_until(200 * MILLIS);

    let stats = s.runtime.stats();
    assert!(stats.msgs_dropped >= 1, "overflow window dropped nothing");
    assert!(
        stats.upgrades >= 1,
        "watchdog never promoted the staged policy"
    );
    assert!(s.enclave.alive(), "enclave destroyed instead of upgraded");
    assert!(
        des_total_completions(&s) >= 100,
        "no progress after overflow recovery"
    );
    let records = s.sink.snapshot();
    assert!(
        count(&records, |e| matches!(e, TraceEvent::QueueOverflow { .. })) >= 1,
        "drops were not traced"
    );
    check::assert_clean(&records);
}

#[test]
fn live_queue_overflow_recovers_via_watchdog_upgrade() {
    let plan =
        FaultPlan::from_events([(10 * MILLIS, FaultKind::QueueOverflow { dur: 100 * MILLIS })]);
    let s = live_setup(
        EnclaveConfig::centralized("conf-live-ovf").with_watchdog(150 * MILLIS),
        Box::new(CentralizedFifo::new()),
        20_000,
        plan,
    );
    s.enclave.stage_upgrade(Box::new(CentralizedFifo::new()));

    assert!(
        live_drive_until(&s, s.total, Duration::from_secs(30)),
        "closed loop stalled at {}/{}",
        s.kv.completed_count(),
        s.total
    );
    assert!(await_completion(&s.kv, s.total, Duration::from_secs(1)));

    // The workload may finish on the surviving worker before the
    // watchdog fires; wait for the upgrade before judging the trace so
    // the stranded worker's rescue dispatch is recorded.
    let deadline = Instant::now() + Duration::from_secs(10);
    while s.kernel.runtime().stats().upgrades == 0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never promoted the staged policy"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let stats = s.kernel.runtime().stats();
    assert!(stats.msgs_dropped >= 1, "overflow window dropped nothing");
    assert!(s.enclave.alive(), "enclave destroyed instead of upgraded");
    let violations = check::check_with_grace(&s.kernel.trace_snapshot(), LIVE_GRACE_NS);
    assert!(violations.is_empty(), "live violations: {violations:?}");
    s.kernel.shutdown();
}
