//! The `BENCH_live_vs_sim.json` emitter: a small end-to-end run of both
//! backends, checking the rows and the hand-rolled JSON schema.

use ghost_lab::bench::{merged_bench_json, BenchRow};
use ghost_lab::{bench_live_vs_sim, parse_rows, BenchOpts};
use ghost_sim::time::{MICROS, MILLIS};
use std::time::Duration;

fn small_opts() -> BenchOpts {
    BenchOpts {
        // 4 lanes: a 2-CPU machine leaves the centralized DES enclave a
        // single lane, which cannot make progress (agent + worker).
        cpus: 4,
        sim_horizon: 20 * MILLIS,
        live_requests: 2_000,
        service_ns: 2 * MICROS,
        live_deadline: Duration::from_secs(30),
    }
}

#[test]
fn bench_rows_cover_both_backends_and_make_progress() {
    let opts = small_opts();
    let rows = bench_live_vs_sim(&opts);
    assert_eq!(rows.len(), 4, "two policies x two backends");
    for row in &rows {
        // Work items must be comparable across backends: sim rows keep
        // simulating (in horizon-sized chunks) until they have completed
        // at least as many pulse segments as the live rows serve KV
        // requests, so a sim/live throughput ratio is item-for-item.
        if row.backend == "sim" {
            assert!(
                row.work_items >= opts.live_requests,
                "{}: sim row stopped at {} items, live target is {}",
                row.name,
                row.work_items,
                opts.live_requests,
            );
            // ...but not wildly past it: the overshoot is bounded by one
            // horizon chunk's worth of completions.
            assert!(
                row.work_items < 4 * opts.live_requests,
                "{}: sim row ran far past the live target ({} items)",
                row.name,
                row.work_items,
            );
        }
        assert!(
            row.wall_ns > 0,
            "{}/{}: no wall time",
            row.name,
            row.backend
        );
        assert!(
            row.work_items > 0,
            "{}/{}: no work done",
            row.name,
            row.backend
        );
        assert!(row.throughput_per_sec() > 0.0);
        match row.backend {
            "sim" => assert!(row.sim_seconds_per_sec().unwrap() > 0.0),
            "live" => {
                assert!(row.sim_ns.is_none());
                // The closed loop must actually finish, not time out.
                assert_eq!(row.work_items, 2_000, "{}: live run stalled", row.name);
            }
            other => panic!("unknown backend {other}"),
        }
    }
}

#[test]
fn bench_json_schema_is_stable() {
    let rows = bench_live_vs_sim(&BenchOpts {
        live_requests: 500,
        sim_horizon: 5 * MILLIS,
        ..small_opts()
    });
    let json = ghost_lab::bench::bench_json(&rows);
    assert!(json.starts_with("{\n  \"bench\": \"live_vs_sim\""));
    for key in [
        "\"name\"",
        "\"backend\"",
        "\"wall_ms\"",
        "\"sim_ms\"",
        "\"sim_seconds_per_sec\"",
        "\"work_items\"",
        "\"throughput_per_sec\"",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    assert_eq!(json.matches("\"backend\": \"sim\"").count(), 2);
    assert_eq!(json.matches("\"backend\": \"live\"").count(), 2);

    // The emitter's own JSON must round-trip through the perf gate's
    // parser: every row comes back with its key fields intact.
    let parsed = parse_rows(&json);
    assert_eq!(parsed.len(), rows.len());
    for (p, r) in parsed.iter().zip(&rows) {
        assert_eq!(p.name, r.name);
        assert_eq!(p.backend, r.backend);
        assert_eq!(p.work_items, r.work_items);
        match r.backend {
            "sim" => {
                let got = p.sim_seconds_per_sec.expect("sim row lost its rate");
                let want = r.sim_seconds_per_sec().unwrap();
                assert!((got - want).abs() < 0.001, "rate {got} != {want}");
            }
            _ => assert_eq!(p.sim_seconds_per_sec, None),
        }
    }
}

fn synthetic_row(name: &str, backend: &'static str, items: u64) -> BenchRow {
    BenchRow {
        name: name.to_string(),
        backend,
        wall_ns: 1_000_000,
        sim_ns: (backend == "sim").then_some(2_000_000),
        work_items: items,
    }
}

/// `bench-sim` refreshes its rows inside `BENCH_live_vs_sim.json`
/// without re-running the live rows: merge must replace same-key rows
/// in place, keep everything else, and append genuinely new rows.
#[test]
fn merge_replaces_by_key_and_preserves_the_rest() {
    let v1 = [
        synthetic_row("fifo", "sim", 100),
        synthetic_row("fifo", "live", 200),
        synthetic_row("per-cpu", "live", 300),
    ];
    let first = merged_bench_json(None, &v1);

    // Refresh one existing sim row and add a new scale row.
    let v2 = [
        synthetic_row("fifo", "sim", 999),
        synthetic_row("fig5-zen-1024-1m", "sim", 42),
    ];
    let merged = merged_bench_json(Some(&first), &v2);
    let rows = parse_rows(&merged);

    let names: Vec<(&str, &str)> = rows
        .iter()
        .map(|r| (r.name.as_str(), r.backend.as_str()))
        .collect();
    // Preserved rows keep their original (file) order; refreshed and new
    // rows land at the end.
    assert_eq!(
        names,
        [
            ("fifo", "live"),
            ("per-cpu", "live"),
            ("fifo", "sim"),
            ("fig5-zen-1024-1m", "sim"),
        ]
    );
    // The same-key row was replaced, not duplicated.
    let fifo_sim: Vec<_> = rows
        .iter()
        .filter(|r| r.name == "fifo" && r.backend == "sim")
        .collect();
    assert_eq!(fifo_sim.len(), 1);
    assert_eq!(fifo_sim[0].work_items, 999);
    // Untouched rows survive byte-for-byte at the parsed level.
    assert!(rows
        .iter()
        .any(|r| r.name == "per-cpu" && r.backend == "live" && r.work_items == 300));
    // Merging identical rows is idempotent.
    assert_eq!(merged_bench_json(Some(&merged), &[]), merged);
}
