//! The `ghost-lab` CLI: run a matrix of scenarios on the parallel
//! sweep engine and print (or write) the per-scenario result digest,
//! or run the live-vs-sim bench and emit `BENCH_live_vs_sim.json`.
//!
//! ```text
//! cargo run -p ghost-lab -- sweep --scenarios 20 --jobs 4
//! cargo run -p ghost-lab -- sweep --jobs 4 --cache lab-cache --digest digest.txt
//! cargo run --release -p ghost-lab -- bench-live --out BENCH_live_vs_sim.json
//! ```
//!
//! The digest file pairs each scenario label with its result hash;
//! diffing the digests of a `--jobs 1` and a `--jobs N` run proves the
//! parallel sweep is byte-identical to the serial one (CI does exactly
//! this for the chaos recovery sweep).

use ghost_lab::engine::run_sweep;
use ghost_lab::scenario::{PolicyKind, Scenario, WorkloadSpec};
use ghost_lab::Cache;
use ghost_sim::time::MILLIS;
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    scenarios: u64,
    jobs: usize,
    seed_base: u64,
    policy: Option<PolicyKind>,
    cache: Option<String>,
    digest: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ghost-lab sweep [--scenarios N] [--jobs N] [--seed-base S] [--policy NAME]\n\
         \x20                      [--cache DIR] [--digest FILE]\n\
         \x20      ghost-lab bench-live [--cpus N] [--requests N] [--horizon-ms N] [--out FILE]\n\
         \x20      ghost-lab bench-sim [--cpus N] [--requests N] [--horizon-ms N] [--out FILE]\n\
         \x20                          [--full-scale] [--check-against FILE] [--tolerance PCT]\n\
         \n\
         sweep: runs an N-scenario pulse-workload matrix (round-robin over the\n\
         five evaluation policies) on the deterministic parallel sweep engine.\n\
         \n\
         --scenarios N   matrix size (default 10)\n\
         --jobs N        worker threads (default 1)\n\
         --seed-base S   first seed (default 1)\n\
         --policy NAME   restrict to one policy: {}\n\
         --cache DIR     content-addressed result cache directory\n\
         --digest FILE   write 'label hash' lines for serial-vs-parallel diffing\n\
         \n\
         bench-live: runs matched DES and real-thread (ghost-live) workloads and\n\
         writes wall-clock, simulated-seconds/sec, and throughput rows.\n\
         \n\
         --cpus N        lanes for both backends (default 4)\n\
         --requests N    KV requests per live run (default 50000)\n\
         --horizon-ms N  DES virtual horizon (default 200)\n\
         --out FILE      output path (default BENCH_live_vs_sim.json)\n\
         \n\
         bench-sim: runs the DES-only rows (work-item-matched policy rows plus\n\
         fig5 scale rows on the paper's machines) and merges them into the\n\
         output JSON, preserving rows it did not re-run.\n\
         \n\
         --full-scale         add the 1024-CPU / 1M-thread fig5 point (slow)\n\
         --check-against FILE compare sim_seconds_per_sec against a committed\n\
         \x20                    baseline: exit 1 on any regression beyond the\n\
         \x20                    tolerance, warn only on improvement\n\
         --tolerance PCT      allowed regression in percent (default 20)",
        PolicyKind::ALL
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn bench_live_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = ghost_lab::BenchOpts::default();
    let mut out = "BENCH_live_vs_sim.json".to_string();
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--cpus" => opts.cpus = value("--cpus").parse().unwrap_or_else(|_| usage()),
            "--requests" => {
                opts.live_requests = value("--requests").parse().unwrap_or_else(|_| usage());
            }
            "--horizon-ms" => {
                let ms: u64 = value("--horizon-ms").parse().unwrap_or_else(|_| usage());
                opts.sim_horizon = ms * MILLIS;
            }
            "--out" => out = value("--out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    match ghost_lab::emit_live_vs_sim(&out, &opts) {
        Ok(rows) => {
            for row in &rows {
                let rate = row
                    .sim_seconds_per_sec()
                    .map(|r| format!("{r:.2} sim-s/s"))
                    .unwrap_or_else(|| "live".into());
                println!(
                    "{:>16} [{:>4}]  {:>8.1} ms wall  {:>10.0} items/s  {rate}",
                    row.name,
                    row.backend,
                    row.wall_ns as f64 / 1e6,
                    row.throughput_per_sec(),
                );
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::from(2)
        }
    }
}

fn bench_sim_main(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = ghost_lab::BenchOpts::default();
    let mut out = "BENCH_live_vs_sim.json".to_string();
    let mut full_scale = false;
    let mut check_against: Option<String> = None;
    let mut tolerance_pct: f64 = 20.0;
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--cpus" => opts.cpus = value("--cpus").parse().unwrap_or_else(|_| usage()),
            "--requests" => {
                opts.live_requests = value("--requests").parse().unwrap_or_else(|_| usage());
            }
            "--horizon-ms" => {
                let ms: u64 = value("--horizon-ms").parse().unwrap_or_else(|_| usage());
                opts.sim_horizon = ms * MILLIS;
            }
            "--out" => out = value("--out"),
            "--full-scale" => full_scale = true,
            "--check-against" => check_against = Some(value("--check-against")),
            "--tolerance" => {
                tolerance_pct = value("--tolerance").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    let rows = match ghost_lab::emit_bench_sim(&out, &opts, full_scale) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::from(2);
        }
    };
    for row in &rows {
        let rate = row
            .sim_seconds_per_sec()
            .map(|r| format!("{r:.2} sim-s/s"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:>18} [{:>4}]  {:>8.1} ms wall  {:>10} items  {rate}",
            row.name,
            row.backend,
            row.wall_ns as f64 / 1e6,
            row.work_items,
        );
    }
    println!("wrote {out}");

    let Some(baseline_path) = check_against else {
        return ExitCode::SUCCESS;
    };
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => ghost_lab::parse_rows(&text),
        Err(e) => {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    // The perf gate: a measured row whose simulated-seconds/sec fell more
    // than the tolerance below the committed baseline fails the run; a
    // row that improved only warns (the baseline is refreshed by
    // committing the regenerated JSON, not by the gate).
    let mut regressed = false;
    for row in &rows {
        let Some(rate) = row.sim_seconds_per_sec() else {
            continue;
        };
        let base = baseline
            .iter()
            .find(|b| b.name == row.name && b.backend == row.backend)
            .and_then(|b| b.sim_seconds_per_sec);
        let Some(base) = base else {
            println!("perf-check {:>18}: no baseline row, skipping", row.name);
            continue;
        };
        let floor = base * (1.0 - tolerance_pct / 100.0);
        if rate < floor {
            eprintln!(
                "perf-check {:>18}: REGRESSION {rate:.2} sim-s/s < {floor:.2} \
                 (baseline {base:.2}, tolerance {tolerance_pct}%)",
                row.name
            );
            regressed = true;
        } else if rate > base {
            println!(
                "perf-check {:>18}: improved {base:.2} -> {rate:.2} sim-s/s \
                 (commit the regenerated JSON to raise the baseline)",
                row.name
            );
        } else {
            println!(
                "perf-check {:>18}: ok {rate:.2} sim-s/s (baseline {base:.2})",
                row.name
            );
        }
    }
    if regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        scenarios: 10,
        jobs: 1,
        seed_base: 1,
        policy: None,
        cache: None,
        digest: None,
    };
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("sweep") => {}
        _ => usage(),
    }
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--scenarios" => {
                opts.scenarios = value("--scenarios").parse().unwrap_or_else(|_| usage());
            }
            "--jobs" => opts.jobs = value("--jobs").parse().unwrap_or_else(|_| usage()),
            "--seed-base" => {
                opts.seed_base = value("--seed-base").parse().unwrap_or_else(|_| usage());
            }
            "--policy" => {
                let name = value("--policy");
                opts.policy = Some(PolicyKind::from_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown policy '{name}'");
                    usage()
                }));
            }
            "--cache" => opts.cache = Some(value("--cache")),
            "--digest" => opts.digest = Some(value("--digest")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    opts
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("bench-live") {
        return bench_live_main(std::env::args().skip(2));
    }
    if std::env::args().nth(1).as_deref() == Some("bench-sim") {
        return bench_sim_main(std::env::args().skip(2));
    }
    let opts = parse_opts();
    let policies: Vec<PolicyKind> = match opts.policy {
        Some(p) => vec![p],
        None => PolicyKind::ALL.to_vec(),
    };
    let scenarios: Vec<Scenario> = (0..opts.scenarios)
        .map(|i| {
            let policy = policies[(i % policies.len() as u64) as usize];
            let seed = opts.seed_base + i;
            Scenario::builder()
                .name(format!("{}/seed={seed}", policy.name()))
                .cpus(8)
                .policy(policy)
                .workload(WorkloadSpec::pulse(5))
                .seed(seed)
                .horizon(50 * MILLIS)
                .watchdog(20 * MILLIS)
                .trace_capacity(1 << 16)
                .build()
        })
        .collect();

    let cache = match &opts.cache {
        Some(dir) => match Cache::open(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("cannot open cache {dir}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let started = Instant::now();
    let report = run_sweep(&scenarios, opts.jobs, cache.as_ref());
    let elapsed = started.elapsed();

    for item in &report.items {
        let src = if item.cached { "cached" } else { "ran" };
        println!("{:>32}  {:016x}  {src}", item.label, item.result.hash);
    }
    println!(
        "swept {} scenarios with {} job(s) in {:.2?}: {} executed, {} cached",
        report.items.len(),
        opts.jobs,
        elapsed,
        report.executed,
        report.cached
    );
    if let Some(path) = &opts.digest {
        if let Err(e) = std::fs::write(path, report.digest()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote digest to {path}");
    }
    ExitCode::SUCCESS
}
