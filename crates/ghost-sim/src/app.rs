//! Workload plug-in interface.
//!
//! An [`App`] owns a set of workload threads and drives them: it assigns
//! work segments, reacts to segment completion, and arms virtual timers
//! (e.g., open-loop request arrivals). Apps are how `ghost-workloads`
//! models RocksDB serving, Snap packet processing, Search query handling,
//! batch antagonists, and VM compute.

use crate::kernel::KernelState;
use crate::thread::Tid;
use crate::time::Nanos;

/// Identifier of a registered [`App`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

impl AppId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a workload thread does after finishing its current segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Keep running: start another segment of `dur` nanoseconds without
    /// leaving the CPU.
    Run { dur: Nanos },
    /// Sleep until the app wakes the thread again.
    Block,
    /// Go to the back of the runqueue (sched_yield).
    Yield { dur: Nanos },
    /// Exit; the thread is dead.
    Exit,
}

/// A workload driver.
///
/// All hooks receive the mutable [`KernelState`] so apps can wake threads,
/// assign work, arm timers, and read the virtual clock.
///
/// `Send` because a whole simulation (kernel + apps + runtime) may be
/// handed to a `ghost-lab` worker thread; share app-side results through
/// `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`.
pub trait App: Send {
    /// Debug name.
    fn name(&self) -> &str;

    /// A timer armed via [`KernelState::arm_app_timer`] fired.
    fn on_timer(&mut self, key: u64, k: &mut KernelState);

    /// Thread `tid` (owned by this app) finished its current work segment.
    /// Decide what it does next.
    fn on_segment_end(&mut self, tid: Tid, k: &mut KernelState) -> Next;

    /// Thread `tid` exited (after this app returned [`Next::Exit`]).
    fn on_thread_exit(&mut self, _tid: Tid, _k: &mut KernelState) {}

    /// Downcasting support, so harnesses can extract app-owned results
    /// (histograms, completion counts) after a run. Implement as
    /// `fn as_any(&mut self) -> &mut dyn std::any::Any { self }`.
    fn as_any(&mut self) -> &mut dyn std::any::Any;
}
