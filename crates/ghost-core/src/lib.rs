//! # ghost-core — the ghOSt ABI and runtime
//!
//! This crate is the paper's primary contribution: the infrastructure for
//! delegating kernel scheduling decisions to userspace agents.
//!
//! The kernel side is a scheduling class ([`runtime::GhostClass`]) plugged
//! into the `ghost-sim` kernel *below* CFS, plus the agent driver
//! ([`runtime::GhostDriver`]) that runs agent activations. The userspace
//! side is the [`policy::GhostPolicy`] trait and the [`policy::PolicyCtx`]
//! API that policies program against — the analogue of the paper's
//! userspace support library.
//!
//! Communication follows §3 of the paper exactly:
//!
//! * **Kernel → agent** ([`msg`], [`queue`], [`status`]): thread state
//!   changes are posted as [`msg::Message`]s into shared-memory
//!   [`queue::MessageQueue`]s; sequence numbers (`Aseq` per agent, `Tseq`
//!   per thread) are exposed through [`status::StatusWord`]s.
//! * **Agent → kernel** ([`txn`]): scheduling decisions are
//!   [`txn::Transaction`]s committed (individually or as group commits)
//!   and validated against sequence numbers — a stale view fails with
//!   [`txn::TxnStatus::Stale`].
//!
//! The full Table 1 syscall surface maps onto this API:
//!
//! | paper syscall | here |
//! |---|---|
//! | `AGENT_INIT()` | [`runtime::GhostRuntime::spawn_agents`] |
//! | `START_GHOST()` | [`runtime::GhostRuntime::attach_thread`] |
//! | `TXN_CREATE()` | [`txn::Transaction::new`] |
//! | `TXNS_COMMIT()` | [`policy::PolicyCtx::commit`] / `commit_atomic` / `commit_one` |
//! | `TXNS_RECALL()` | [`policy::PolicyCtx::recall`] |
//! | `CREATE_QUEUE()` | [`policy::PolicyCtx::create_queue`] |
//! | `DESTROY_QUEUE()` | [`policy::PolicyCtx::destroy_queue`] |
//! | `ASSOCIATE_QUEUE()` | [`policy::PolicyCtx::associate_queue`] |
//! | `CONFIG_QUEUE_WAKEUP()` | [`policy::PolicyCtx::config_queue_wakeup`] |
//!
//! Partitioning, fault isolation, and upgrades (§3.4) live in
//! [`enclave`] and [`runtime`]: enclaves own CPU sets, the watchdog
//! destroys enclaves whose agents stop scheduling runnable threads, agent
//! crashes fall back to CFS, and a staged policy can take over in place.
//! The BPF `pick_next_task` fast path (§3.2/§5) is modelled by [`pnt`].

pub mod abi;
pub mod backend;
pub mod enclave;
pub mod msg;
pub mod pnt;
pub mod policy;
pub mod queue;
pub mod recovery;
pub mod runtime;
pub mod slab;
pub mod status;
pub mod txn;

pub use abi::AbiError;
pub use backend::{BackendCpu, BackendThread, GhostBackend};
pub use enclave::{AgentMode, EnclaveConfig, EnclaveId, QueueId};
pub use msg::{Message, MsgType};
pub use policy::{GhostPolicy, PolicyCtx, ThreadView};
pub use queue::MessageQueue;
pub use recovery::{CommitGovernor, StaleVerdict, StandbyConfig, ThreadSnapshot};
pub use runtime::{EnclaveHandle, GhostHandle, GhostRuntime, GhostStats};
pub use status::StatusWord;
pub use txn::{SeqConstraint, Transaction, TxnStatus};
