//! §3.4 in action: non-disruptive policy upgrades, agent-crash fallback
//! to CFS, and the watchdog.
//!
//! ```text
//! cargo run --release --example upgrade_and_crash
//! ```

use ghost::core::enclave::EnclaveConfig;
use ghost::lab::{GhostSim, Scenario};
use ghost::policies::CentralizedFifo;
use ghost::sim::app::{App, Next};
use ghost::sim::kernel::{KernelState, ThreadSpec};
use ghost::sim::thread::Tid;
use ghost::sim::time::{MICROS, MILLIS};
use ghost::sim::CLASS_CFS;

struct Pulse;

impl App for Pulse {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn name(&self) -> &str {
        "pulse"
    }
    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        let tid = Tid(key as u32);
        if k.threads[tid.index()].state == ghost::sim::ThreadState::Blocked {
            k.thread_mut(tid).remaining = 200 * MICROS;
            k.wake(tid);
        }
        let app = k.thread(tid).app.expect("app");
        k.arm_app_timer(k.now + MILLIS, app, key);
    }
    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Block
    }
}

fn main() {
    let GhostSim {
        mut kernel,
        runtime,
        enclave,
        ..
    } = Scenario::builder()
        .name("demo")
        .cpus(8)
        .enclave_cpus(1..8)
        .build_with(
            EnclaveConfig::centralized("demo").with_watchdog(50 * MILLIS),
            Box::new(CentralizedFifo::new()),
        );

    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..4 {
        let tid =
            kernel.spawn(ThreadSpec::workload(&format!("svc-{i}"), &kernel.state.topo).app(app_id));
        tids.push(tid);
    }
    kernel.add_app(Box::new(Pulse));
    for (i, &tid) in tids.iter().enumerate() {
        enclave.attach_thread(&mut kernel.state, tid);
        kernel
            .state
            .arm_app_timer((i as u64 + 1) * 100 * MICROS, app_id, tid.0 as u64);
    }

    kernel.run_until(100 * MILLIS);
    println!(
        "t=100ms   v1 policy scheduling; txns so far: {}",
        runtime.stats().txns_committed
    );

    // Non-disruptive upgrade: stage v2, crash the running agent. The
    // staged policy takes over in place; applications keep running.
    enclave.stage_upgrade(Box::new(CentralizedFifo::new()));
    let agent = enclave.global_agent().expect("global agent");
    kernel.kill(agent);
    kernel.run_until(200 * MILLIS);
    let stats = runtime.stats();
    println!(
        "t=200ms   upgraded in place (upgrades: {}); enclave alive: {}",
        stats.upgrades,
        enclave.alive()
    );
    assert_eq!(stats.upgrades, 1);
    assert!(enclave.alive());

    // Crash with no standby: fault isolation moves every managed thread
    // back to CFS; the machine keeps running.
    let agent = enclave.global_agent().expect("global agent");
    kernel.kill(agent);
    kernel.run_until(300 * MILLIS);
    let stats = runtime.stats();
    println!(
        "t=300ms   agent crashed with no standby (fallbacks: {}); enclave alive: {}",
        stats.fallbacks,
        enclave.alive()
    );
    assert!(stats.fallbacks >= 1);
    assert!(!enclave.alive());
    for &tid in &tids {
        assert_eq!(kernel.state.thread(tid).class, CLASS_CFS);
    }
    let work_before = kernel.state.thread(tids[0]).total_work;
    kernel.run_until(400 * MILLIS);
    assert!(kernel.state.thread(tids[0]).total_work > work_before);
    println!("t=400ms   threads keep running under CFS — no reboot, no downtime.");
    println!("OK");
}
