//! Trace-driven invariant checker: replays a recorded stream and asserts
//! cross-cutting correctness properties of the scheduler. This gives every
//! test a one-line end-to-end oracle — run a scenario with a recording
//! sink, then `assert_clean(&sink.snapshot())`.
//!
//! Checked invariants:
//! 1. **Exclusive occupancy** — at most one thread running per CPU at any
//!    instant, and no thread running on two CPUs at once.
//! 2. **Runnable switch-in** — no `sched_switch` to a thread the trace has
//!    shown to be blocked or dead (threads first seen mid-trace are
//!    presumed runnable).
//! 3. **Seqnum monotonicity** — Tseq strictly increases per thread across
//!    its messages; Aseq never decreases across an agent's activations
//!    (it bumps per posted message, so an activation with no new traffic
//!    legitimately observes the same Aseq as the previous one).
//! 4. **Commit pairing** — every `TxnCommitOk` is preceded by a matching
//!    `TxnArmed` for the same (cpu, tid) that no other commit consumed.
//! 5. **Wakeup liveness** — every wakeup is eventually followed by a
//!    switch-in of that thread, its death, or an explicit blackout event
//!    (watchdog / enclave destruction); wakeups within a grace window of
//!    the end of the trace are exempt (the scenario simply ended first).
//!
//! The checker assumes a lossless stream. If the recording ring
//! overflowed ([`crate::TraceSink::dropped`] > 0), gaps make ordering
//! properties unverifiable — record with a larger capacity instead.
//!
//! ## Time bases
//!
//! Every rule is time-base agnostic: timestamps come from whatever
//! `GhostBackend::now` produced the records — virtual nanoseconds on
//! the DES, monotonic wall-clock nanoseconds on `ghost-live` — and the
//! checker only ever compares them against each other, never against a
//! constant. The one duration in the checker is the wakeup-liveness
//! grace window: [`DEFAULT_GRACE_NS`] is sized for *virtual* time,
//! where 50 ms dwarfs any simulated scheduling latency. On live traces
//! real park/unpark and host-scheduler latency are in the same units as
//! the trace, so pass a wall-clock-sized window through
//! [`check_with_grace`] instead — [`LIVE_GRACE_NS`] (500 ms) is the
//! standard window the live smoke, conformance, and chaos harnesses use.

use crate::{Nanos, TraceEvent, TraceRecord, NO_TID, PREV_DEAD, PREV_RUNNABLE};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Wakeups younger than this at end-of-trace are not liveness violations.
pub const DEFAULT_GRACE_NS: Nanos = 50_000_000; // 50 ms of virtual time

/// The standard wakeup-liveness grace window for *wall-clock* traces
/// ([`check_with_grace`]): live-backend timestamps include real
/// park/unpark, host-scheduler, and timer-thread latency, so the window
/// must absorb scheduling jitter a virtual clock never sees. Shared by
/// the live smoke example, the conformance suite, and the `--live`
/// chaos oracles so they all judge liveness against the same bound.
pub const LIVE_GRACE_NS: Nanos = 500_000_000; // 500 ms of wall-clock time

/// One invariant violation, anchored to the record that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Global seq of the offending record (or the last record, for
    /// end-of-trace liveness violations).
    pub seq: u64,
    pub ts: Nanos,
    /// Short rule identifier, e.g. `"exclusive-occupancy"`.
    pub rule: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] at ts={}ns seq={}: {}",
            self.rule, self.ts, self.seq, self.detail
        )
    }
}

/// Checks `records` (in `seq` order) with the default grace window.
pub fn check(records: &[TraceRecord]) -> Vec<Violation> {
    check_with_grace(records, DEFAULT_GRACE_NS)
}

/// Panics with a formatted report if `records` violate any invariant.
pub fn assert_clean(records: &[TraceRecord]) {
    let violations = check(records);
    if !violations.is_empty() {
        let mut report = format!(
            "trace invariant check failed: {} violation(s) in {} records\n",
            violations.len(),
            records.len()
        );
        for v in violations.iter().take(20) {
            report.push_str(&format!("  {v}\n"));
        }
        if violations.len() > 20 {
            report.push_str(&format!("  ... and {} more\n", violations.len() - 20));
        }
        panic!("{report}");
    }
}

/// Checks with an explicit end-of-trace grace window for wakeup liveness.
pub fn check_with_grace(records: &[TraceRecord], grace_ns: Nanos) -> Vec<Violation> {
    let mut v = Vec::new();
    // Rule 1 state: which thread each CPU is running, and where each
    // thread runs.
    let mut cpu_running: BTreeMap<u16, u32> = BTreeMap::new();
    let mut thread_cpu: BTreeMap<u32, u16> = BTreeMap::new();
    // Rule 2 state: threads the trace has shown non-runnable, and every
    // tid the trace has mentioned (first sightings are presumed runnable).
    let mut not_runnable: BTreeSet<u32> = BTreeSet::new();
    // Rule 3 state.
    let mut tseq: BTreeMap<u32, u64> = BTreeMap::new();
    let mut aseq: BTreeMap<u32, u64> = BTreeMap::new();
    // Rule 4 state: outstanding armed transactions.
    let mut armed: BTreeSet<(u16, u32)> = BTreeSet::new();
    // Rule 5 state: tid -> (wakeup ts, wakeup seq), pending switch-in.
    let mut pending_wake: BTreeMap<u32, (Nanos, u64)> = BTreeMap::new();
    let mut blackout_at: Option<Nanos> = None;

    for rec in records {
        match rec.event {
            TraceEvent::SchedWakeup { tid, .. } => {
                not_runnable.remove(&tid);
                pending_wake.entry(tid).or_insert((rec.ts, rec.seq));
            }
            TraceEvent::SchedSwitch {
                cpu,
                prev_tid,
                prev_state,
                next_tid,
                ..
            } => {
                // Rule 1: the outgoing thread must be what this CPU runs.
                match cpu_running.get(&cpu) {
                    Some(&running) if prev_tid != NO_TID && running != prev_tid => {
                        v.push(Violation {
                            seq: rec.seq,
                            ts: rec.ts,
                            rule: "exclusive-occupancy",
                            detail: format!(
                                "cpu {cpu} switches out tid {prev_tid} but was running tid {running}"
                            ),
                        });
                    }
                    None if prev_tid != NO_TID && thread_cpu.contains_key(&prev_tid) => {
                        v.push(Violation {
                            seq: rec.seq,
                            ts: rec.ts,
                            rule: "exclusive-occupancy",
                            detail: format!(
                                "cpu {cpu} switches out tid {prev_tid}, which runs on cpu {}",
                                thread_cpu[&prev_tid]
                            ),
                        });
                    }
                    _ => {}
                }
                if prev_tid != NO_TID {
                    if thread_cpu.get(&prev_tid) == Some(&cpu) {
                        thread_cpu.remove(&prev_tid);
                    }
                    cpu_running.remove(&cpu);
                    match prev_state {
                        PREV_RUNNABLE => {}
                        _ => {
                            not_runnable.insert(prev_tid);
                            if prev_state == PREV_DEAD {
                                pending_wake.remove(&prev_tid);
                            }
                        }
                    }
                } else {
                    cpu_running.remove(&cpu);
                }
                if next_tid != NO_TID {
                    // Rule 1: the incoming thread must not run elsewhere.
                    if let Some(&other) = thread_cpu.get(&next_tid) {
                        if other != cpu {
                            v.push(Violation {
                                seq: rec.seq,
                                ts: rec.ts,
                                rule: "exclusive-occupancy",
                                detail: format!(
                                    "tid {next_tid} switched in on cpu {cpu} while running on cpu {other}"
                                ),
                            });
                        }
                    }
                    // Rule 2: must be runnable (unless unseen so far).
                    if not_runnable.contains(&next_tid) {
                        v.push(Violation {
                            seq: rec.seq,
                            ts: rec.ts,
                            rule: "runnable-switch-in",
                            detail: format!(
                                "cpu {cpu} switched in tid {next_tid}, last seen non-runnable with no wakeup since"
                            ),
                        });
                    }
                    cpu_running.insert(cpu, next_tid);
                    thread_cpu.insert(next_tid, cpu);
                    pending_wake.remove(&next_tid);
                }
            }
            TraceEvent::MsgEnqueued { tid, seq, .. } if tid != NO_TID && seq != 0 => {
                if let Some(&prev) = tseq.get(&tid) {
                    if seq <= prev {
                        v.push(Violation {
                            seq: rec.seq,
                            ts: rec.ts,
                            rule: "tseq-monotone",
                            detail: format!(
                                "tid {tid} Tseq went {prev} -> {seq} (must strictly increase)"
                            ),
                        });
                    }
                }
                tseq.insert(tid, seq);
            }
            TraceEvent::AgentActivationBegin {
                agent_tid, aseq: a, ..
            } => {
                if let Some(&prev) = aseq.get(&agent_tid) {
                    if a < prev {
                        v.push(Violation {
                            seq: rec.seq,
                            ts: rec.ts,
                            rule: "aseq-monotone",
                            detail: format!(
                                "agent {agent_tid} Aseq went {prev} -> {a} (must not decrease)"
                            ),
                        });
                    }
                }
                aseq.insert(agent_tid, a);
            }
            TraceEvent::TxnArmed { cpu, tid } => {
                armed.insert((cpu, tid));
            }
            TraceEvent::TxnCommitOk { cpu, tid } if !armed.remove(&(cpu, tid)) => {
                v.push(Violation {
                    seq: rec.seq,
                    ts: rec.ts,
                    rule: "commit-pairing",
                    detail: format!(
                        "TxnCommitOk for tid {tid} on cpu {cpu} with no outstanding TxnArmed"
                    ),
                });
            }
            TraceEvent::TxnCommitEstale { cpu, tid } | TraceEvent::TxnCommitRace { cpu, tid } => {
                // A failed commit consumes its arm, if one was traced.
                armed.remove(&(cpu, tid));
            }
            TraceEvent::WatchdogFired { .. } | TraceEvent::EnclaveDestroyed { .. } => {
                blackout_at = Some(rec.ts);
            }
            _ => {}
        }
    }

    // Rule 5: leftover wakeups must be young or explained by a blackout.
    let end_ts = records.last().map(|r| r.ts).unwrap_or(0);
    let end_seq = records.last().map(|r| r.seq).unwrap_or(0);
    for (tid, (woke_ts, _)) in pending_wake {
        let excused_by_blackout = blackout_at.is_some_and(|b| b >= woke_ts);
        let within_grace = end_ts.saturating_sub(woke_ts) <= grace_ns;
        if !excused_by_blackout && !within_grace {
            v.push(Violation {
                seq: end_seq,
                ts: end_ts,
                rule: "wakeup-liveness",
                detail: format!(
                    "tid {tid} woke at {woke_ts}ns but never ran in the remaining {}ns",
                    end_ts.saturating_sub(woke_ts)
                ),
            });
        }
    }
    v.sort_by_key(|x| x.seq);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceSink, CLASS_GHOST, CLASS_IDLE, PREV_BLOCKED};

    fn switch(cpu: u16, prev: u32, prev_state: u8, next: u32) -> TraceEvent {
        TraceEvent::SchedSwitch {
            cpu,
            prev_tid: prev,
            prev_class: if prev == NO_TID {
                CLASS_IDLE
            } else {
                CLASS_GHOST
            },
            prev_state,
            next_tid: next,
            next_class: if next == NO_TID {
                CLASS_IDLE
            } else {
                CLASS_GHOST
            },
        }
    }

    #[test]
    fn clean_trace_passes() {
        let sink = TraceSink::recording(2, 64);
        sink.emit(0, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(10, 0, || switch(0, NO_TID, PREV_RUNNABLE, 1));
        sink.emit(50, 0, || TraceEvent::TxnArmed { cpu: 1, tid: 2 });
        sink.emit(60, 0, || TraceEvent::TxnCommitOk { cpu: 1, tid: 2 });
        sink.emit(70, 1, || switch(1, NO_TID, PREV_RUNNABLE, 2));
        sink.emit(100, 0, || switch(0, 1, PREV_BLOCKED, NO_TID));
        let records = sink.snapshot();
        assert!(check(&records).is_empty());
        assert_clean(&records);
    }

    #[test]
    fn double_occupancy_is_rejected() {
        let sink = TraceSink::recording(2, 64);
        sink.emit(10, 0, || switch(0, NO_TID, PREV_RUNNABLE, 1));
        // tid 1 switched in on cpu 1 while still running on cpu 0.
        sink.emit(20, 1, || switch(1, NO_TID, PREV_RUNNABLE, 1));
        let violations = check(&sink.snapshot());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "exclusive-occupancy");
        assert!(violations[0].detail.contains("tid 1"), "{}", violations[0]);
    }

    #[test]
    fn switch_to_blocked_thread_is_rejected() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || switch(0, NO_TID, PREV_RUNNABLE, 1));
        sink.emit(20, 0, || switch(0, 1, PREV_BLOCKED, NO_TID));
        // No wakeup in between: tid 1 is still blocked.
        sink.emit(30, 0, || switch(0, NO_TID, PREV_RUNNABLE, 1));
        let violations = check(&sink.snapshot());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "runnable-switch-in");
    }

    #[test]
    fn wakeup_clears_blocked_state() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || switch(0, NO_TID, PREV_RUNNABLE, 1));
        sink.emit(20, 0, || switch(0, 1, PREV_BLOCKED, NO_TID));
        sink.emit(25, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(30, 0, || switch(0, NO_TID, PREV_RUNNABLE, 1));
        assert!(check(&sink.snapshot()).is_empty());
    }

    #[test]
    fn regressing_tseq_is_rejected() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || TraceEvent::MsgEnqueued {
            queue: 0,
            ty: 1,
            tid: 3,
            seq: 5,
        });
        sink.emit(20, 0, || TraceEvent::MsgEnqueued {
            queue: 0,
            ty: 2,
            tid: 3,
            seq: 5,
        });
        let violations = check(&sink.snapshot());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "tseq-monotone");
    }

    #[test]
    fn regressing_aseq_is_rejected() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || TraceEvent::AgentActivationBegin {
            cpu: 0,
            agent_tid: 9,
            aseq: 4,
        });
        sink.emit(20, 0, || TraceEvent::AgentActivationBegin {
            cpu: 0,
            agent_tid: 9,
            aseq: 3,
        });
        let violations = check(&sink.snapshot());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "aseq-monotone");
    }

    #[test]
    fn flat_aseq_is_accepted() {
        // A spinning agent re-activates without new messages; its Aseq is
        // unchanged, which is legal (it only bumps per posted message).
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || TraceEvent::AgentActivationBegin {
            cpu: 0,
            agent_tid: 9,
            aseq: 4,
        });
        sink.emit(20, 0, || TraceEvent::AgentActivationBegin {
            cpu: 0,
            agent_tid: 9,
            aseq: 4,
        });
        assert!(check(&sink.snapshot()).is_empty());
    }

    #[test]
    fn unarmed_commit_is_rejected_with_description() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || TraceEvent::TxnCommitOk { cpu: 2, tid: 7 });
        let violations = check(&sink.snapshot());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "commit-pairing");
        assert!(violations[0].detail.contains("tid 7"));
        assert!(violations[0].detail.contains("cpu 2"));
    }

    #[test]
    fn stranded_wakeup_is_rejected_beyond_grace() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(0, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(DEFAULT_GRACE_NS + 1, 0, || TraceEvent::TickDelivered {
            cpu: 0,
        });
        let violations = check(&sink.snapshot());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "wakeup-liveness");
    }

    #[test]
    fn recent_wakeup_is_within_grace() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(0, 0, || TraceEvent::TickDelivered { cpu: 0 });
        sink.emit(100, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        assert!(check(&sink.snapshot()).is_empty());
    }

    #[test]
    fn blackout_excuses_stranded_wakeups() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(0, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(10, 0, || TraceEvent::EnclaveDestroyed { enclave: 0 });
        sink.emit(DEFAULT_GRACE_NS * 2, 0, || TraceEvent::TickDelivered {
            cpu: 0,
        });
        assert!(check(&sink.snapshot()).is_empty());
    }

    #[test]
    fn live_grace_window_is_pinned_and_respected() {
        // Every live harness (smoke, conformance, chaos oracles) judges
        // wakeup liveness against this shared wall-clock window; pin the
        // value so a drive-by edit can't silently loosen the oracles.
        assert_eq!(LIVE_GRACE_NS, 500_000_000);
        const { assert!(LIVE_GRACE_NS > DEFAULT_GRACE_NS) };
        // A wakeup stranded just inside the live window passes...
        let sink = TraceSink::recording(1, 64);
        sink.emit(0, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(LIVE_GRACE_NS - 1, 0, || TraceEvent::TickDelivered {
            cpu: 0,
        });
        assert!(check_with_grace(&sink.snapshot(), LIVE_GRACE_NS).is_empty());
        // ...and the same trace fails one nanosecond past it.
        let sink = TraceSink::recording(1, 64);
        sink.emit(0, 0, || TraceEvent::SchedWakeup { cpu: 0, tid: 1 });
        sink.emit(LIVE_GRACE_NS + 1, 0, || TraceEvent::TickDelivered {
            cpu: 0,
        });
        let violations = check_with_grace(&sink.snapshot(), LIVE_GRACE_NS);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "wakeup-liveness");
    }

    #[test]
    #[should_panic(expected = "trace invariant check failed")]
    fn assert_clean_panics_on_corrupt_trace() {
        let sink = TraceSink::recording(1, 64);
        sink.emit(10, 0, || TraceEvent::TxnCommitOk { cpu: 0, tid: 1 });
        assert_clean(&sink.snapshot());
    }
}
