//! Lock-free single-producer single-consumer rings.
//!
//! The live backend uses these on its hot signaling paths, mirroring the
//! paper's shared-memory message queues: scheduling events are pushed to
//! an agent's signal ring without taking the agent's locks, and the agent
//! drains the ring from its own OS thread. The implementation is the
//! classic Lamport ring: `tail` is written only by the producer (release)
//! and read by the consumer (acquire); `head` the mirror image. One slot
//! is sacrificed to distinguish full from empty.
//!
//! "Single producer" means *serialized* producers: pushes made while
//! holding one lock (the live backend pushes under the kernel state lock)
//! are a valid single producer, because mutex release/acquire edges order
//! the tail writes exactly as a single thread would.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct RingInner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer reads. Written by the consumer only.
    head: AtomicUsize,
    /// Next slot the producer writes. Written by the producer only.
    tail: AtomicUsize,
}

// Slots are only touched by the unique producer (writes at `tail`) and the
// unique consumer (reads at `head`), with the atomics carrying the
// happens-before edges between them.
unsafe impl<T: Send> Sync for RingInner<T> {}
unsafe impl<T: Send> Send for RingInner<T> {}

/// Producer half of an SPSC ring.
pub struct SpscProducer<T> {
    inner: Arc<RingInner<T>>,
}

/// Consumer half of an SPSC ring.
pub struct SpscConsumer<T> {
    inner: Arc<RingInner<T>>,
}

/// Creates an SPSC ring holding up to `capacity` elements.
pub fn spsc<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    // +1: one slot stays empty so head == tail unambiguously means empty.
    let n = (capacity + 1).next_power_of_two();
    let slots = (0..n)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(RingInner {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscProducer {
            inner: Arc::clone(&inner),
        },
        SpscConsumer { inner },
    )
}

impl<T: Send> SpscProducer<T> {
    /// Pushes `value`, or returns it if the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        let mask = inner.slots.len() - 1;
        let tail = inner.tail.load(Ordering::Relaxed);
        let next = (tail + 1) & mask;
        if next == inner.head.load(Ordering::Acquire) {
            return Err(value); // Full.
        }
        // Safe: the slot at `tail` is outside the consumer's visible
        // window until the release store below publishes it.
        unsafe { (*inner.slots[tail].get()).write(value) };
        inner.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// True if a push would fail right now.
    pub fn is_full(&self) -> bool {
        let inner = &*self.inner;
        let mask = inner.slots.len() - 1;
        let tail = inner.tail.load(Ordering::Relaxed);
        ((tail + 1) & mask) == inner.head.load(Ordering::Acquire)
    }
}

impl<T: Send> SpscConsumer<T> {
    /// Pops the oldest element, if any.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let mask = inner.slots.len() - 1;
        let head = inner.head.load(Ordering::Relaxed);
        if head == inner.tail.load(Ordering::Acquire) {
            return None; // Empty.
        }
        // Safe: the acquire load above synchronized with the producer's
        // release store, so the slot at `head` is initialized.
        let value = unsafe { (*inner.slots[head].get()).assume_init_read() };
        inner.head.store((head + 1) & mask, Ordering::Release);
        Some(value)
    }

    /// True if the ring currently holds no elements.
    pub fn is_empty(&self) -> bool {
        let inner = &*self.inner;
        inner.head.load(Ordering::Relaxed) == inner.tail.load(Ordering::Acquire)
    }

    /// Pops and discards everything currently visible, returning the count.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        while self.pop().is_some() {
            n += 1;
        }
        n
    }
}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Drop any elements still in flight.
        let mask = self.slots.len() - 1;
        let mut head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        while head != tail {
            unsafe { (*self.slots[head].get()).assume_init_drop() };
            head = (head + 1) & mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (p, c) = spsc::<u64>(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_ring_rejects() {
        let (p, c) = spsc::<u32>(2);
        // Capacity rounds up to a power of two minus the sentinel slot.
        let mut pushed = 0;
        while p.push(pushed).is_ok() {
            pushed += 1;
        }
        assert!(pushed >= 2);
        assert!(p.is_full());
        assert_eq!(c.pop(), Some(0));
        assert!(p.push(99).is_ok());
    }

    #[test]
    fn cross_thread_handoff() {
        let (p, c) = spsc::<u64>(1024);
        let total = 100_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..total {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < total {
            if let Some(v) = c.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
