//! Fig. 7: Google Snap RTT percentiles (§4.3) — MicroQuanta vs ghOSt,
//! 64 B and 64 kB messages, quiet and loaded modes.

use ghost_bench::fig7::{self, SnapSched};
use ghost_metrics::{Table, PERCENTILES_SNAP};
use ghost_sim::time::SECS;
use ghost_workloads::snap::SnapConfig;

fn main() {
    let horizon = 8 * SECS;
    for (mode, loaded) in [("quiet", false), ("loaded", true)] {
        let mq = fig7::run(
            SnapSched::MicroQuanta,
            loaded,
            SnapConfig::default(),
            horizon,
        );
        let gh = fig7::run(SnapSched::Ghost, loaded, SnapConfig::default(), horizon);
        let mut t = Table::new(vec![
            "percentile",
            "MicroQ 64B (us)",
            "ghOSt 64B (us)",
            "MicroQ 64kB (us)",
            "ghOSt 64kB (us)",
        ])
        .with_title(format!("Fig. 7 ({mode} mode): Snap round-trip latencies"));
        for &p in &PERCENTILES_SNAP {
            t.row(vec![
                format!("{p}%"),
                format!("{:.0}", mq.rtt_64b.percentile(p) as f64 / 1e3),
                format!("{:.0}", gh.rtt_64b.percentile(p) as f64 / 1e3),
                format!("{:.0}", mq.rtt_64kb.percentile(p) as f64 / 1e3),
                format!("{:.0}", gh.rtt_64kb.percentile(p) as f64 / 1e3),
            ]);
        }
        t.print();
        println!(
            "completed: MicroQ {} / ghOSt {}\n",
            mq.completed, gh.completed
        );

        // Shape assertions (both modes):
        // ghOSt is comparable-or-better through p99 for both sizes
        // (paper: similar or 10% better through p99.9 for 64B; within
        // 15% for 64kB through p99).
        for (label, m, g) in [
            ("64B", &mq.rtt_64b, &gh.rtt_64b),
            ("64kB", &mq.rtt_64kb, &gh.rtt_64kb),
        ] {
            let m99 = m.percentile(99.0) as f64;
            let g99 = g.percentile(99.0) as f64;
            assert!(
                g99 <= m99 * 1.35,
                "{mode}/{label}: ghOSt p99 {g99:.0} should be comparable to MicroQuanta {m99:.0}"
            );
        }
        // Deep 64 kB tails: MicroQuanta pays quanta blackouts while
        // draining bursts; ghOSt keeps scheduling (paper: 5-30% lower at
        // p99.9 and above).
        let m999 = mq.rtt_64kb.percentile(99.9) as f64;
        let g999 = gh.rtt_64kb.percentile(99.9) as f64;
        assert!(
            g999 < m999,
            "{mode}: ghOSt should win the deep 64kB tail (blackouts): {g999:.0} vs {m999:.0}"
        );
        // MicroQuanta's quanta blackouts must be visible in its extreme
        // tail under load: p99.99 >> p50.
        let m_tail = mq.rtt_64kb.percentile(99.99) as f64;
        let m_mid = mq.rtt_64kb.percentile(50.0) as f64;
        assert!(
            m_tail > 2.0 * m_mid,
            "{mode}: MicroQuanta extreme tail should show blackouts ({m_mid:.0} -> {m_tail:.0})"
        );
    }
    println!("OK: Fig. 7 shapes hold.");
}
