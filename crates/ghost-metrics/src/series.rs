//! Time-binned sample series for time-series figures (Fig. 8 of the paper).

use crate::hist::LogHistogram;

/// A series of samples bucketed into fixed-width time bins.
///
/// Each bin owns a [`LogHistogram`], so per-bin percentiles (e.g., per-second
/// p99 latency) and per-bin counts (e.g., QPS) can both be extracted — the
/// two quantities Fig. 8 of the paper plots over a 60-second run.
///
/// # Examples
///
/// ```
/// use ghost_metrics::TimeSeries;
///
/// // One-second bins over virtual-nanosecond timestamps.
/// let mut s = TimeSeries::new(1_000_000_000);
/// s.record(500_000_000, 120);   // t = 0.5 s, latency 120 ns
/// s.record(1_500_000_000, 300); // t = 1.5 s
/// assert_eq!(s.num_bins(), 2);
/// assert_eq!(s.bin_count(0), 1);
/// assert_eq!(s.bin_percentile(1, 99.0), 300);
/// ```
pub struct TimeSeries {
    bin_width: u64,
    bins: Vec<LogHistogram>,
}

impl TimeSeries {
    /// Creates a series with the given bin width (same unit as timestamps).
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn new(bin_width: u64) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        Self {
            bin_width,
            bins: Vec::new(),
        }
    }

    /// Records a sample `value` observed at time `t`.
    pub fn record(&mut self, t: u64, value: u64) {
        let bin = (t / self.bin_width) as usize;
        if bin >= self.bins.len() {
            self.bins.resize_with(bin + 1, LogHistogram::new);
        }
        self.bins[bin].record(value);
    }

    /// Number of bins touched so far (including empty interior bins).
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Bin width used at construction.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Sample count in bin `i` (0 if the bin was never touched).
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins.get(i).map_or(0, LogHistogram::count)
    }

    /// Percentile `p` of bin `i` (0 if the bin is empty).
    pub fn bin_percentile(&self, i: usize, p: f64) -> u64 {
        self.bins.get(i).map_or(0, |h| h.percentile(p))
    }

    /// Mean of bin `i` (0 if the bin is empty).
    pub fn bin_mean(&self, i: usize) -> f64 {
        self.bins.get(i).map_or(0.0, LogHistogram::mean)
    }

    /// Per-bin counts as a vector (QPS when bin width is one second).
    pub fn counts(&self) -> Vec<u64> {
        self.bins.iter().map(LogHistogram::count).collect()
    }

    /// Per-bin percentile-`p` values as a vector.
    pub fn percentiles(&self, p: f64) -> Vec<u64> {
        self.bins.iter().map(|h| h.percentile(p)).collect()
    }

    /// Collapses the whole series into a single histogram.
    pub fn aggregate(&self) -> LogHistogram {
        let mut out = LogHistogram::new();
        for b in &self.bins {
            out.merge(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_panics() {
        let _ = TimeSeries::new(0);
    }

    #[test]
    fn bins_partition_time() {
        let mut s = TimeSeries::new(100);
        s.record(0, 1);
        s.record(99, 2);
        s.record(100, 3);
        s.record(250, 4);
        assert_eq!(s.num_bins(), 3);
        assert_eq!(s.bin_count(0), 2);
        assert_eq!(s.bin_count(1), 1);
        assert_eq!(s.bin_count(2), 1);
    }

    #[test]
    fn interior_empty_bins_report_zero() {
        let mut s = TimeSeries::new(10);
        s.record(5, 1);
        s.record(95, 1);
        assert_eq!(s.num_bins(), 10);
        assert_eq!(s.bin_count(4), 0);
        assert_eq!(s.bin_percentile(4, 99.0), 0);
    }

    #[test]
    fn aggregate_merges_all_bins() {
        let mut s = TimeSeries::new(50);
        for t in 0..500u64 {
            s.record(t, t + 1);
        }
        let agg = s.aggregate();
        assert_eq!(agg.count(), 500);
        assert_eq!(agg.max(), 500);
    }

    #[test]
    fn counts_and_percentiles_vectors_align() {
        let mut s = TimeSeries::new(10);
        s.record(0, 100);
        s.record(15, 200);
        assert_eq!(s.counts(), vec![1, 1]);
        assert_eq!(s.percentiles(100.0), vec![100, 200]);
    }
}
