//! # ghost — a reproduction of ghOSt (SOSP 2021) in Rust
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — the discrete-event Linux-kernel scheduling simulator.
//! * [`core`] — the ghOSt ABI: messages, queues, status words,
//!   transactions, enclaves, agents.
//! * [`policies`] — the scheduling policies evaluated in the paper.
//! * [`baselines`] — the systems ghOSt is compared against.
//! * [`workloads`] — synthetic workload models for the evaluation.
//! * [`lab`] — the deterministic parallel experiment engine: declarative
//!   `Scenario` specs, worker-pool sweeps, content-addressed result
//!   caching.
//! * [`live`] — the real-thread backend: the same runtime and policies
//!   scheduling actual OS threads via a monotonic clock and parked
//!   workers (see `examples/live_smoke.rs`).
//! * [`metrics`] — histograms and reporting.
//! * [`trace`] — `sched:*`-style tracepoints, Chrome trace export,
//!   derived metrics, and the trace-driven invariant checker.
//!
//! See the `examples/` directory for runnable entry points and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use ghost_baselines as baselines;
pub use ghost_core as core;
pub use ghost_lab as lab;
pub use ghost_live as live;
pub use ghost_metrics as metrics;
pub use ghost_policies as policies;
pub use ghost_sim as sim;
pub use ghost_trace as trace;
pub use ghost_workloads as workloads;
