//! Oracles: decide whether a perturbed run still upheld the runtime's
//! safety and liveness contracts.
//!
//! Safety comes from the `ghost-trace` invariant checker — exclusive CPU
//! occupancy, runnable-at-switch-in, Tseq/Aseq monotonicity across
//! faults, and commit pairing (every `TxnCommitOk` consumes a matching
//! `TxnArmed`). Liveness is judged here: after every fault in the plan,
//! either the agent recovers or the watchdog/fallback machinery must
//! rescue the workload.

use crate::run::WATCHDOG;
use ghost_core::enclave::EnclaveId;
use ghost_core::runtime::GhostRuntime;
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::{ThreadState, Tid};
use ghost_sim::time::{Nanos, MILLIS};
use ghost_sim::CLASS_CFS;
use ghost_trace::{check, TraceEvent, TraceRecord};
use std::fmt;

/// A runnable thread left waiting longer than this at end of run failed
/// liveness: the watchdog plus CFS fallback bound recovery to roughly
/// two timeouts, with margin for scheduling latency.
pub const STARVATION_BOUND: Nanos = 2 * WATCHDOG + 10 * MILLIS;

/// One oracle violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Which oracle fired, e.g. `"starvation"`.
    pub oracle: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// Judges a finished run. Returns every violated contract; an empty
/// vector means the run survived its fault plan. When the run armed a
/// hot standby, `recovery_slo` carries its bound and enables the
/// bounded-time recovery oracle.
#[allow(clippy::too_many_arguments)]
pub fn evaluate(
    records: &[TraceRecord],
    trace_dropped: u64,
    k: &KernelState,
    runtime: &GhostRuntime,
    enclave: EnclaveId,
    workload: &[Tid],
    completions: u64,
    recovery_slo: Option<Nanos>,
) -> Vec<Failure> {
    let mut failures = Vec::new();

    // The checker needs a lossless stream to verify ordering invariants.
    if trace_dropped > 0 {
        failures.push(Failure {
            oracle: "trace-lossless",
            detail: format!("trace ring dropped {trace_dropped} records; grow the capacity"),
        });
    }

    // Safety: the full ghost-trace invariant suite (occupancy, runnable
    // switch-in, Tseq/Aseq continuity, commit pairing, wakeup liveness
    // with blackout excuses for watchdog/teardown windows).
    for v in check::check(records) {
        failures.push(Failure {
            oracle: "trace-invariant",
            detail: v.to_string(),
        });
    }

    // Liveness: no workload thread starved past the watchdog bound. The
    // blackout excuse in the trace checker deliberately forgives wakeups
    // stranded by an enclave teardown, so end-state starvation must be
    // checked against the kernel directly.
    for &tid in workload {
        let th = k.thread(tid);
        if th.state == ThreadState::Runnable {
            let waited = k.now.saturating_sub(th.runnable_since);
            if waited > STARVATION_BOUND {
                failures.push(Failure {
                    oracle: "starvation",
                    detail: format!(
                        "thread {tid} runnable and unscheduled for {waited} ns at end of run \
                         (bound {STARVATION_BOUND} ns)"
                    ),
                });
            }
        }
    }

    // Liveness: fallback-to-CFS completes. Once the enclave is gone,
    // every surviving workload thread must actually be back under CFS —
    // a thread left in the ghOSt class has no scheduler at all.
    if !runtime.enclave_alive(enclave) {
        for &tid in workload {
            let th = k.thread(tid);
            if th.state != ThreadState::Dead && th.class != CLASS_CFS {
                failures.push(Failure {
                    oracle: "fallback-to-cfs",
                    detail: format!(
                        "thread {tid} left in scheduling class {} after enclave teardown",
                        th.class
                    ),
                });
            }
        }
    }

    // Bounded-time recovery: every degraded-mode failover the standby
    // machinery started must finish — a status-word reconstruction scan
    // completing within the SLO — unless the respawn budget ran out and
    // the enclave was (legitimately) destroyed, which the fallback
    // oracle above covers.
    if let Some(slo) = recovery_slo {
        let starts: Vec<Nanos> = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RecoveryStart { .. }))
            .map(|r| r.ts)
            .collect();
        let dones: Vec<Nanos> = records
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ReconstructDone { .. }))
            .map(|r| r.ts)
            .collect();
        for &start in &starts {
            match dones.iter().find(|&&d| d >= start) {
                Some(&done) if done.saturating_sub(start) > slo => {
                    failures.push(Failure {
                        oracle: "recovery-slo",
                        detail: format!(
                            "recovery started at {start} ns completed only at {done} ns \
                             ({} ns > SLO {slo} ns)",
                            done - start
                        ),
                    });
                }
                Some(_) => {}
                None if runtime.enclave_alive(enclave) => {
                    failures.push(Failure {
                        oracle: "recovery-slo",
                        detail: format!(
                            "recovery started at {start} ns never reconstructed \
                             and the enclave is still alive"
                        ),
                    });
                }
                None => {} // Budget exhausted: fallback oracle judges it.
            }
        }
        // Re-absorption: once recovery ran and the enclave survived,
        // every surviving workload thread must be scheduled by ghOSt
        // again — none left stranded on the transient CFS excursion.
        // Threads the commit governor shed to CFS are exempt (shedding
        // is deliberate), so only shed-free runs are checked.
        if !starts.is_empty() && runtime.enclave_alive(enclave) && runtime.stats().estale_sheds == 0
        {
            for &tid in workload {
                let th = k.thread(tid);
                if th.state != ThreadState::Dead && th.class == CLASS_CFS {
                    failures.push(Failure {
                        oracle: "recovery-reclaim",
                        detail: format!(
                            "thread {tid} still under CFS after degraded-mode recovery"
                        ),
                    });
                }
            }
        }
    }

    // Progress: the run did some work. Even a destroyed enclave must not
    // stop the workload (CFS picks it up).
    if completions == 0 {
        failures.push(Failure {
            oracle: "progress",
            detail: "no workload segment completed over the whole run".to_string(),
        });
    }

    failures
}
