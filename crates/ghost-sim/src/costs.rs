//! Operation cost model, calibrated against Table 3 of the paper.
//!
//! The paper measured these on a 2-socket Skylake (Xeon Platinum 8173M):
//!
//! | # | Operation | Paper |
//! |---|---|---|
//! | 1 | Message delivery to local agent | 725 ns |
//! | 2 | Message delivery to global agent | 265 ns |
//! | 3 | Local schedule (1 txn) | 888 ns |
//! | 4 | Remote schedule, agent overhead | 668 ns |
//! | 5 | Remote schedule, target CPU overhead | 1064 ns |
//! | 6 | Remote schedule, end-to-end | 1772 ns |
//! | 7 | Group remote (10), agent overhead | 3964 ns |
//! | 8 | Group remote (10), target overhead | 1821 ns |
//! | 9 | Group remote (10), end-to-end | 5688 ns |
//! | 10 | Syscall | 72 ns |
//! | 11 | pthread minimal context switch | 410 ns |
//! | 12 | CFS context switch | 599 ns |
//!
//! The constants below are component costs chosen so the derived quantities
//! land on (or within ~1% of) the paper's rows; the derivations are spelled
//! out on each accessor. `ghost-bench`'s `table3_microbench` harness
//! recomputes every row through the simulator and prints paper-vs-measured.

use crate::time::Nanos;

/// Component costs (nanoseconds) of kernel and ghOSt operations.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Bare syscall entry/exit (Table 3 line 10).
    pub syscall: Nanos,
    /// Minimal context switch between pthreads (Table 3 line 11).
    pub ctx_switch_min: Nanos,
    /// CFS context switch, including runqueue bookkeeping (Table 3 line 12).
    pub ctx_switch_cfs: Nanos,
    /// Producing one message into a shared-memory queue.
    pub msg_enqueue: Nanos,
    /// Consuming one message from a shared-memory queue.
    pub msg_dequeue: Nanos,
    /// Waking a blocked agent: mark runnable + switch into the agent.
    pub agent_wakeup: Nanos,
    /// Kernel-side commit work for a transaction targeting the local CPU.
    pub txn_local_commit: Nanos,
    /// Kernel-side validation work per transaction (seqnum + state checks).
    pub txn_validate: Nanos,
    /// Programming and sending an IPI to the first remote target.
    pub ipi_send: Nanos,
    /// Incremental cost per additional target in a batch IPI.
    pub ipi_send_extra: Nanos,
    /// IPI propagation through the interconnect (same socket).
    pub ipi_propagation: Nanos,
    /// Extra propagation when crossing sockets.
    pub ipi_propagation_cross_socket: Nanos,
    /// Target-side IPI reception and handler entry.
    pub ipi_receive: Nanos,
    /// Extra target-side cost under group commit (shared-structure
    /// contention among simultaneously-woken targets).
    pub group_target_contention: Nanos,
    /// Multiplier (per mille) on agent-side costs when the agent's SMT
    /// sibling is busy: 1250 = 1.25x (drives Fig. 5's drop ❷).
    pub smt_contention_permille: u32,
    /// Multiplier (per mille) on message/validate/IPI costs when the
    /// remote party is on the other socket (queue slots, status words,
    /// and runqueue lines all cross the interconnect): 2200 = 2.2x
    /// (drives Fig. 5's decline ❸).
    pub cross_socket_permille: u32,
    /// Work-rate multiplier (per mille) for a workload thread whose SMT
    /// sibling is also busy: 650 = both siblings run at 65% of a lone core.
    pub smt_work_rate_permille: u32,
    /// Dispatcher-to-worker handoff in the Shinjuku dataplane baseline
    /// (shared-memory descriptor passing; no kernel involvement).
    pub dataplane_handoff: Nanos,
    /// Per-thread cost of the status-word scan a joining or upgraded
    /// agent performs to rebuild its view of the enclave (§3.4): read the
    /// status word, classify the thread, seed the tracker. Calibrated so
    /// 50k threads reconstruct in ~105 ms (Fig. 9).
    pub reconstruct_per_thread: Nanos,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            syscall: 72,
            ctx_switch_min: 410,
            ctx_switch_cfs: 599,
            msg_enqueue: 160,
            msg_dequeue: 105,
            agent_wakeup: 460,
            txn_local_commit: 289,
            txn_validate: 229,
            ipi_send: 370,
            ipi_send_extra: 137,
            ipi_propagation: 40,
            ipi_propagation_cross_socket: 260,
            ipi_receive: 465,
            group_target_contention: 757,
            smt_contention_permille: 1250,
            cross_socket_permille: 2200,
            smt_work_rate_permille: 650,
            dataplane_handoff: 150,
            reconstruct_per_thread: 2_100,
        }
    }
}

impl CostModel {
    /// Table 3 line 1: message delivery to a *local* (blocked, per-CPU)
    /// agent = enqueue + agent wakeup + dequeue = 160+460+105 = 725 ns.
    pub fn message_delivery_local(&self) -> Nanos {
        self.msg_enqueue + self.agent_wakeup + self.msg_dequeue
    }

    /// Table 3 line 2: message delivery to the *global* (spinning) agent
    /// = enqueue + dequeue = 160+105 = 265 ns.
    pub fn message_delivery_global(&self) -> Nanos {
        self.msg_enqueue + self.msg_dequeue
    }

    /// Table 3 line 3: local schedule (commit of one transaction targeting
    /// the agent's own CPU, through to the target thread running)
    /// = local commit + CFS-grade context switch = 289+599 = 888 ns.
    pub fn local_schedule(&self) -> Nanos {
        self.txn_local_commit + self.ctx_switch_cfs
    }

    /// Table 3 line 4: remote schedule agent-side overhead
    /// = syscall + validate + IPI send = 72+229+370 = 671 ns (paper: 668).
    pub fn remote_schedule_agent(&self) -> Nanos {
        self.syscall + self.txn_validate + self.ipi_send
    }

    /// Table 3 line 5: remote schedule target-side overhead
    /// = IPI receive + context switch = 465+599 = 1064 ns.
    pub fn remote_schedule_target(&self) -> Nanos {
        self.ipi_receive + self.ctx_switch_cfs
    }

    /// Table 3 line 6: remote schedule end-to-end
    /// = agent side + propagation + target side = 671+40+1064 = 1775 ns
    /// (paper: 1772; the two sides overlap slightly on real hardware).
    pub fn remote_schedule_e2e(&self) -> Nanos {
        self.remote_schedule_agent() + self.ipi_propagation + self.remote_schedule_target()
    }

    /// Table 3 line 7: agent-side overhead of a group commit of `n`
    /// transactions for `n` distinct CPUs
    /// = syscall + n·validate + batch IPI
    /// (n=10: 72 + 2290 + 370 + 9·137 = 3965 ns; paper: 3964).
    pub fn group_schedule_agent(&self, n: u64) -> Nanos {
        if n == 0 {
            return self.syscall;
        }
        self.syscall + n * self.txn_validate + self.ipi_send + (n - 1) * self.ipi_send_extra
    }

    /// Table 3 line 8: per-target overhead under group commit
    /// = IPI receive + contention + context switch = 465+757+599 = 1821 ns.
    pub fn group_schedule_target(&self) -> Nanos {
        self.ipi_receive + self.group_target_contention + self.ctx_switch_cfs
    }

    /// Table 3 line 9: group end-to-end latency until the *last* target
    /// runs its thread. The batch IPI is dispatched after all validations;
    /// targets then proceed in parallel but contend (line 8):
    /// n=10: 3965 + 40 + 1821 = 5826 ns. The paper measured 5688 ns —
    /// about 2.4% less — because target-side work partially overlaps the
    /// tail of the agent's batch dispatch on real hardware; we accept the
    /// small overshoot rather than hand-tune an overlap term.
    pub fn group_schedule_e2e(&self, n: u64) -> Nanos {
        self.group_schedule_agent(n) + self.ipi_propagation + self.group_schedule_target()
    }

    /// Applies the SMT-contention multiplier to an agent-side cost.
    pub fn smt_scaled(&self, cost: Nanos) -> Nanos {
        cost * self.smt_contention_permille as u64 / 1000
    }

    /// Applies the cross-socket multiplier to a memory-traffic cost.
    pub fn cross_socket_scaled(&self, cost: Nanos) -> Nanos {
        cost * self.cross_socket_permille as u64 / 1000
    }

    /// Execution rate (0.0–1.0) of a workload thread given whether its SMT
    /// sibling is busy.
    pub fn work_rate(&self, sibling_busy: bool) -> f64 {
        if sibling_busy {
            self.smt_work_rate_permille as f64 / 1000.0
        } else {
            1.0
        }
    }

    /// Total agent-side cost of reconstructing state for `n` threads by
    /// scanning their status words (Fig. 9's rejoin latency): one syscall
    /// to enter the scan plus a per-thread read/classify/seed step.
    /// n=50_000: 72 + 50_000·2_100 = 105.0 ms, matching the paper's
    /// "~105 ms to absorb 50k threads".
    pub fn reconstruction_scan(&self, n: u64) -> Nanos {
        self.syscall + n * self.reconstruct_per_thread
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_row1_local_delivery() {
        assert_eq!(CostModel::default().message_delivery_local(), 725);
    }

    #[test]
    fn table3_row2_global_delivery() {
        assert_eq!(CostModel::default().message_delivery_global(), 265);
    }

    #[test]
    fn table3_row3_local_schedule() {
        assert_eq!(CostModel::default().local_schedule(), 888);
    }

    #[test]
    fn table3_rows4to6_remote_schedule_within_1pct() {
        let c = CostModel::default();
        let within =
            |got: Nanos, paper: Nanos| (got as f64 - paper as f64).abs() / (paper as f64) < 0.01;
        assert!(within(c.remote_schedule_agent(), 668));
        assert_eq!(c.remote_schedule_target(), 1064);
        assert!(within(c.remote_schedule_e2e(), 1772));
    }

    #[test]
    fn table3_rows7to9_group_schedule_within_3pct() {
        let c = CostModel::default();
        let within = |got: Nanos, paper: Nanos, tol: f64| {
            (got as f64 - paper as f64).abs() / (paper as f64) < tol
        };
        assert!(within(c.group_schedule_agent(10), 3964, 0.01));
        assert_eq!(c.group_schedule_target(), 1821);
        assert!(within(c.group_schedule_e2e(10), 5688, 0.03));
    }

    #[test]
    fn group_agent_amortizes_ipis() {
        let c = CostModel::default();
        // Per-txn cost of a 10-group is well below 10 single remote commits.
        assert!(c.group_schedule_agent(10) < 10 * c.remote_schedule_agent());
        // Theoretical throughput claims from §4.1: 1/668ns ≈ 1.5M/s single,
        // 10/3964ns ≈ 2.5M/s grouped.
        let single = 1e9 / c.remote_schedule_agent() as f64;
        let grouped = 10e9 / c.group_schedule_agent(10) as f64;
        assert!(single > 1.4e6 && single < 1.6e6);
        assert!(grouped > 2.4e6 && grouped < 2.6e6);
    }

    #[test]
    fn multipliers() {
        let c = CostModel::default();
        assert_eq!(c.smt_scaled(1000), 1250);
        assert_eq!(c.cross_socket_scaled(1000), 2200);
        assert_eq!(c.work_rate(false), 1.0);
        assert!((c.work_rate(true) - 0.65).abs() < 1e-9);
    }

    #[test]
    fn empty_group_costs_a_syscall() {
        let c = CostModel::default();
        assert_eq!(c.group_schedule_agent(0), c.syscall);
    }

    #[test]
    fn fig9_reconstruction_scan() {
        let c = CostModel::default();
        // Paper §3.4 / Fig. 9: a new agent absorbs 50k threads in ~105 ms.
        let ms = |n| c.reconstruction_scan(n) as f64 / 1e6;
        assert!((ms(50_000) - 105.0).abs() < 1.0);
        // And the curve is linear in thread count.
        assert!(c.reconstruction_scan(10_000) < c.reconstruction_scan(50_000));
        assert!((ms(10_000) - 21.0).abs() < 1.0);
    }
}
