//! Cheap scalar aggregates used by simulator accounting.

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ghost_metrics::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

/// Streaming mean without storing samples.
#[derive(Debug, Default, Clone, Copy)]
pub struct MeanTracker {
    sum: f64,
    n: u64,
}

impl MeanTracker {
    /// Adds one sample.
    pub fn record(&mut self, v: f64) {
        self.sum += v;
        self.n += 1;
    }

    /// Current mean, or 0 if no samples.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Tracks minimum and maximum of a sample stream.
#[derive(Debug, Clone, Copy)]
pub struct MinMax {
    min: u64,
    max: u64,
    n: u64,
}

impl Default for MinMax {
    fn default() -> Self {
        Self {
            min: u64::MAX,
            max: 0,
            n: 0,
        }
    }
}

impl MinMax {
    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.n += 1;
    }

    /// Minimum seen, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.n == 0 {
            0
        } else {
            self.min
        }
    }

    /// Maximum seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn mean_tracker_basics() {
        let mut m = MeanTracker::default();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum(), 6.0);
    }

    #[test]
    fn minmax_basics() {
        let mut mm = MinMax::default();
        assert_eq!(mm.min(), 0);
        assert_eq!(mm.max(), 0);
        mm.record(7);
        mm.record(3);
        mm.record(11);
        assert_eq!(mm.min(), 3);
        assert_eq!(mm.max(), 11);
        assert_eq!(mm.count(), 3);
    }
}
