//! §4.5 in miniature: protect VMs from cross-hyperthread L1TF/MDS attacks
//! with per-core scheduling — sibling hyperthreads only ever run vCPUs of
//! the same VM, enforced by atomic per-core group commits.
//!
//! ```text
//! cargo run --release --example secure_vms
//! ```

use ghost::core::enclave::EnclaveConfig;
use ghost::lab::{GhostSim, Scenario};
use ghost::policies::core_sched::{CoreSchedConfig, CoreSchedPolicy};
use ghost::sim::kernel::ThreadSpec;
use ghost::sim::time::{MILLIS, SECS};
use ghost::sim::topology::CpuId;
use ghost::workloads::vm::{VmApp, VmConfig};

fn main() {
    // 8 physical cores, 16 CPUs; 3 VMs with 4 vCPUs each.
    let GhostSim {
        mut kernel,
        enclave,
        ..
    } = Scenario::builder().name("secure-vms").cpus(16).build_with(
        EnclaveConfig::per_core("secure-vms").with_ticks(true),
        Box::new(CoreSchedPolicy::new(CoreSchedConfig::default())),
    );

    let cfg = VmConfig {
        vms: 3,
        vcpus_per_vm: 4,
        work_per_vcpu: 2 * SECS,
        ..VmConfig::default()
    };
    let app_id = kernel.state.next_app_id();
    let mut app = VmApp::new(cfg.clone(), app_id);
    let mut vcpus = Vec::new();
    for vm in 0..cfg.vms {
        for v in 0..cfg.vcpus_per_vm {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("vm{vm}-vcpu{v}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(vm + 1),
            );
            app.add_vcpu(tid);
            vcpus.push(tid);
        }
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));
    for &v in &vcpus {
        enclave.attach_thread(&mut kernel.state, v);
    }

    // Run to completion, auditing the isolation invariant continuously.
    let mut violations = 0u64;
    let mut samples = 0u64;
    loop {
        kernel.run_for(MILLIS);
        samples += 1;
        let k = &kernel.state;
        for cpu in k.topo.all_cpus() {
            let Some(sib) = k.topo.sibling(cpu) else {
                continue;
            };
            if sib < cpu {
                continue;
            }
            let cookie = |c: CpuId| -> Option<u64> {
                let cur = k.cpus[c.index()].current?;
                let t = &k.threads[cur.index()];
                (t.cookie != 0).then_some(t.cookie)
            };
            if let (Some(a), Some(b)) = (cookie(cpu), cookie(sib)) {
                if a != b {
                    violations += 1;
                }
            }
        }
        let done = kernel
            .app_mut(app_id)
            .as_any()
            .downcast_mut::<VmApp>()
            .expect("vm app")
            .done();
        if done || kernel.now() > 60 * SECS {
            break;
        }
    }
    let app = kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<VmApp>()
        .expect("vm app");
    let total = app.total_time().expect("workload finished") as f64 / 1e9;
    println!("3 VMs x 4 vCPUs, 2 s of work each, on 8 SMT cores:");
    println!("  finished in {total:.2} virtual seconds");
    println!("  isolation audits: {samples} samples, {violations} cross-VM SMT co-residencies");
    assert_eq!(violations, 0, "the core-scheduling invariant must hold");
    println!("OK — no VM ever shared a physical core with another VM.");
}
