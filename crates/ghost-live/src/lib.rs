//! # ghost-live — real OS threads behind the ghOSt ABI
//!
//! The second implementation of [`ghost_core::GhostBackend`]: where
//! `ghost-sim` runs the runtime against a discrete-event kernel,
//! `ghost-live` runs the *same unmodified runtime and policies* against
//! real `std::thread` workers, a monotonic wall clock, lock-free SPSC
//! signal rings, and the same `AtomicU64`-seqlock status words — the
//! paper's claim that scheduling logic lives entirely in userspace,
//! demonstrated by swapping the machine out from underneath it.
//!
//! | piece | DES (`ghost-sim`) | live (this crate) |
//! |---|---|---|
//! | time | virtual event clock | [`clock::MonotonicClock`] |
//! | threads | `SimThread` table entries | parked/unparked OS threads |
//! | dispatch | `Switching` + event | unpark on commit ([`worker::WorkerCtl`]) |
//! | preemption | resched event | preempt flag at request boundary |
//! | timers | event heap | timer thread over a deadline heap |
//! | agent signal | event queue | lock-free SPSC ring ([`ring`]) |
//! | status words | `ghost_core::status` | the same type, genuinely shared |
//!
//! Scheduling semantics are kept aligned with the DES by construction:
//! [`state::LiveState::settle`] applies deferred operations in the DES's
//! priority order, stint endings map to the same `OffCpuReason` →
//! `THREAD_*` messages, and trace emission uses the same
//! `SchedWakeup`/`SchedSwitch` conventions — so `ghost-trace`'s invariant
//! checker validates live executions unchanged. The conformance suite
//! (`tests/conformance.rs`) runs the same checks against both backends.
//!
//! Fault injection works live: the same deterministic
//! `ghost_sim::faults::FaultPlan` the DES sweeps is consulted against the
//! wall clock — window faults (queue overflow, IPI delay/loss, agent
//! hang/slow) gate the backend's `fault_*` hooks, one-shot faults (agent
//! crash, spurious wakeup, upgrade) fire from the timer thread, and an
//! `AgentCrash` genuinely exits the agent's OS thread, driving §3.4
//! failover (CFS fallback, standby respawn, reclaim) on real threads.
//! The [`kv`] service layers graceful degradation on top: request
//! timeouts, bounded retry with backoff, and load shedding while the
//! enclave is degraded ([`kv::DegradedLimits`]).
//!
//! What is *not* modelled live: CFS runqueues (unmanaged threads run on
//! the host scheduler; `cfs_queued` is always 0, so §3.3 hot handoff
//! never triggers) and hardware pinning (lanes are logical; the host
//! kernel places threads).

pub mod clock;
pub mod kernel;
pub mod kv;
pub mod ring;
pub mod state;
pub mod worker;

pub use clock::MonotonicClock;
pub use kernel::{LiveConfig, LiveKernel};
pub use kv::{
    await_completion, open_loop_drive, DegradedLimits, DegradedStats, KvRequest, KvService,
};
pub use ring::{spsc, SpscConsumer, SpscProducer};
pub use state::{LiveStats, WakeSignal};
pub use worker::{WorkerCmd, WorkerCtl};
