//! Table 4: secure VM core scheduling (§4.5). "Scheduling 32 vCPUs on 25
//! physical cores with 50 logical CPUs", bwaves-like compute, three
//! schedulers: CFS (no security), in-kernel core scheduling, ghOSt
//! per-core scheduling.

use ghost_baselines::kernel_core_sched::KernelCoreSched;
use ghost_core::enclave::EnclaveConfig;
use ghost_core::runtime::GhostRuntime;
use ghost_policies::core_sched::{CoreSchedConfig, CoreSchedPolicy};
use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, SECS};
use ghost_sim::topology::Topology;
use ghost_sim::CLASS_CFS;
use ghost_workloads::vm::{VmApp, VmConfig};

/// Scheduler under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmSched {
    /// CFS: best throughput, no cross-hyperthread isolation.
    Cfs,
    /// In-kernel cookie-aware core scheduling.
    KernelCoreSched,
    /// ghOSt per-core scheduling with atomic sibling commits.
    GhostCoreSched,
}

impl VmSched {
    /// Row label matching Table 4.
    pub fn name(self) -> &'static str {
        match self {
            VmSched::Cfs => "CFS (no security)",
            VmSched::KernelCoreSched => "In-kernel Core Scheduling",
            VmSched::GhostCoreSched => "ghOSt Core Scheduling",
        }
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, Copy)]
pub struct Table4Row {
    /// Which scheduler.
    pub sched: VmSched,
    /// bwaves-like rate (higher is better).
    pub rate: f64,
    /// Total completion time, virtual seconds (lower is better).
    pub total_secs: f64,
    /// Observed cross-VM SMT co-residency events (must be 0 for the two
    /// secure schedulers — the security property itself).
    pub isolation_violations: u64,
}

/// Runs one scheduler over the bwaves workload and audits the isolation
/// invariant by sampling sibling co-residency at every millisecond tick.
pub fn run(sched: VmSched, cfg: VmConfig) -> Table4Row {
    let topo = Topology::new("vm-50", 1, 25, 2, 25);
    let mut kernel = Kernel::new(topo, KernelConfig::default());
    if sched == VmSched::KernelCoreSched {
        kernel.install_class(CLASS_CFS, Box::new(KernelCoreSched::new()));
    }
    let app_id = kernel.state.next_app_id();
    let mut app = VmApp::new(cfg.clone(), app_id);
    let mut vcpus: Vec<Tid> = Vec::new();
    for vm in 0..cfg.vms {
        for v in 0..cfg.vcpus_per_vm {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("vm{vm}-vcpu{v}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(vm + 1),
            );
            app.add_vcpu(tid);
            vcpus.push(tid);
        }
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));

    let runtime = if sched == VmSched::GhostCoreSched {
        let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
        let cpus = kernel.state.topo.all_cpus_set();
        let enclave = runtime.launch_enclave(
            &mut kernel,
            cpus,
            EnclaveConfig::per_core("secure-vm").with_ticks(true),
            Box::new(CoreSchedPolicy::new(CoreSchedConfig::default())),
        );
        for &v in &vcpus {
            enclave.attach_thread(&mut kernel.state, v);
        }
        Some(runtime)
    } else {
        None
    };
    let _ = &runtime;

    // Drive to completion, auditing isolation every millisecond.
    let mut violations = 0u64;
    let mut done_at: Option<Nanos> = None;
    let deadline = 50 * cfg.work_per_vcpu; // Generous runaway guard.
    while kernel.now() < deadline {
        kernel.run_for(SECS / 1000);
        violations += audit_isolation(&kernel);
        let app = kernel
            .app_mut(app_id)
            .as_any()
            .downcast_mut::<VmApp>()
            .expect("vm app");
        if app.done() {
            done_at = app.total_time();
            break;
        }
    }
    let total = done_at.unwrap_or(kernel.now());
    let total_secs = total as f64 / 1e9;
    let total_work = (cfg.vms * cfg.vcpus_per_vm) as f64 * cfg.work_per_vcpu as f64 / 1e9;
    Table4Row {
        sched,
        rate: total_work / total_secs * 16.0,
        total_secs,
        isolation_violations: violations,
    }
}

/// Counts sibling pairs currently running vCPUs of *different* VMs.
fn audit_isolation(kernel: &Kernel) -> u64 {
    let k = &kernel.state;
    let mut violations = 0;
    for cpu in k.topo.all_cpus() {
        let Some(sib) = k.topo.sibling(cpu) else {
            continue;
        };
        if sib < cpu {
            continue; // Count each pair once.
        }
        let cookie_of = |c: ghost_sim::topology::CpuId| -> Option<u64> {
            let cur = k.cpus[c.index()].current?;
            let t = &k.threads[cur.index()];
            (t.cookie != 0).then_some(t.cookie)
        };
        if let (Some(a), Some(b)) = (cookie_of(cpu), cookie_of(sib)) {
            if a != b {
                violations += 1;
            }
        }
    }
    violations
}
