//! Enclaves: CPU partitions each managed by one ghOSt policy (§3, Fig. 2).
//!
//! "A system can be partitioned into multiple independent enclaves, at CPU
//! granularity, each of which runs its own policy. ... Enclaves also help
//! in isolating faults, limiting the damage of an agent-crash to the
//! enclave it belongs to."

use crate::msg::Message;
use crate::pnt::PntRings;
use crate::queue::MessageQueue;
use crate::slab::{CpuMap, TidMap, TidSlab};
use crate::status::StatusWordRef;
use ghost_sim::cpuset::CpuSet;
use ghost_sim::thread::Tid;
use ghost_sim::time::Nanos;
use ghost_sim::topology::CpuId;

/// Identifier of an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EnclaveId(pub u32);

/// Identifier of a message queue within an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub u32);

/// How agents are organized in an enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentMode {
    /// One active agent per CPU, each with its own queue (Fig. 2 left).
    PerCpu,
    /// One spinning global agent scheduling every CPU in the enclave;
    /// all other agents are inactive hot-standbys (Fig. 2 right).
    Centralized,
    /// One queue and one active agent per *physical core*, scheduling
    /// both SMT siblings with synchronized group commits (§4.5, Fig. 9).
    PerCore,
}

/// Per-enclave configuration.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// Debug name.
    pub name: String,
    /// Agent organization.
    pub mode: AgentMode,
    /// Capacity of each message queue.
    pub queue_capacity: usize,
    /// Deliver `TIMER_TICK` messages for enclave CPUs.
    pub deliver_ticks: bool,
    /// Watchdog: destroy the enclave if a runnable ghOSt thread is left
    /// unscheduled for this long (§3.4). `None` disables the watchdog.
    pub watchdog_timeout: Option<Nanos>,
    /// Enable the BPF `pick_next_task` fast path with this per-node ring
    /// capacity (§3.2/§5). `None` disables it.
    pub pnt_ring_capacity: Option<usize>,
    /// Degraded-mode failover (§3.4): when an agent crashes with no staged
    /// policy, threads transiently fall back to CFS while a standby agent
    /// respawns and reconstructs from status words. `None` keeps the
    /// crash-destroys-the-enclave behaviour.
    pub standby: Option<crate::recovery::StandbyConfig>,
    /// Byzantine strike budget: quarantine (destroy → CFS fallback) the
    /// enclave after this many rejected ABI calls that no benign race
    /// can produce ([`crate::abi::AbiError::byzantine`]). `None`
    /// disables quarantine; rejections are still counted and traced.
    pub abi_strike_budget: Option<u32>,
}

impl EnclaveConfig {
    /// A centralized enclave with sensible defaults.
    pub fn centralized(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mode: AgentMode::Centralized,
            queue_capacity: 65_536,
            deliver_ticks: false,
            watchdog_timeout: None,
            pnt_ring_capacity: None,
            standby: None,
            abi_strike_budget: None,
        }
    }

    /// A per-CPU enclave with sensible defaults.
    pub fn per_cpu(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mode: AgentMode::PerCpu,
            queue_capacity: 8_192,
            deliver_ticks: true,
            watchdog_timeout: None,
            pnt_ring_capacity: None,
            standby: None,
            abi_strike_budget: None,
        }
    }

    /// A per-physical-core enclave (secure VM scheduling, §4.5).
    pub fn per_core(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mode: AgentMode::PerCore,
            queue_capacity: 8_192,
            deliver_ticks: false,
            watchdog_timeout: None,
            pnt_ring_capacity: None,
            standby: None,
            abi_strike_budget: None,
        }
    }

    /// Sets the per-queue message capacity. Size for the worst burst the
    /// workload can produce — a cohort of `n` threads attached and woken
    /// at once posts `2n` messages before the agent runs, and an
    /// overflowed queue drops (the watchdog, not the producer, notices).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the watchdog timeout.
    pub fn with_watchdog(mut self, timeout: Nanos) -> Self {
        self.watchdog_timeout = Some(timeout);
        self
    }

    /// Enables the PNT fast path.
    pub fn with_pnt(mut self, ring_capacity: usize) -> Self {
        self.pnt_ring_capacity = Some(ring_capacity);
        self
    }

    /// Enables or disables tick delivery.
    pub fn with_ticks(mut self, deliver: bool) -> Self {
        self.deliver_ticks = deliver;
        self
    }

    /// Enables degraded-mode failover with a standby agent.
    pub fn with_standby(mut self, standby: crate::recovery::StandbyConfig) -> Self {
        self.standby = Some(standby);
        self
    }

    /// Sets the byzantine strike budget (quarantine threshold).
    pub fn with_abi_strikes(mut self, budget: u32) -> Self {
        self.abi_strike_budget = Some(budget);
        self
    }
}

/// How message production into a queue wakes agents
/// (`CONFIG_QUEUE_WAKEUP()`, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeMode {
    /// No wakeup: the queue is polled (by the spinning global agent).
    Polled,
    /// Wake this agent thread when a message is produced.
    WakeAgent(Tid),
    /// Wake the agent pinned to the CPU that generated the event; that
    /// agent becomes the active agent for its physical core (per-core
    /// mode, §4.5 / Fig. 9).
    WakeEventCpuAgent,
}

/// A queue plus its wakeup configuration.
pub struct QueueState {
    /// The shared-memory ring.
    pub queue: MessageQueue,
    /// Wakeup behaviour.
    pub wake: WakeMode,
}

/// Kernel-side bookkeeping for a ghOSt-managed thread.
pub struct ThreadInfo {
    /// Queue this thread's messages are routed to (`ASSOCIATE_QUEUE()`).
    pub queue: QueueId,
    /// The thread's sequence number `Tseq`.
    pub tseq: u64,
    /// Messages for this thread produced but not yet consumed; a nonzero
    /// count fails `ASSOCIATE_QUEUE()` per §3.1.
    pub pending_msgs: u32,
    /// Shared status word (seq + on-CPU/runnable flags).
    pub status: StatusWordRef,
    /// Set while a committed-but-not-yet-run transaction references the
    /// thread, so a second transaction cannot double-schedule it.
    pub picked: bool,
}

/// A committed transaction waiting for its target CPU to act on it.
#[derive(Debug, Clone, Copy)]
pub struct CommittedSlot {
    /// Thread to run.
    pub tid: Tid,
    /// Virtual time at which the target CPU observes the commit (IPI
    /// arrival + handler for remote targets; end of the agent's local
    /// commit work for local targets).
    pub arm_at: Nanos,
}

/// Per-agent bookkeeping.
pub struct AgentSlot {
    /// The agent's pthread.
    pub tid: Tid,
    /// The CPU this agent is pinned to.
    pub cpu: CpuId,
    /// The agent's status word; its seq is `Aseq`.
    pub status: StatusWordRef,
}

/// An enclave: a CPU partition managed by one policy.
pub struct Enclave {
    /// Identifier.
    pub id: EnclaveId,
    /// Configuration.
    pub config: EnclaveConfig,
    /// CPUs owned by the enclave.
    pub cpus: CpuSet,
    /// Queues by id (None = destroyed).
    pub queues: Vec<Option<QueueState>>,
    /// The default queue new threads are associated with.
    pub default_queue: QueueId,
    /// Queue receiving CPU-scoped messages, per CPU.
    pub cpu_queues: CpuMap<QueueId>,
    /// ghOSt-managed threads: slab storage with `u32` index handles so
    /// the post/activate/commit/PNT paths never hash a tid.
    pub threads: TidSlab<ThreadInfo>,
    /// Agents by CPU.
    pub agents: CpuMap<AgentSlot>,
    /// The currently active global agent (centralized mode).
    pub global_agent: Option<Tid>,
    /// Active agent per physical core (per-core mode), keyed by the
    /// first CPU of the core.
    pub core_active: CpuMap<Tid>,
    /// Kernel-side committed-transaction slot per CPU.
    pub committed: CpuMap<CommittedSlot>,
    /// PNT fast-path rings, if enabled.
    pub pnt: Option<PntRings>,
    /// Scheduling hints published by workloads (Fig. 1's optional
    /// hints channel): tid → opaque hint word interpreted by the policy
    /// (e.g. expected runtime or a deadline).
    pub hints: TidMap<u64>,
    /// Set once the enclave is being destroyed; all operations abort.
    pub destroyed: bool,
    /// An armed-activation flag to coalesce agent-loop scheduling.
    pub loop_armed: bool,
    /// Time of the most recent in-place policy upgrade, if any. The
    /// watchdog measures starvation from here rather than from before the
    /// handoff, so a freshly promoted agent is not blamed for its
    /// predecessor's backlog (and reaped a second time).
    pub upgraded_at: Option<Nanos>,
    /// Set when an incoming agent (staged upgrade or respawned standby)
    /// must rebuild its view with a status-word scan before its next
    /// activation consumes messages (§3.4).
    pub needs_reconstruct: bool,
    /// Degraded-mode failover in flight (crash happened, standby not yet
    /// re-absorbed every thread). `None` when healthy.
    pub recovery: Option<crate::recovery::RecoveryState>,
    /// Byzantine strikes accumulated: rejected ABI calls whose
    /// [`crate::abi::AbiError`] is structurally impossible from a benign
    /// race (`AbiError::byzantine()`). Crossing
    /// [`EnclaveConfig::abi_strike_budget`] quarantines the enclave.
    pub abi_strikes: u32,
    /// Standby respawns consumed over the enclave's lifetime. The budget
    /// is never replenished — an enclave whose agents keep dying is
    /// destroyed after `max_respawns` total, even if each individual
    /// recovery completed in between.
    pub respawn_attempts: u32,
}

impl Enclave {
    /// Pops every message from `qid` into a vector (consumer side),
    /// updating per-thread pending counts.
    pub fn drain_queue(&mut self, qid: QueueId) -> Vec<Message> {
        let mut msgs = Vec::new();
        self.drain_queue_into(qid, &mut msgs);
        msgs
    }

    /// Batched group-commit drain: pops every message from `qid` into a
    /// caller-owned buffer (appending), updating per-thread pending
    /// counts. The activation loop reuses one buffer across queues and
    /// activations, so the drain itself never allocates in steady state.
    pub fn drain_queue_into(&mut self, qid: QueueId, out: &mut Vec<Message>) {
        let Some(Some(qs)) = self.queues.get(qid.0 as usize) else {
            return;
        };
        let start = out.len();
        qs.queue.drain_into(out);
        for m in &out[start..] {
            if m.ty.is_thread_msg() {
                if let Some(info) = self.threads.get_mut(m.tid) {
                    info.pending_msgs = info.pending_msgs.saturating_sub(1);
                }
            }
        }
    }

    /// The queue CPU-scoped messages for `cpu` go to.
    pub fn queue_for_cpu(&self, cpu: CpuId) -> QueueId {
        self.cpu_queues
            .get(cpu)
            .copied()
            .unwrap_or(self.default_queue)
    }

    /// Total messages dropped across every live queue of the enclave
    /// (the per-queue counters behind the `ghost_queue_overflow`
    /// tracepoint).
    pub fn dropped_msgs(&self) -> u64 {
        self.queues
            .iter()
            .flatten()
            .map(|qs| qs.queue.dropped())
            .sum()
    }
}
