//! Agent failover and bounded-time enclave recovery (§3.4).
//!
//! The paper's fault model: "if an agent crashes, the kernel can simply
//! fall back to CFS for the enclave's threads" and "a newly started agent
//! reconstructs the enclave state by scanning the status words of the
//! threads in the enclave" — absorbing 50k threads in ~105 ms (Fig. 9).
//!
//! Three pieces live here:
//!
//! * [`ThreadSnapshot`]: one entry of the status-word scan a joining or
//!   upgraded agent performs. The runtime collects the scan under an
//!   `Aseq` barrier and hands it to
//!   [`crate::policy::GhostPolicy::on_reconstruct`]; stale in-flight
//!   messages (older seqnums still sitting in queues) are discarded by
//!   the policy-side trackers when they compare sequence numbers.
//! * [`StandbyConfig`] + [`RecoveryState`]: degraded-mode failover. When
//!   an agent dies with no staged successor, the enclave's threads fall
//!   back to CFS *transiently* while a standby agent respawns,
//!   re-attaches the threads, reconstructs, and reclaims them into ghOSt
//!   — all within [`StandbyConfig::recovery_slo`]. Enclave destruction is
//!   the last resort, after [`StandbyConfig::max_respawns`] failed
//!   respawns with exponential backoff.
//! * [`CommitGovernor`]: bounded `ESTALE` commit retry. A thread whose
//!   commits persistently fail stale is shed to CFS instead of letting
//!   the agent spin on it forever.

use crate::enclave::ThreadInfo;
use crate::slab::{TidMap, TidSlab};
use ghost_sim::thread::Tid;
use ghost_sim::time::Nanos;
use ghost_sim::topology::CpuId;

/// Driver-timer key flag marking a standby-respawn timer. Watchdog timers
/// use the raw enclave id as their key, so the high bit keeps the two
/// spaces disjoint.
pub(crate) const RESPAWN_TIMER_FLAG: u64 = 1 << 63;

/// Degraded-mode failover knobs. Attached to
/// [`crate::enclave::EnclaveConfig::standby`]; `None` there keeps the
/// pre-failover behaviour (agent crash without a staged policy destroys
/// the enclave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StandbyConfig {
    /// Respawn attempts before the enclave is destroyed for good.
    pub max_respawns: u32,
    /// Delay before the first respawn; doubles on every further attempt
    /// consumed from the enclave's lifetime respawn budget.
    pub respawn_backoff: Nanos,
    /// Target bound from crash detection to every runnable thread being
    /// schedulable by ghOSt again. The runtime does not enforce this —
    /// the chaos harness's recovery oracle verifies it from traces.
    pub recovery_slo: Nanos,
}

impl Default for StandbyConfig {
    fn default() -> Self {
        Self {
            max_respawns: 3,
            respawn_backoff: 100_000, // 100 µs
            recovery_slo: 10_000_000, // 10 ms
        }
    }
}

/// One entry of the status-word scan: everything an incoming agent can
/// learn about a thread without having seen its message history (§3.4).
#[derive(Debug, Clone, Copy)]
pub struct ThreadSnapshot {
    /// The thread.
    pub tid: Tid,
    /// The status word's sequence number (`Tseq`). Messages still in
    /// flight with `seq` below this are pre-scan leftovers and must be
    /// discarded by the consumer.
    pub seq: u64,
    /// `SW_RUNNABLE`: waiting for an agent decision.
    pub runnable: bool,
    /// `SW_ONCPU`: running right now.
    pub on_cpu: bool,
    /// Last CPU the thread ran on (locality seed).
    pub last_cpu: CpuId,
    /// Grouping cookie (VM id, Snap/batch marker, …).
    pub cookie: u64,
}

/// In-flight degraded-mode failover bookkeeping, held by the enclave
/// between the crash and the standby's first activation.
pub struct RecoveryState {
    /// `ThreadInfo` of every degraded thread, preserved across the CFS
    /// excursion so `Tseq` stays monotone and the status word survives.
    /// Slab-backed like the live thread table, so reclaim is a handle
    /// move, not a rehash.
    pub stashed: TidSlab<ThreadInfo>,
    /// CPUs whose agent died and still awaits a respawn.
    pub pending_cpus: Vec<CpuId>,
    /// Virtual time the first crash of this recovery was detected — the
    /// origin the recovery SLO is measured from.
    pub started_at: Nanos,
}

/// Verdict of the [`CommitGovernor`] for one more stale failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaleVerdict {
    /// Requeue and retry after `backoff` (exponential in the consecutive
    /// failure count).
    Retry {
        /// Suggested delay before the retry.
        backoff: Nanos,
    },
    /// The retry budget is exhausted: shed the thread to CFS
    /// ([`crate::policy::PolicyCtx::shed_to_cfs`]).
    Shed,
}

/// Bounded `ESTALE` retry with backoff and persistent-overflow shedding.
///
/// The natural reaction to a stale commit is to requeue the thread — the
/// in-flight message that invalidated the agent's view arrives and the
/// next attempt succeeds. But a thread whose state churns faster than the
/// agent can observe it fails *every* attempt, and an unbounded retry loop
/// turns that into agent livelock. The governor counts consecutive stale
/// failures per thread, backs retries off exponentially, and after
/// `max_retries` tells the policy to shed the thread to CFS.
#[derive(Debug)]
pub struct CommitGovernor {
    max_retries: u32,
    base_backoff: Nanos,
    stale: TidMap<u32>,
}

impl CommitGovernor {
    /// Creates a governor allowing `max_retries` consecutive stale
    /// failures per thread, with `base_backoff` ns before the first retry.
    pub fn new(max_retries: u32, base_backoff: Nanos) -> Self {
        Self {
            max_retries,
            base_backoff,
            stale: TidMap::new(),
        }
    }

    /// Records one stale failure for `tid` and says what to do about it.
    pub fn on_stale(&mut self, tid: Tid) -> StaleVerdict {
        let n = self.stale.or_insert(tid, 0);
        *n += 1;
        if *n > self.max_retries {
            self.stale.remove(tid);
            StaleVerdict::Shed
        } else {
            let shift = (*n - 1).min(16);
            StaleVerdict::Retry {
                backoff: self.base_backoff << shift,
            }
        }
    }

    /// A commit for `tid` succeeded: the streak is over.
    pub fn on_committed(&mut self, tid: Tid) {
        self.stale.remove(tid);
    }

    /// Forgets a thread entirely (it died or left the enclave).
    pub fn forget(&mut self, tid: Tid) {
        self.stale.remove(tid);
    }

    /// Drops all streaks (after a reconstruction the old view — and its
    /// failures — are meaningless).
    pub fn reset(&mut self) {
        self.stale.clear();
    }

    /// Consecutive stale failures currently recorded for `tid`.
    pub fn streak(&self, tid: Tid) -> u32 {
        self.stale.get(tid).copied().unwrap_or(0)
    }
}

impl Default for CommitGovernor {
    /// Eight consecutive stale failures, starting at a 5 µs backoff.
    fn default() -> Self {
        Self::new(8, 5_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_backs_off_exponentially_then_sheds() {
        let mut g = CommitGovernor::new(3, 1_000);
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Retry { backoff: 1_000 });
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Retry { backoff: 2_000 });
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Retry { backoff: 4_000 });
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Shed);
        // The shed resets the streak: a reappearing thread starts over.
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Retry { backoff: 1_000 });
    }

    #[test]
    fn success_resets_the_streak() {
        let mut g = CommitGovernor::new(2, 1_000);
        g.on_stale(Tid(7));
        g.on_stale(Tid(7));
        assert_eq!(g.streak(Tid(7)), 2);
        g.on_committed(Tid(7));
        assert_eq!(g.streak(Tid(7)), 0);
        assert_eq!(g.on_stale(Tid(7)), StaleVerdict::Retry { backoff: 1_000 });
    }

    #[test]
    fn streaks_are_per_thread() {
        let mut g = CommitGovernor::new(1, 500);
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Retry { backoff: 500 });
        assert_eq!(g.on_stale(Tid(2)), StaleVerdict::Retry { backoff: 500 });
        assert_eq!(g.on_stale(Tid(1)), StaleVerdict::Shed);
        assert_eq!(g.streak(Tid(2)), 1);
    }

    #[test]
    fn default_standby_is_bounded() {
        let c = StandbyConfig::default();
        assert!(c.max_respawns > 0);
        assert!(c.respawn_backoff > 0);
        // Worst-case total backoff stays within the SLO.
        let total: Nanos = (0..c.max_respawns).map(|i| c.respawn_backoff << i).sum();
        assert!(total < c.recovery_slo);
    }
}
