//! The §4.5 VM compute workload: a bwaves-like throughput benchmark.
//! "SPECCPU 2006 bwaves, scheduling 32 vCPUs on 50 real/logical CPUs" —
//! each vCPU is a native thread (cookie = VM id) crunching a fixed amount
//! of work in chunks, with short stalls in between (memory/IO waits that
//! let the scheduler rotate VMs).
//!
//! Table 4 reports the benchmark *rate* (higher is better) and the total
//! completion time (lower is better); both fall out of how much SMT and
//! force-idle capacity the scheduler leaves on the table.

use ghost_sim::app::{App, AppId, Next};
use ghost_sim::kernel::KernelState;
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MICROS, MILLIS, SECS};
use std::collections::HashMap;

/// VM workload configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Number of VMs.
    pub vms: u64,
    /// vCPUs per VM.
    pub vcpus_per_vm: u64,
    /// Total work per vCPU (lone-core nanoseconds).
    pub work_per_vcpu: Nanos,
    /// Compute chunk between stalls.
    pub chunk: Nanos,
    /// Stall duration between chunks.
    pub stall: Nanos,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self {
            vms: 4,
            vcpus_per_vm: 8,
            work_per_vcpu: 20 * SECS,
            chunk: 2 * MILLIS,
            stall: 50 * MICROS,
        }
    }
}

/// The VM compute app.
pub struct VmApp {
    cfg: VmConfig,
    app_id: AppId,
    /// Remaining work per vCPU thread.
    remaining: HashMap<Tid, Nanos>,
    /// Completion time per vCPU.
    pub finished_at: HashMap<Tid, Nanos>,
}

impl VmApp {
    /// Creates the app.
    pub fn new(cfg: VmConfig, app_id: AppId) -> Self {
        Self {
            cfg,
            app_id,
            remaining: HashMap::new(),
            finished_at: HashMap::new(),
        }
    }

    /// Registers a vCPU thread.
    pub fn add_vcpu(&mut self, tid: Tid) {
        self.remaining.insert(tid, self.cfg.work_per_vcpu);
    }

    /// Wakes all vCPUs with their first chunk, in Tid order (the map's
    /// iteration order must not decide same-instant wake ordering).
    pub fn start(&self, k: &mut KernelState) {
        let mut tids: Vec<Tid> = self.remaining.keys().copied().collect();
        tids.sort_by_key(|t| t.0);
        for tid in tids {
            k.thread_mut(tid).remaining = self.cfg.chunk;
            k.wake(tid);
        }
    }

    /// True when every vCPU finished its work.
    pub fn done(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Benchmark completion time: when the last vCPU finished.
    pub fn total_time(&self) -> Option<Nanos> {
        if !self.done() {
            return None;
        }
        self.finished_at.values().max().copied()
    }

    /// The Table 4 "rate" figure: total work divided by wall time,
    /// scaled so an ideal 32-vCPU full-rate run scores ~`vcpus * 16`.
    pub fn rate(&self) -> Option<f64> {
        let t = self.total_time()? as f64 / 1e9;
        let total_work =
            (self.cfg.vms * self.cfg.vcpus_per_vm) as f64 * self.cfg.work_per_vcpu as f64 / 1e9;
        Some(total_work / t * 16.0)
    }
}

impl App for VmApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "vm-bwaves"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        // Stall over: resume the vCPU.
        let tid = Tid(key as u32);
        if let Some(&rem) = self.remaining.get(&tid) {
            k.thread_mut(tid).remaining = rem.min(self.cfg.chunk);
            k.wake(tid);
        }
    }

    fn on_segment_end(&mut self, tid: Tid, k: &mut KernelState) -> Next {
        let Some(rem) = self.remaining.get_mut(&tid) else {
            return Next::Block;
        };
        let done = self.cfg.chunk.min(*rem);
        *rem -= done;
        if *rem == 0 {
            self.remaining.remove(&tid);
            self.finished_at.insert(tid, k.now);
            return Next::Exit;
        }
        // Stall, then the timer resumes us.
        let at = k.now + self.cfg.stall;
        k.arm_app_timer(at, self.app_id, tid.0 as u64);
        Next::Block
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
    use ghost_sim::topology::Topology;

    #[test]
    fn vcpus_complete_their_work() {
        let cfg = VmConfig {
            vms: 1,
            vcpus_per_vm: 2,
            work_per_vcpu: 100 * MILLIS,
            ..VmConfig::default()
        };
        let mut kernel = Kernel::new(Topology::test_small(2), KernelConfig::default());
        let app_id = kernel.state.next_app_id();
        let mut app = VmApp::new(cfg, app_id);
        for i in 0..2 {
            let t = kernel.spawn(
                ThreadSpec::workload(&format!("vcpu{i}"), &kernel.state.topo)
                    .app(app_id)
                    .cookie(1),
            );
            app.add_vcpu(t);
        }
        app.start(&mut kernel.state);
        kernel.add_app(Box::new(app));
        kernel.run_until(SECS);
        // 100 ms of work on idle CPUs with tiny stalls completes well
        // within a second; verify through thread state.
        let works: Vec<Nanos> = (0..kernel.state.threads.len())
            .map(|i| kernel.state.threads[i].total_work)
            .collect();
        assert!(works.iter().all(|&w| w >= 100 * MILLIS));
    }
}
