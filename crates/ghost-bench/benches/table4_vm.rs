//! Table 4: secure VM core-scheduling performance (§4.5). bwaves-like
//! rate and total time for CFS, in-kernel core scheduling, and ghOSt
//! core scheduling, plus the isolation audit the security argument
//! rests on.

use ghost_bench::table4::{self, VmSched};
use ghost_metrics::Table;
use ghost_sim::time::SECS;
use ghost_workloads::vm::VmConfig;

fn main() {
    let cfg = VmConfig {
        work_per_vcpu: 12 * SECS,
        ..VmConfig::default()
    };
    let rows: Vec<table4::Table4Row> = [
        VmSched::Cfs,
        VmSched::KernelCoreSched,
        VmSched::GhostCoreSched,
    ]
    .into_iter()
    .map(|s| table4::run(s, cfg.clone()))
    .collect();

    let mut t = Table::new(vec![
        "Scheduling Policy",
        "bwaves Rate",
        "Total Time",
        "cross-VM SMT leaks",
    ])
    .with_title("Table 4: Secure VM Core Scheduling performance");
    for r in &rows {
        t.row(vec![
            r.sched.name().to_string(),
            format!("{:.0}", r.rate),
            format!("{:.0} seconds", r.total_secs),
            r.isolation_violations.to_string(),
        ]);
    }
    t.print();

    let cfs = &rows[0];
    let kernel = &rows[1];
    let ghost = &rows[2];
    // Security: both core schedulers never co-run different VMs on a core.
    assert_eq!(kernel.isolation_violations, 0, "kernel core-sched leaked");
    assert_eq!(ghost.isolation_violations, 0, "ghOSt core-sched leaked");
    // CFS leaks (that is the point of the mitigation) and is fastest.
    assert!(
        cfs.isolation_violations > 0,
        "CFS should co-schedule different VMs on SMT siblings"
    );
    assert!(
        cfs.total_secs <= kernel.total_secs && cfs.total_secs <= ghost.total_secs,
        "CFS should be fastest (no isolation constraint)"
    );
    // ghOSt is competitive with the in-kernel implementation (paper:
    // 929 s vs 937 s — within ~1%; we allow 10%).
    let ratio = ghost.total_secs / kernel.total_secs;
    assert!(
        (0.85..=1.10).contains(&ratio),
        "ghOSt core-sched should be competitive with in-kernel: ratio {ratio:.3}"
    );
    // The isolation cost is visible but modest (paper: ~5%; allow 1-30%).
    let cost = kernel.total_secs / cfs.total_secs;
    assert!(
        (1.0..=1.35).contains(&cost),
        "core scheduling cost should be modest: {cost:.3}"
    );
    println!("\nOK: Table 4 shapes hold (CFS fastest, secure schedulers within ~10% of each other, zero leaks).");
}
