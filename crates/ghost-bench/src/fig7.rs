//! Fig. 7: Google Snap (§4.3). MicroQuanta vs a ghOSt centralized FIFO
//! policy scheduling Snap packet-processing workers, in quiet mode (only
//! networking load) and loaded mode (40 batch antagonist threads).

use ghost_baselines::microquanta::{MicroQuanta, MicroQuantaConfig};
use ghost_core::enclave::EnclaveConfig;
use ghost_core::runtime::GhostRuntime;
use ghost_metrics::LogHistogram;
use ghost_policies::snap::{SnapPolicy, SNAP_COOKIE};
use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
use ghost_sim::time::Nanos;
use ghost_sim::topology::Topology;
use ghost_sim::CLASS_RT;
use ghost_workloads::batch::BatchApp;
use ghost_workloads::snap::{SnapApp, SnapConfig};

/// Scheduler under test for the Snap workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapSched {
    /// The production soft-realtime baseline.
    MicroQuanta,
    /// The ghOSt centralized FIFO policy.
    Ghost,
}

impl SnapSched {
    /// Legend name.
    pub fn name(self) -> &'static str {
        match self {
            SnapSched::MicroQuanta => "MicroQ",
            SnapSched::Ghost => "ghOSt",
        }
    }
}

/// Results of one Snap run.
#[derive(Debug)]
pub struct Fig7Run {
    /// 64 B message RTTs.
    pub rtt_64b: LogHistogram,
    /// 64 kB message RTTs.
    pub rtt_64kb: LogHistogram,
    /// Messages completed.
    pub completed: u64,
}

/// Runs the Snap experiment on one socket (56 CPUs) for `horizon`.
pub fn run(sched: SnapSched, loaded: bool, cfg: SnapConfig, horizon: Nanos) -> Fig7Run {
    let topo = Topology::new("skylake-socket", 1, 28, 2, 28);
    let mut kernel = Kernel::new(topo, KernelConfig::default());
    if sched == SnapSched::MicroQuanta {
        let n = kernel.state.topo.num_cpus();
        kernel.install_class(
            CLASS_RT,
            Box::new(MicroQuanta::new(n, MicroQuantaConfig::default())),
        );
    }
    let app_id = kernel.state.next_app_id();
    let mut app = SnapApp::new(cfg, app_id);
    let mut workers = Vec::new();
    let mut servers = Vec::new();
    for i in 0..6 {
        let w = kernel.spawn(
            ThreadSpec::workload(&format!("snap-w{i}"), &kernel.state.topo)
                .app(app_id)
                .cookie(SNAP_COOKIE),
        );
        let s = kernel
            .spawn(ThreadSpec::workload(&format!("snap-srv{i}"), &kernel.state.topo).app(app_id));
        app.add_stream(w, s);
        workers.push(w);
        servers.push(s);
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));

    // Antagonists (loaded mode): 40 batch threads soaking idle CPUs.
    let mut antagonists = Vec::new();
    if loaded {
        let batch_id = kernel.state.next_app_id();
        let mut batch = BatchApp::new(batch_id);
        for i in 0..40 {
            let t = kernel.spawn(
                ThreadSpec::workload(&format!("antagonist{i}"), &kernel.state.topo)
                    .app(batch_id)
                    .nice(10),
            );
            batch.add_thread(t);
            antagonists.push(t);
        }
        batch.start(&mut kernel.state);
        kernel.add_app(Box::new(batch));
    }

    match sched {
        SnapSched::MicroQuanta => {
            // Workers in the MicroQuanta RT class; antagonists stay CFS.
            for &w in &workers {
                kernel.state.move_to_class(w, CLASS_RT);
            }
        }
        SnapSched::Ghost => {
            // Enclave over the whole socket; the policy manages workers
            // AND antagonists (strict priority), per §4.3.
            let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
            let cpus = kernel.state.topo.all_cpus_set();
            let enclave = runtime.launch_enclave(
                &mut kernel,
                cpus,
                EnclaveConfig::centralized("snap"),
                Box::new(SnapPolicy::new()),
            );
            for &w in &workers {
                enclave.attach_thread(&mut kernel.state, w);
            }
            for &a in &antagonists {
                enclave.attach_thread(&mut kernel.state, a);
            }
        }
    }

    kernel.run_until(horizon);
    let app = kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<SnapApp>()
        .expect("snap app");
    let res = app.results();
    Fig7Run {
        rtt_64b: res.rtt_64b,
        rtt_64kb: res.rtt_64kb,
        completed: res.completed,
    }
}
