//! Fig. 6: the Shinjuku comparison (§4.2). Three systems serve the same
//! dispersive RocksDB request stream on one socket of a Xeon E5-2658
//! (24 logical CPUs):
//!
//! 1. **Shinjuku** — the original dataplane (dedicated spinning cores).
//! 2. **ghOSt-Shinjuku** — the Shinjuku policy on ghOSt (200 workers, a
//!    global agent, 20 schedulable CPUs).
//! 3. **CFS-Shinjuku** — the same serving app on CFS, non-preemptive at
//!    the request level.
//!
//! Fig. 6b/c co-locate a batch app: ghOSt switches to the
//! Shinjuku+Shenango policy; under the dataplane the batch app can never
//! use the dataplane's CPUs.

use ghost_baselines::shinjuku_dataplane::{DataplaneConfig, ShinjukuDataplane};
use ghost_core::enclave::EnclaveConfig;
use ghost_core::runtime::GhostRuntime;
use ghost_metrics::LogHistogram;
use ghost_policies::shinjuku::{ShinjukuConfig, ShinjukuPolicy};
use ghost_policies::shinjuku_shenango::{ShinjukuShenangoPolicy, BATCH_COOKIE};
use ghost_sim::kernel::{Kernel, KernelConfig, ThreadSpec};
use ghost_sim::time::{Nanos, MILLIS, SECS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;
use ghost_workloads::batch::BatchApp;
use ghost_workloads::rocksdb::{RocksDbApp, RocksDbConfig};

/// The systems under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Original Shinjuku dataplane.
    Shinjuku,
    /// Shinjuku policy on ghOSt.
    GhostShinjuku,
    /// Non-preemptive serving on CFS.
    CfsShinjuku,
}

impl System {
    /// Display name matching the figure legend.
    pub fn name(self) -> &'static str {
        match self {
            System::Shinjuku => "Shinjuku",
            System::GhostShinjuku => "ghOSt-Shinjuku",
            System::CfsShinjuku => "CFS-Shinjuku",
        }
    }
}

/// One measurement.
#[derive(Debug)]
pub struct Fig6Point {
    /// Offered load (requests/s).
    pub offered: f64,
    /// Achieved throughput (completed requests/s after warmup).
    pub achieved: f64,
    /// 99th percentile latency, µs.
    pub p99_us: f64,
    /// Batch app CPU share of the 20 worker CPUs (0 when no batch app).
    pub batch_share: f64,
    /// Full latency histogram.
    pub latency: LogHistogram,
}

/// Number of worker CPUs every system gets.
pub const WORKER_CPUS: usize = 20;
/// ghOSt worker-thread pool size (paper: 200).
pub const GHOST_WORKERS: usize = 200;

/// Runs one system at one offered load for `horizon` of virtual time.
pub fn run_point(system: System, rate: f64, with_batch: bool, horizon: Nanos) -> Fig6Point {
    let cfg = RocksDbConfig::dispersive(rate, 42);
    match system {
        System::Shinjuku => run_dataplane(cfg, horizon),
        System::GhostShinjuku => run_ghost(cfg, with_batch, horizon),
        System::CfsShinjuku => run_cfs(cfg, with_batch, horizon),
    }
}

fn finish(
    offered: f64,
    latency: LogHistogram,
    warmup: Nanos,
    horizon: Nanos,
    batch_cpu: Nanos,
) -> Fig6Point {
    let span = (horizon - warmup) as f64 / 1e9;
    Fig6Point {
        offered,
        achieved: latency.count() as f64 / span,
        p99_us: latency.percentile(99.0) as f64 / 1e3,
        batch_share: batch_cpu as f64 / (WORKER_CPUS as f64 * (horizon as f64)),
        latency,
    }
}

fn run_dataplane(cfg: RocksDbConfig, horizon: Nanos) -> Fig6Point {
    let trace = cfg.trace(horizon);
    let dp = ShinjukuDataplane::new(DataplaneConfig {
        workers: WORKER_CPUS,
        ..DataplaneConfig::default()
    });
    // Record only post-warmup arrivals, matching the sim harnesses.
    let warm: Vec<(Nanos, Nanos)> = trace
        .iter()
        .copied()
        .filter(|&(t, _)| t >= cfg.warmup)
        .collect();
    // Run the full trace for queue state, but measure on the warm part:
    // approximate by running the warm trace only (the dataplane reaches
    // steady state within a few ms).
    let res = dp.run(warm, horizon);
    finish(cfg.rate, res.latency, cfg.warmup, horizon, 0)
}

/// Builds the E5 machine with the serving app; returns the kernel, app
/// id, and worker tids (class/affinity assigned by the caller).
fn build_machine(
    cfg: &RocksDbConfig,
    horizon: Nanos,
    workers: usize,
) -> (Kernel, ghost_sim::app::AppId, Vec<ghost_sim::thread::Tid>) {
    let topo = Topology::e5_single_socket_24();
    let mut kernel = Kernel::new(topo, KernelConfig::default());
    let app_id = kernel.state.next_app_id();
    let mut app = RocksDbApp::new(cfg.clone(), app_id, horizon);
    let mut tids = Vec::new();
    for i in 0..workers {
        let tid = kernel
            .spawn(ThreadSpec::workload(&format!("rocksdb-w{i}"), &kernel.state.topo).app(app_id));
        app.add_worker(tid);
        tids.push(tid);
    }
    app.start(&mut kernel.state);
    kernel.add_app(Box::new(app));
    (kernel, app_id, tids)
}

/// The CPUs the enclave manages: CPU 2 hosts the global agent, CPUs
/// 3..=22 run workers (CPUs 0-1 are "the load generator's core").
fn enclave_cpus() -> CpuSet {
    (2..=22u16).map(CpuId).collect()
}

fn run_ghost(cfg: RocksDbConfig, with_batch: bool, horizon: Nanos) -> Fig6Point {
    let (mut kernel, app_id, tids) = build_machine(&cfg, horizon, GHOST_WORKERS);
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let policy: Box<dyn ghost_core::GhostPolicy> = if with_batch {
        Box::new(ShinjukuShenangoPolicy::new(ShinjukuConfig::default()))
    } else {
        Box::new(ShinjukuPolicy::new(ShinjukuConfig::default()))
    };
    let enclave = runtime.launch_enclave(
        &mut kernel,
        enclave_cpus(),
        EnclaveConfig::centralized("shinjuku"),
        policy,
    );
    for &tid in &tids {
        kernel.state.set_affinity(tid, enclave_cpus());
        enclave.attach_thread(&mut kernel.state, tid);
    }
    let mut batch_tids = Vec::new();
    if with_batch {
        let batch_id = kernel.state.next_app_id();
        let mut batch = BatchApp::new(batch_id);
        for i in 0..8 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("batch{i}"), &kernel.state.topo)
                    .app(batch_id)
                    .affinity(enclave_cpus())
                    .cookie(BATCH_COOKIE),
            );
            batch.add_thread(tid);
            batch_tids.push(tid);
        }
        batch.start(&mut kernel.state);
        kernel.add_app(Box::new(batch));
        for &tid in &batch_tids {
            enclave.attach_thread(&mut kernel.state, tid);
        }
    }
    kernel.run_until(horizon);
    let batch_cpu: Nanos = batch_tids
        .iter()
        .map(|&t| kernel.state.thread(t).total_oncpu)
        .sum();
    let app = kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<RocksDbApp>()
        .expect("rocksdb app");
    let res = app.results();
    finish(cfg.rate, res.latency, cfg.warmup, horizon, batch_cpu)
}

fn run_cfs(cfg: RocksDbConfig, with_batch: bool, horizon: Nanos) -> Fig6Point {
    let (mut kernel, app_id, tids) = build_machine(&cfg, horizon, GHOST_WORKERS);
    // Workers in CFS, confined to the same 20 CPUs as the other systems.
    let worker_cpus: CpuSet = (3..=22u16).map(CpuId).collect();
    for &tid in &tids {
        kernel.state.set_affinity(tid, worker_cpus);
        kernel.state.set_nice(tid, -20);
    }
    let mut batch_tids = Vec::new();
    if with_batch {
        let batch_id = kernel.state.next_app_id();
        let mut batch = BatchApp::new(batch_id);
        for i in 0..8 {
            let tid = kernel.spawn(
                ThreadSpec::workload(&format!("batch{i}"), &kernel.state.topo)
                    .app(batch_id)
                    .affinity(worker_cpus)
                    .nice(19),
            );
            batch.add_thread(tid);
            batch_tids.push(tid);
        }
        batch.start(&mut kernel.state);
        kernel.add_app(Box::new(batch));
    }
    kernel.run_until(horizon);
    let batch_cpu: Nanos = batch_tids
        .iter()
        .map(|&t| kernel.state.thread(t).total_oncpu)
        .sum();
    let app = kernel
        .app_mut(app_id)
        .as_any()
        .downcast_mut::<RocksDbApp>()
        .expect("rocksdb app");
    let res = app.results();
    finish(cfg.rate, res.latency, cfg.warmup, horizon, batch_cpu)
}

/// The default load sweep (requests/s).
pub fn load_sweep() -> Vec<f64> {
    vec![
        25_000.0, 50_000.0, 75_000.0, 100_000.0, 125_000.0, 150_000.0, 175_000.0, 200_000.0,
        225_000.0, 250_000.0, 275_000.0, 300_000.0,
    ]
}

/// Default horizon per point.
pub const HORIZON: Nanos = 400 * MILLIS;

/// Convenience: a shortened horizon used by the shape tests.
pub const TEST_HORIZON: Nanos = 300 * MILLIS;

/// Sanity anchor: mean service time of the dispersive workload, ns.
pub fn mean_service() -> f64 {
    RocksDbConfig::dispersive(1.0, 0).processing.mean() + 2_000.0
}

/// Theoretical per-system saturation (req/s) with `WORKER_CPUS` workers.
pub fn capacity() -> f64 {
    WORKER_CPUS as f64 / (mean_service() / 1e9)
}

// Quiet the unused import when SECS is only used by benches.
const _: Nanos = SECS;
