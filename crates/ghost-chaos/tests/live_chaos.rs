//! Bounded live-chaos smoke: one crash combo and one hang combo through
//! the real-thread backend, end to end, with every wall-clock oracle
//! armed. The full rotation runs in CI via `ghost-chaos --live`; this
//! keeps the tier-1 suite honest about the path existing at all.

use ghost_chaos::live::generate_live_plan;
use ghost_chaos::{run_live_combo, LiveCombo, PolicyKind};
use ghost_sim::faults::FaultKind;
use ghost_sim::topology::CpuId;

fn combo(policy: PolicyKind, seed: u64) -> LiveCombo {
    let mut c = LiveCombo::generated(policy, seed);
    // Tier-1 budget: fewer requests, same fault plan and oracles.
    c.requests = 20_000;
    c
}

#[test]
fn live_crash_combo_recovers_within_slo() {
    // Seed 3 rotates to an agent crash (see `generate_live_plan`).
    let c = combo(PolicyKind::CentralizedFifo, 3);
    assert!(c.injects_crash());
    let report = run_live_combo(&c);
    assert!(
        report.failures.is_empty(),
        "oracle failures: {:?}",
        report.failures
    );
    assert!(report.stats.respawns >= 1, "standby never respawned");
    assert!(report.stats.reconstructions >= 1, "no status-word resync");
    let gap = report.recovery_wall_ns.expect("recovery was measured");
    assert!(
        gap <= ghost_chaos::RECOVERY_WALL_SLO,
        "recovery took {gap} ns"
    );
    // Every admitted request terminated exactly once.
    assert_eq!(
        report.completed + report.shed + report.failed,
        c.requests,
        "closed-loop accounting leaked"
    );
}

#[test]
fn live_hang_combo_stalls_and_completes() {
    // Seed 4 rotates to an agent hang on every CPU.
    let c = combo(PolicyKind::PerCpu, 4);
    assert!(!c.injects_crash());
    assert!(c
        .plan
        .events
        .iter()
        .all(|fe| matches!(fe.kind, FaultKind::AgentHang { .. })));
    let report = run_live_combo(&c);
    assert!(
        report.failures.is_empty(),
        "oracle failures: {:?}",
        report.failures
    );
    assert!(report.completed > 0, "hang combo made no progress");
}

#[test]
fn live_plans_scale_to_the_backend_cpus() {
    // The generator must target only CPUs the live kernel manages:
    // a plan aimed at CpuId(7) on a 2-CPU backend would inject nothing.
    let cpus: Vec<CpuId> = (0..2u16).map(CpuId).collect();
    for seed in 0..9 {
        for fe in &generate_live_plan(seed, &cpus).events {
            let target = match fe.kind {
                FaultKind::AgentCrash { cpu }
                | FaultKind::AgentHang { cpu, .. }
                | FaultKind::AgentSlow { cpu, .. } => cpu,
                ref other => panic!("live plan rolled a non-agent fault: {other:?}"),
            };
            assert!(cpus.contains(&target), "seed {seed} targets {target:?}");
        }
    }
}
