//! Table 3: microbenchmarks of ghOSt-specific operations, measured by
//! probing the live runtime on the simulated Skylake machine and printed
//! beside the paper's numbers.
//!
//! Rows 1–9 are measured end-to-end through the message/transaction
//! machinery (probe policies time the actual paths); rows 10–12 are the
//! calibrated primitives themselves.

use ghost_core::enclave::EnclaveConfig;
use ghost_core::msg::{Message, MsgType};
use ghost_core::policy::{GhostPolicy, PolicyCtx};
use ghost_core::runtime::GhostRuntime;
use ghost_core::txn::Transaction;
use ghost_metrics::{MeanTracker, Table};
use ghost_sim::app::{App, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::{CostModel, CpuSet};
use std::sync::{Arc, Mutex};

/// How long each probe thread runs per scheduling (kept fixed so run
/// starts can be derived from segment ends).
const WORK: Nanos = 5 * MICROS;
/// Probe repetitions.
const REPS: u64 = 200;

#[derive(Default)]
struct Probe {
    /// Message-delivery deltas (produced → observed), ns.
    delivery: MeanTracker,
    /// Pre-commit stamps, in commit order.
    pre_commit: Vec<Nanos>,
    /// Agent-side commit overheads, ns.
    agent_overhead: MeanTracker,
    /// Run starts recorded by the app, in order.
    run_starts: Vec<Nanos>,
}

type Shared = Arc<Mutex<Probe>>;

/// App: threads run WORK then block; run starts = segment end − WORK.
struct ProbeApp {
    shared: Shared,
}

impl App for ProbeApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "probe"
    }

    fn on_timer(&mut self, key: u64, k: &mut KernelState) {
        // Wake thread `key` with one work segment.
        let tid = Tid(key as u32);
        k.thread_mut(tid).remaining = WORK;
        k.wake(tid);
    }

    fn on_segment_end(&mut self, _tid: Tid, k: &mut KernelState) -> Next {
        self.shared.lock().unwrap().run_starts.push(k.now - WORK);
        Next::Block
    }
}

/// Policy: measures delivery delay per message and commits every runnable
/// thread (singly or as one group), stamping commit boundaries.
struct ProbePolicy {
    shared: Shared,
    pending: Vec<(Tid, u64)>,
    group: bool,
    targets: Vec<CpuId>,
}

impl GhostPolicy for ProbePolicy {
    fn name(&self) -> &str {
        "probe"
    }

    fn on_msg(&mut self, msg: &Message, ctx: &mut PolicyCtx<'_>) {
        let observed = ctx.now() + ctx.busy_so_far();
        self.shared
            .lock()
            .unwrap()
            .delivery
            .record((observed - msg.produced_at) as f64);
        if msg.ty == MsgType::ThreadWakeup {
            self.pending.push((msg.tid, msg.seq));
        }
    }

    fn schedule(&mut self, ctx: &mut PolicyCtx<'_>) {
        if self.pending.is_empty() {
            return;
        }
        let pre = ctx.now() + ctx.busy_so_far();
        let mut txns: Vec<Transaction> = self
            .pending
            .drain(..)
            .zip(self.targets.iter().cycle())
            .map(|((tid, seq), &cpu)| Transaction::new(tid, cpu).with_thread_seq(seq))
            .collect();
        if self.group {
            ctx.commit(&mut txns);
            let post = ctx.now() + ctx.busy_so_far();
            let mut p = self.shared.lock().unwrap();
            p.agent_overhead.record((post - pre) as f64);
            p.pre_commit.push(pre);
        } else {
            for txn in &mut txns {
                let pre = ctx.now() + ctx.busy_so_far();
                let mut t = *txn;
                ctx.commit_one(&mut t);
                let post = ctx.now() + ctx.busy_so_far();
                assert!(t.status.committed(), "probe commit failed: {:?}", t.status);
                let mut p = self.shared.lock().unwrap();
                p.agent_overhead.record((post - pre) as f64);
                p.pre_commit.push(pre);
            }
        }
    }
}

struct ProbeRun {
    /// Mean message delivery (produced → observed), ns.
    delivery: f64,
    /// Mean agent-side commit overhead, ns.
    agent: f64,
    /// Mean end-to-end (pre-commit → target thread running), ns.
    e2e: f64,
}

/// Runs one probe configuration.
///
/// `mode`: per-CPU (local) when `local` is true, otherwise centralized
/// with `targets` remote CPUs receiving `batch` wakeups at a time.
fn probe(local: bool, batch: usize) -> ProbeRun {
    let topo = Topology::skylake_112();
    let cfg = KernelConfig {
        tick_ns: 0, // No tick noise in the microbenchmarks.
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(topo, cfg);
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let shared: Shared = Arc::new(Mutex::new(Probe::default()));

    let (enclave_cpus, targets, econf) = if local {
        // One-CPU enclave: the agent and the scheduled thread share cpu 1.
        let cpus: CpuSet = CpuSet::from_iter([CpuId(1)]);
        (
            cpus,
            vec![CpuId(1)],
            EnclaveConfig::per_cpu("t3-local").with_ticks(false),
        )
    } else {
        // Agent on cpu 0, targets on same-socket cpus 1..=batch.
        let mut cpus = CpuSet::from_iter([CpuId(0)]);
        let targets: Vec<CpuId> = (1..=batch as u16).map(CpuId).collect();
        for &c in &targets {
            cpus.add(c);
        }
        (cpus, targets, EnclaveConfig::centralized("t3-remote"))
    };
    let policy = ProbePolicy {
        shared: Arc::clone(&shared),
        pending: Vec::new(),
        group: !local,
        targets: targets.clone(),
    };
    let enclave = runtime.launch_enclave(&mut kernel, enclave_cpus, econf, Box::new(policy));

    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..batch {
        let tid = kernel.spawn(
            ThreadSpec::workload(&format!("probe{i}"), &kernel.state.topo)
                .app(app_id)
                .affinity(enclave_cpus),
        );
        tids.push(tid);
    }
    kernel.add_app(Box::new(ProbeApp {
        shared: Arc::clone(&shared),
    }));
    for &tid in &tids {
        enclave.attach_thread(&mut kernel.state, tid);
    }
    // Wake all probe threads together every 100 µs, REPS times.
    for rep in 0..REPS {
        let at = (rep + 1) * 100 * MICROS;
        for &tid in &tids {
            kernel.state.arm_app_timer(at, app_id, tid.0 as u64);
        }
    }
    kernel.run_until((REPS + 2) * 100 * MICROS + 10 * MILLIS);

    let p = shared.lock().unwrap();
    assert!(
        p.run_starts.len() >= (REPS as usize - 2) * batch,
        "probe lost wakeups: {} of {}",
        p.run_starts.len(),
        REPS as usize * batch
    );
    // End-to-end: match each commit's pre-stamp with the LAST run start
    // it produced (for groups, the slowest target).
    let mut e2e = MeanTracker::default();
    let starts = &p.run_starts;
    let per_commit = if local { 1 } else { batch };
    for (i, &pre) in p.pre_commit.iter().enumerate() {
        let lo = i * per_commit;
        let hi = lo + per_commit;
        if hi <= starts.len() {
            let last = starts[lo..hi].iter().max().copied().unwrap_or(0);
            if last > pre {
                e2e.record((last - pre) as f64);
            }
        }
    }
    ProbeRun {
        delivery: p.delivery.mean(),
        agent: p.agent_overhead.mean(),
        e2e: e2e.mean(),
    }
}

fn within(measured: f64, paper: f64, tol: f64) -> bool {
    (measured - paper).abs() / paper <= tol
}

fn main() {
    let costs = CostModel::default();
    let local = probe(true, 1);
    let remote1 = probe(false, 1);
    let remote10 = probe(false, 10);

    // Derived target-side overheads: e2e − agent dispatch − propagation.
    let target1 = remote1.e2e - remote1.agent - costs.ipi_propagation as f64;
    let target10 = remote10.e2e - remote10.agent - costs.ipi_propagation as f64;

    let rows: Vec<(&str, f64, f64)> = vec![
        ("1. Message delivery to local agent", 725.0, local.delivery),
        (
            "2. Message delivery to global agent",
            265.0,
            remote1.delivery,
        ),
        ("3. Local schedule (1 txn)", 888.0, local.e2e),
        ("4. Remote schedule: agent overhead", 668.0, remote1.agent),
        ("5. Remote schedule: target overhead", 1064.0, target1),
        ("6. Remote schedule: end-to-end", 1772.0, remote1.e2e),
        (
            "7. Group remote (10): agent overhead",
            3964.0,
            remote10.agent,
        ),
        ("8. Group remote (10): target overhead", 1821.0, target10),
        ("9. Group remote (10): end-to-end", 5688.0, remote10.e2e),
        ("10. Syscall overhead", 72.0, costs.syscall as f64),
        (
            "11. pthread minimal context switch",
            410.0,
            costs.ctx_switch_min as f64,
        ),
        ("12. CFS context switch", 599.0, costs.ctx_switch_cfs as f64),
    ];

    let mut t = Table::new(vec!["operation", "paper (ns)", "measured (ns)", "delta"])
        .with_title("Table 3: ghOSt microbenchmarks (simulated Skylake)");
    for (name, paper, measured) in &rows {
        let delta = (measured - paper) / paper * 100.0;
        t.row(vec![
            name.to_string(),
            format!("{paper:.0}"),
            format!("{measured:.0}"),
            format!("{delta:+.1}%"),
        ]);
    }
    t.print();

    // Shape assertions: every row within 5% of the paper (the group e2e
    // row is allowed 5% for the documented overlap approximation).
    for (name, paper, measured) in &rows {
        assert!(
            within(*measured, *paper, 0.05),
            "{name}: measured {measured:.0} vs paper {paper:.0}"
        );
    }
    println!("\nOK: all 12 rows within 5% of the paper.");
}
