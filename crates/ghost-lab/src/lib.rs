//! # ghost-lab — deterministic parallel experiment engine
//!
//! The repo's experiments — chaos sweeps, figure benches, property
//! tests — are all "build a simulated machine, run a policy under a
//! workload, measure". This crate turns that recipe into data and runs
//! it at scale:
//!
//! * [`scenario::Scenario`] — a *value* that fully describes one
//!   simulation (topology, policy, workload, faults, trace knobs,
//!   seed). Built with [`scenario::ScenarioBuilder`], the repo-wide
//!   canonical setup path.
//! * [`engine::run_sweep`] — executes a matrix of experiments on a
//!   `std::thread` worker pool. Each simulation stays single-threaded,
//!   so a parallel sweep is byte-identical to a serial one; the
//!   per-run result hash proves it.
//! * [`cache::Cache`] — content-addressed results keyed by spec string
//!   and crate version: re-running an unchanged sweep executes zero
//!   simulations.
//!
//! ```
//! use ghost_lab::engine::run_sweep;
//! use ghost_lab::scenario::{PolicyKind, Scenario, WorkloadSpec};
//! use ghost_sim::time::MILLIS;
//!
//! let scenarios: Vec<Scenario> = (0..4)
//!     .map(|seed| {
//!         Scenario::builder()
//!             .name(format!("demo/seed={seed}"))
//!             .cpus(8)
//!             .policy(PolicyKind::CentralizedFifo)
//!             .workload(WorkloadSpec::pulse(4))
//!             .seed(seed)
//!             .horizon(10 * MILLIS)
//!             .trace_capacity(1 << 14)
//!             .build()
//!     })
//!     .collect();
//! let report = run_sweep(&scenarios, 2, None);
//! assert_eq!(report.items.len(), 4);
//! ```

pub mod bench;
pub mod cache;
pub mod engine;
pub mod scenario;

pub use bench::{
    bench_live_vs_sim, bench_sim, emit_bench_sim, emit_live_vs_sim, parse_rows, BenchOpts,
    BenchRow, ParsedRow,
};
pub use cache::{fnv64, fnv64_lines, Cache};
pub use engine::{run_cases, run_sweep, Experiment, ExperimentResult, SweepItem, SweepReport};
pub use scenario::{
    GhostSim, LabRun, PolicyKind, RunSummary, Scenario, ScenarioBuilder, TopologySpec, WorkloadSpec,
};
