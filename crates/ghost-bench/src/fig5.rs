//! Fig. 5: global-agent scalability. "The policy manages all threads in
//! a FIFO runqueue, scheduling them on CPUs as soon as CPUs become idle.
//! The agent groups as many transactions as possible per commit."
//!
//! Sweeping the number of scheduled CPUs exposes three regimes the paper
//! annotates: ❶ linear ramp-up, ❷ a drop when the global agent starts
//! sharing its physical core with a worker (SMT contention), and ❸ a
//! decline once scheduling crosses into the remote socket (NUMA costs).

use ghost_core::enclave::EnclaveConfig;
use ghost_core::runtime::GhostRuntime;
use ghost_policies::CentralizedFifo;
use ghost_sim::app::{App, Next};
use ghost_sim::kernel::{Kernel, KernelConfig, KernelState, ThreadSpec};
use ghost_sim::thread::Tid;
use ghost_sim::time::{Nanos, MICROS, MILLIS};
use ghost_sim::topology::{CpuId, Topology};
use ghost_sim::CpuSet;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Number of scheduled CPUs (excluding the agent's own).
    pub cpus: usize,
    /// Committed transactions per second of virtual time.
    pub txns_per_sec: f64,
}

/// Workload: threads that run a short segment and yield, so every CPU
/// continuously needs a fresh scheduling transaction.
struct YieldApp {
    work: Nanos,
}

impl App for YieldApp {
    fn as_any(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &str {
        "fig5-yield"
    }

    fn on_timer(&mut self, _key: u64, _k: &mut KernelState) {}

    fn on_segment_end(&mut self, _tid: Tid, _k: &mut KernelState) -> Next {
        Next::Yield { dur: self.work }
    }
}

/// The CPU order in which the sweep adds scheduled CPUs: the agent's own
/// socket first (its SMT sibling last within that socket), then the
/// remote socket. This reproduces the paper's regimes in order.
pub fn sweep_order(topo: &Topology, agent: CpuId) -> Vec<CpuId> {
    let sibling = topo.sibling(agent);
    let agent_socket = topo.info(agent).socket;
    let mut local: Vec<CpuId> = topo
        .all_cpus()
        .filter(|&c| c != agent && Some(c) != sibling && topo.info(c).socket == agent_socket)
        .collect();
    local.sort();
    let mut order = local;
    if let Some(sib) = sibling {
        order.push(sib);
    }
    let mut remote: Vec<CpuId> = topo
        .all_cpus()
        .filter(|&c| topo.info(c).socket != agent_socket)
        .collect();
    remote.sort();
    order.extend(remote);
    order
}

/// Runs one sweep point: a centralized FIFO agent on CPU 0 scheduling
/// `scheduled` CPUs, with `group_commit` toggling the §3.2 batching
/// (the ablation disables it). The cohort is sized to keep every CPU
/// busy (`scheduled + 4` threads).
pub fn run_point(
    topo: Topology,
    scheduled: usize,
    work: Nanos,
    warmup: Nanos,
    measure: Nanos,
    group_commit: bool,
) -> Fig5Point {
    let threads = scheduled + 4;
    run_point_with_threads(
        topo,
        scheduled,
        threads,
        work,
        warmup,
        measure,
        group_commit,
    )
}

/// [`run_point`] with an explicit cohort size: `threads` yield-loop
/// threads contend for `scheduled` CPUs. Oversubscribed cohorts (far
/// more threads than CPUs) stress the agent's runqueue and the
/// runtime's dense thread tables — the `ghost-lab bench-sim` scale
/// sweep drives this up to a million threads on a 1024-CPU machine.
#[allow(clippy::too_many_arguments)]
pub fn run_point_with_threads(
    topo: Topology,
    scheduled: usize,
    threads: usize,
    work: Nanos,
    warmup: Nanos,
    measure: Nanos,
    group_commit: bool,
) -> Fig5Point {
    let agent_cpu = CpuId(0);
    let order = sweep_order(&topo, agent_cpu);
    let scheduled = scheduled.min(order.len());
    let mut cpus: CpuSet = order[..scheduled].iter().copied().collect();
    cpus.add(agent_cpu);

    // Worker SMT contention is disabled for this microbenchmark: its
    // threads are scheduling churn, not sustained pipeline pressure. The
    // paper's drop ❷ comes from the *agent's* slowdown when its sibling
    // runs work, which the runtime models independently (agent-side costs
    // scale by 1.25x when `sibling_busy`).
    let cfg = KernelConfig {
        smt_model: false,
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(topo, cfg);
    let runtime = GhostRuntime::new(kernel.state.topo.num_cpus());
    let mut policy = CentralizedFifo::new();
    policy.decision_cost = 20;
    let single_commit = !group_commit;
    let policy: Box<dyn ghost_core::GhostPolicy> = if single_commit {
        Box::new(NoGroupFifo(policy))
    } else {
        Box::new(policy)
    };
    // Provision the queue for the startup burst: attaching and waking
    // `threads` threads posts 2 messages each before the agent first
    // runs, and an overflowed queue silently strands the cohort (the
    // dropped wakeups never re-post). The default 65,536 capacity is
    // kept for ordinary sweep points so their behaviour is unchanged.
    let config =
        EnclaveConfig::centralized("fig5").with_queue_capacity(65_536.max(2 * threads + 1_024));
    let enclave = runtime.launch_enclave(&mut kernel, cpus, config, policy);

    let app_id = kernel.state.next_app_id();
    let mut tids = Vec::new();
    for i in 0..threads {
        let tid = kernel.spawn(
            ThreadSpec::workload(&format!("y{i}"), &kernel.state.topo)
                .app(app_id)
                .affinity(cpus),
        );
        tids.push(tid);
    }
    kernel.add_app(Box::new(YieldApp { work }));
    // Stagger initial phases: identical synchronized segments would
    // lock the cohort into giant batched commits with idle gaps.
    for (i, &tid) in tids.iter().enumerate() {
        enclave.attach_thread(&mut kernel.state, tid);
        let phase = work * (i as u64 + 1) / (tids.len() as u64 + 1);
        kernel.state.thread_mut(tid).remaining = phase.max(1_000);
    }
    for &tid in &tids {
        kernel.wake_now(tid);
    }

    kernel.run_until(warmup);
    let before = runtime.stats().txns_committed;
    kernel.run_until(warmup + measure);
    let after = runtime.stats().txns_committed;
    Fig5Point {
        cpus: scheduled,
        txns_per_sec: (after - before) as f64 / (measure as f64 / 1e9),
    }
}

/// A FIFO variant that commits one transaction per `TXNS_COMMIT()` call
/// — the no-group-commit ablation (every transaction pays its own
/// syscall and un-batched IPI).
struct NoGroupFifo(CentralizedFifo);

impl ghost_core::GhostPolicy for NoGroupFifo {
    fn name(&self) -> &str {
        "fifo-no-group"
    }

    fn on_msg(&mut self, msg: &ghost_core::Message, ctx: &mut ghost_core::PolicyCtx<'_>) {
        self.0.on_msg(msg, ctx);
    }

    fn schedule(&mut self, ctx: &mut ghost_core::PolicyCtx<'_>) {
        // Same decisions as the inner FIFO, but one commit call per txn.
        loop {
            let Some(cpu) = ctx.idle_cpus().first() else {
                return;
            };
            let Some(tid) = self.0.pop_next() else {
                return;
            };
            ctx.charge(self.0.decision_cost);
            let mut txn =
                ghost_core::Transaction::new(tid, cpu).with_thread_seq(self.0.seq_of(tid));
            if ctx.commit_one(&mut txn).committed() {
                self.0.commits += 1;
                self.0.note_scheduled(tid);
            } else {
                self.0.failures += 1;
                self.0.requeue(tid);
            }
        }
    }
}

/// Default sweep sizes for a topology: coarse steps plus a dense band
/// around the local-socket edge (where regimes ❷ and ❸ begin).
pub fn sweep_sizes(topo: &Topology) -> Vec<usize> {
    let max = topo.num_cpus() - 1;
    // Scheduled CPUs on the agent's socket (everything but the agent).
    let edge = topo.cores_per_socket() as usize * topo.threads_per_core() as usize - 1;
    let mut out: Vec<usize> = vec![1, 2];
    let mut n = 4;
    while n <= max {
        out.push(n);
        n += 4;
    }
    for d in edge.saturating_sub(3)..=(edge + 3).min(max) {
        out.push(d);
    }
    out.push(max);
    out.retain(|&x| (1..=max).contains(&x));
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs the full Fig. 5 sweep for one machine.
pub fn run_sweep(topo: Topology, work: Nanos, group_commit: bool) -> Vec<Fig5Point> {
    sweep_sizes(&topo)
        .into_iter()
        .map(|n| {
            run_point(
                topo.clone(),
                n,
                work,
                20 * MILLIS,
                80 * MILLIS,
                group_commit,
            )
        })
        .collect()
}

/// The per-thread work segment used for the headline figure: short
/// enough that a ~50-CPU machine saturates a single agent near the
/// paper's >2 M txn/s peak.
pub const FIG5_WORK: Nanos = 25 * MICROS;

/// Per-thread work sized so the agent saturates just before the sweep
/// crosses the NUMA boundary (the condition for the paper's regime ❸ to
/// appear as a decline): demand at the socket edge ≈ 1.3x agent capacity.
pub fn work_for(topo: &Topology) -> Nanos {
    let local = topo.cores_per_socket() as u64 * topo.threads_per_core() as u64 - 2;
    (local * 1_000_000 / 2_100) * MICROS / 1_000
}
